//! Sensor-network quantiles: hierarchical in-network aggregation.
//!
//! The motivating scenario of the paper: hundreds of sensors each observe a
//! stream of readings; aggregation happens *in the network*, up a routing
//! tree, so summaries are merged at every interior node — a deep, irregular
//! merge tree. The fully-mergeable hybrid quantile summary keeps both its
//! size and its εn rank guarantee through all of it; the GK baseline's size
//! balloons and the plain random sample needs quadratically more space for
//! the same error.
//!
//! Run with: `cargo run --release --example sensor_quantiles`

use mergeable_summaries::core::{Mergeable, RankOracle, Summary};
use mergeable_summaries::quantiles::RankSummary;
use mergeable_summaries::workloads::ValueDist;
use mergeable_summaries::{BottomKSample, GkSummary, HybridQuantile};

const SENSORS: usize = 256;
const READINGS_PER_SENSOR: usize = 4_096;
const EPSILON: f64 = 0.02;

/// Merge a level of summaries pairwise until one remains — the routing
/// tree here is a balanced binary tree over sensors.
fn aggregate<S: Mergeable>(mut level: Vec<S>) -> S {
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut iter = level.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(a.merge(b).expect("same parameters")),
                None => next.push(a),
            }
        }
        level = next;
    }
    level.pop().expect("non-empty")
}

fn main() {
    // Every sensor sees normally distributed readings (e.g. temperatures).
    let all: Vec<Vec<u64>> = (0..SENSORS)
        .map(|s| ValueDist::Normal.generate(READINGS_PER_SENSOR, s as u64))
        .collect();
    let flat: Vec<u64> = all.iter().flatten().copied().collect();
    let n = flat.len();
    let oracle = RankOracle::from_stream(flat.clone());

    // Per-sensor summaries.
    let hybrids: Vec<HybridQuantile<u64>> = all
        .iter()
        .enumerate()
        .map(|(i, readings)| {
            let mut q = HybridQuantile::new(EPSILON, 1000 + i as u64);
            for &r in readings {
                q.insert(r);
            }
            q
        })
        .collect();
    let gks: Vec<GkSummary<u64>> = all
        .iter()
        .map(|readings| {
            let mut q = GkSummary::new(EPSILON);
            for &r in readings {
                q.insert(r);
            }
            q
        })
        .collect();
    let samples: Vec<BottomKSample<u64>> = all
        .iter()
        .enumerate()
        .map(|(i, readings)| {
            // Same space budget as the hybrid summary — the fair fight.
            let budget = 1024;
            let mut s = BottomKSample::new(budget, 2000 + i as u64);
            for &r in readings {
                s.insert(r);
            }
            s
        })
        .collect();

    // In-network aggregation up the routing tree.
    let hybrid = aggregate(hybrids);
    let gk = aggregate(gks);
    let sample = aggregate(samples);

    let max_err = |rank_of: &dyn Fn(&u64) -> u64| -> f64 {
        (1..100)
            .filter_map(|i| oracle.quantile(i as f64 / 100.0).copied())
            .map(|x| oracle.rank_error(&x, rank_of(&x)) as f64 / n as f64)
            .fold(0.0, f64::max)
    };

    let hybrid_err = max_err(&|x| hybrid.rank(x));
    let gk_err = max_err(&|x| gk.rank(x));
    let sample_err = max_err(&|x| sample.rank(x));

    println!("sensors: {SENSORS}, readings: {n}, ε = {EPSILON}\n");
    println!("summary        size (entries)   max rank error / n");
    println!(
        "hybrid         {:>14}   {:>18.5}",
        hybrid.size(),
        hybrid_err
    );
    println!("gk (merged)    {:>14}   {:>18.5}", gk.size(), gk_err);
    println!(
        "bottom-k       {:>14}   {:>18.5}",
        sample.size(),
        sample_err
    );

    println!("\nmedian estimate   : {:?}", hybrid.quantile(0.5));
    println!("true median       : {:?}", oracle.quantile(0.5).copied());
    println!("p99 estimate      : {:?}", hybrid.quantile(0.99));
    println!("true p99          : {:?}", oracle.quantile(0.99).copied());

    assert!(hybrid_err <= EPSILON, "hybrid exceeded εn: {hybrid_err}");
    println!("\nhybrid summary stayed within ε = {EPSILON} through {SENSORS} merges ✓");
}

//! Live service: the full serve loop in one process.
//!
//! Starts a 4-shard Misra-Gries engine behind the TCP server, streams a
//! seeded Zipf workload at it through the wire-protocol client, and
//! checks the snapshot's heavy hitters against an exact oracle — the
//! concurrent rendition of the paper's merge guarantee (the scheduler's
//! interleaving of shard hand-offs is just another merge tree).
//!
//! Run with: `cargo run --release --example live_service`

use mergeable_summaries::core::{FrequencyOracle, Summary, Wire};
use mergeable_summaries::service::{
    Client, Engine, Request, Response, Server, ServiceConfig, ShardSummary, SummaryKind,
};
use mergeable_summaries::workloads::StreamKind;

fn main() {
    let epsilon = 0.01;
    let n = 500_000;

    let stream = StreamKind::Zipf {
        s: 1.2,
        universe: 1 << 18,
    }
    .generate(n, 42);
    let oracle = FrequencyOracle::from_stream(stream.iter().copied());

    // A 4-shard engine behind a TCP server on an ephemeral port.
    let cfg = ServiceConfig::new(SummaryKind::Mg, epsilon).shards(4);
    let engine = Engine::start(cfg).expect("engine start");
    let server = Server::bind(engine, "127.0.0.1:0").expect("bind");
    println!("serving on         : {}", server.local_addr());

    // Stream the workload through the wire protocol and flush, so the
    // published snapshot reflects every update.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for chunk in stream.chunks(4_096) {
        client.ingest(chunk.to_vec()).expect("ingest");
    }
    client.flush().expect("flush");

    let metrics = client.metrics().expect("metrics");
    println!("items ingested     : {}", metrics.updates);
    println!("compaction merges  : {}", metrics.merges);
    println!("snapshot epoch     : {}", metrics.epoch);

    // Query heavy hitters from the snapshot and self-check against the
    // exact oracle: every estimate within eps*n of the truth.
    let hits = match client.call(&Request::HeavyHitters(epsilon)).expect("query") {
        Response::Items(items) => items,
        other => panic!("unexpected response {other:?}"),
    };
    let bound = (epsilon * n as f64).ceil() as u64;
    let worst = hits
        .iter()
        .map(|(item, est)| est.abs_diff(oracle.count(item)))
        .max()
        .unwrap_or(0);
    println!("heavy hitters      : {}", hits.len());
    println!("worst freq error   : {worst} (bound eps*n = {bound})");
    assert!(worst <= bound, "paper bound violated");

    // The snapshot itself ships over the same codec the CLI files use.
    let bytes = match client.call(&Request::Summary).expect("query") {
        Response::Summary(bytes) => bytes,
        other => panic!("unexpected response {other:?}"),
    };
    let summary = ShardSummary::decode(&bytes).expect("decode");
    println!("snapshot wire bytes: {}", bytes.len());
    assert_eq!(summary.total_weight(), n as u64);

    server.stop();
    println!("self-check         : OK");
}

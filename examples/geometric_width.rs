//! Geometric summaries: distributed extent and range counting.
//!
//! A fleet of drones each scans part of a survey area. Every drone keeps
//! (a) an ε-kernel of the points it saw — enough to answer *extent*
//! questions (directional width, diameter) about the union — and (b) a
//! mergeable ε-approximation — enough to answer *counting* questions
//! ("how many detections in this rectangle?"). Both merge losslessly at
//! the base station under the restricted-model rules (shared frame, shared
//! buffer parameters).
//!
//! Run with: `cargo run --release --example geometric_width`

use mergeable_summaries::core::{directional_width, merge_all, unit_dir, MergeTree, Rect, Summary};
use mergeable_summaries::range::{EpsApprox2d, Halving};
use mergeable_summaries::workloads::CloudKind;
use mergeable_summaries::{EpsKernel, Frame};

const DRONES: usize = 64;
const POINTS_PER_DRONE: usize = 2_000;
const EPSILON: f64 = 0.02;

fn main() {
    // The survey: an elongated debris field (anisotropic — exactly the
    // case where kernels need the shared reference frame).
    let field = CloudKind::Ellipse { aspect: 8.0 }.generate(DRONES * POINTS_PER_DRONE, 99);

    // The restricted model: all drones agree on one frame up-front
    // (here from the mission's survey-area bounds).
    let frame = Frame::from_points(&field);

    let kernels: Vec<EpsKernel> = field
        .chunks(POINTS_PER_DRONE)
        .map(|chunk| {
            let mut k = EpsKernel::new(EPSILON, frame);
            k.extend_from(chunk.iter().copied());
            k
        })
        .collect();
    let approxes: Vec<EpsApprox2d> = field
        .chunks(POINTS_PER_DRONE)
        .enumerate()
        .map(|(i, chunk)| {
            let mut a = EpsApprox2d::new(256, Halving::Hilbert, i as u64);
            a.extend_from(chunk.iter().copied());
            a
        })
        .collect();

    let kernel = merge_all(kernels, MergeTree::Random { seed: 5 }).expect("shared frame");
    let approx = merge_all(approxes, MergeTree::Random { seed: 5 }).expect("same m");

    println!(
        "survey: {} detections from {DRONES} drones; kernel keeps {} points, \
         ε-approximation keeps {} points\n",
        field.len(),
        kernel.size(),
        approx.size()
    );

    // Extent queries.
    println!("direction   true width   kernel width   rel. error");
    let mut worst: f64 = 0.0;
    for deg in [0, 30, 60, 90, 120, 150] {
        let dir = unit_dir((deg as f64).to_radians());
        let truth = directional_width(&field, dir);
        let est = kernel.width(dir);
        let rel = (truth - est) / truth;
        worst = worst.max(rel);
        println!("{deg:>6}°   {truth:>12.4}   {est:>12.4}   {rel:>10.5}");
    }
    println!("\napprox. diameter: {:.4}", kernel.diameter());

    // Counting queries.
    let quadrant = Rect::new(0.0, 8.0, 0.0, 1.0);
    let exact = field.iter().filter(|p| quadrant.contains(p)).count();
    let est = approx.estimate_count(&quadrant);
    println!(
        "\ndetections in the north-east quadrant: estimate {est}, exact {exact} \
         (error {:.4}·n)",
        (est as f64 - exact as f64).abs() / field.len() as f64
    );

    assert!(worst <= EPSILON, "kernel width error {worst} > ε");
    println!("\nkernel width error stayed within ε = {EPSILON} ✓");
}

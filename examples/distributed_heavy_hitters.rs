//! Distributed heavy hitters: a multi-threaded scatter/gather aggregation.
//!
//! Sixteen worker threads each stream a shard of a skewed click log into
//! three different summaries — Misra-Gries, SpaceSaving and Count-Min —
//! then the shards are gathered over channels and merged pairwise, exactly
//! as a combiner tree would in a map-reduce system. The example prints the
//! space each summary used and the frequency error each committed, next to
//! the exact answer.
//!
//! Run with: `cargo run --release --example distributed_heavy_hitters`

use std::sync::mpsc;
use std::thread;

use mergeable_summaries::core::{FrequencyOracle, ItemSummary, Mergeable, Summary};
use mergeable_summaries::workloads::{Partitioner, StreamKind};
use mergeable_summaries::{CountMinSketch, MgSummary, SpaceSavingSummary};

const SITES: usize = 16;
const N: usize = 1 << 20;
const EPSILON: f64 = 0.01;

/// All three summaries a site maintains, so one channel carries them all.
struct SiteSummaries {
    mg: MgSummary<u64>,
    ss: SpaceSavingSummary<u64>,
    cm: CountMinSketch<u64>,
}

impl SiteSummaries {
    fn new() -> Self {
        SiteSummaries {
            mg: MgSummary::for_epsilon(EPSILON),
            ss: SpaceSavingSummary::for_epsilon(EPSILON),
            // Count-Min with δ = 1%: pays log(1/δ) rows for its guarantee.
            cm: CountMinSketch::for_epsilon_delta(EPSILON, 0.01, 0xC0FFEE),
        }
    }

    fn absorb(&mut self, items: &[u64]) {
        for &item in items {
            self.mg.update(item);
            self.ss.update(item);
            self.cm.update(item);
        }
    }

    fn merge(self, other: Self) -> Self {
        SiteSummaries {
            mg: self.mg.merge(other.mg).expect("same epsilon"),
            ss: self.ss.merge(other.ss).expect("same epsilon"),
            cm: self.cm.merge(other.cm).expect("same family"),
        }
    }
}

fn main() {
    let stream = StreamKind::Zipf {
        s: 1.2,
        universe: 1 << 22,
    }
    .generate(N, 7);
    let oracle = FrequencyOracle::from_stream(stream.iter().copied());
    let shards = Partitioner::ByKey.split(&stream, SITES);

    // Scatter: one worker per shard.
    let (tx, rx) = mpsc::channel::<SiteSummaries>();
    thread::scope(|scope| {
        for shard in &shards {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut site = SiteSummaries::new();
                site.absorb(shard);
                tx.send(site).expect("gatherer alive");
            });
        }
    });
    drop(tx);

    // Gather: merge summaries pairwise as they arrive (a combiner tree —
    // arrival order is nondeterministic, which mergeability tolerates).
    let mut pending: Vec<SiteSummaries> = rx.iter().collect();
    while pending.len() > 1 {
        let a = pending.pop().expect("len > 1");
        let b = pending.pop().expect("len > 1");
        pending.push(a.merge(b));
    }
    let merged = pending.pop().expect("at least one site");

    // Score every summary against the exact counts.
    let mut mg_max = 0u64;
    let mut ss_max = 0u64;
    let mut cm_max = 0u64;
    for (item, truth) in oracle.iter() {
        mg_max = mg_max.max(truth - merged.mg.estimate(item));
        let ss_est = merged.ss.estimate(item);
        ss_max = ss_max.max(ss_est.abs_diff(truth).min(
            // absent items score against the guaranteed upper bound
            merged.ss.upper_bound(item).abs_diff(truth),
        ));
        cm_max = cm_max.max(merged.cm.estimate(item) - truth);
    }
    let bound = (EPSILON * N as f64) as u64;

    println!(
        "stream: n = {N}, {} distinct, {SITES} sites\n",
        oracle.distinct()
    );
    println!("summary       stored entries   max |error|   εn bound");
    println!(
        "misra-gries   {:>14}   {:>11}   {bound:>8}",
        merged.mg.size(),
        mg_max
    );
    println!(
        "space-saving  {:>14}   {:>11}   {bound:>8}",
        merged.ss.size(),
        ss_max
    );
    println!(
        "count-min     {:>14}   {:>11}   {bound:>8}   (cells; probabilistic)",
        merged.cm.size(),
        cm_max
    );
    println!("exact         {:>14}", oracle.distinct());

    assert!(mg_max <= bound, "MG exceeded its deterministic bound");
    assert!(ss_max <= bound + 1, "SS exceeded its deterministic bound");
    println!("\ndeterministic bounds held ✓");
}

//! Combiner networks: what mergeability costs on the wire.
//!
//! A map-reduce-style job aggregates per-site heavy-hitter and quantile
//! summaries through four network topologies, accounting every byte
//! shipped. The punchline of the paper's model: the *largest message on
//! any link* is bounded by the summary size — it does not grow with the
//! amount of data below that link — so in-network aggregation scales to
//! arbitrarily deep topologies.
//!
//! Run with: `cargo run --release --example combiner_network`

use mergeable_summaries::core::{ItemSummary, Summary};
use mergeable_summaries::netsim::{aggregate, raw_shipping_bytes, Topology};
use mergeable_summaries::quantiles::RankSummary;
use mergeable_summaries::workloads::{Partitioner, StreamKind};
use mergeable_summaries::{HybridQuantile, MgSummary};

const SITES: usize = 128;
const PER_SITE: usize = 8_192;
const EPSILON: f64 = 0.01;

fn main() {
    let n = SITES * PER_SITE;
    let items = StreamKind::Zipf {
        s: 1.2,
        universe: 1 << 22,
    }
    .generate(n, 17);
    let parts = Partitioner::ByKey.split(&items, SITES);
    let raw = raw_shipping_bytes(&vec![PER_SITE; SITES], 8);

    println!(
        "{SITES} sites × {PER_SITE} items; shipping raw data would cost {} kB\n",
        raw / 1024
    );
    println!("summary           topology        total kB   max msg B   depth   vs raw");

    for topology in Topology::canonical() {
        let mg_leaves: Vec<MgSummary<u64>> = parts
            .iter()
            .map(|p| {
                let mut s = MgSummary::for_epsilon(EPSILON);
                s.extend_from(p.iter().copied());
                s
            })
            .collect();
        let (mg, stats) = aggregate(mg_leaves, topology).expect("same parameters");
        println!(
            "misra-gries       {:<14}  {:>8}   {:>9}   {:>5}   {:>6.4}",
            topology.label(),
            stats.total_bytes / 1024,
            stats.max_message_bytes,
            stats.depth,
            stats.total_bytes as f64 / raw as f64
        );
        assert!(mg.size() <= 100);

        let hq_leaves: Vec<HybridQuantile<u64>> = parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut q = HybridQuantile::new(EPSILON, i as u64);
                for &v in p {
                    q.insert(v);
                }
                q
            })
            .collect();
        let (hq, stats) = aggregate(hq_leaves, topology).expect("same parameters");
        println!(
            "hybrid quantile   {:<14}  {:>8}   {:>9}   {:>5}   {:>6.4}",
            topology.label(),
            stats.total_bytes / 1024,
            stats.max_message_bytes,
            stats.depth,
            stats.total_bytes as f64 / raw as f64
        );
        assert_eq!(hq.count(), n as u64);
    }

    println!(
        "\nevery per-link message stayed bounded by the summary size — the whole \
         point of mergeability ✓"
    );
}

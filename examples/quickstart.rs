//! Quickstart: distributed heavy hitters in thirty lines.
//!
//! Four "sites" each see a shard of a skewed stream, summarize it with a
//! Misra-Gries summary of `⌈1/ε⌉ − 1` counters, and the shards merge into
//! one summary whose error is still `≤ εn` — the defining property of a
//! mergeable summary.
//!
//! Run with: `cargo run --example quickstart`

use mergeable_summaries::core::{merge_all, FrequencyOracle, ItemSummary, MergeTree, Summary};
use mergeable_summaries::workloads::{Partitioner, StreamKind};
use mergeable_summaries::MgSummary;

fn main() {
    let epsilon = 0.05;
    let n = 200_000;

    // A Zipf-distributed stream: a few items dominate.
    let stream = StreamKind::Zipf {
        s: 1.3,
        universe: 100_000,
    }
    .generate(n, 42);
    let oracle = FrequencyOracle::from_stream(stream.iter().copied());

    // Split across 4 sites; each builds its own ε-summary.
    let shards = Partitioner::RoundRobin.split(&stream, 4);
    let sites: Vec<MgSummary<u64>> = shards
        .iter()
        .map(|shard| {
            let mut s = MgSummary::for_epsilon(epsilon);
            s.extend_from(shard.iter().copied());
            s
        })
        .collect();

    // Merge — balanced tree, but any order gives the same guarantee.
    let merged = merge_all(sites, MergeTree::Balanced).expect("same parameters");

    println!("stream size        : {n}");
    println!("distinct items     : {}", oracle.distinct());
    println!(
        "summary counters   : {} (vs {} exact)",
        merged.size(),
        oracle.distinct()
    );
    println!(
        "guaranteed error   : ≤ {:.0} ({}·n would be {:.0})",
        merged.error_bound(),
        epsilon,
        epsilon * n as f64
    );
    println!("\ntop items (estimate is a lower bound; truth in brackets):");
    for (item, est) in merged.heavy_hitters(epsilon).iter().take(8) {
        println!("  item {item:>6}: {est:>7}  [{}]", oracle.count(item));
    }

    // Every true heavy hitter is reported.
    let reported: Vec<u64> = merged
        .heavy_hitters(epsilon)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    for (item, _) in oracle.heavy_hitters(epsilon) {
        assert!(reported.contains(&item), "missed heavy hitter {item}");
    }
    println!("\nall true {}-heavy hitters were reported ✓", epsilon);
}

//! `mergeable` — build, merge and query mergeable summaries from the
//! command line.
//!
//! Summaries are stored as JSON envelopes (`{"kind": …, "summary": …}`), so
//! a fleet of machines can each `build` a summary of their local data,
//! ship the files anywhere, and any machine can `merge` them and `query`
//! the result — the command-line rendition of the paper's model.
//!
//! ```text
//! mergeable build --kind mg --epsilon 0.01 --out site1.json  < site1.txt
//! mergeable build --kind mg --epsilon 0.01 --out site2.json  < site2.txt
//! mergeable merge site1.json site2.json --out all.json
//! mergeable query all.json --heavy-hitters 0.01
//! mergeable query all.json --estimate 42
//! mergeable info all.json
//! ```
//!
//! Input data is one unsigned integer per line (blank lines ignored).

use std::fs;
use std::io::{BufRead, BufReader, Read};
use std::process::ExitCode;

use mergeable_summaries::core::{ItemSummary, Mergeable, Summary};
use mergeable_summaries::quantiles::RankSummary;
use mergeable_summaries::{
    BottomKSample, CountMinSketch, HybridQuantile, MgSummary, SpaceSavingSummary,
};

/// The on-disk envelope: every supported summary, tagged by kind.
#[derive(serde::Serialize, serde::Deserialize)]
#[serde(tag = "kind", content = "summary", rename_all = "kebab-case")]
enum AnySummary {
    Mg(MgSummary<u64>),
    SpaceSaving(SpaceSavingSummary<u64>),
    CountMin(CountMinSketch<u64>),
    HybridQuantile(HybridQuantile<u64>),
    BottomK(BottomKSample<u64>),
}

impl AnySummary {
    fn kind(&self) -> &'static str {
        match self {
            AnySummary::Mg(_) => "mg",
            AnySummary::SpaceSaving(_) => "space-saving",
            AnySummary::CountMin(_) => "count-min",
            AnySummary::HybridQuantile(_) => "hybrid-quantile",
            AnySummary::BottomK(_) => "bottom-k",
        }
    }

    fn total_weight(&self) -> u64 {
        match self {
            AnySummary::Mg(s) => s.total_weight(),
            AnySummary::SpaceSaving(s) => s.total_weight(),
            AnySummary::CountMin(s) => s.total_weight(),
            AnySummary::HybridQuantile(s) => s.total_weight(),
            AnySummary::BottomK(s) => s.total_weight(),
        }
    }

    fn size(&self) -> usize {
        match self {
            AnySummary::Mg(s) => s.size(),
            AnySummary::SpaceSaving(s) => s.size(),
            AnySummary::CountMin(s) => s.size(),
            AnySummary::HybridQuantile(s) => s.size(),
            AnySummary::BottomK(s) => s.size(),
        }
    }

    fn merge(self, other: AnySummary) -> Result<AnySummary, String> {
        let pair = (self, other);
        match pair {
            (AnySummary::Mg(a), AnySummary::Mg(b)) => {
                a.merge(b).map(AnySummary::Mg).map_err(|e| e.to_string())
            }
            (AnySummary::SpaceSaving(a), AnySummary::SpaceSaving(b)) => a
                .merge(b)
                .map(AnySummary::SpaceSaving)
                .map_err(|e| e.to_string()),
            (AnySummary::CountMin(a), AnySummary::CountMin(b)) => a
                .merge(b)
                .map(AnySummary::CountMin)
                .map_err(|e| e.to_string()),
            (AnySummary::HybridQuantile(a), AnySummary::HybridQuantile(b)) => a
                .merge(b)
                .map(AnySummary::HybridQuantile)
                .map_err(|e| e.to_string()),
            (AnySummary::BottomK(a), AnySummary::BottomK(b)) => a
                .merge(b)
                .map(AnySummary::BottomK)
                .map_err(|e| e.to_string()),
            (a, b) => Err(format!(
                "cannot merge a '{}' summary with a '{}' summary",
                a.kind(),
                b.kind()
            )),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'; try --help")),
    }
}

const USAGE: &str = "\
mergeable — build, merge and query mergeable summaries (PODS'12)

USAGE:
  mergeable build --kind KIND --epsilon E [--seed S] [--input FILE] --out FILE
  mergeable merge FILE... --out FILE
  mergeable query FILE (--heavy-hitters E | --estimate ITEM | --quantile PHI | --rank X)
  mergeable info FILE

KINDS:
  mg               Misra-Gries heavy hitters (deterministic, freq error <= eps*n)
  space-saving     SpaceSaving heavy hitters (deterministic bracket)
  count-min        Count-Min sketch (probabilistic overestimate)
  hybrid-quantile  fully mergeable quantile summary (rank error <= eps*n whp)
  bottom-k         uniform sample of ceil(1/eps^2) values (quantile baseline)

Input data: one unsigned integer per line (stdin unless --input is given).
";

/// Pull `--flag value` out of an argument list; returns the remainder.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn read_items(input: Option<String>) -> Result<Vec<u64>, String> {
    let reader: Box<dyn Read> = match input {
        Some(path) => {
            Box::new(fs::File::open(&path).map_err(|e| format!("cannot open {path}: {e}"))?)
        }
        None => Box::new(std::io::stdin()),
    };
    let mut items = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| format!("read error: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let value: u64 = trimmed
            .parse()
            .map_err(|e| format!("line {}: '{trimmed}': {e}", lineno + 1))?;
        items.push(value);
    }
    Ok(items)
}

fn load(path: &str) -> Result<AnySummary, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path} is not a summary file: {e}"))
}

fn store(path: &str, summary: &AnySummary) -> Result<(), String> {
    let json = serde_json::to_string(summary).expect("summaries serialize infallibly");
    fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let kind = take_flag(&mut args, "--kind").ok_or("build requires --kind")?;
    let epsilon: f64 = take_flag(&mut args, "--epsilon")
        .ok_or("build requires --epsilon")?
        .parse()
        .map_err(|e| format!("bad --epsilon: {e}"))?;
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(format!("--epsilon must be in (0, 1), got {epsilon}"));
    }
    let seed: u64 = match take_flag(&mut args, "--seed") {
        Some(s) => s.parse().map_err(|e| format!("bad --seed: {e}"))?,
        None => 0,
    };
    let input = take_flag(&mut args, "--input");
    let out = take_flag(&mut args, "--out").ok_or("build requires --out")?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }

    let items = read_items(input)?;
    let summary = match kind.as_str() {
        "mg" => {
            let mut s = MgSummary::for_epsilon(epsilon);
            s.extend_from(items);
            AnySummary::Mg(s)
        }
        "space-saving" => {
            let mut s = SpaceSavingSummary::for_epsilon(epsilon);
            s.extend_from(items);
            AnySummary::SpaceSaving(s)
        }
        "count-min" => {
            let mut s = CountMinSketch::for_epsilon_delta(epsilon, 0.01, seed);
            s.extend_from(items);
            AnySummary::CountMin(s)
        }
        "hybrid-quantile" => {
            let mut s = HybridQuantile::new(epsilon, seed);
            for v in items {
                s.insert(v);
            }
            AnySummary::HybridQuantile(s)
        }
        "bottom-k" => {
            let k = (1.0 / (epsilon * epsilon)).ceil() as usize;
            let mut s = BottomKSample::new(k.max(1), seed);
            for v in items {
                s.insert(v);
            }
            AnySummary::BottomK(s)
        }
        other => return Err(format!("unknown --kind '{other}'; see --help")),
    };
    store(&out, &summary)?;
    eprintln!(
        "wrote {} ({} items, {} stored entries)",
        out,
        summary.total_weight(),
        summary.size()
    );
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let out = take_flag(&mut args, "--out").ok_or("merge requires --out")?;
    if args.len() < 2 {
        return Err("merge requires at least two input files".into());
    }
    let mut merged = load(&args[0])?;
    for path in &args[1..] {
        merged = merged.merge(load(path)?)?;
    }
    store(&out, &merged)?;
    eprintln!(
        "wrote {} ({} items, {} stored entries)",
        out,
        merged.total_weight(),
        merged.size()
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let hh = take_flag(&mut args, "--heavy-hitters");
    let est = take_flag(&mut args, "--estimate");
    let quant = take_flag(&mut args, "--quantile");
    let rank = take_flag(&mut args, "--rank");
    let [path] = args.as_slice() else {
        return Err("query requires exactly one summary file".into());
    };
    let summary = load(path)?;

    if let Some(eps) = hh {
        let eps: f64 = eps
            .parse()
            .map_err(|e| format!("bad --heavy-hitters: {e}"))?;
        let hits: Vec<(u64, u64)> = match &summary {
            AnySummary::Mg(s) => s.heavy_hitters(eps),
            AnySummary::SpaceSaving(s) => s.heavy_hitters(eps),
            _ => {
                return Err(format!(
                    "--heavy-hitters applies to mg/space-saving, not {}",
                    summary.kind()
                ))
            }
        };
        for (item, count) in hits {
            println!("{item}\t{count}");
        }
        return Ok(());
    }
    if let Some(item) = est {
        let item: u64 = item.parse().map_err(|e| format!("bad --estimate: {e}"))?;
        let value = match &summary {
            AnySummary::Mg(s) => s.estimate(&item),
            AnySummary::SpaceSaving(s) => s.estimate(&item),
            AnySummary::CountMin(s) => s.estimate(&item),
            _ => {
                return Err(format!(
                    "--estimate applies to counter summaries, not {}",
                    summary.kind()
                ))
            }
        };
        println!("{value}");
        return Ok(());
    }
    if let Some(phi) = quant {
        let phi: f64 = phi.parse().map_err(|e| format!("bad --quantile: {e}"))?;
        let value = match &summary {
            AnySummary::HybridQuantile(s) => s.quantile(phi),
            AnySummary::BottomK(s) => s.quantile(phi),
            _ => {
                return Err(format!(
                    "--quantile applies to quantile summaries, not {}",
                    summary.kind()
                ))
            }
        };
        match value {
            Some(v) => println!("{v}"),
            None => return Err("summary is empty".into()),
        }
        return Ok(());
    }
    if let Some(x) = rank {
        let x: u64 = x.parse().map_err(|e| format!("bad --rank: {e}"))?;
        let value = match &summary {
            AnySummary::HybridQuantile(s) => s.rank(&x),
            AnySummary::BottomK(s) => s.rank(&x),
            _ => {
                return Err(format!(
                    "--rank applies to quantile summaries, not {}",
                    summary.kind()
                ))
            }
        };
        println!("{value}");
        return Ok(());
    }
    Err("query needs one of --heavy-hitters / --estimate / --quantile / --rank".into())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("info requires exactly one summary file".into());
    };
    let summary = load(path)?;
    println!("kind:           {}", summary.kind());
    println!("items absorbed: {}", summary.total_weight());
    println!("stored entries: {}", summary.size());
    Ok(())
}

//! `mergeable` — build, merge, query and serve mergeable summaries from
//! the command line.
//!
//! Summaries are stored as binary wire frames (magic `MS`, codec version,
//! a tag byte, then the summary's compact encoding), so a fleet of
//! machines can each `build` a summary of their local data, ship the
//! files anywhere, and any machine can `merge` them and `query` the
//! result — the command-line rendition of the paper's model. `serve`
//! runs the sharded concurrent aggregation engine behind a TCP front-end
//! speaking the same codec, and `bench-client` drives it.
//!
//! ```text
//! mergeable build --kind mg --epsilon 0.01 --out site1.ms  < site1.txt
//! mergeable build --kind mg --epsilon 0.01 --out site2.ms  < site2.txt
//! mergeable merge site1.ms site2.ms --out all.ms
//! mergeable query all.ms --heavy-hitters 0.01
//! mergeable query all.ms --estimate 42
//! mergeable info all.ms
//!
//! mergeable serve --kind mg --epsilon 0.01 --addr 127.0.0.1:7433
//! mergeable serve --kind mg --epsilon 0.01 --data-dir /var/lib/ms --fsync every:64
//! mergeable bench-client --addr 127.0.0.1:7433 --items 1000000
//! mergeable metrics --addr 127.0.0.1:7433          # human-readable
//! mergeable metrics --addr 127.0.0.1:7433 --prom   # Prometheus text
//! mergeable store inspect /var/lib/ms              # WAL/checkpoint health
//! ```
//!
//! Input data is one unsigned integer per line (blank lines ignored).

use std::fs;
use std::io::{BufRead, BufReader, Read};
use std::process::ExitCode;
use std::time::Instant;

use mergeable_summaries::cluster::{ClusterConfig, Coordinator};
use mergeable_summaries::core::{
    ItemSummary, Mergeable, Summary, ToJson, Wire, WireError, WireFrame, WireReader,
};
use mergeable_summaries::quantiles::RankSummary;
use mergeable_summaries::service::{
    DurabilityConfig, Engine, FsyncPolicy, OverloadConfig, Request, Response, SegmentConfig,
    Server, ServiceConfig, SummaryKind,
};
use mergeable_summaries::workloads::StreamKind;
use mergeable_summaries::{
    BottomKSample, CountMinSketch, HybridQuantile, MgSummary, SpaceSavingSummary,
};

/// Frame tag for a summary file produced by `build`/`merge`.
const SUMMARY_TAG: u8 = 0x01;

mod alloc_count {
    //! Pass-through global allocator that counts allocating calls per
    //! thread, so `bench-client` can report allocations per send and
    //! prove the reused request buffer keeps the hot loop allocation-free.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static COUNT: Cell<u64> = const { Cell::new(0) };
    }

    pub struct Counting;

    impl Counting {
        fn bump() {
            // `try_with`: the allocator also runs during TLS teardown.
            let _ = COUNT.try_with(|c| c.set(c.get() + 1));
        }
    }

    /// Allocating calls made by this thread so far.
    pub fn current() -> u64 {
        COUNT.with(|c| c.get())
    }

    // SAFETY: defers entirely to `System`; the counter is thread-local.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            Self::bump();
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            Self::bump();
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            Self::bump();
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }
}

#[global_allocator]
static ALLOC: alloc_count::Counting = alloc_count::Counting;

/// The on-disk envelope: every supported summary, tagged by kind.
enum AnySummary {
    Mg(MgSummary<u64>),
    SpaceSaving(SpaceSavingSummary<u64>),
    CountMin(CountMinSketch<u64>),
    HybridQuantile(HybridQuantile<u64>),
    BottomK(BottomKSample<u64>),
}

impl AnySummary {
    fn kind(&self) -> &'static str {
        match self {
            AnySummary::Mg(_) => "mg",
            AnySummary::SpaceSaving(_) => "space-saving",
            AnySummary::CountMin(_) => "count-min",
            AnySummary::HybridQuantile(_) => "hybrid-quantile",
            AnySummary::BottomK(_) => "bottom-k",
        }
    }

    fn total_weight(&self) -> u64 {
        match self {
            AnySummary::Mg(s) => s.total_weight(),
            AnySummary::SpaceSaving(s) => s.total_weight(),
            AnySummary::CountMin(s) => s.total_weight(),
            AnySummary::HybridQuantile(s) => s.total_weight(),
            AnySummary::BottomK(s) => s.total_weight(),
        }
    }

    fn size(&self) -> usize {
        match self {
            AnySummary::Mg(s) => s.size(),
            AnySummary::SpaceSaving(s) => s.size(),
            AnySummary::CountMin(s) => s.size(),
            AnySummary::HybridQuantile(s) => s.size(),
            AnySummary::BottomK(s) => s.size(),
        }
    }

    fn merge(self, other: AnySummary) -> Result<AnySummary, String> {
        let pair = (self, other);
        match pair {
            (AnySummary::Mg(a), AnySummary::Mg(b)) => {
                a.merge(b).map(AnySummary::Mg).map_err(|e| e.to_string())
            }
            (AnySummary::SpaceSaving(a), AnySummary::SpaceSaving(b)) => a
                .merge(b)
                .map(AnySummary::SpaceSaving)
                .map_err(|e| e.to_string()),
            (AnySummary::CountMin(a), AnySummary::CountMin(b)) => a
                .merge(b)
                .map(AnySummary::CountMin)
                .map_err(|e| e.to_string()),
            (AnySummary::HybridQuantile(a), AnySummary::HybridQuantile(b)) => a
                .merge(b)
                .map(AnySummary::HybridQuantile)
                .map_err(|e| e.to_string()),
            (AnySummary::BottomK(a), AnySummary::BottomK(b)) => a
                .merge(b)
                .map(AnySummary::BottomK)
                .map_err(|e| e.to_string()),
            (a, b) => Err(format!(
                "cannot merge a '{}' summary with a '{}' summary",
                a.kind(),
                b.kind()
            )),
        }
    }
}

impl Wire for AnySummary {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            AnySummary::Mg(s) => {
                out.push(1);
                s.encode_into(out);
            }
            AnySummary::SpaceSaving(s) => {
                out.push(2);
                s.encode_into(out);
            }
            AnySummary::CountMin(s) => {
                out.push(3);
                s.encode_into(out);
            }
            AnySummary::HybridQuantile(s) => {
                out.push(4);
                s.encode_into(out);
            }
            AnySummary::BottomK(s) => {
                out.push(5);
                s.encode_into(out);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(match r.byte()? {
            1 => AnySummary::Mg(MgSummary::decode_from(r)?),
            2 => AnySummary::SpaceSaving(SpaceSavingSummary::decode_from(r)?),
            3 => AnySummary::CountMin(CountMinSketch::decode_from(r)?),
            4 => AnySummary::HybridQuantile(HybridQuantile::decode_from(r)?),
            5 => AnySummary::BottomK(BottomKSample::decode_from(r)?),
            _ => return Err(WireError::Malformed("unknown summary kind")),
        })
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench-client") => cmd_bench_client(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'; try --help")),
    }
}

const USAGE: &str = "\
mergeable — build, merge, query and serve mergeable summaries (PODS'12)

USAGE:
  mergeable build --kind KIND --epsilon E [--seed S] [--input FILE] --out FILE
  mergeable merge FILE... --out FILE
  mergeable query FILE (--heavy-hitters E | --estimate ITEM | --quantile PHI | --rank X)
  mergeable query --addr A (--window W (--quantile PHI | --heavy-hitters PHI) | --segments)
  mergeable info FILE
  mergeable serve --kind KIND --epsilon E [--addr A] [--shards N] [--seed S] [--no-telemetry]
                  [--audit] [--pin-cores] [--data-dir DIR] [--fsync always|every:N|never]
                  [--checkpoint-batches N] [--segment-batches N] [--segment-secs N]
                  [--coarsen-watermark N] [--max-inflight N] [--max-inflight-per-conn N]
                  [--shed-watermark F] [--ingest-watermark F] [--retry-after-micros U]
  mergeable serve --coordinator --nodes H:P,H:P,... [--addr A] [--replicas]
                  [--ping-interval-ms N] [--seed S]
  mergeable bench-client --addr A [--items N] [--batch B] [--seed S] [--zipf S]
  mergeable metrics --addr A [--prom | --accuracy]
  mergeable metrics --cluster --nodes H:P,H:P,... [--prom]
  mergeable trace --addr A [--nodes H:P,H:P,...] [--json]
  mergeable store inspect DIR [--json]

KINDS:
  mg               Misra-Gries heavy hitters (deterministic, freq error <= eps*n)
  space-saving     SpaceSaving heavy hitters (deterministic bracket)
  count-min        Count-Min sketch (probabilistic overestimate)
  hybrid-quantile  fully mergeable quantile summary (rank error <= eps*n whp)
  bottom-k         uniform sample of ceil(1/eps^2) values (quantile baseline)

Summary files are binary wire frames (the same codec the TCP protocol
uses). `serve` runs the sharded concurrent engine (mg, space-saving,
count-min or hybrid-quantile) on A (default 127.0.0.1:7433) until stdin
closes; `serve --pin-cores` pins each shard worker (and the compactor)
to its own CPU via sched_setaffinity — a logged no-op on non-Linux
hosts or when the host has fewer CPUs than shards. `bench-client`
streams a seeded Zipf workload at it and reports throughput, engine
metrics, per-shard buffer-pool reuse and affinity status. `metrics`
scrapes a live server's
telemetry plane: per-opcode latency histograms (p50/p95/p99/max),
per-shard queue-depth gauges and byte counters, as a table or (--prom)
Prometheus text exposition.

`serve --coordinator` federates N already-running `serve` backends into
one logical service: ingest batches are consistent-hash routed across
the nodes (with automatic rebalance around dead ones), queries are
answered by scatter/gather plus a one-shot merge — the same eps*n bound
as a single node — and `--replicas` pairs consecutive nodes for
redundancy. `metrics --cluster` scrapes every node directly and merges
their metric planes client-side (work counters sum, gauges take max,
latency histograms merge bucket-wise).

`serve --data-dir DIR` makes the engine crash-safe: every acked batch is
appended to a write-ahead log and periodically folded into per-shard
checkpoint files under DIR, and restarting with the same DIR recovers
the state (newest valid checkpoint set + WAL tail replay) with no error
growth — summaries merge back losslessly. `--fsync` trades durability
for throughput (`always` per batch, `every:N` bounded loss window,
`never` leaves flushing to the OS); `--checkpoint-batches` sets the
checkpoint cadence. `store inspect` CRC-scans a data directory
read-only and reports per-segment and per-checkpoint health.

`serve --segment-batches N` / `--segment-secs S` turn on the **segment
cube**: ingest is split into time/sequence segments (sealed every N
batches or S seconds), each sealed segment carrying a precomputed
summary of every family. `query --addr A --window 5m --quantile 0.5`
then answers over just the last five minutes by one-shot-merging the
minimal covering segment set (open segment included), at the same eps*n
bound on the queried range (Definition 1). `--window` accepts `90s`,
`5m`, `2h` or plain seconds; `--segments` lists the cube's segments.
With `--data-dir` sealed segments persist beside the checkpoints and
survive restarts. `--coarsen-watermark N` adds pressure-driven
coarsening: once more than N sealed segments are resident, adjacent
pairs are merged into coarser tiers (lossless w.r.t. eps*n on admitted
weight, Definition 1) so resident memory stays bounded under sustained
ingest.

`serve --max-inflight N` (and `--max-inflight-per-conn`,
`--shed-watermark F`, `--ingest-watermark F`, `--retry-after-micros U`)
turn on the **overload control plane**: requests beyond the in-flight
caps, or arriving while queue pressure is above the watermark for their
class (queries shed first, ingest last, control never), are refused
with a typed `Overloaded{retry-after}` answer instead of queueing —
and a request whose propagated deadline budget is already spent is shed
before dispatch. Shed/admit counters appear in `mergeable metrics`.

`trace --addr A` pulls the flight-recorder rings of a live server (and,
with `--nodes`, of every listed backend), stitches the spans into one
causally-ordered trace tree per request — coordinator request, scatter
legs, backend node requests — and prints it as an indented timeline (or
`--json`). Requests carry a deterministic trace context on the wire
(seeded ids, parent-span links), so a single query through
`serve --coordinator` shows up as one tree across every process it
touched. `serve --audit` turns on the accuracy self-audit: the engine
keeps deterministic ground truth beside the summary (exact counts for a
hash-chosen 1-in-16 key subset, or a seeded reservoir for quantiles) and
`metrics --accuracy` reports the observed error next to the eps*n
envelope the paper guarantees — merge lineage (merge count, tree depth,
total weight) included.

Input data: one unsigned integer per line (stdin unless --input is given).
";

/// Pull `--flag value` out of an argument list; returns the remainder.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

/// Pull a boolean `--switch` out of an argument list.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn read_items(input: Option<String>) -> Result<Vec<u64>, String> {
    let reader: Box<dyn Read> = match input {
        Some(path) => {
            Box::new(fs::File::open(&path).map_err(|e| format!("cannot open {path}: {e}"))?)
        }
        None => Box::new(std::io::stdin()),
    };
    let mut items = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| format!("read error: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let value: u64 = trimmed
            .parse()
            .map_err(|e| format!("line {}: '{trimmed}': {e}", lineno + 1))?;
        items.push(value);
    }
    Ok(items)
}

fn load(path: &str) -> Result<AnySummary, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let frame =
        WireFrame::from_bytes(&bytes).map_err(|e| format!("{path} is not a summary file: {e}"))?;
    if frame.tag != SUMMARY_TAG {
        return Err(format!(
            "{path} is not a summary file: unexpected frame tag {:#x}",
            frame.tag
        ));
    }
    frame
        .value::<AnySummary>()
        .map_err(|e| format!("{path} is not a summary file: {e}"))
}

fn store(path: &str, summary: &AnySummary) -> Result<(), String> {
    let bytes = WireFrame::from_value(SUMMARY_TAG, summary).to_bytes();
    fs::write(path, bytes).map_err(|e| format!("cannot write {path}: {e}"))
}

fn parse_epsilon(value: &str) -> Result<f64, String> {
    let epsilon: f64 = value.parse().map_err(|e| format!("bad --epsilon: {e}"))?;
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(format!("--epsilon must be in (0, 1), got {epsilon}"));
    }
    Ok(epsilon)
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let kind = take_flag(&mut args, "--kind").ok_or("build requires --kind")?;
    let epsilon =
        parse_epsilon(&take_flag(&mut args, "--epsilon").ok_or("build requires --epsilon")?)?;
    let seed: u64 = match take_flag(&mut args, "--seed") {
        Some(s) => s.parse().map_err(|e| format!("bad --seed: {e}"))?,
        None => 0,
    };
    let input = take_flag(&mut args, "--input");
    let out = take_flag(&mut args, "--out").ok_or("build requires --out")?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }

    let items = read_items(input)?;
    let summary = match kind.as_str() {
        "mg" => {
            let mut s = MgSummary::for_epsilon(epsilon);
            s.extend_from(items);
            AnySummary::Mg(s)
        }
        "space-saving" => {
            let mut s = SpaceSavingSummary::for_epsilon(epsilon);
            s.extend_from(items);
            AnySummary::SpaceSaving(s)
        }
        "count-min" => {
            let mut s = CountMinSketch::for_epsilon_delta(epsilon, 0.01, seed);
            s.extend_from(items);
            AnySummary::CountMin(s)
        }
        "hybrid-quantile" => {
            let mut s = HybridQuantile::new(epsilon, seed);
            for v in items {
                s.insert(v);
            }
            AnySummary::HybridQuantile(s)
        }
        "bottom-k" => {
            let k = (1.0 / (epsilon * epsilon)).ceil() as usize;
            let mut s = BottomKSample::new(k.max(1), seed);
            for v in items {
                s.insert(v);
            }
            AnySummary::BottomK(s)
        }
        other => return Err(format!("unknown --kind '{other}'; see --help")),
    };
    store(&out, &summary)?;
    eprintln!(
        "wrote {} ({} items, {} stored entries)",
        out,
        summary.total_weight(),
        summary.size()
    );
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let out = take_flag(&mut args, "--out").ok_or("merge requires --out")?;
    if args.len() < 2 {
        return Err("merge requires at least two input files".into());
    }
    let mut merged = load(&args[0])?;
    for path in &args[1..] {
        merged = merged.merge(load(path)?)?;
    }
    store(&out, &merged)?;
    eprintln!(
        "wrote {} ({} items, {} stored entries)",
        out,
        merged.total_weight(),
        merged.size()
    );
    Ok(())
}

/// Parse a `--window` duration (`90s`, `5m`, `2h`, or plain seconds)
/// into microseconds.
fn parse_window(value: &str) -> Result<u64, String> {
    let (number, scale) = match value.as_bytes().last() {
        Some(b's') => (&value[..value.len() - 1], 1_000_000u64),
        Some(b'm') => (&value[..value.len() - 1], 60_000_000),
        Some(b'h') => (&value[..value.len() - 1], 3_600_000_000),
        _ => (value, 1_000_000),
    };
    let n: u64 = number
        .parse()
        .map_err(|e| format!("bad --window '{value}': {e}"))?;
    n.checked_mul(scale)
        .ok_or_else(|| format!("--window '{value}' overflows"))
}

/// `query --addr A --window W`: time-range queries against a live
/// server's segment cube. The window is anchored at the server's own
/// clock (from `SegmentInfo`) so the client and server need no shared
/// notion of time: the queried range is `[now - W, +inf)`, which always
/// includes the open segment.
fn cmd_query_live(mut args: Vec<String>, addr: String) -> Result<(), String> {
    let window = take_flag(&mut args, "--window");
    let quant = take_flag(&mut args, "--quantile");
    let hh = take_flag(&mut args, "--heavy-hitters");
    let segments = take_switch(&mut args, "--segments");
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }
    let mut client = mergeable_summaries::service::Client::connect(addr.as_str())
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;

    if segments {
        let report = client
            .segments()
            .map_err(|e| format!("segment-info failed: {e}"))?;
        println!(
            "{:>6} {:>12} {:>12} {:>16} {:>16} {:>12} {:>8}  state",
            "id", "start_seq", "end_seq", "start_micros", "end_micros", "weight", "batches"
        );
        for s in &report.segments {
            println!(
                "{:>6} {:>12} {:>12} {:>16} {:>16} {:>12} {:>8}  {}",
                s.id,
                s.start_seq,
                s.end_seq,
                s.start_micros,
                s.end_micros,
                s.weight,
                s.batches,
                if s.sealed { "sealed" } else { "open" }
            );
        }
        println!("server clock: {}us", report.now_micros);
        return Ok(());
    }

    let window = parse_window(&window.ok_or("query --addr needs --window (or --segments)")?)?;
    let report = client
        .segments()
        .map_err(|e| format!("segment-info failed: {e}"))?;
    let start = report.now_micros.saturating_sub(window);
    let end = u64::MAX;

    if let Some(phi) = quant {
        let phi: f64 = phi.parse().map_err(|e| format!("bad --quantile: {e}"))?;
        let answer = client
            .range_quantile(start, end, phi)
            .map_err(|e| format!("range-quantile failed: {e}"))?;
        match answer.value {
            Some(v) => println!("{v}"),
            None => return Err("no data in the queried window".into()),
        }
        eprintln!(
            "window [{start}, now] covered by {} segment(s){}, weight {}",
            answer.meta.segments_merged,
            if answer.meta.open_included {
                " + open"
            } else {
                ""
            },
            answer.meta.covered_weight
        );
        return Ok(());
    }
    if let Some(phi) = hh {
        let phi: f64 = phi
            .parse()
            .map_err(|e| format!("bad --heavy-hitters: {e}"))?;
        let answer = client
            .range_heavy_hitters(start, end, phi)
            .map_err(|e| format!("range-heavy-hitters failed: {e}"))?;
        for (item, count) in &answer.items {
            println!("{item}\t{count}");
        }
        eprintln!(
            "window [{start}, now] covered by {} segment(s){}, weight {}",
            answer.meta.segments_merged,
            if answer.meta.open_included {
                " + open"
            } else {
                ""
            },
            answer.meta.covered_weight
        );
        return Ok(());
    }
    Err("query --addr needs one of --quantile / --heavy-hitters / --segments".into())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    if let Some(addr) = take_flag(&mut args, "--addr") {
        return cmd_query_live(args, addr);
    }
    let hh = take_flag(&mut args, "--heavy-hitters");
    let est = take_flag(&mut args, "--estimate");
    let quant = take_flag(&mut args, "--quantile");
    let rank = take_flag(&mut args, "--rank");
    let [path] = args.as_slice() else {
        return Err("query requires exactly one summary file".into());
    };
    let summary = load(path)?;

    if let Some(eps) = hh {
        let eps: f64 = eps
            .parse()
            .map_err(|e| format!("bad --heavy-hitters: {e}"))?;
        let hits: Vec<(u64, u64)> = match &summary {
            AnySummary::Mg(s) => s.heavy_hitters(eps),
            AnySummary::SpaceSaving(s) => s.heavy_hitters(eps),
            _ => {
                return Err(format!(
                    "--heavy-hitters applies to mg/space-saving, not {}",
                    summary.kind()
                ))
            }
        };
        for (item, count) in hits {
            println!("{item}\t{count}");
        }
        return Ok(());
    }
    if let Some(item) = est {
        let item: u64 = item.parse().map_err(|e| format!("bad --estimate: {e}"))?;
        let value = match &summary {
            AnySummary::Mg(s) => s.estimate(&item),
            AnySummary::SpaceSaving(s) => s.estimate(&item),
            AnySummary::CountMin(s) => s.estimate(&item),
            _ => {
                return Err(format!(
                    "--estimate applies to counter summaries, not {}",
                    summary.kind()
                ))
            }
        };
        println!("{value}");
        return Ok(());
    }
    if let Some(phi) = quant {
        let phi: f64 = phi.parse().map_err(|e| format!("bad --quantile: {e}"))?;
        let value = match &summary {
            AnySummary::HybridQuantile(s) => s.quantile(phi),
            AnySummary::BottomK(s) => s.quantile(phi),
            _ => {
                return Err(format!(
                    "--quantile applies to quantile summaries, not {}",
                    summary.kind()
                ))
            }
        };
        match value {
            Some(v) => println!("{v}"),
            None => return Err("summary is empty".into()),
        }
        return Ok(());
    }
    if let Some(x) = rank {
        let x: u64 = x.parse().map_err(|e| format!("bad --rank: {e}"))?;
        let value = match &summary {
            AnySummary::HybridQuantile(s) => s.rank(&x),
            AnySummary::BottomK(s) => s.rank(&x),
            _ => {
                return Err(format!(
                    "--rank applies to quantile summaries, not {}",
                    summary.kind()
                ))
            }
        };
        println!("{value}");
        return Ok(());
    }
    Err("query needs one of --heavy-hitters / --estimate / --quantile / --rank".into())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("info requires exactly one summary file".into());
    };
    let summary = load(path)?;
    println!("kind:           {}", summary.kind());
    println!("items absorbed: {}", summary.total_weight());
    println!("stored entries: {}", summary.size());
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    if take_switch(&mut args, "--coordinator") {
        return cmd_serve_coordinator(args);
    }
    let kind = take_flag(&mut args, "--kind").ok_or("serve requires --kind")?;
    let kind = SummaryKind::parse(&kind).ok_or_else(|| {
        format!(
            "unknown --kind '{kind}'; serve supports mg, space-saving, count-min, hybrid-quantile"
        )
    })?;
    let epsilon =
        parse_epsilon(&take_flag(&mut args, "--epsilon").ok_or("serve requires --epsilon")?)?;
    let addr = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7433".to_string());
    let mut cfg = ServiceConfig::new(kind, epsilon);
    if let Some(shards) = take_flag(&mut args, "--shards") {
        cfg = cfg.shards(shards.parse().map_err(|e| format!("bad --shards: {e}"))?);
    }
    if let Some(seed) = take_flag(&mut args, "--seed") {
        cfg = cfg.seed(seed.parse().map_err(|e| format!("bad --seed: {e}"))?);
    }
    if take_switch(&mut args, "--no-telemetry") {
        cfg = cfg.telemetry(false);
    }
    if take_switch(&mut args, "--audit") {
        cfg = cfg.audit(true);
    }
    if take_switch(&mut args, "--pin-cores") {
        cfg = cfg.pin_cores(true);
    }
    let max_inflight = take_flag(&mut args, "--max-inflight");
    let max_inflight_per_conn = take_flag(&mut args, "--max-inflight-per-conn");
    let shed_watermark = take_flag(&mut args, "--shed-watermark");
    let ingest_watermark = take_flag(&mut args, "--ingest-watermark");
    let retry_after = take_flag(&mut args, "--retry-after-micros");
    if max_inflight.is_some()
        || max_inflight_per_conn.is_some()
        || shed_watermark.is_some()
        || ingest_watermark.is_some()
        || retry_after.is_some()
    {
        let mut ocfg = OverloadConfig::default();
        if let Some(v) = &max_inflight {
            ocfg = ocfg.max_inflight(v.parse().map_err(|e| format!("bad --max-inflight: {e}"))?);
        }
        if let Some(v) = &max_inflight_per_conn {
            ocfg = ocfg.max_inflight_per_conn(
                v.parse()
                    .map_err(|e| format!("bad --max-inflight-per-conn: {e}"))?,
            );
        }
        if let Some(v) = &shed_watermark {
            ocfg = ocfg.shed_watermark(
                v.parse()
                    .map_err(|e| format!("bad --shed-watermark: {e}"))?,
            );
        }
        if let Some(v) = &ingest_watermark {
            ocfg = ocfg.ingest_watermark(
                v.parse()
                    .map_err(|e| format!("bad --ingest-watermark: {e}"))?,
            );
        }
        if let Some(v) = &retry_after {
            ocfg = ocfg.retry_after_micros(
                v.parse()
                    .map_err(|e| format!("bad --retry-after-micros: {e}"))?,
            );
        }
        cfg = cfg.overload(ocfg);
    }
    let segment_batches = take_flag(&mut args, "--segment-batches");
    let segment_secs = take_flag(&mut args, "--segment-secs");
    let coarsen_watermark = take_flag(&mut args, "--coarsen-watermark");
    if coarsen_watermark.is_some() && segment_batches.is_none() && segment_secs.is_none() {
        return Err("--coarsen-watermark requires --segment-batches or --segment-secs".into());
    }
    if segment_batches.is_some() || segment_secs.is_some() {
        let mut scfg = SegmentConfig::new();
        if let Some(segments) = &coarsen_watermark {
            scfg = scfg.coarsen_watermark(
                segments
                    .parse()
                    .map_err(|e| format!("bad --coarsen-watermark: {e}"))?,
            );
        }
        if let Some(batches) = &segment_batches {
            scfg = scfg.seal_batches(
                batches
                    .parse()
                    .map_err(|e| format!("bad --segment-batches: {e}"))?,
            );
        }
        if let Some(secs) = &segment_secs {
            let secs: u64 = secs
                .parse()
                .map_err(|e| format!("bad --segment-secs: {e}"))?;
            let micros = secs
                .checked_mul(1_000_000)
                .ok_or("--segment-secs overflows")?;
            scfg = scfg.seal_micros(micros);
        }
        cfg = cfg.segments(scfg);
    }
    let fsync = take_flag(&mut args, "--fsync");
    let checkpoint_batches = take_flag(&mut args, "--checkpoint-batches");
    match take_flag(&mut args, "--data-dir") {
        Some(dir) => {
            let mut durability = DurabilityConfig::new(dir);
            if let Some(policy) = &fsync {
                durability.fsync = FsyncPolicy::parse(policy).ok_or_else(|| {
                    format!("bad --fsync '{policy}'; use always, never or every:N")
                })?;
            }
            if let Some(batches) = &checkpoint_batches {
                durability.checkpoint_batches = batches
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-batches: {e}"))?;
            }
            cfg = cfg.durability(durability);
        }
        None if fsync.is_some() || checkpoint_batches.is_some() => {
            return Err("--fsync / --checkpoint-batches require --data-dir".into());
        }
        None => {}
    }
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }

    let engine = Engine::start(cfg).map_err(|e| format!("cannot start engine: {e}"))?;
    println!("{}", engine.affinity_status().describe());
    if let Some(r) = engine.recovery() {
        println!(
            "recovered: checkpoint seq {} ({} parts, weight {}), replayed {} WAL \
             records (weight {}) in {}us",
            r.checkpoint_seq,
            r.checkpoint_parts,
            r.preloaded_weight,
            r.replayed_records,
            r.replayed_weight,
            r.duration_micros
        );
        if r.corrupt_records + r.corrupt_checkpoints + r.duplicate_records + r.torn_bytes > 0 {
            println!(
                "recovery damage: {} corrupt WAL records, {} torn bytes, {} corrupt \
                 checkpoint parts, {} duplicates skipped",
                r.corrupt_records, r.torn_bytes, r.corrupt_checkpoints, r.duplicate_records
            );
        }
        if r.cube_segments_adopted + r.corrupt_cube_segments > 0 {
            println!(
                "segment cube: {} sealed segment(s) adopted, {} dropped",
                r.cube_segments_adopted, r.corrupt_cube_segments
            );
        }
        for note in &r.notes {
            println!("recovery note: {note}");
        }
    }
    let server =
        Server::bind(engine, addr.as_str()).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "listening on {} ({} engine, epsilon {}); close stdin to stop",
        server.local_addr(),
        kind.label(),
        epsilon
    );
    // Block until stdin closes, then shut the engine down gracefully so
    // in-flight deltas are merged and the final snapshot published.
    let mut sink = Vec::new();
    let _ = std::io::stdin().lock().read_to_end(&mut sink);
    server.stop();
    eprintln!("server stopped");
    Ok(())
}

/// `serve --coordinator --nodes host:port,...`: a federation coordinator
/// speaking the same wire protocol as a single node, routing ingest by
/// consistent hash and answering queries by scatter/gather + one-shot
/// merge.
fn cmd_serve_coordinator(mut args: Vec<String>) -> Result<(), String> {
    let nodes = take_flag(&mut args, "--nodes")
        .ok_or("serve --coordinator requires --nodes host:port,...")?;
    let nodes: Vec<String> = nodes
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let addr = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7433".to_string());
    let mut cfg = ClusterConfig::new(nodes);
    if take_switch(&mut args, "--replicas") {
        cfg = cfg.replicas(true);
    }
    if let Some(millis) = take_flag(&mut args, "--ping-interval-ms") {
        let millis: u64 = millis
            .parse()
            .map_err(|e| format!("bad --ping-interval-ms: {e}"))?;
        cfg = cfg.ping_interval((millis > 0).then(|| std::time::Duration::from_millis(millis)));
    }
    if let Some(seed) = take_flag(&mut args, "--seed") {
        cfg = cfg.seed(seed.parse().map_err(|e| format!("bad --seed: {e}"))?);
    }
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }

    let replicas = cfg.replicas;
    let backends = cfg.nodes.len();
    let coordinator =
        Coordinator::start(cfg).map_err(|e| format!("cannot start coordinator: {e}"))?;
    let server = Server::bind_service(coordinator, addr.as_str())
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "coordinating {} backend node{} on {}{}; close stdin to stop",
        backends,
        if backends == 1 { "" } else { "s" },
        server.local_addr(),
        if replicas { " (replica pairs)" } else { "" },
    );
    let mut sink = Vec::new();
    let _ = std::io::stdin().lock().read_to_end(&mut sink);
    server.stop();
    eprintln!("coordinator stopped");
    Ok(())
}

fn cmd_bench_client(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let addr = take_flag(&mut args, "--addr").ok_or("bench-client requires --addr")?;
    let items: usize = match take_flag(&mut args, "--items") {
        Some(v) => v.parse().map_err(|e| format!("bad --items: {e}"))?,
        None => 1_000_000,
    };
    let batch: usize = match take_flag(&mut args, "--batch") {
        Some(v) => v.parse().map_err(|e| format!("bad --batch: {e}"))?,
        None => 4_096,
    };
    let seed: u64 = match take_flag(&mut args, "--seed") {
        Some(v) => v.parse().map_err(|e| format!("bad --seed: {e}"))?,
        None => 42,
    };
    let zipf: f64 = match take_flag(&mut args, "--zipf") {
        Some(v) => v.parse().map_err(|e| format!("bad --zipf: {e}"))?,
        None => 1.1,
    };
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }

    let stream = StreamKind::Zipf {
        s: zipf,
        universe: 1 << 20,
    }
    .generate(items, seed);

    let mut client = mergeable_summaries::service::Client::connect(addr.as_str())
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    match client
        .call(&Request::Ping)
        .map_err(|e| format!("ping failed: {e}"))?
    {
        Response::Ok => {}
        other => return Err(format!("unexpected ping response {other:?}")),
    }

    // Warm the client's reusable request-frame buffer so the measured
    // loop reflects steady state, then stream borrowed batches: every
    // send serializes into the same scratch, no per-batch `Vec`.
    let first = stream.chunks(batch.max(1)).next().unwrap_or(&[]);
    client
        .ingest_slice(first)
        .map_err(|e| format!("ingest failed: {e}"))?;
    let mut sends = 0u64;
    let mut sent_items = 0u64;
    let allocs_before = alloc_count::current();
    let start = Instant::now();
    for chunk in stream.chunks(batch.max(1)).skip(1) {
        client
            .ingest_slice(chunk)
            .map_err(|e| format!("ingest failed: {e}"))?;
        sends += 1;
        sent_items += chunk.len() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    let allocs_per_op = (alloc_count::current() - allocs_before) as f64 / sends.max(1) as f64;
    client.flush().map_err(|e| format!("flush failed: {e}"))?;

    let m = client
        .metrics()
        .map_err(|e| format!("metrics failed: {e}"))?;
    println!(
        "sent {items} items in {secs:.3}s ({:.0} updates/sec, {allocs_per_op:.2} allocations/op)",
        sent_items as f64 / secs
    );
    println!("engine updates:   {}", m.updates);
    println!("engine batches:   {} ({} dropped)", m.batches, m.dropped);
    println!("engine merges:    {}", m.merges);
    println!("snapshot epoch:   {}", m.epoch);
    println!("snapshot weight:  {}", m.snapshot_weight);
    println!("snapshot age:     {}us", m.snapshot_age_micros);
    println!("shards lost:      {}", m.shards_lost);
    println!("frames rejected:  {}", m.frames_rejected);
    println!("server retries:   {}", m.retries);

    // Per-shard pool reuse and affinity come from the telemetry snapshot
    // (the engine exports them as labeled gauges).
    let telemetry = client
        .telemetry()
        .map_err(|e| format!("telemetry failed: {e}"))?;
    let mut shard_pcts = Vec::new();
    for (key, value) in &telemetry.gauges {
        if let Some(rest) = key.strip_prefix("pool_reuse_pct{shard=\"") {
            if let Some(shard) = rest
                .strip_suffix("\"}")
                .and_then(|s| s.parse::<usize>().ok())
            {
                shard_pcts.push((shard, *value));
            }
        }
    }
    shard_pcts.sort_unstable();
    if !shard_pcts.is_empty() {
        let line = shard_pcts
            .iter()
            .map(|(shard, pct)| format!("s{shard}:{pct}%"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("pool reuse:       {line}");
    }
    let gauge = |name: &str| {
        telemetry
            .gauges
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    };
    if let Some(enabled) = gauge("affinity_enabled") {
        let pinned = gauge("affinity_pinned_threads").unwrap_or(0);
        println!(
            "affinity:         {}",
            if enabled != 0 {
                format!("on ({pinned} threads pinned)")
            } else {
                "off".to_string()
            }
        );
    }
    Ok(())
}

fn cmd_store(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("inspect") => cmd_store_inspect(&args[1..]),
        Some(other) => Err(format!(
            "unknown store subcommand '{other}'; try: mergeable store inspect DIR [--json]"
        )),
        None => Err("usage: mergeable store inspect DIR [--json]".into()),
    }
}

fn cmd_store_inspect(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let json = take_switch(&mut args, "--json");
    let [dir] = args.as_slice() else {
        return Err("store inspect requires exactly one data directory".into());
    };
    let path = std::path::Path::new(dir);
    if !path.is_dir() {
        return Err(format!("{dir} is not a directory"));
    }
    let report = mergeable_summaries::store::inspect(path)
        .map_err(|e| format!("cannot inspect {dir}: {e}"))?;

    if json {
        println!("{}", report.to_json().to_string_pretty());
        return Ok(());
    }

    println!("== WAL segments ==");
    if report.segments.is_empty() {
        println!("(none)");
    } else {
        println!(
            "{:<28} {:>10} {:>8} {:>10} {:>10} {:>6} {:>10}",
            "file", "bytes", "records", "first_seq", "last_seq", "spans", "torn_bytes"
        );
        for s in &report.segments {
            println!(
                "{:<28} {:>10} {:>8} {:>10} {:>10} {:>6} {:>10}",
                s.file, s.bytes, s.records, s.first_seq, s.last_seq, s.corrupt_spans, s.torn_bytes
            );
        }
    }
    println!();
    println!("== checkpoint parts (newest set first) ==");
    if report.checkpoints.is_empty() {
        println!("(none)");
    } else {
        println!(
            "{:<34} {:>8} {:>5} {:>3} {:>10} {:>7}  status",
            "file", "bytes", "shard", "of", "wal_seq", "epoch"
        );
        for c in &report.checkpoints {
            println!(
                "{:<34} {:>8} {:>5} {:>3} {:>10} {:>7}  {}",
                c.file, c.bytes, c.shard, c.shards_total, c.wal_seq, c.epoch, c.status
            );
        }
    }
    println!();
    println!(
        "total records: {}   total damage: {}",
        report.total_records(),
        report.total_damage()
    );
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let prom = take_switch(&mut args, "--prom");
    let accuracy = take_switch(&mut args, "--accuracy");
    let cluster = take_switch(&mut args, "--cluster");
    if cluster {
        return cmd_metrics_cluster(args, prom);
    }
    let addr = take_flag(&mut args, "--addr").ok_or("metrics requires --addr")?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }

    let mut client = mergeable_summaries::service::Client::connect(addr.as_str())
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    if accuracy {
        let audit = client
            .accuracy()
            .map_err(|e| format!("accuracy scrape failed: {e}"))?;
        print_accuracy(&audit);
        return Ok(());
    }
    let snap = client
        .telemetry()
        .map_err(|e| format!("telemetry scrape failed: {e}"))?;

    if prom {
        print!("{}", mergeable_summaries::obs::render_prometheus(&snap));
        return Ok(());
    }
    print_registry(&snap);
    Ok(())
}

/// `metrics --cluster --nodes a,b,c`: scrape every node and merge the
/// planes client-side — `MetricsReport`s fold with the same
/// sum-the-work / max-the-gauges rule the coordinator uses, registry
/// snapshots merge counter-by-counter and histogram-bucket-wise.
fn cmd_metrics_cluster(mut args: Vec<String>, prom: bool) -> Result<(), String> {
    let nodes = take_flag(&mut args, "--nodes")
        .ok_or("metrics --cluster requires --nodes host:port,...")?;
    let nodes: Vec<String> = nodes
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if nodes.is_empty() {
        return Err("metrics --cluster requires at least one node".into());
    }
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }

    let mut merged_report: Option<mergeable_summaries::service::MetricsReport> = None;
    let mut merged_snap: Option<mergeable_summaries::obs::RegistrySnapshot> = None;
    let mut scraped = 0usize;
    for addr in &nodes {
        let mut client = match mergeable_summaries::service::Client::connect(addr.as_str()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("warning: skipping {addr}: {e}");
                continue;
            }
        };
        let report = client
            .metrics()
            .map_err(|e| format!("{addr}: metrics scrape failed: {e}"))?;
        let snap = client
            .telemetry()
            .map_err(|e| format!("{addr}: telemetry scrape failed: {e}"))?;
        match &mut merged_report {
            None => merged_report = Some(report),
            Some(acc) => acc.merge_from(&report),
        }
        merged_snap = Some(match merged_snap.take() {
            None => snap,
            Some(acc) => acc.merge(&snap),
        });
        scraped += 1;
    }
    let (report, snap) = merged_report
        .zip(merged_snap)
        .ok_or("no node could be scraped")?;

    if prom {
        print!("{}", mergeable_summaries::obs::render_prometheus(&snap));
        return Ok(());
    }
    println!("== cluster ({scraped} of {} nodes scraped) ==", nodes.len());
    println!("{:<44} {}", "updates", report.updates);
    println!("{:<44} {}", "batches", report.batches);
    println!("{:<44} {}", "dropped", report.dropped);
    println!("{:<44} {}", "merges", report.merges);
    println!("{:<44} {}", "snapshot_weight", report.snapshot_weight);
    println!("{:<44} {}", "epoch (max)", report.epoch);
    println!(
        "{:<44} {}",
        "snapshot_age_micros (max)", report.snapshot_age_micros
    );
    println!("{:<44} {}", "shards_lost", report.shards_lost);
    println!("{:<44} {}", "frames_rejected", report.frames_rejected);
    println!("{:<44} {}", "retries", report.retries);
    println!();
    print_registry(&snap);
    Ok(())
}

/// `metrics --accuracy`: the audit plane's live comparison of the
/// served summary against its deterministic ground truth.
fn print_accuracy(audit: &mergeable_summaries::service::AccuracyAudit) {
    println!("== accuracy audit ==");
    println!("{:<24} {}", "kind", audit.kind);
    println!("{:<24} {}", "epsilon", audit.epsilon);
    println!("{:<24} {}", "weight (n)", audit.weight);
    println!("{:<24} {:.1}", "envelope (eps*n)", audit.envelope);
    println!("{:<24} {}", "merges", audit.merges);
    println!("{:<24} {}", "merge tree depth", audit.depth);
    println!("{:<24} {}", "nodes", audit.nodes);
    println!("{:<24} {}", "audit weight", audit.audit_weight);
    if audit.reservoir_len > 0 {
        println!("{:<24} {}", "reservoir size", audit.reservoir_len);
    } else {
        println!("{:<24} {}", "audited keys", audit.audited_items);
    }
    println!("{:<24} {:.1}", "observed error", audit.observed_error);
    println!("{:<24} {:.1}", "sampling slack", audit.sampling_slack);
    println!(
        "{:<24} {}",
        "within bound",
        if audit.within_bound {
            "yes (observed <= envelope + slack)"
        } else {
            "NO — bound violated"
        }
    );
    if audit.audit_weight == 0 {
        println!("note: audit plane is off; start the server with --audit for observed error");
    }
}

/// `trace --addr A [--nodes ...]`: pull every process's flight-recorder
/// rings and stitch them into causally-ordered trace trees. Ordering
/// comes from the parent-span links, never from clocks — each process
/// stamps events against its own monotonic origin.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let addr = take_flag(&mut args, "--addr").ok_or("trace requires --addr")?;
    let json = take_switch(&mut args, "--json");
    let nodes: Vec<String> = take_flag(&mut args, "--nodes")
        .map(|s| {
            s.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }

    let mut sources = Vec::new();
    let mut client = mergeable_summaries::service::Client::connect(addr.as_str())
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let dump = client
        .trace_dump()
        .map_err(|e| format!("{addr}: trace dump failed: {e}"))?;
    sources.push((addr.clone(), dump));
    for node in &nodes {
        let mut client = match mergeable_summaries::service::Client::connect(node.as_str()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("warning: skipping {node}: {e}");
                continue;
            }
        };
        match client.trace_dump() {
            Ok(dump) => sources.push((node.clone(), dump)),
            Err(e) => eprintln!("warning: skipping {node}: {e}"),
        }
    }

    let spans = mergeable_summaries::service::stitch(&sources);
    if json {
        print_trace_json(&spans);
        return Ok(());
    }
    if spans.is_empty() {
        println!("(no traced spans recorded — is telemetry enabled?)");
        return Ok(());
    }
    let mut current_trace = 0u64;
    let mut trace_count = 0usize;
    for span in &spans {
        if span.trace_id != current_trace {
            current_trace = span.trace_id;
            trace_count += 1;
            println!("trace {:016x}", span.trace_id);
        }
        let extras: String = span
            .fields
            .iter()
            .filter(|(k, _)| k != "trace" && k != "span" && k != "parent")
            .map(|(k, v)| format!(" {k}={v}"))
            .collect();
        println!(
            "  {:indent$}{} [{}/{}] {}us span={:x}{}",
            "",
            span.name,
            span.source,
            span.thread,
            span.duration_micros,
            span.span_id,
            extras,
            indent = 2 * span.depth,
        );
    }
    eprintln!(
        "{} span(s) in {} trace(s) across {} process(es)",
        spans.len(),
        trace_count,
        sources.len()
    );
    Ok(())
}

fn print_trace_json(spans: &[mergeable_summaries::service::StitchedSpan]) {
    println!("[");
    for (i, span) in spans.iter().enumerate() {
        let fields: String = span
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "  {{\"trace\": \"{:016x}\", \"span\": \"{:x}\", \"parent\": \"{:x}\", \
             \"depth\": {}, \"source\": \"{}\", \"thread\": \"{}\", \"name\": \"{}\", \
             \"start_micros\": {}, \"duration_micros\": {}, \"fields\": {{{}}}}}{}",
            span.trace_id,
            span.span_id,
            span.parent_span,
            span.depth,
            span.source,
            span.thread,
            span.name,
            span.start_micros,
            span.duration_micros,
            fields,
            if i + 1 == spans.len() { "" } else { "," }
        );
    }
    println!("]");
}

fn print_registry(snap: &mergeable_summaries::obs::RegistrySnapshot) {
    if !snap.counters.is_empty() {
        println!("== counters ==");
        for (name, value) in &snap.counters {
            println!("{name:<44} {value}");
        }
    }
    if !snap.gauges.is_empty() {
        println!("== gauges ==");
        for (name, value) in &snap.gauges {
            println!("{name:<44} {value}");
        }
    }
    if !snap.histograms.is_empty() {
        println!("== histograms (microseconds) ==");
        println!(
            "{:<44} {:>10} {:>8} {:>8} {:>8} {:>10}",
            "name", "count", "p50", "p95", "p99", "max"
        );
        for (name, h) in &snap.histograms {
            println!(
                "{:<44} {:>10} {:>8} {:>8} {:>8} {:>10}",
                name,
                h.count,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max
            );
        }
    }
}

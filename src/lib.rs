//! # Mergeable summaries
//!
//! A Rust implementation of the framework and summaries of Agarwal,
//! Cormode, Huang, Phillips, Wei and Yi, *Mergeable summaries*, PODS 2012
//! (journal version: ACM TODS 38(4), 2013).
//!
//! A summarization scheme `S(D, ε)` is **mergeable** if `S(D₁, ε)` and
//! `S(D₂, ε)` can be combined into `S(D₁ ⊎ D₂, ε)` — same error parameter,
//! same size bound — under *arbitrarily many* merges in *any* order. This
//! crate re-exports the workspace's summaries behind one façade:
//!
//! | module | summary | guarantee | size |
//! |--------|---------|-----------|------|
//! | [`frequency`] | Misra-Gries, SpaceSaving | freq. error ≤ εn, deterministic | `O(1/ε)` |
//! | [`quantiles`] | known-n & hybrid randomized summaries | rank error ≤ εn w.h.p. | `O((1/ε)·polylog)` |
//! | [`range`] | ε-approximations (rectangles) | range-count error ≤ εn | `Õ(1/ε)` buffers |
//! | [`kernels`] | ε-kernels (restricted model) | width error ≤ ε·width | `O(1/√ε)` |
//! | [`sketches`] | Count-Min, Count-Sketch, AMS F₂ | probabilistic | baseline class |
//! | [`lowerror`] | extension: low-total-error merges | see crate docs | — |
//! | [`service`] | sharded concurrent aggregation engine + TCP wire protocol | inherits the summary's mergeability bound | — |
//! | [`store`] | crash-safe durability: segment WAL + checkpoint sets | recovery = checkpoint merge + tail replay, no error growth | — |
//!
//! ## Quickstart
//!
//! ```
//! use mergeable_summaries::core::{merge_all, ItemSummary, MergeTree, Summary};
//! use mergeable_summaries::frequency::MgSummary;
//!
//! // Each distributed site summarizes its own shard with ε = 0.1 …
//! let sites: Vec<MgSummary<&str>> = (0..4)
//!     .map(|site| {
//!         let mut s = MgSummary::for_epsilon(0.1);
//!         for _ in 0..=site {
//!             s.update("popular");
//!         }
//!         s.update("rare");
//!         s
//!     })
//!     .collect();
//!
//! // … and the shards merge in any tree shape with no error growth.
//! let merged = merge_all(sites, MergeTree::Balanced).unwrap();
//! assert_eq!(merged.total_weight(), 14);
//! assert!(merged.estimate(&"popular") <= 10);
//! ```

pub use ms_cluster as cluster;
pub use ms_core as core;
pub use ms_frequency as frequency;
pub use ms_kernels as kernels;
pub use ms_lowerror as lowerror;
pub use ms_netsim as netsim;
pub use ms_obs as obs;
pub use ms_quantiles as quantiles;
pub use ms_range as range;
pub use ms_service as service;
pub use ms_sketches as sketches;
pub use ms_store as store;
pub use ms_workloads as workloads;

pub use ms_core::{merge_all, ItemSummary, MergeError, MergeTree, Mergeable, Summary};
pub use ms_frequency::{ExactCounts, MgSummary, SpaceSavingSummary};
pub use ms_kernels::{EpsKernel, Frame};
pub use ms_quantiles::{BottomKSample, GkSummary, HybridQuantile, KnownNQuantile, RankSummary};
pub use ms_range::EpsApprox2d;
pub use ms_sketches::{AmsF2Sketch, CountMinSketch, CountSketch};

//! End-to-end integration: workloads → per-site summaries → merge trees →
//! oracle validation, across every summary family in the workspace.

use mergeable_summaries::core::{
    merge_all, FrequencyOracle, ItemSummary, MergeTree, Mergeable, RankOracle, Summary,
};
use mergeable_summaries::quantiles::RankSummary;
use mergeable_summaries::range::ranges::{count_in, grid_queries};
use mergeable_summaries::range::{EpsApprox2d, Halving};
use mergeable_summaries::workloads::{CloudKind, Partitioner, StreamKind, ValueDist};
use mergeable_summaries::{
    CountMinSketch, EpsKernel, Frame, HybridQuantile, KnownNQuantile, MgSummary, SpaceSavingSummary,
};

const SITES: usize = 32;

/// One scatter/summarize/merge pass for an item-stream summary.
fn scatter_merge<S, F>(items: &[u64], partitioner: Partitioner, shape: MergeTree, mk: F) -> S
where
    S: Mergeable + ItemSummary<u64>,
    F: Fn(usize) -> S,
{
    let parts = partitioner.split(items, SITES);
    let leaves: Vec<S> = parts
        .iter()
        .enumerate()
        .map(|(i, part)| {
            let mut s = mk(i);
            s.extend_from(part.iter().copied());
            s
        })
        .collect();
    merge_all(leaves, shape).expect("compatible summaries")
}

#[test]
fn mg_pipeline_full_matrix() {
    let eps = 0.02;
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 50_000,
    }
    .generate(200_000, 1);
    let oracle = FrequencyOracle::from_stream(items.iter().copied());
    for partitioner in Partitioner::canonical() {
        for shape in MergeTree::canonical() {
            let merged: MgSummary<u64> =
                scatter_merge(&items, partitioner, shape, |_| MgSummary::for_epsilon(eps));
            assert_eq!(merged.total_weight(), oracle.total());
            let bound = (eps * oracle.total() as f64).ceil() as u64;
            for (item, truth) in oracle.iter() {
                let est = merged.estimate(item);
                assert!(est <= truth);
                assert!(
                    truth - est <= bound,
                    "{}/{}: item {item} err {}",
                    partitioner.label(),
                    shape.label(),
                    truth - est
                );
            }
        }
    }
}

#[test]
fn ss_pipeline_full_matrix() {
    let eps = 0.02;
    let items = StreamKind::HotSet {
        hot: 40,
        hot_fraction: 0.7,
        universe: 100_000,
    }
    .generate(200_000, 2);
    let oracle = FrequencyOracle::from_stream(items.iter().copied());
    for partitioner in Partitioner::canonical() {
        for shape in MergeTree::canonical() {
            let merged: SpaceSavingSummary<u64> = scatter_merge(&items, partitioner, shape, |_| {
                SpaceSavingSummary::for_epsilon(eps)
            });
            let bound = (eps * oracle.total() as f64).ceil() as u64;
            for (item, truth) in oracle.iter() {
                assert!(merged.lower_bound(item) <= truth);
                assert!(merged.upper_bound(item) >= truth);
                assert!(
                    merged.upper_bound(item) - merged.lower_bound(item) <= 2 * bound,
                    "{}/{}: item {item} bracket too wide",
                    partitioner.label(),
                    shape.label()
                );
            }
        }
    }
}

#[test]
fn mg_and_ss_agree_on_heavy_hitters() {
    let eps = 0.01;
    let items = StreamKind::Zipf {
        s: 1.5,
        universe: 1 << 20,
    }
    .generate(500_000, 3);
    let oracle = FrequencyOracle::from_stream(items.iter().copied());
    let mg: MgSummary<u64> =
        scatter_merge(&items, Partitioner::RoundRobin, MergeTree::Balanced, |_| {
            MgSummary::for_epsilon(eps)
        });
    let ss: SpaceSavingSummary<u64> =
        scatter_merge(&items, Partitioner::RoundRobin, MergeTree::Balanced, |_| {
            SpaceSavingSummary::for_epsilon(eps)
        });
    let truth: Vec<u64> = oracle
        .heavy_hitters(eps)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    let from_mg: Vec<u64> = mg.heavy_hitters(eps).into_iter().map(|(i, _)| i).collect();
    let from_ss: Vec<u64> = ss.heavy_hitters(eps).into_iter().map(|(i, _)| i).collect();
    for item in &truth {
        assert!(from_mg.contains(item), "MG missed {item}");
        assert!(from_ss.contains(item), "SS missed {item}");
    }
}

#[test]
fn count_min_is_tree_shape_invariant() {
    // Linearity: any two merge orders give bit-identical estimates.
    let items = StreamKind::Uniform { universe: 10_000 }.generate(100_000, 4);
    let build = |shape: MergeTree| -> CountMinSketch<u64> {
        scatter_merge(&items, Partitioner::Contiguous, shape, |_| {
            CountMinSketch::new(512, 4, 99)
        })
    };
    let a = build(MergeTree::Chain);
    let b = build(MergeTree::Random { seed: 123 });
    for probe in (0..10_000).step_by(97) {
        assert_eq!(a.estimate(&probe), b.estimate(&probe));
    }
}

#[test]
fn quantile_pipeline_known_n_and_hybrid() {
    let eps = 0.04;
    let values = ValueDist::Exponential.generate(131_072, 5);
    let oracle = RankOracle::from_stream(values.clone());
    let parts = Partitioner::Contiguous.split(&values, SITES);

    let known: KnownNQuantile<u64> = merge_all(
        parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut q = KnownNQuantile::new(eps, values.len() as u64, i as u64);
                for &v in p {
                    q.insert(v);
                }
                q
            })
            .collect(),
        MergeTree::Balanced,
    )
    .unwrap();
    let hybrid: HybridQuantile<u64> = merge_all(
        parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut q = HybridQuantile::new(eps, 1_000 + i as u64);
                for &v in p {
                    q.insert(v);
                }
                q
            })
            .collect(),
        MergeTree::Balanced,
    )
    .unwrap();

    let n = values.len() as f64;
    for phi in [0.05, 0.25, 0.5, 0.75, 0.95] {
        let probe = *oracle.quantile(phi).unwrap();
        for (name, est) in [
            ("known-n", known.rank(&probe)),
            ("hybrid", hybrid.rank(&probe)),
        ] {
            let err = oracle.rank_error(&probe, est) as f64 / n;
            assert!(err <= eps, "{name} phi {phi}: rank error {err}");
        }
    }
    // Size contrast with exact storage.
    assert!(known.size() < values.len() / 10);
    assert!(hybrid.size() < values.len() / 10);
}

#[test]
fn geometric_pipeline_kernel_and_approx() {
    let pts = CloudKind::TwoClusters.generate(65_536, 6);
    let frame = Frame::from_points(&pts);
    let kernels: Vec<EpsKernel> = pts
        .chunks(2048)
        .map(|c| {
            let mut k = EpsKernel::new(0.03, frame);
            k.extend_from(c.iter().copied());
            k
        })
        .collect();
    let kernel = merge_all(kernels, MergeTree::TwoLevel { fan: 8 }).unwrap();
    for i in 0..360 {
        let dir = mergeable_summaries::core::unit_dir(std::f64::consts::TAU * i as f64 / 360.0);
        let truth = mergeable_summaries::core::directional_width(&pts, dir);
        let est = kernel.width(dir);
        assert!(est <= truth + 1e-9);
        assert!(truth - est <= 0.03 * truth, "dir {i}: {est} vs {truth}");
    }

    let approxes: Vec<EpsApprox2d> = pts
        .chunks(2048)
        .enumerate()
        .map(|(i, c)| {
            let mut a = EpsApprox2d::new(256, Halving::Hilbert, i as u64);
            a.extend_from(c.iter().copied());
            a
        })
        .collect();
    let approx = merge_all(approxes, MergeTree::TwoLevel { fan: 8 }).unwrap();
    for r in grid_queries(&pts, 5) {
        let exact = count_in(&pts, &r) as f64;
        let est = approx.estimate_count(&r) as f64;
        assert!(
            (est - exact).abs() <= 0.05 * pts.len() as f64,
            "rect {r:?}: est {est}, exact {exact}"
        );
    }
}

#[test]
fn weighted_and_unweighted_updates_interoperate() {
    // A site feeding weighted updates merges cleanly with sites feeding
    // raw occurrences.
    let mut weighted = MgSummary::new(9);
    weighted.update_weighted(1u64, 500);
    weighted.update_weighted(2, 300);
    let mut raw = MgSummary::new(9);
    for _ in 0..200 {
        raw.update(1u64);
    }
    let merged = weighted.merge(raw).unwrap();
    assert_eq!(merged.estimate(&1), 700);
    assert_eq!(merged.total_weight(), 1000);
}

#[test]
fn million_item_smoke_test() {
    // The full stack at realistic scale: 1M items, 64 sites, all four
    // canonical trees, deterministic result.
    let eps = 0.005;
    let items = StreamKind::Zipf {
        s: 1.07,
        universe: 1 << 24,
    }
    .generate(1 << 20, 7);
    let parts = Partitioner::ByKey.split(&items, 64);
    let leaves = || -> Vec<MgSummary<u64>> {
        parts
            .iter()
            .map(|p| {
                let mut s = MgSummary::for_epsilon(eps);
                s.extend_from(p.iter().copied());
                s
            })
            .collect()
    };
    let a = merge_all(leaves(), MergeTree::Balanced).unwrap();
    let b = merge_all(leaves(), MergeTree::Balanced).unwrap();
    // Determinism end to end.
    let mut ea: Vec<(u64, u64)> = a.iter().map(|(i, c)| (*i, c)).collect();
    let mut eb: Vec<(u64, u64)> = b.iter().map(|(i, c)| (*i, c)).collect();
    ea.sort_unstable();
    eb.sort_unstable();
    assert_eq!(ea, eb);
    assert!(a.size() <= 1.0_f64.div_euclid(eps) as usize);
}

//! Differential pinning of the batched CPU kernels (tier-1).
//!
//! The scalar kernels are the semantic source of truth; every dispatched
//! (AVX2/NEON) variant must be bit-identical to them. These tests prove
//! it end-to-end over the three pinned seeds, all four summary families,
//! and merge-order permutations, comparing wire encodings byte-for-byte.
//!
//! The suite runs in tier-1 regardless of host ISA: on a scalar-only host
//! (or under `MS_FORCE_SCALAR=1`) the dispatched path *is* the scalar
//! path and the comparisons pin the batch-vs-per-item split instead. CI
//! runs it twice — once per dispatch mode — via the kernels-smoke job.

use mergeable_summaries::core::simd::{self, Isa};
use mergeable_summaries::core::{ItemSummary, Wire};
use mergeable_summaries::service::{ServiceConfig, ShardSummary, SummaryKind};
use mergeable_summaries::sketches::CountMinSketch;
use mergeable_summaries::workloads::StreamKind;

const SEEDS: [u64; 3] = [0xF417_5EED, 0xB0B5_CAFE, 0x2026_0806];

fn stream(seed: u64, items: usize) -> Vec<u64> {
    StreamKind::Zipf {
        s: 1.2,
        universe: 10_000,
    }
    .generate(items, seed)
}

fn families() -> [SummaryKind; 4] {
    SummaryKind::all()
}

/// Build one delta per chunk with the engine's own batch path.
fn deltas(kind: SummaryKind, seed: u64, chunks: usize) -> Vec<ShardSummary> {
    let cfg = ServiceConfig::new(kind, 0.02).seed(seed);
    let items = stream(seed, chunks * 3_000);
    items
        .chunks(3_000)
        .enumerate()
        .map(|(shard, chunk)| {
            let mut s = ShardSummary::new(&cfg, shard % 4);
            s.update_batch(chunk);
            s
        })
        .collect()
}

fn encoded(s: &ShardSummary) -> Vec<u8> {
    s.encode()
}

/// Every permutation of `n` indices (n! is small here: n = 4).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for perm in permutations(n - 1) {
        for slot in 0..n {
            let mut next = perm.clone();
            next.insert(slot, n - 1);
            out.push(next);
        }
    }
    out
}

#[test]
fn count_min_batch_updates_scalar_vs_dispatched_bit_identical() {
    for &seed in &SEEDS {
        let items = stream(seed, 12_345);
        let mut scalar = CountMinSketch::<u64>::for_epsilon_delta(0.01, 0.01, seed);
        let mut dispatched = scalar.clone();
        scalar.update_batch_with(Isa::Scalar, &items);
        dispatched.update_batch_with(simd::active_isa(), &items);
        assert_eq!(
            scalar.encode(),
            dispatched.encode(),
            "seed {seed:#x}: dispatched CM update diverged from scalar"
        );
    }
}

#[test]
fn count_min_batch_updates_match_per_item_reference() {
    for &seed in &SEEDS {
        let items = stream(seed, 7_001);
        let mut per_item = CountMinSketch::<u64>::for_epsilon_delta(0.01, 0.01, seed);
        per_item.extend_from(items.iter().copied());
        let mut batched = CountMinSketch::<u64>::for_epsilon_delta(0.01, 0.01, seed);
        batched.update_batch(&items);
        assert_eq!(per_item.encode(), batched.encode(), "seed {seed:#x}");
    }
}

#[test]
fn all_families_batch_update_matches_sequential_updates() {
    for &seed in &SEEDS {
        for kind in families() {
            let cfg = ServiceConfig::new(kind, 0.02).seed(seed);
            let items = stream(seed, 5_000);
            let mut sequential = ShardSummary::new(&cfg, 0);
            for &item in &items {
                sequential.update(item);
            }
            let mut batched = ShardSummary::new(&cfg, 0);
            batched.update_batch(&items);
            assert_eq!(
                encoded(&sequential),
                encoded(&batched),
                "seed {seed:#x} kind {kind:?}: batch update diverged"
            );
        }
    }
}

#[test]
fn all_families_fused_merge_matches_sequential_folds_under_every_order() {
    for &seed in &SEEDS {
        for kind in families() {
            let parts = deltas(kind, seed, 4);
            for perm in permutations(parts.len()) {
                let cfg = ServiceConfig::new(kind, 0.02).seed(seed);
                let ordered: Vec<ShardSummary> = perm.iter().map(|&i| parts[i].clone()).collect();
                let mut sequential = ShardSummary::new(&cfg, usize::MAX);
                for d in ordered.clone() {
                    sequential.merge_in_place(d).unwrap();
                }
                let mut fused = ShardSummary::new(&cfg, usize::MAX);
                for r in fused.merge_in_place_many(ordered) {
                    r.unwrap();
                }
                assert_eq!(
                    encoded(&sequential),
                    encoded(&fused),
                    "seed {seed:#x} kind {kind:?} perm {perm:?}: fused merge diverged"
                );
            }
        }
    }
}

#[test]
fn count_min_merges_are_order_independent_bit_for_bit() {
    // Linearity (PODS'12 §5): a linear sketch's merge is cell-wise
    // addition, so every merge order — and the fused multiway kernel —
    // must land on the identical table.
    for &seed in &SEEDS {
        let parts = deltas(SummaryKind::CountMin, seed, 4);
        let cfg = ServiceConfig::new(SummaryKind::CountMin, 0.02).seed(seed);
        let mut reference: Option<Vec<u8>> = None;
        for perm in permutations(parts.len()) {
            let mut global = ShardSummary::new(&cfg, usize::MAX);
            for &i in &perm {
                global.merge_in_place(parts[i].clone()).unwrap();
            }
            let bytes = encoded(&global);
            match &reference {
                None => reference = Some(bytes),
                Some(want) => assert_eq!(
                    want, &bytes,
                    "seed {seed:#x} perm {perm:?}: merge order changed a linear sketch"
                ),
            }
        }
    }
}

#[test]
fn slice_kernels_scalar_vs_dispatched_bit_identical() {
    use mergeable_summaries::core::Rng64;
    for isa in simd::supported_isas()
        .into_iter()
        .chain([simd::active_isa()])
    {
        for &seed in &SEEDS {
            let mut rng = Rng64::new(seed);
            let vals: Vec<u64> = (0..515).map(|_| rng.next_u64()).collect();
            let src: Vec<u64> = (0..515).map(|_| rng.next_u64() >> 1).collect();

            let mut a = vals.clone();
            let mut b = vals.clone();
            simd::add_slices_scalar(&mut a, &src);
            simd::add_slices_with(isa, &mut b, &src);
            assert_eq!(a, b, "seed {seed:#x} add_slices {isa:?}");

            let srcs = [&src[..], &vals[..]];
            let mut a = vals.clone();
            let mut b = vals.clone();
            simd::add_slices_multi_scalar(&mut a, &srcs);
            simd::add_slices_multi_with(isa, &mut b, &srcs);
            assert_eq!(a, b, "seed {seed:#x} add_slices_multi {isa:?}");

            for s in [0u64, 3, u64::MAX / 2, u64::MAX] {
                let mut a = vals.clone();
                let mut b = vals.clone();
                simd::sub_clamp_scalar(&mut a, s);
                simd::sub_clamp_with(isa, &mut b, s);
                assert_eq!(a, b, "seed {seed:#x} sub_clamp s={s} {isa:?}");
                assert_eq!(
                    simd::count_gt_scalar(&vals, s),
                    simd::count_gt_with(isa, &vals, s),
                    "seed {seed:#x} count_gt s={s} {isa:?}"
                );
            }
        }
    }
}

#[test]
fn force_scalar_knob_reports_scalar() {
    // The knob is read once per process; this asserts the contract rather
    // than the toggle (CI's kernels-smoke job runs the whole suite under
    // MS_FORCE_SCALAR=1 to exercise the other mode).
    if simd::force_scalar() {
        assert_eq!(simd::active_isa(), Isa::Scalar);
    }
}

//! In-process mirror of CI's `telemetry-smoke` job: a live TCP server
//! under a 10k-item load must serve a `Telemetry` snapshot whose ingest
//! latency histograms have recorded samples, whose queue-depth gauges
//! exist per shard, and whose Prometheus rendering carries the same
//! series — with `shards_lost_total` still zero.

use std::sync::Arc;

use mergeable_summaries::obs::render_prometheus;
use mergeable_summaries::service::{Client, Engine, Server, ServiceConfig, SummaryKind};
use mergeable_summaries::workloads::StreamKind;

const SHARDS: usize = 4;
const N: usize = 10_000;
const BATCH: usize = 100;

#[test]
fn loaded_server_serves_live_telemetry() {
    let cfg = ServiceConfig::new(SummaryKind::Mg, 0.01)
        .shards(SHARDS)
        .seed(0x7E1E)
        .telemetry(true);
    let engine = Engine::start(cfg).expect("engine start");
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 16,
    }
    .generate(N, 0x7E1E);
    let mut client = Client::connect(addr).expect("connect");
    for chunk in items.chunks(BATCH) {
        client.ingest(chunk.to_vec()).expect("ingest");
    }
    client.flush().expect("flush");

    let snap = client.telemetry().expect("telemetry");
    server.stop();

    // Per-opcode server latency: every ingest request recorded.
    let ingest = snap
        .histogram("request_micros{op=\"ingest\"}")
        .expect("ingest latency histogram");
    assert_eq!(ingest.count, (N / BATCH) as u64);
    assert!(ingest.quantile(0.5) <= ingest.quantile(0.99));
    assert!(ingest.quantile(0.99) <= ingest.max);

    // Per-shard absorb histograms: the whole stream was measured.
    let absorbed: u64 = (0..SHARDS)
        .map(|s| {
            snap.histogram(&format!("ingest_batch_micros{{shard=\"{s}\"}}"))
                .expect("per-shard histogram")
                .count
        })
        .sum();
    assert_eq!(absorbed, (N / BATCH) as u64);

    // Per-shard queue-depth gauges exist and are drained after flush.
    for s in 0..SHARDS {
        assert_eq!(
            snap.gauge(&format!("queue_depth{{shard=\"{s}\"}}")),
            Some(0)
        );
    }

    // Engine counters are folded into the same snapshot.
    assert_eq!(snap.counter("updates_total"), Some(N as u64));
    assert_eq!(snap.counter("shards_lost_total"), Some(0));
    assert!(snap.counter("server_bytes_in_total").unwrap() > 0);

    // The Prometheus rendering exposes the exact series CI greps for.
    let prom = render_prometheus(&snap);
    assert!(prom.contains("shards_lost_total 0"), "{prom}");
    assert!(
        prom.contains("request_micros_count{op=\"ingest\"}"),
        "{prom}"
    );
    assert!(prom.contains("# TYPE request_micros histogram"), "{prom}");
}

/// `--no-telemetry` must kill the instruments but not the opcode: the
/// snapshot still answers, empty, and engine counters still fold in.
#[test]
fn disabled_telemetry_serves_empty_instruments() {
    let cfg = ServiceConfig::new(SummaryKind::Mg, 0.01)
        .shards(2)
        .seed(0x7E1E)
        .telemetry(false);
    let engine = Engine::start(cfg).expect("engine start");
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ingest((0..500).collect()).expect("ingest");
    client.flush().expect("flush");

    let snap = client.telemetry().expect("telemetry");
    server.stop();

    let ingest = snap
        .histogram("request_micros{op=\"ingest\"}")
        .expect("histogram still registered");
    assert_eq!(ingest.count, 0);
    assert_eq!(snap.counter("server_bytes_in_total"), Some(0));
    assert_eq!(snap.counter("updates_total"), Some(500));
}

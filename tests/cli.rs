//! End-to-end tests of the `mergeable` CLI: build summaries from data
//! files, merge the files, query the result — the full ship-summaries
//! workflow, exercised through the real binary.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mergeable"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mergeable-cli-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn write_data(path: &PathBuf, items: &[u64]) {
    let text: String = items.iter().map(|i| format!("{i}\n")).collect();
    fs::write(path, text).expect("write data");
}

fn run_ok(cmd: &mut Command) -> Output {
    let output = cmd.output().expect("spawn");
    assert!(
        output.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

#[test]
fn build_merge_query_heavy_hitters() {
    let dir = tempdir("hh");
    let data1 = dir.join("d1.txt");
    let data2 = dir.join("d2.txt");
    // Item 7 is heavy at both sites; the long tails differ.
    let mut items1: Vec<u64> = vec![7; 500];
    items1.extend(1000..1400u64);
    let mut items2: Vec<u64> = vec![7; 300];
    items2.extend(2000..2500u64);
    write_data(&data1, &items1);
    write_data(&data2, &items2);

    let s1 = dir.join("s1.json");
    let s2 = dir.join("s2.json");
    let merged = dir.join("merged.json");
    for (data, out) in [(&data1, &s1), (&data2, &s2)] {
        run_ok(bin().args([
            "build",
            "--kind",
            "mg",
            "--epsilon",
            "0.05",
            "--input",
            data.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]));
    }
    run_ok(bin().args([
        "merge",
        s1.to_str().unwrap(),
        s2.to_str().unwrap(),
        "--out",
        merged.to_str().unwrap(),
    ]));

    let output = run_ok(bin().args(["query", merged.to_str().unwrap(), "--heavy-hitters", "0.05"]));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let first = stdout.lines().next().expect("at least one heavy hitter");
    assert!(
        first.starts_with("7\t"),
        "expected item 7 first, got {first}"
    );

    // info reports the combined weight.
    let info = run_ok(bin().args(["info", merged.to_str().unwrap()]));
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.contains("mg"));
    assert!(
        text.contains(&(items1.len() + items2.len()).to_string()),
        "{text}"
    );

    fs::remove_dir_all(dir).ok();
}

#[test]
fn quantile_workflow() {
    let dir = tempdir("quant");
    let data1 = dir.join("d1.txt");
    let data2 = dir.join("d2.txt");
    write_data(&data1, &(0..5000u64).collect::<Vec<_>>());
    write_data(&data2, &(5000..10000u64).collect::<Vec<_>>());

    let s1 = dir.join("q1.json");
    let s2 = dir.join("q2.json");
    let merged = dir.join("q.json");
    for (data, out) in [(&data1, &s1), (&data2, &s2)] {
        run_ok(bin().args([
            "build",
            "--kind",
            "hybrid-quantile",
            "--epsilon",
            "0.02",
            "--seed",
            "9",
            "--input",
            data.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]));
    }
    run_ok(bin().args([
        "merge",
        s1.to_str().unwrap(),
        s2.to_str().unwrap(),
        "--out",
        merged.to_str().unwrap(),
    ]));

    let output = run_ok(bin().args(["query", merged.to_str().unwrap(), "--quantile", "0.5"]));
    let median: u64 = String::from_utf8_lossy(&output.stdout)
        .trim()
        .parse()
        .unwrap();
    assert!((4500..=5500).contains(&median), "median {median}");

    let output = run_ok(bin().args(["query", merged.to_str().unwrap(), "--rank", "2500"]));
    let rank: u64 = String::from_utf8_lossy(&output.stdout)
        .trim()
        .parse()
        .unwrap();
    assert!((2200..=2800).contains(&rank), "rank {rank}");

    fs::remove_dir_all(dir).ok();
}

#[test]
fn mixed_kind_merge_is_rejected() {
    let dir = tempdir("mixed");
    let data = dir.join("d.txt");
    write_data(&data, &(0..100u64).collect::<Vec<_>>());
    let mg = dir.join("mg.json");
    let cm = dir.join("cm.json");
    for (kind, out) in [("mg", &mg), ("count-min", &cm)] {
        run_ok(bin().args([
            "build",
            "--kind",
            kind,
            "--epsilon",
            "0.1",
            "--input",
            data.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]));
    }
    let output = bin()
        .args([
            "merge",
            mg.to_str().unwrap(),
            cm.to_str().unwrap(),
            "--out",
            dir.join("x.json").to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot merge"), "{stderr}");
    fs::remove_dir_all(dir).ok();
}

#[test]
fn bad_inputs_produce_clear_errors() {
    let dir = tempdir("bad");

    // Unknown kind.
    let out = bin()
        .args(["build", "--kind", "bogus", "--epsilon", "0.1", "--out", "x"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --kind"));

    // Epsilon out of range.
    let out = bin()
        .args(["build", "--kind", "mg", "--epsilon", "2.0", "--out", "x"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("(0, 1)"));

    // Non-numeric data.
    let data = dir.join("bad.txt");
    fs::write(&data, "12\nnot-a-number\n").unwrap();
    let out = bin()
        .args([
            "build",
            "--kind",
            "mg",
            "--epsilon",
            "0.1",
            "--input",
            data.to_str().unwrap(),
            "--out",
            dir.join("x.json").to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));

    // Querying the wrong kind.
    let data2 = dir.join("ok.txt");
    write_data(&data2, &[1, 2, 3]);
    let mg = dir.join("mg.json");
    run_ok(bin().args([
        "build",
        "--kind",
        "mg",
        "--epsilon",
        "0.1",
        "--input",
        data2.to_str().unwrap(),
        "--out",
        mg.to_str().unwrap(),
    ]));
    let out = bin()
        .args(["query", mg.to_str().unwrap(), "--quantile", "0.5"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("quantile summaries"));

    fs::remove_dir_all(dir).ok();
}

#[test]
fn space_saving_and_bottom_k_kinds() {
    let dir = tempdir("kinds");
    let data = dir.join("d.txt");
    let mut items: Vec<u64> = vec![42; 400];
    items.extend(0..400u64);
    write_data(&data, &items);

    // SpaceSaving: build, estimate the heavy item.
    let ss = dir.join("ss.json");
    run_ok(bin().args([
        "build",
        "--kind",
        "space-saving",
        "--epsilon",
        "0.05",
        "--input",
        data.to_str().unwrap(),
        "--out",
        ss.to_str().unwrap(),
    ]));
    let out = run_ok(bin().args(["query", ss.to_str().unwrap(), "--estimate", "42"]));
    let est: u64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
    assert!((400..=440).contains(&est), "estimate {est}");

    // Bottom-k sample: median of the mixed data.
    let bk = dir.join("bk.json");
    run_ok(bin().args([
        "build",
        "--kind",
        "bottom-k",
        "--epsilon",
        "0.05",
        "--seed",
        "3",
        "--input",
        data.to_str().unwrap(),
        "--out",
        bk.to_str().unwrap(),
    ]));
    let out = run_ok(bin().args(["query", bk.to_str().unwrap(), "--quantile", "0.9"]));
    let q: u64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
    assert!(q >= 150, "p90 {q}");

    fs::remove_dir_all(dir).ok();
}

#[test]
fn help_prints_usage() {
    let out = run_ok(bin().arg("--help"));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("hybrid-quantile"));
}

//! End-to-end differential harness for the segment cube's range path,
//! over the real wire protocol: a durable engine behind a TCP
//! [`Server`], driven by a [`Client`], answers seeded randomized time
//! windows that are replayed against an exact per-window oracle.
//!
//! For every window the harness independently derives the covering
//! segment set from the `SegmentInfo` index (inclusive intersection on
//! `[start_micros, end_micros]`), so coverage metadata — segment count,
//! open-segment inclusion, seq span, covered weight — is checked
//! exactly, and the merged answer's error is checked against the
//! `ε·n + 1` bound where `n` is the weight of *the queried range*, not
//! the whole stream. Windows straddling the still-open segment are
//! drawn on purpose, and each pinned seed ends with a `kill -9`-style
//! crash, a recovery, fresh ingest, and a re-query of windows spanning
//! the crash point.
//!
//! Time never passes by sleeping: the engine runs on a shared
//! [`ManualClock`] and every seal boundary is seeded.

use std::path::PathBuf;
use std::sync::Arc;

use mergeable_summaries::core::{FrequencyOracle, RankOracle, Rng64, Summary, Wire};
use mergeable_summaries::service::{
    Client, CubeClock, DurabilityConfig, Engine, ManualClock, SegmentConfig, SegmentMeta, Server,
    ServiceConfig, ShardSummary, SummaryKind,
};

const EPS: f64 = 0.05;
const BATCH: usize = 100;
const UNIVERSE: u64 = 64;
/// Randomized windows replayed per pinned seed (the ISSUE floor is 100).
const WINDOWS: usize = 120;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ms-range-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small universe keeps collisions (the hard case for the frequency
/// families) likely and gives the rank probes meaningful mass.
fn stream(rng: &mut Rng64, batches: usize) -> Vec<u64> {
    (0..batches * BATCH).map(|_| rng.below(UNIVERSE)).collect()
}

fn config(seed: u64, dir: &PathBuf, clock: &Arc<ManualClock>) -> ServiceConfig {
    ServiceConfig::new(SummaryKind::Mg, EPS)
        .shards(2)
        .delta_updates(64)
        .seed(seed)
        .durability(DurabilityConfig::new(dir))
        .segments(
            SegmentConfig::new()
                .seal_batches(8)
                .seal_micros(5_000)
                .clock(Arc::clone(clock) as Arc<dyn CubeClock>),
        )
}

/// Ingest `batches` over the wire with seeded clock steps, recording the
/// cube time at which each batch seq landed. The occasional jump past
/// `seal_micros` forces wall-clock seals between the batch-count ones.
fn ingest(
    client: &mut Client,
    clock: &Arc<ManualClock>,
    rng: &mut Rng64,
    items: &[u64],
    batch_time: &mut Vec<u64>,
) {
    for batch in items.chunks(BATCH) {
        let step = if rng.below(10) == 0 {
            6_000
        } else {
            rng.below(1_500)
        };
        batch_time.push(clock.advance(step));
        client.ingest(batch.to_vec()).unwrap();
    }
}

/// The covering segment set a correct engine must merge for
/// `[ws, we]`: every indexed segment whose time span intersects the
/// window (inclusive on both ends), open segment included.
fn covering(index: &[SegmentMeta], ws: u64, we: u64) -> Vec<SegmentMeta> {
    index
        .iter()
        .filter(|s| s.batches > 0 && s.start_micros <= we && s.end_micros >= ws)
        .cloned()
        .collect()
}

/// Check one window against the exact oracle: coverage metadata first
/// (derived independently from the segment index), then the merged
/// answer's error on the covered span. Returns the covered weight so
/// callers can count non-empty windows.
fn check_window(
    client: &mut Client,
    index: &[SegmentMeta],
    items: &[u64],
    ws: u64,
    we: u64,
    phi: f64,
) -> u64 {
    let cover = covering(index, ws, we);
    let q = client.range_quantile(ws, we, phi).unwrap();
    let hh = client.range_heavy_hitters(ws, we, phi).unwrap();

    for (label, answer) in [("quantile", &q), ("heavy-hitters", &hh)] {
        let meta = &answer.meta;
        assert_eq!(meta.start_micros, ws, "{label}: window start echoed");
        assert_eq!(meta.end_micros, we, "{label}: window end echoed");
        assert_eq!(
            meta.segments_merged,
            cover.len() as u32,
            "{label} [{ws},{we}]: merged segment count vs index covering set"
        );
        assert_eq!(
            meta.open_included,
            cover.iter().any(|s| !s.sealed),
            "{label} [{ws},{we}]: open-segment inclusion"
        );
        if cover.is_empty() {
            assert_eq!(meta.covered_weight, 0, "{label}: empty covering weight");
            assert_eq!(meta.start_seq, 0, "{label}: empty covering start seq");
            assert_eq!(meta.end_seq, 0, "{label}: empty covering end seq");
            assert!(answer.summary.is_empty(), "{label}: no summary when empty");
            continue;
        }
        let start_seq = cover.iter().map(|s| s.start_seq).min().unwrap();
        let end_seq = cover.iter().map(|s| s.end_seq).max().unwrap();
        assert_eq!(meta.start_seq, start_seq, "{label} [{ws},{we}]: start seq");
        assert_eq!(meta.end_seq, end_seq, "{label} [{ws},{we}]: end seq");
        let span = &items[(start_seq as usize - 1) * BATCH..end_seq as usize * BATCH];
        assert_eq!(
            meta.covered_weight,
            span.len() as u64,
            "{label} [{ws},{we}]: covered weight vs exact seq span"
        );
        let merged = ShardSummary::decode(&answer.summary).unwrap();
        assert_eq!(
            merged.total_weight(),
            meta.covered_weight,
            "{label} [{ws},{we}]: merged summary weight"
        );

        let bound = EPS * meta.covered_weight as f64 + 1.0;
        match label {
            "quantile" => {
                // The merged summary's rank estimates, probed across the
                // universe, and the returned φ-quantile itself must stay
                // within ε·(covered weight) of the span's exact ranks.
                let oracle = RankOracle::from_stream(span.iter().copied());
                for i in 0..=16u64 {
                    let x = i * UNIVERSE / 16;
                    let est = merged.rank(x).expect("range quantile merges rank family");
                    let err = oracle.rank_error(&x, est);
                    assert!(
                        (err as f64) <= bound,
                        "[{ws},{we}]: rank({x}) error {err} above bound {bound:.1}"
                    );
                }
                let value = q.value.expect("non-empty window has a quantile");
                let target = (phi * span.len() as f64) as u64;
                let err = oracle.rank_error(&value, target);
                assert!(
                    (err as f64) <= bound,
                    "[{ws},{we}]: phi={phi:.2} quantile {value} rank error {err} above {bound:.1}"
                );
            }
            _ => {
                // Every reported heavy hitter is accurate, and every
                // true heavy hitter above the φ+ε threshold is reported.
                let oracle = FrequencyOracle::from_stream(span.iter().copied());
                for &(item, est) in &hh.items {
                    let truth = oracle.count(&item);
                    assert!(
                        (est.abs_diff(truth) as f64) <= bound,
                        "[{ws},{we}]: item {item} estimate {est} vs exact {truth}, bound {bound:.1}"
                    );
                }
                let threshold = (phi + EPS) * span.len() as f64 + 1.0;
                for (item, truth) in oracle.iter() {
                    if (truth as f64) >= threshold {
                        assert!(
                            hh.items.iter().any(|(i, _)| i == item),
                            "[{ws},{we}]: true heavy hitter {item} ({truth}) missing"
                        );
                    }
                }
            }
        }
    }
    q.meta.covered_weight
}

/// One seeded window: anchored at (jittered) batch landing times so
/// windows align with real segment boundaries often, with a tail of the
/// draws deliberately running past the newest data to straddle the open
/// segment (`we = u64::MAX`) or cover nothing at all.
fn draw_window(rng: &mut Rng64, batch_time: &[u64], now: u64) -> (u64, u64) {
    let anchor = batch_time[rng.below_usize(batch_time.len())];
    let ws = match rng.below(4) {
        0 => 0,
        1 => anchor,
        _ => anchor.saturating_sub(rng.below(2_000)),
    };
    let we = match rng.below(4) {
        // Open-ended: always straddles the open segment.
        0 => u64::MAX,
        // Past the newest batch but finite: open-straddling too.
        1 => now + 1 + rng.below(10_000),
        _ => ws + rng.below(now.saturating_sub(ws).max(1) + 5_000),
    };
    (ws, we.max(ws))
}

/// The full lifecycle for one pinned seed: ingest → ≥100 randomized
/// windows → crash (`Server::kill`) → recover → fresh ingest → re-query
/// windows spanning the crash point.
fn run_seed(seed: u64, tag: &str) {
    let dir = tempdir(tag);
    let clock = Arc::new(ManualClock::new(1));
    let mut rng = Rng64::new(seed);

    let k1 = 50 + rng.below_usize(30); // pre-crash batches
    let k2 = 20 + rng.below_usize(15); // post-recovery batches
    let items = stream(&mut rng, k1 + k2);
    let mut batch_time = Vec::with_capacity(k1 + k2);

    let engine = Engine::start(config(seed, &dir, &clock)).unwrap();
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    ingest(
        &mut client,
        &clock,
        &mut rng,
        &items[..k1 * BATCH],
        &mut batch_time,
    );

    // The index the windows are checked against; `now_micros` reads the
    // same clock that stamped the segments.
    let report = client.segments().unwrap();
    assert!(
        report.segments.iter().filter(|s| s.sealed).count() >= 2,
        "seeded ingest must seal several segments"
    );
    assert_eq!(
        report.segments.iter().map(|s| s.weight).sum::<u64>(),
        (k1 * BATCH) as u64,
        "index covers the whole stream"
    );

    let mut straddled = 0usize;
    let mut nonempty = 0usize;
    for _ in 0..WINDOWS {
        let (ws, we) = draw_window(&mut rng, &batch_time, report.now_micros);
        let phi = 0.05 + 0.4 * (rng.below(1_000) as f64) / 1_000.0;
        let open_hit = !covering(&report.segments, ws, we).iter().all(|s| s.sealed);
        let covered = check_window(
            &mut client,
            &report.segments,
            &items[..k1 * BATCH],
            ws,
            we,
            phi,
        );
        straddled += usize::from(open_hit);
        nonempty += usize::from(covered > 0);
    }
    assert!(
        straddled >= WINDOWS / 10,
        "only {straddled} of {WINDOWS} windows straddled the open segment"
    );
    assert!(
        nonempty >= WINDOWS / 2,
        "only {nonempty} of {WINDOWS} windows covered any data"
    );

    // Crash the node mid-flight the way `kill -9` does, then recover on
    // the same data dir and the same (monotone) clock.
    server.kill();
    drop(client);

    let engine = Engine::start(config(seed, &dir, &clock)).unwrap();
    let recovery = engine.recovery().expect("durable engine reports recovery");
    assert!(
        recovery.cube_segments_adopted > 0,
        "no sealed segment survived the crash"
    );
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Fresh post-recovery ingest: seqs continue the WAL's numbering, so
    // straddling windows now merge pre-crash and post-recovery segments.
    ingest(
        &mut client,
        &clock,
        &mut rng,
        &items[k1 * BATCH..],
        &mut batch_time,
    );
    let report = client.segments().unwrap();
    assert_eq!(
        report.segments.iter().map(|s| s.weight).sum::<u64>(),
        ((k1 + k2) * BATCH) as u64,
        "post-recovery index covers pre-crash and fresh batches"
    );

    // Re-query across the crash point: a window anchored mid-phase-1
    // reaching past the crash into phase-2 data, and the full stream.
    for &(ws, we) in &[
        (batch_time[k1 / 2], u64::MAX),
        (batch_time[k1 - 1], batch_time[k1 + k2 / 2]),
        (0, u64::MAX),
    ] {
        let covered = check_window(&mut client, &report.segments, &items, ws, we, 0.1);
        assert!(covered > 0, "crash-spanning window [{ws},{we}] was empty");
    }
    // And a fresh seeded spread over the now-two-epoch index.
    for _ in 0..WINDOWS / 4 {
        let (ws, we) = draw_window(&mut rng, &batch_time, report.now_micros);
        check_window(&mut client, &report.segments, &items, ws, we, 0.1);
    }

    drop(client);
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn range_differential_seed_f4175eed() {
    run_seed(0xF417_5EED, "f4175eed");
}

#[test]
fn range_differential_seed_b0b5cafe() {
    run_seed(0xB0B5_CAFE, "b0b5cafe");
}

#[test]
fn range_differential_seed_20260806() {
    run_seed(0x2026_0806, "20260806");
}

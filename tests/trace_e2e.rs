//! Acceptance tests for the observability plane: distributed tracing
//! stitched across a real TCP cluster, and the accuracy self-audit
//! holding the paper's `ε·n` envelope on a million-item differential
//! run.
//!
//! The tracing test drives one traced query through a coordinator
//! fronting three backend nodes and requires the *same* trace id to
//! show up in every process's flight-recorder rings, with the merged
//! timeline forming a single causally ordered tree: coordinator
//! request → scatter legs → node requests. No sleeps anywhere — every
//! assertion rides on synchronous RPCs and parent-span links, never on
//! wall-clock ordering across processes.

use std::sync::Arc;

use mergeable_summaries::cluster::{ClusterConfig, Coordinator};
use mergeable_summaries::service::{
    stitch, Client, ClientOptions, Engine, Server, ServiceConfig, SummaryKind, TraceContext,
};
use mergeable_summaries::workloads::StreamKind;

/// The three pinned node seeds CI sweeps (see `trace-smoke`).
const NODE_SEEDS: [u64; 3] = [0xF417_5EED, 0xB0B5_CAFE, 0x2026_0806];
const COORD_SEED: u64 = 0x5717_C4ED;
const EPS: f64 = 0.01;

fn zipf(n: usize, seed: u64) -> Vec<u64> {
    StreamKind::Zipf {
        s: 1.2,
        universe: 1 << 18,
    }
    .generate(n, seed)
}

struct Node {
    _engine: Arc<Engine>,
    server: Server,
}

fn start_node(cfg: ServiceConfig) -> Node {
    let engine = Engine::start(cfg).expect("backend engine");
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("backend server");
    Node {
        _engine: engine,
        server,
    }
}

fn cluster_config(addrs: impl IntoIterator<Item = String>) -> ClusterConfig {
    ClusterConfig::new(addrs)
        .client_options(ClientOptions {
            connect_timeout: std::time::Duration::from_secs(2),
            read_timeout: std::time::Duration::from_secs(10),
            retries: 1,
            backoff: std::time::Duration::from_millis(5),
            ..ClientOptions::default()
        })
        .ping_interval(None)
        .thresholds(1, 1)
        .seed(COORD_SEED)
}

#[test]
fn one_query_stitches_into_a_single_cross_process_trace_tree() {
    let nodes: Vec<Node> = NODE_SEEDS
        .iter()
        .map(|&seed| {
            start_node(
                ServiceConfig::new(SummaryKind::Mg, EPS)
                    .shards(2)
                    .seed(seed)
                    .telemetry(true),
            )
        })
        .collect();
    let addrs: Vec<String> = nodes
        .iter()
        .map(|n| n.server.local_addr().to_string())
        .collect();

    let coordinator = Coordinator::start(cluster_config(addrs.clone())).expect("coordinator");
    let front = Server::bind_service(
        Arc::clone(&coordinator) as Arc<dyn mergeable_summaries::service::Service>,
        "127.0.0.1:0",
    )
    .expect("front server");
    let mut client = Client::connect(front.local_addr()).expect("front client");

    // A traced ingest: enough keys to land buckets on every node, all
    // under one caller-chosen trace id.
    let ingest_ctx = TraceContext {
        trace_id: 0x1263_E577_AB1E,
        parent_span: 0,
    };
    let items: Vec<u64> = (0..4096).collect();
    client
        .ingest_slice_traced(ingest_ctx, &items)
        .expect("traced ingest");
    client.flush().expect("cluster flush");

    // One traced query. Its trace id is caller-chosen, so the test can
    // hunt for it in every process's rings without guessing the seeded
    // root id the coordinator would otherwise mint.
    let query_ctx = TraceContext {
        trace_id: 0xDEAD_BEEF_F00D_CAFE,
        parent_span: 0,
    };
    let response = client
        .call_traced(query_ctx, &mergeable_summaries::service::Request::Summary)
        .expect("traced summary rpc");
    assert!(
        matches!(response, mergeable_summaries::service::Response::Summary(_)),
        "unexpected summary response {response:?}"
    );

    // Pull every process's flight-recorder rings over the wire: the
    // coordinator's own via the front server, each backend directly.
    let mut sources = vec![(
        "coordinator".to_string(),
        client.trace_dump().expect("coordinator dump"),
    )];
    for addr in &addrs {
        let mut node_client = Client::connect(addr.as_str()).expect("node client");
        sources.push((addr.clone(), node_client.trace_dump().expect("node dump")));
    }

    // The query's trace id must appear in every node's rings.
    for (source, report) in sources.iter().skip(1) {
        let saw_query = report.threads.iter().any(|t| {
            t.events.iter().any(|e| {
                e.fields
                    .iter()
                    .any(|(k, v)| k == "trace" && *v == query_ctx.trace_id)
            })
        });
        assert!(saw_query, "{source}: query trace id missing from rings");
    }

    // The traced ingest must have reached at least one node's engine
    // ring as an `ingest_admit` event carrying the caller's trace id.
    let admits = sources
        .iter()
        .skip(1)
        .flat_map(|(_, report)| &report.threads)
        .flat_map(|t| &t.events)
        .filter(|e| {
            e.name == "ingest_admit"
                && e.fields
                    .iter()
                    .any(|(k, v)| k == "trace" && *v == ingest_ctx.trace_id)
        })
        .count();
    assert!(admits > 0, "no node recorded the traced ingest admission");

    // Stitch all four processes into one timeline and isolate the query
    // trace: one root, three scatter legs, one request span per node.
    let spans = stitch(&sources);
    let query: Vec<_> = spans
        .iter()
        .filter(|s| s.trace_id == query_ctx.trace_id)
        .collect();
    assert!(!query.is_empty(), "stitched timeline lost the query trace");

    let roots: Vec<_> = query.iter().filter(|s| s.depth == 0).collect();
    assert_eq!(roots.len(), 1, "one traced query must form one tree");
    assert_eq!(roots[0].source, "coordinator");
    assert_eq!(roots[0].name, "request");
    assert_eq!(roots[0].parent_span, query_ctx.parent_span);

    let scatters: Vec<_> = query.iter().filter(|s| s.name == "scatter").collect();
    assert_eq!(
        scatters.len(),
        3,
        "a gather over three live nodes takes three scatter legs"
    );
    for leg in &scatters {
        assert_eq!(leg.source, "coordinator");
        assert_eq!(leg.depth, 1, "scatter legs hang off the request root");
        assert_eq!(leg.parent_span, roots[0].span_id);
    }

    let node_requests: Vec<_> = query
        .iter()
        .filter(|s| s.name == "request" && s.depth == 2)
        .collect();
    let mut seen_sources: Vec<&str> = node_requests.iter().map(|s| s.source.as_str()).collect();
    seen_sources.sort_unstable();
    seen_sources.dedup();
    let mut want: Vec<&str> = addrs.iter().map(String::as_str).collect();
    want.sort_unstable();
    assert_eq!(
        seen_sources, want,
        "every backend must contribute a request span to the query trace"
    );
    for req in &node_requests {
        assert!(
            scatters.iter().any(|leg| leg.span_id == req.parent_span),
            "node request span must parent under a coordinator scatter leg"
        );
    }

    // Causal order: in the flattened timeline every parent precedes its
    // children, and depth steps by exactly one across each link.
    let mut seen = std::collections::BTreeSet::new();
    for span in &query {
        if span.parent_span != 0 {
            assert!(
                seen.contains(&span.parent_span),
                "span {:x} appeared before its parent {:x}",
                span.span_id,
                span.parent_span
            );
            let parent = query
                .iter()
                .find(|s| s.span_id == span.parent_span)
                .expect("parent present");
            assert_eq!(span.depth, parent.depth + 1);
        }
        seen.insert(span.span_id);
    }

    front.stop();
    coordinator.shutdown();
    for node in nodes {
        node.server.stop();
    }
}

/// A million-item differential run: the audit plane's exact ground
/// truth (a deterministic 1/16 key subset) must observe point-estimate
/// error inside the paper's `ε·n` envelope, on every pinned CI seed.
#[test]
fn million_item_audit_observes_error_inside_the_envelope() {
    const N: usize = 1_000_000;
    for &seed in &NODE_SEEDS {
        let engine = Engine::start(
            ServiceConfig::new(SummaryKind::Mg, EPS)
                .shards(4)
                .seed(seed)
                .audit(true),
        )
        .expect("audited engine");
        let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("server");
        let mut client = Client::connect(server.local_addr()).expect("client");

        for chunk in zipf(N, seed).chunks(4096) {
            client.ingest_slice(chunk).expect("ingest");
        }
        client.flush().expect("flush");

        let audit = client.accuracy().expect("accuracy rpc");
        assert_eq!(audit.kind, "mg", "seed {seed:#x}");
        assert_eq!(audit.weight, N as u64, "seed {seed:#x}");
        assert_eq!(
            audit.audit_weight, N as u64,
            "seed {seed:#x}: ground truth must see every absorbed item"
        );
        assert!(audit.audited_items > 0, "seed {seed:#x}");
        let envelope = EPS * N as f64;
        assert!(
            (audit.envelope - envelope).abs() < 1e-6,
            "seed {seed:#x}: envelope {} != ε·n {envelope}",
            audit.envelope
        );
        assert!(
            audit.observed_error <= envelope,
            "seed {seed:#x}: observed {} breaks ε·n {envelope}",
            audit.observed_error
        );
        assert!(audit.within_bound, "seed {seed:#x}");
        server.stop();
    }
}

/// Same differential run through the quantile path: the reservoir's
/// rank estimates must stay inside envelope + sampling slack.
#[test]
fn million_item_quantile_audit_stays_inside_envelope_plus_slack() {
    const N: usize = 1_000_000;
    let seed = NODE_SEEDS[0];
    let engine = Engine::start(
        ServiceConfig::new(SummaryKind::HybridQuantile, EPS)
            .shards(4)
            .seed(seed)
            .audit(true),
    )
    .expect("audited engine");
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("server");
    let mut client = Client::connect(server.local_addr()).expect("client");

    for chunk in zipf(N, seed).chunks(4096) {
        client.ingest_slice(chunk).expect("ingest");
    }
    client.flush().expect("flush");

    let audit = client.accuracy().expect("accuracy rpc");
    assert_eq!(audit.kind, "hybrid-quantile");
    assert_eq!(audit.weight, N as u64);
    assert!(audit.reservoir_len > 0, "reservoir never filled");
    assert!(audit.sampling_slack > 0.0, "reservoir audits carry slack");
    assert!(
        audit.observed_error <= audit.envelope + audit.sampling_slack,
        "observed {} breaks envelope {} + slack {}",
        audit.observed_error,
        audit.envelope,
        audit.sampling_slack
    );
    assert!(audit.within_bound);
    server.stop();
}

/// The coordinator's scatter/gather audit merge: three audited nodes,
/// one wire-visible report whose lineage covers the whole stream.
#[test]
fn cluster_accuracy_report_merges_every_nodes_audit() {
    const N: usize = 300_000;
    let nodes: Vec<Node> = NODE_SEEDS
        .iter()
        .map(|&seed| {
            start_node(
                ServiceConfig::new(SummaryKind::Mg, EPS)
                    .shards(2)
                    .seed(seed)
                    .audit(true),
            )
        })
        .collect();
    let addrs: Vec<String> = nodes
        .iter()
        .map(|n| n.server.local_addr().to_string())
        .collect();

    let coordinator = Coordinator::start(cluster_config(addrs)).expect("coordinator");
    let front = Server::bind_service(
        Arc::clone(&coordinator) as Arc<dyn mergeable_summaries::service::Service>,
        "127.0.0.1:0",
    )
    .expect("front server");
    let mut client = Client::connect(front.local_addr()).expect("front client");

    for chunk in zipf(N, COORD_SEED).chunks(4096) {
        client.ingest_slice(chunk).expect("ingest");
    }
    client.flush().expect("flush");

    let audit = client.accuracy().expect("merged accuracy rpc");
    assert_eq!(audit.nodes, 3, "merged audit must cover every live node");
    assert_eq!(
        audit.weight, N as u64,
        "merged lineage must account for the whole stream"
    );
    assert_eq!(
        audit.audit_weight, N as u64,
        "every node audits its own partition"
    );
    assert!(
        audit.observed_error <= audit.envelope + audit.sampling_slack,
        "observed {} breaks merged envelope {} + slack {}",
        audit.observed_error,
        audit.envelope,
        audit.sampling_slack
    );
    assert!(audit.within_bound);

    front.stop();
    coordinator.shutdown();
    for node in nodes {
        node.server.stop();
    }
}

//! Golden corpus of damaged WAL segments.
//!
//! Each case is a deliberately damaged segment checked in under
//! `tests/corpus/wal_*.bin`, paired with the exact shape
//! [`scan_segment`] must report: which seqs survive, how many interior
//! corrupt spans were resynchronized over, how many bytes of torn tail
//! remain, and which error started the terminal damage. The corpus bytes
//! are also rebuilt programmatically and compared byte-for-byte against
//! the checked-in files, so an accidental record-format change (resized
//! trailer, shifted CRC, new tag) shows up as a corpus mismatch instead
//! of silently re-deriving the goldens from the new — possibly wrong —
//! behavior.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! REGEN=1 cargo test --test store_corpus
//! ```

use std::path::PathBuf;

use mergeable_summaries::store::{scan_segment, Store, StoreConfig, WAL_RECORD_TAG};
use ms_core::{Wire, WireError, WireFrame};

/// One durable WAL record: `(seq, payload)` framed and CRC-trailered,
/// exactly as [`Wal::append`] lays it down.
fn record(seq: u64, payload: &[u8]) -> Vec<u8> {
    WireFrame {
        tag: WAL_RECORD_TAG,
        payload: (seq, payload.to_vec()).encode(),
    }
    .to_durable_bytes()
}

/// The payload every reference record carries: 24 distinct bytes, long
/// enough that damage offsets land in payload, not header.
fn payload(seq: u64) -> Vec<u8> {
    vec![0xA0 + seq as u8; 24]
}

/// A clean four-record segment the damaged cases start from.
fn clean_segment() -> Vec<u8> {
    (1..=4u64)
        .flat_map(|seq| record(seq, &payload(seq)))
        .collect()
}

struct Case {
    /// File name under `tests/corpus/`.
    name: &'static str,
    /// The damaged segment bytes.
    bytes: Vec<u8>,
    /// Seqs of the records that must survive the scan, in file order.
    seqs: Vec<u64>,
    /// Interior damaged spans skipped via magic resynchronization.
    corrupt_spans: u64,
    /// Unrecoverable bytes at the end of the file.
    torn_bytes: u64,
    /// The error that started the terminal damage, if any.
    tail_error: Option<WireError>,
}

fn corpus() -> Vec<Case> {
    let clean = clean_segment();
    let rec_len = record(1, &payload(1)).len();
    vec![
        Case {
            name: "wal_clean.bin",
            bytes: clean.clone(),
            seqs: vec![1, 2, 3, 4],
            corrupt_spans: 0,
            torn_bytes: 0,
            tail_error: None,
        },
        // A crash mid-append: the file ends five bytes short, inside the
        // last record's trailer. The ordinary torn-write artifact — the
        // opener truncates it and replay loses exactly that record.
        Case {
            name: "wal_torn_tail.bin",
            bytes: clean[..clean.len() - 5].to_vec(),
            seqs: vec![1, 2, 3],
            corrupt_spans: 0,
            torn_bytes: rec_len as u64 - 5,
            tail_error: Some(WireError::Truncated),
        },
        // One payload bit flipped in the second record: the CRC-32 trailer
        // catches it (CRC-32 detects every single-bit error) and the
        // scanner resynchronizes on the third record's magic. The span is
        // interior damage, not a torn tail, so `tail_error` stays clear.
        Case {
            name: "wal_bitflip_interior.bin",
            bytes: {
                let mut b = clean.clone();
                b[rec_len + 21] ^= 0x08;
                b
            },
            seqs: vec![1, 3, 4],
            corrupt_spans: 1,
            torn_bytes: 0,
            tail_error: None,
        },
        // A structurally valid, correctly CRC'd frame that is not a WAL
        // record (foreign tag). It must be skipped and counted, never
        // replayed as data.
        Case {
            name: "wal_bad_tag.bin",
            bytes: {
                let mut b = record(1, &payload(1));
                b.extend(
                    WireFrame {
                        tag: WAL_RECORD_TAG + 1,
                        payload: (2u64, payload(2)).encode(),
                    }
                    .to_durable_bytes(),
                );
                b.extend(record(3, &payload(3)));
                b.extend(record(4, &payload(4)));
                b
            },
            seqs: vec![1, 3, 4],
            corrupt_spans: 1,
            torn_bytes: 0,
            tail_error: None,
        },
        // The last record's trailer claims the wrong frame length. No
        // later record exists to resync onto, so the whole record is
        // terminal damage — truncated, not trusted.
        Case {
            name: "wal_trailer_len_mismatch.bin",
            bytes: {
                let mut b = clean.clone();
                let at = b.len() - 8;
                let stored = u32::from_le_bytes(b[at..at + 4].try_into().unwrap());
                b[at..at + 4].copy_from_slice(&(stored + 1).to_le_bytes());
                b
            },
            seqs: vec![1, 2, 3],
            corrupt_spans: 0,
            torn_bytes: rec_len as u64,
            tail_error: Some(WireError::Malformed("record trailer length mismatch")),
        },
        // A seq written twice (a crash between append and ack, retried on
        // restart). The scan is mechanical and yields all four records;
        // deduplication is the recovery layer's job — pinned by
        // `duplicate_corpus_replays_each_seq_once` below.
        Case {
            name: "wal_duplicate_seq.bin",
            bytes: [1u64, 2, 2, 3]
                .iter()
                .flat_map(|&seq| record(seq, &payload(seq)))
                .collect(),
            seqs: vec![1, 2, 2, 3],
            corrupt_spans: 0,
            torn_bytes: 0,
            tail_error: None,
        },
    ]
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

#[test]
fn corpus_files_match_their_construction() {
    let dir = corpus_dir();
    if std::env::var_os("REGEN").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        for case in corpus() {
            std::fs::write(dir.join(case.name), &case.bytes).unwrap();
        }
        return;
    }
    for case in corpus() {
        let path = dir.join(case.name);
        let on_disk = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e} — run `REGEN=1 cargo test --test store_corpus`",
                path.display()
            )
        });
        assert_eq!(
            on_disk, case.bytes,
            "{}: checked-in bytes diverge from construction — if the WAL \
             record format changed intentionally, regenerate with REGEN=1",
            case.name
        );
    }
}

#[test]
fn every_corpus_entry_scans_to_its_golden_shape() {
    for case in corpus() {
        // Scan the *checked-in* bytes when present, else the built ones,
        // so the goldens really cover what is in the repository.
        let bytes = std::fs::read(corpus_dir().join(case.name)).unwrap_or(case.bytes);
        let scan = scan_segment(&bytes);
        let seqs: Vec<u64> = scan.entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, case.seqs, "{}: surviving seqs", case.name);
        assert_eq!(
            scan.corrupt_spans, case.corrupt_spans,
            "{}: corrupt spans",
            case.name
        );
        assert_eq!(
            scan.torn_bytes, case.torn_bytes,
            "{}: torn bytes",
            case.name
        );
        assert_eq!(
            scan.tail_error, case.tail_error,
            "{}: tail error",
            case.name
        );
        assert_eq!(
            scan.valid_end,
            bytes.len() as u64 - case.torn_bytes,
            "{}: valid_end is the safe truncation point",
            case.name
        );
        // Every surviving payload is byte-identical to what was written —
        // damage is detected and excised, never silently altered.
        for entry in &scan.entries {
            assert_eq!(entry.payload, payload(entry.seq), "{}: payload", case.name);
        }
    }
}

#[test]
fn duplicate_corpus_replays_each_seq_once() {
    let dir = std::env::temp_dir().join(format!("ms-store-corpus-dup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wal_dir = dir.join("wal");
    std::fs::create_dir_all(&wal_dir).unwrap();
    let case = corpus().pop().unwrap();
    assert_eq!(case.name, "wal_duplicate_seq.bin");
    let bytes = std::fs::read(corpus_dir().join(case.name)).unwrap_or(case.bytes);
    std::fs::write(wal_dir.join("wal-0000000000000001.seg"), &bytes).unwrap();

    let (_store, recovery) = Store::open(&StoreConfig::new(&dir)).unwrap();
    assert_eq!(recovery.duplicates, 1, "the repeated seq is counted");
    assert_eq!(
        recovery.tail.iter().map(|e| e.seq).collect::<Vec<_>>(),
        vec![1, 2, 3],
        "replay applies each seq exactly once"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

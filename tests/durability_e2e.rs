//! End-to-end durability: the full data-directory lifecycle across
//! engine restarts. Every test drives the public service API only —
//! `serve --data-dir` behavior, not store internals — and checks the
//! paper's invariant that a checkpointed summary merges back with no
//! error degradation: total weight is *exactly* preserved and point
//! estimates stay within `ε·n` of an exact oracle on the replayed
//! stream.

use std::path::PathBuf;

use mergeable_summaries::core::{FrequencyOracle, Summary};
use mergeable_summaries::service::{DurabilityConfig, Engine, ServiceConfig, SummaryKind};

const EPS: f64 = 0.05;
const BATCH: usize = 50;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ms-durability-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_cfg(dir: &PathBuf) -> ServiceConfig {
    ServiceConfig::new(SummaryKind::Mg, EPS)
        .shards(2)
        .delta_updates(64)
        .durability(DurabilityConfig::new(dir).segment_bytes(1024))
}

/// A deterministic stream of `batches` batches; item `i % 17` keeps a
/// few items heavy so point estimates are meaningful.
fn batches(batches: usize) -> Vec<Vec<u64>> {
    (0..batches)
        .map(|b| (0..BATCH).map(|i| ((b * BATCH + i) % 17) as u64).collect())
        .collect()
}

/// The recovered summary must answer every item within `ε·n` of the
/// exact counts of the stream it claims to hold.
fn assert_within_bound(engine: &Engine, stream: &[Vec<u64>]) {
    let flat: Vec<u64> = stream.iter().flatten().copied().collect();
    let oracle = FrequencyOracle::from_stream(flat.iter().copied());
    let snap = engine.snapshot();
    let bound = EPS * flat.len() as f64 + 1.0;
    for (item, truth) in oracle.iter() {
        let est = snap.summary.point(*item).unwrap_or(0);
        assert!(
            (est.abs_diff(truth) as f64) <= bound,
            "item {item}: estimate {est} vs exact {truth} outside eps*n bound {bound:.1}"
        );
    }
}

#[test]
fn empty_data_dir_starts_fresh() {
    let dir = tempdir("fresh");
    let engine = Engine::start(durable_cfg(&dir)).unwrap();
    let report = engine.recovery().expect("durable engine reports recovery");
    assert_eq!(report.checkpoint_seq, 0);
    assert_eq!(report.checkpoint_parts, 0);
    assert_eq!(report.replayed_records, 0);
    assert_eq!(report.corrupt_records, 0);
    assert_eq!(report.corrupt_checkpoints, 0);
    assert_eq!(engine.snapshot().summary.total_weight(), 0);

    // The fresh directory is immediately usable.
    engine.ingest(vec![7; 10]).unwrap();
    engine.flush().unwrap();
    assert_eq!(engine.snapshot().summary.total_weight(), 10);
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_shutdown_restart_recovers_from_checkpoint_alone() {
    let dir = tempdir("clean");
    let stream = batches(40);
    let engine = Engine::start(durable_cfg(&dir)).unwrap();
    for batch in &stream {
        engine.ingest(batch.clone()).unwrap();
    }
    // A clean shutdown writes a final checkpoint covering the whole WAL.
    let weight = engine.shutdown().summary.total_weight();
    assert_eq!(weight, (40 * BATCH) as u64);

    let engine = Engine::start(durable_cfg(&dir)).unwrap();
    let report = engine.recovery().unwrap();
    assert_eq!(
        report.checkpoint_seq, 40,
        "final checkpoint covers all batches"
    );
    assert_eq!(
        report.replayed_records, 0,
        "no WAL tail after a clean shutdown"
    );
    assert_eq!(report.preloaded_weight, weight);
    assert_eq!(engine.snapshot().summary.total_weight(), weight);
    assert_within_bound(&engine, &stream);
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_with_no_wal_tail_restores_exactly() {
    let dir = tempdir("ckpt-no-tail");
    let stream = batches(25);
    let engine = Engine::start(durable_cfg(&dir)).unwrap();
    for batch in &stream {
        engine.ingest(batch.clone()).unwrap();
    }
    // Checkpoint explicitly, then die without the shutdown path: the
    // checkpoint is the only durable state that matters.
    engine.checkpoint_now().unwrap();
    engine.abort();

    let engine = Engine::start(durable_cfg(&dir)).unwrap();
    let report = engine.recovery().unwrap();
    assert_eq!(report.checkpoint_seq, 25);
    assert_eq!(report.replayed_records, 0);
    assert_eq!(
        engine.snapshot().summary.total_weight(),
        (25 * BATCH) as u64
    );
    assert_within_bound(&engine, &stream);
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_with_no_checkpoint_replays_everything() {
    let dir = tempdir("wal-only");
    let stream = batches(30);
    let engine = Engine::start(durable_cfg(&dir)).unwrap();
    for batch in &stream {
        engine.ingest(batch.clone()).unwrap();
    }
    // Die before any checkpoint ever runs: the WAL alone must carry the
    // whole stream across small rotated segments.
    engine.abort();

    let engine = Engine::start(durable_cfg(&dir)).unwrap();
    let report = engine.recovery().unwrap();
    assert_eq!(report.checkpoint_seq, 0);
    assert_eq!(report.checkpoint_parts, 0);
    assert_eq!(report.replayed_records, 30);
    let segments = std::fs::read_dir(dir.join("wal")).unwrap().count();
    assert!(segments > 1, "1 KiB segments must have rotated");
    assert_eq!(
        engine.snapshot().summary.total_weight(),
        (30 * BATCH) as u64
    );
    assert_within_bound(&engine, &stream);
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_is_idempotent_across_repeated_restarts() {
    let dir = tempdir("idempotent");
    let stream = batches(20);
    let engine = Engine::start(durable_cfg(&dir)).unwrap();
    for (i, batch) in stream.iter().enumerate() {
        engine.ingest(batch.clone()).unwrap();
        if i + 1 == 12 {
            engine.checkpoint_now().unwrap();
        }
    }
    engine.abort();

    // Restart twice, aborting in between so nothing new is written: both
    // recoveries must read the same state and apply each record exactly
    // once — replay never inflates weight.
    let mut weights = Vec::new();
    for _ in 0..2 {
        let engine = Engine::start(durable_cfg(&dir)).unwrap();
        let report = engine.recovery().unwrap();
        assert_eq!(report.checkpoint_seq, 12);
        assert_eq!(report.replayed_records, 8);
        assert_eq!(report.duplicate_records, 0);
        weights.push(engine.snapshot().summary.total_weight());
        assert_within_bound(&engine, &stream);
        engine.abort();
    }
    assert_eq!(weights, vec![(20 * BATCH) as u64; 2]);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Property-based tests of the paper's invariants, driven by seeded
//! random-case generation (`ms_core::Rng64`, so every run is
//! reproducible bit-for-bit).
//!
//! Each property quantifies over streams, parameters, partitions and merge
//! orders; the invariants must hold for *every* generated instance, not in
//! expectation. Every test draws `CASES` independent instances from its
//! own seed stream.

use mergeable_summaries::core::{
    merge_all, FrequencyOracle, ItemSummary, MergeTree, Mergeable, RankOracle, Rng64, Summary,
};
use mergeable_summaries::frequency::isomorphism::check_isomorphism;
use mergeable_summaries::lowerror::{
    merge_frequent_baseline, merge_frequent_low_error, merge_space_saving_baseline,
    merge_space_saving_low_error, replay_frequent, replay_space_saving, SortedSummary,
};
use mergeable_summaries::quantiles::RankSummary;
use mergeable_summaries::workloads::ValueDist;
use mergeable_summaries::{
    BottomKSample, CountMinSketch, KnownNQuantile, MgSummary, SpaceSavingSummary,
};

const CASES: u64 = 64;

/// Small-universe streams make collisions (the hard case) likely.
fn stream(rng: &mut Rng64) -> Vec<u64> {
    let len = 1 + rng.below_usize(1_999);
    (0..len).map(|_| rng.below(64)).collect()
}

fn tree(rng: &mut Rng64) -> MergeTree {
    match rng.below(4) {
        0 => MergeTree::Chain,
        1 => MergeTree::Balanced,
        2 => MergeTree::Random {
            seed: rng.next_u64(),
        },
        _ => MergeTree::TwoLevel {
            fan: 1 + rng.below_usize(5),
        },
    }
}

/// MG invariant: `est ≤ truth` and `(truth − est)·(k+1) ≤ n − n̂`, for
/// every item, any stream, any capacity, any partition, any tree.
#[test]
fn mg_bound_holds_under_any_merge() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA100 + case);
        let items = stream(&mut rng);
        let k = 1 + rng.below_usize(19);
        let sites = 1 + rng.below_usize(7);
        let shape = tree(&mut rng);
        let oracle = FrequencyOracle::from_stream(items.iter().copied());
        let leaves: Vec<MgSummary<u64>> = items
            .chunks(items.len().div_ceil(sites).max(1))
            .map(|chunk| {
                let mut s = MgSummary::new(k);
                s.extend_from(chunk.iter().copied());
                s
            })
            .collect();
        let merged = merge_all(leaves, shape).unwrap();
        assert_eq!(merged.total_weight(), oracle.total(), "case {case}");
        assert!(merged.size() <= k, "case {case}");
        let err_num = merged.error_numerator();
        for (item, truth) in oracle.iter() {
            let est = merged.estimate(item);
            assert!(est <= truth, "case {case}: item {item}");
            assert!(
                (truth - est) * (k as u64 + 1) <= err_num,
                "case {case}: item {item}"
            );
        }
    }
}

/// SS bracket: `lower ≤ truth ≤ upper` for every item, and the radius
/// stays within ⌈n/k⌉.
#[test]
fn ss_bracket_holds_under_any_merge() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA200 + case);
        let items = stream(&mut rng);
        let k = 2 + rng.below_usize(18);
        let sites = 1 + rng.below_usize(7);
        let shape = tree(&mut rng);
        let oracle = FrequencyOracle::from_stream(items.iter().copied());
        let leaves: Vec<SpaceSavingSummary<u64>> = items
            .chunks(items.len().div_ceil(sites).max(1))
            .map(|chunk| {
                let mut s = SpaceSavingSummary::new(k);
                s.extend_from(chunk.iter().copied());
                s
            })
            .collect();
        let merged = merge_all(leaves, shape).unwrap();
        assert!(
            merged.error_bound() <= oracle.total().div_ceil(k as u64),
            "case {case}"
        );
        for (item, truth) in oracle.iter() {
            assert!(
                merged.lower_bound(item) <= truth,
                "case {case}: item {item}"
            );
            assert!(
                merged.upper_bound(item) >= truth,
                "case {case}: item {item}"
            );
        }
    }
}

/// Lemma 1 (isomorphism): MG(k) and SS(k+1) correspond on any stream.
#[test]
fn isomorphism_on_any_stream() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA300 + case);
        let items = stream(&mut rng);
        let k = 1 + rng.below_usize(15);
        let mut mg = MgSummary::new(k);
        let mut ss = SpaceSavingSummary::new(k + 1);
        for &item in &items {
            mg.update(item);
            ss.update(item);
        }
        assert!(check_isomorphism(&mg, &ss).is_ok(), "case {case}");
    }
}

/// Merging is "associative within the bound": the (n, n̂) error budget
/// of an MG merge is the same no matter the association order.
#[test]
fn mg_merge_weight_is_association_invariant() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA400 + case);
        let items = stream(&mut rng);
        let k = 1 + rng.below_usize(11);
        let third = (items.len() / 3).max(1);
        let mk = |slice: &[u64]| {
            let mut s = MgSummary::new(k);
            s.extend_from(slice.iter().copied());
            s
        };
        let (a1, b1, c1) = (
            mk(&items[..third.min(items.len())]),
            mk(&items[third.min(items.len())..(2 * third).min(items.len())]),
            mk(&items[(2 * third).min(items.len())..]),
        );
        let left = a1.merge(b1).unwrap().merge(c1).unwrap();
        let (a2, b2, c2) = (
            mk(&items[..third.min(items.len())]),
            mk(&items[third.min(items.len())..(2 * third).min(items.len())]),
            mk(&items[(2 * third).min(items.len())..]),
        );
        let right = a2.merge(b2.merge(c2).unwrap()).unwrap();
        assert_eq!(left.total_weight(), right.total_weight(), "case {case}");
        // Both satisfy the invariant; their budgets may differ, but both
        // must fit under n/(k+1).
        assert!(left.error_numerator() <= left.total_weight(), "case {case}");
        assert!(
            right.error_numerator() <= right.total_weight(),
            "case {case}"
        );
    }
}

/// Count-Min linearity: the sketch of a concatenation equals the merge
/// of the sketches, cell for cell (checked via estimates).
#[test]
fn count_min_linearity() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA500 + case);
        let a: Vec<u64> = (0..rng.below_usize(500)).map(|_| rng.below(128)).collect();
        let b: Vec<u64> = (0..rng.below_usize(500)).map(|_| rng.below(128)).collect();
        let seed = rng.next_u64();
        let mut whole = CountMinSketch::new(32, 3, seed);
        whole.extend_from(a.iter().copied().chain(b.iter().copied()));
        let mut sa = CountMinSketch::new(32, 3, seed);
        sa.extend_from(a.iter().copied());
        let mut sb = CountMinSketch::new(32, 3, seed);
        sb.extend_from(b.iter().copied());
        let merged = sa.merge(sb).unwrap();
        for probe in 0u64..128 {
            assert_eq!(
                merged.estimate(&probe),
                whole.estimate(&probe),
                "case {case}: probe {probe}"
            );
        }
    }
}

/// Count-Min never underestimates, under any merge.
#[test]
fn count_min_overestimates() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA600 + case);
        let items = stream(&mut rng);
        let seed = rng.next_u64();
        let sites = 1 + rng.below_usize(5);
        let oracle = FrequencyOracle::from_stream(items.iter().copied());
        let leaves: Vec<CountMinSketch<u64>> = items
            .chunks(items.len().div_ceil(sites).max(1))
            .map(|chunk| {
                let mut s = CountMinSketch::new(16, 2, seed);
                s.extend_from(chunk.iter().copied());
                s
            })
            .collect();
        let merged = merge_all(leaves, MergeTree::Chain).unwrap();
        for (item, truth) in oracle.iter() {
            assert!(merged.estimate(item) >= truth, "case {case}: item {item}");
        }
    }
}

/// Extension crate: the closed-form low-error merges equal a literal
/// replay of Frequent / SpaceSaving, and never exceed the baseline's
/// total error (Lemmas 4.3 and 4.6 of the extension paper).
#[test]
fn low_error_merges_exact_and_dominant() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA700 + case);
        let k = 3 + rng.below_usize(13);
        let counts_a: Vec<u64> = (0..rng.below_usize(12))
            .map(|_| 1 + rng.below(499))
            .collect();
        let counts_b: Vec<u64> = (0..rng.below_usize(12))
            .map(|_| 1 + rng.below(499))
            .collect();
        let a = SortedSummary::new(
            counts_a
                .iter()
                .take(k - 1)
                .enumerate()
                .map(|(i, &c)| (i as u64, c))
                .collect(),
        );
        let b = SortedSummary::new(
            counts_b
                .iter()
                .take(k - 1)
                .enumerate()
                .map(|(i, &c)| (100 + i as u64, c))
                .collect(),
        );
        // Frequent.
        let low = merge_frequent_low_error(&a, &b, k);
        let base = merge_frequent_baseline(&a, &b, k);
        assert_eq!(&low.summary, &replay_frequent(&a, &b, k), "case {case}");
        assert!(low.total_error <= base.total_error, "case {case}");
        // SpaceSaving (same inputs are valid: ≤ k−1 ≤ k counters).
        let low_ss = merge_space_saving_low_error(&a, &b, k);
        let base_ss = merge_space_saving_baseline(&a, &b, k);
        assert_eq!(
            &low_ss.summary,
            &replay_space_saving(&a, &b, k),
            "case {case}"
        );
        assert!(low_ss.total_error <= base_ss.total_error, "case {case}");
    }
}

/// Bottom-k sampling: merge equals the bottom-k of the union (checked
/// through the size and count bookkeeping), and rank estimates of the
/// full-retention regime are exact.
#[test]
fn bottom_k_merge_bookkeeping() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA800 + case);
        let a_len = rng.below_usize(200);
        let b_len = rng.below_usize(200);
        let k = 1 + rng.below_usize(63);
        let mut sa = BottomKSample::new(k, 1);
        for i in 0..a_len as u64 {
            sa.insert(i);
        }
        let mut sb = BottomKSample::new(k, 2);
        for i in 0..b_len as u64 {
            sb.insert(1_000 + i);
        }
        let merged = sa.merge(sb).unwrap();
        assert_eq!(merged.count(), (a_len + b_len) as u64, "case {case}");
        assert!(merged.size() <= k, "case {case}");
        assert_eq!(merged.size(), k.min(a_len + b_len), "case {case}");
    }
}

/// Known-n quantile summary: rank estimates stay within εn on uniform
/// random streams for a fixed generous ε (a smoke-level statistical
/// property kept deterministic by seeding).
#[test]
fn known_n_rank_error_bounded() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA900 + case);
        let seed = rng.below(1_000);
        let sites = 1 + rng.below_usize(5);
        let values = ValueDist::Uniform.generate(8_192, seed);
        let oracle = RankOracle::from_stream(values.clone());
        let eps = 0.1;
        let leaves: Vec<KnownNQuantile<u64>> = values
            .chunks(values.len().div_ceil(sites).max(1))
            .enumerate()
            .map(|(i, chunk)| {
                let mut q = KnownNQuantile::new(eps, values.len() as u64, seed ^ i as u64);
                for &v in chunk {
                    q.insert(v);
                }
                q
            })
            .collect();
        let merged = merge_all(leaves, MergeTree::Balanced).unwrap();
        let n = values.len() as f64;
        for phi in [0.1, 0.5, 0.9] {
            let probe = *oracle.quantile(phi).unwrap();
            let err = oracle.rank_error(&probe, merged.rank(&probe)) as f64 / n;
            assert!(err <= eps, "case {case}: phi {phi}: err {err}");
        }
    }
}

// ---------------------------------------------------------------------------
// Segment cube: partition invariants, covering-set minimality, merge-order
// invariance (PR 7). The cube is driven with a ManualClock, so every seal
// boundary — count and wall-clock alike — is seeded and instantaneous.
// ---------------------------------------------------------------------------

use mergeable_summaries::service::{
    CubeClock, ManualClock, SegmentConfig, SegmentCube, ServiceConfig, ShardSummary, SummaryKind,
};
use std::sync::Arc;

const CUBE_EPS: f64 = 0.05;

/// A seeded cube fed seeded batches under seeded clock steps, plus the
/// batches themselves (the oracle's raw material).
fn seeded_cube(rng: &mut Rng64) -> (SegmentCube, u64, Vec<Vec<u64>>) {
    let clock = Arc::new(ManualClock::new(1));
    let cfg = SegmentConfig::new()
        .seal_batches(1 + rng.below(10))
        .seal_micros(500 + rng.below(4_000))
        .clock(Arc::clone(&clock) as Arc<dyn CubeClock>);
    let seed = rng.next_u64();
    let cube = SegmentCube::new(CUBE_EPS, seed, cfg);
    let batches: Vec<Vec<u64>> = (0..5 + rng.below_usize(40))
        .map(|_| {
            (0..1 + rng.below_usize(80))
                .map(|_| rng.below(64))
                .collect()
        })
        .collect();
    for batch in &batches {
        clock.advance(rng.below(1_200));
        cube.record_with(batch, || Ok::<(), ()>(()))
            .expect("in-memory append cannot fail");
    }
    (cube, seed, batches)
}

/// The segments partition the ingested sequence: dense ids, contiguous
/// seq ranges starting at 1, monotone non-overlapping time spans, and
/// per-segment weight/batch counts that match the raw batches exactly.
/// Quantified over seal configs, batch shapes, and clock schedules.
#[test]
fn cube_segments_partition_the_stream() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xC0BE_0001 + case);
        let (cube, _, batches) = seeded_cube(&mut rng);
        let report = cube.report();
        let segs = &report.segments;
        assert!(!segs.is_empty(), "case {case}");
        // The open segment, when present, is last and unique.
        let open_count = segs.iter().filter(|s| !s.sealed).count();
        assert!(open_count <= 1, "case {case}");
        if open_count == 1 {
            assert!(!segs.last().unwrap().sealed, "case {case}");
        }
        assert_eq!(segs[0].start_seq, 1, "case {case}");
        assert_eq!(
            segs.last().unwrap().end_seq,
            batches.len() as u64,
            "case {case}"
        );
        for (i, s) in segs.iter().enumerate() {
            assert!(s.start_seq <= s.end_seq, "case {case} seg {i}");
            assert!(s.start_micros <= s.end_micros, "case {case} seg {i}");
            assert_eq!(
                s.batches,
                s.end_seq - s.start_seq + 1,
                "case {case} seg {i}"
            );
            let span: u64 = batches[(s.start_seq - 1) as usize..s.end_seq as usize]
                .iter()
                .map(|b| b.len() as u64)
                .sum();
            assert_eq!(s.weight, span, "case {case} seg {i}");
            if i > 0 {
                // Dense ids, contiguous seqs, never-overlapping times.
                assert_eq!(s.id, segs[i - 1].id + 1, "case {case} seg {i}");
                assert_eq!(s.start_seq, segs[i - 1].end_seq + 1, "case {case} seg {i}");
                assert!(
                    s.start_micros >= segs[i - 1].end_micros,
                    "case {case} seg {i}"
                );
            }
        }
    }
}

/// The covering set is minimal and exact: a query's merged segment count
/// equals a brute-force scan of the report for window-intersecting
/// segments — nothing extra merged, nothing intersecting skipped — and
/// the covered weight/seq span are exactly those segments' union.
#[test]
fn cube_covering_set_matches_brute_force() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xC0BE_0002 + case);
        let (cube, _, _) = seeded_cube(&mut rng);
        let report = cube.report();
        let horizon = report.segments.last().unwrap().end_micros + 2_000;
        for _ in 0..20 {
            let ws = rng.below(horizon);
            let we = ws + rng.below(horizon);
            let (meta, merged) = cube.query(ws, we, SummaryKind::Mg);
            let covering: Vec<_> = report
                .segments
                .iter()
                .filter(|s| s.start_micros <= we && s.end_micros >= ws)
                .collect();
            let brute_open = covering.iter().any(|s| !s.sealed);
            assert_eq!(
                meta.segments_merged,
                covering.len() as u32,
                "case {case} [{ws},{we}]"
            );
            assert_eq!(meta.open_included, brute_open, "case {case} [{ws},{we}]");
            let brute_weight: u64 = covering.iter().map(|s| s.weight).sum();
            assert_eq!(meta.covered_weight, brute_weight, "case {case} [{ws},{we}]");
            match merged {
                None => assert!(covering.is_empty(), "case {case} [{ws},{we}]"),
                Some(summary) => {
                    assert_eq!(
                        summary.total_weight(),
                        brute_weight,
                        "case {case} [{ws},{we}]"
                    );
                    let lo = covering.iter().map(|s| s.start_seq).min().unwrap();
                    let hi = covering.iter().map(|s| s.end_seq).max().unwrap();
                    assert_eq!((meta.start_seq, meta.end_seq), (lo, hi), "case {case}");
                }
            }
        }
    }
}

/// Definition 1 commutativity on the cube's per-segment summaries: the
/// segment summaries merged in *any* shuffled order answer identically
/// to the cube's own time-ordered merge. Count-Min is linear, so the
/// check is exact equality of every point estimate; total weight is
/// exact for every family.
#[test]
fn cube_merge_order_does_not_change_the_answer() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xC0BE_0003 + case);
        let (cube, seed, batches) = seeded_cube(&mut rng);
        let report = cube.report();
        let (_, reference) = cube.query(0, u64::MAX, SummaryKind::CountMin);
        let reference = reference.expect("full window always covers");
        // Rebuild each segment's Count-Min summary from the raw batches
        // (same seed, same shard 0 construction as the cube's families).
        let scfg = ServiceConfig::new(SummaryKind::CountMin, CUBE_EPS).seed(seed);
        let parts: Vec<ShardSummary> = report
            .segments
            .iter()
            .map(|s| {
                let mut part = ShardSummary::new(&scfg, 0);
                for batch in &batches[(s.start_seq - 1) as usize..s.end_seq as usize] {
                    for &v in batch {
                        part.update(v);
                    }
                }
                part
            })
            .collect();
        for _ in 0..4 {
            let mut order: Vec<usize> = (0..parts.len()).collect();
            rng.shuffle(&mut order);
            let mut acc: Option<ShardSummary> = None;
            for &i in &order {
                match &mut acc {
                    None => acc = Some(parts[i].clone()),
                    Some(a) => a.merge_in_place(parts[i].clone()).unwrap(),
                }
            }
            let acc = acc.unwrap();
            assert_eq!(acc.total_weight(), reference.total_weight(), "case {case}");
            for item in 0..64 {
                assert_eq!(
                    acc.point(item),
                    reference.point(item),
                    "case {case}: item {item} (order {order:?})"
                );
            }
        }
    }
}

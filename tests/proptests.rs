//! Property-based tests of the paper's invariants, driven by seeded
//! random-case generation (`ms_core::Rng64`, so every run is
//! reproducible bit-for-bit).
//!
//! Each property quantifies over streams, parameters, partitions and merge
//! orders; the invariants must hold for *every* generated instance, not in
//! expectation. Every test draws `CASES` independent instances from its
//! own seed stream.

use mergeable_summaries::core::{
    merge_all, FrequencyOracle, ItemSummary, MergeTree, Mergeable, RankOracle, Rng64, Summary,
};
use mergeable_summaries::frequency::isomorphism::check_isomorphism;
use mergeable_summaries::lowerror::{
    merge_frequent_baseline, merge_frequent_low_error, merge_space_saving_baseline,
    merge_space_saving_low_error, replay_frequent, replay_space_saving, SortedSummary,
};
use mergeable_summaries::quantiles::RankSummary;
use mergeable_summaries::workloads::ValueDist;
use mergeable_summaries::{
    BottomKSample, CountMinSketch, KnownNQuantile, MgSummary, SpaceSavingSummary,
};

const CASES: u64 = 64;

/// Small-universe streams make collisions (the hard case) likely.
fn stream(rng: &mut Rng64) -> Vec<u64> {
    let len = 1 + rng.below_usize(1_999);
    (0..len).map(|_| rng.below(64)).collect()
}

fn tree(rng: &mut Rng64) -> MergeTree {
    match rng.below(4) {
        0 => MergeTree::Chain,
        1 => MergeTree::Balanced,
        2 => MergeTree::Random {
            seed: rng.next_u64(),
        },
        _ => MergeTree::TwoLevel {
            fan: 1 + rng.below_usize(5),
        },
    }
}

/// MG invariant: `est ≤ truth` and `(truth − est)·(k+1) ≤ n − n̂`, for
/// every item, any stream, any capacity, any partition, any tree.
#[test]
fn mg_bound_holds_under_any_merge() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA100 + case);
        let items = stream(&mut rng);
        let k = 1 + rng.below_usize(19);
        let sites = 1 + rng.below_usize(7);
        let shape = tree(&mut rng);
        let oracle = FrequencyOracle::from_stream(items.iter().copied());
        let leaves: Vec<MgSummary<u64>> = items
            .chunks(items.len().div_ceil(sites).max(1))
            .map(|chunk| {
                let mut s = MgSummary::new(k);
                s.extend_from(chunk.iter().copied());
                s
            })
            .collect();
        let merged = merge_all(leaves, shape).unwrap();
        assert_eq!(merged.total_weight(), oracle.total(), "case {case}");
        assert!(merged.size() <= k, "case {case}");
        let err_num = merged.error_numerator();
        for (item, truth) in oracle.iter() {
            let est = merged.estimate(item);
            assert!(est <= truth, "case {case}: item {item}");
            assert!(
                (truth - est) * (k as u64 + 1) <= err_num,
                "case {case}: item {item}"
            );
        }
    }
}

/// SS bracket: `lower ≤ truth ≤ upper` for every item, and the radius
/// stays within ⌈n/k⌉.
#[test]
fn ss_bracket_holds_under_any_merge() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA200 + case);
        let items = stream(&mut rng);
        let k = 2 + rng.below_usize(18);
        let sites = 1 + rng.below_usize(7);
        let shape = tree(&mut rng);
        let oracle = FrequencyOracle::from_stream(items.iter().copied());
        let leaves: Vec<SpaceSavingSummary<u64>> = items
            .chunks(items.len().div_ceil(sites).max(1))
            .map(|chunk| {
                let mut s = SpaceSavingSummary::new(k);
                s.extend_from(chunk.iter().copied());
                s
            })
            .collect();
        let merged = merge_all(leaves, shape).unwrap();
        assert!(
            merged.error_bound() <= oracle.total().div_ceil(k as u64),
            "case {case}"
        );
        for (item, truth) in oracle.iter() {
            assert!(
                merged.lower_bound(item) <= truth,
                "case {case}: item {item}"
            );
            assert!(
                merged.upper_bound(item) >= truth,
                "case {case}: item {item}"
            );
        }
    }
}

/// Lemma 1 (isomorphism): MG(k) and SS(k+1) correspond on any stream.
#[test]
fn isomorphism_on_any_stream() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA300 + case);
        let items = stream(&mut rng);
        let k = 1 + rng.below_usize(15);
        let mut mg = MgSummary::new(k);
        let mut ss = SpaceSavingSummary::new(k + 1);
        for &item in &items {
            mg.update(item);
            ss.update(item);
        }
        assert!(check_isomorphism(&mg, &ss).is_ok(), "case {case}");
    }
}

/// Merging is "associative within the bound": the (n, n̂) error budget
/// of an MG merge is the same no matter the association order.
#[test]
fn mg_merge_weight_is_association_invariant() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA400 + case);
        let items = stream(&mut rng);
        let k = 1 + rng.below_usize(11);
        let third = (items.len() / 3).max(1);
        let mk = |slice: &[u64]| {
            let mut s = MgSummary::new(k);
            s.extend_from(slice.iter().copied());
            s
        };
        let (a1, b1, c1) = (
            mk(&items[..third.min(items.len())]),
            mk(&items[third.min(items.len())..(2 * third).min(items.len())]),
            mk(&items[(2 * third).min(items.len())..]),
        );
        let left = a1.merge(b1).unwrap().merge(c1).unwrap();
        let (a2, b2, c2) = (
            mk(&items[..third.min(items.len())]),
            mk(&items[third.min(items.len())..(2 * third).min(items.len())]),
            mk(&items[(2 * third).min(items.len())..]),
        );
        let right = a2.merge(b2.merge(c2).unwrap()).unwrap();
        assert_eq!(left.total_weight(), right.total_weight(), "case {case}");
        // Both satisfy the invariant; their budgets may differ, but both
        // must fit under n/(k+1).
        assert!(left.error_numerator() <= left.total_weight(), "case {case}");
        assert!(
            right.error_numerator() <= right.total_weight(),
            "case {case}"
        );
    }
}

/// Count-Min linearity: the sketch of a concatenation equals the merge
/// of the sketches, cell for cell (checked via estimates).
#[test]
fn count_min_linearity() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA500 + case);
        let a: Vec<u64> = (0..rng.below_usize(500)).map(|_| rng.below(128)).collect();
        let b: Vec<u64> = (0..rng.below_usize(500)).map(|_| rng.below(128)).collect();
        let seed = rng.next_u64();
        let mut whole = CountMinSketch::new(32, 3, seed);
        whole.extend_from(a.iter().copied().chain(b.iter().copied()));
        let mut sa = CountMinSketch::new(32, 3, seed);
        sa.extend_from(a.iter().copied());
        let mut sb = CountMinSketch::new(32, 3, seed);
        sb.extend_from(b.iter().copied());
        let merged = sa.merge(sb).unwrap();
        for probe in 0u64..128 {
            assert_eq!(
                merged.estimate(&probe),
                whole.estimate(&probe),
                "case {case}: probe {probe}"
            );
        }
    }
}

/// Count-Min never underestimates, under any merge.
#[test]
fn count_min_overestimates() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA600 + case);
        let items = stream(&mut rng);
        let seed = rng.next_u64();
        let sites = 1 + rng.below_usize(5);
        let oracle = FrequencyOracle::from_stream(items.iter().copied());
        let leaves: Vec<CountMinSketch<u64>> = items
            .chunks(items.len().div_ceil(sites).max(1))
            .map(|chunk| {
                let mut s = CountMinSketch::new(16, 2, seed);
                s.extend_from(chunk.iter().copied());
                s
            })
            .collect();
        let merged = merge_all(leaves, MergeTree::Chain).unwrap();
        for (item, truth) in oracle.iter() {
            assert!(merged.estimate(item) >= truth, "case {case}: item {item}");
        }
    }
}

/// Extension crate: the closed-form low-error merges equal a literal
/// replay of Frequent / SpaceSaving, and never exceed the baseline's
/// total error (Lemmas 4.3 and 4.6 of the extension paper).
#[test]
fn low_error_merges_exact_and_dominant() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA700 + case);
        let k = 3 + rng.below_usize(13);
        let counts_a: Vec<u64> = (0..rng.below_usize(12))
            .map(|_| 1 + rng.below(499))
            .collect();
        let counts_b: Vec<u64> = (0..rng.below_usize(12))
            .map(|_| 1 + rng.below(499))
            .collect();
        let a = SortedSummary::new(
            counts_a
                .iter()
                .take(k - 1)
                .enumerate()
                .map(|(i, &c)| (i as u64, c))
                .collect(),
        );
        let b = SortedSummary::new(
            counts_b
                .iter()
                .take(k - 1)
                .enumerate()
                .map(|(i, &c)| (100 + i as u64, c))
                .collect(),
        );
        // Frequent.
        let low = merge_frequent_low_error(&a, &b, k);
        let base = merge_frequent_baseline(&a, &b, k);
        assert_eq!(&low.summary, &replay_frequent(&a, &b, k), "case {case}");
        assert!(low.total_error <= base.total_error, "case {case}");
        // SpaceSaving (same inputs are valid: ≤ k−1 ≤ k counters).
        let low_ss = merge_space_saving_low_error(&a, &b, k);
        let base_ss = merge_space_saving_baseline(&a, &b, k);
        assert_eq!(
            &low_ss.summary,
            &replay_space_saving(&a, &b, k),
            "case {case}"
        );
        assert!(low_ss.total_error <= base_ss.total_error, "case {case}");
    }
}

/// Bottom-k sampling: merge equals the bottom-k of the union (checked
/// through the size and count bookkeeping), and rank estimates of the
/// full-retention regime are exact.
#[test]
fn bottom_k_merge_bookkeeping() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA800 + case);
        let a_len = rng.below_usize(200);
        let b_len = rng.below_usize(200);
        let k = 1 + rng.below_usize(63);
        let mut sa = BottomKSample::new(k, 1);
        for i in 0..a_len as u64 {
            sa.insert(i);
        }
        let mut sb = BottomKSample::new(k, 2);
        for i in 0..b_len as u64 {
            sb.insert(1_000 + i);
        }
        let merged = sa.merge(sb).unwrap();
        assert_eq!(merged.count(), (a_len + b_len) as u64, "case {case}");
        assert!(merged.size() <= k, "case {case}");
        assert_eq!(merged.size(), k.min(a_len + b_len), "case {case}");
    }
}

/// Known-n quantile summary: rank estimates stay within εn on uniform
/// random streams for a fixed generous ε (a smoke-level statistical
/// property kept deterministic by seeding).
#[test]
fn known_n_rank_error_bounded() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA900 + case);
        let seed = rng.below(1_000);
        let sites = 1 + rng.below_usize(5);
        let values = ValueDist::Uniform.generate(8_192, seed);
        let oracle = RankOracle::from_stream(values.clone());
        let eps = 0.1;
        let leaves: Vec<KnownNQuantile<u64>> = values
            .chunks(values.len().div_ceil(sites).max(1))
            .enumerate()
            .map(|(i, chunk)| {
                let mut q = KnownNQuantile::new(eps, values.len() as u64, seed ^ i as u64);
                for &v in chunk {
                    q.insert(v);
                }
                q
            })
            .collect();
        let merged = merge_all(leaves, MergeTree::Balanced).unwrap();
        let n = values.len() as f64;
        for phi in [0.1, 0.5, 0.9] {
            let probe = *oracle.quantile(phi).unwrap();
            let err = oracle.rank_error(&probe, merged.rank(&probe)) as f64 / n;
            assert!(err <= eps, "case {case}: phi {phi}: err {err}");
        }
    }
}

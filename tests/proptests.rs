//! Property-based tests of the paper's invariants, driven by proptest.
//!
//! Each property quantifies over streams, parameters, partitions and merge
//! orders; the invariants must hold for *every* generated instance, not in
//! expectation.

use proptest::collection::vec;
use proptest::prelude::*;

use mergeable_summaries::core::{
    merge_all, FrequencyOracle, ItemSummary, MergeTree, Mergeable, RankOracle, Summary,
};
use mergeable_summaries::frequency::isomorphism::check_isomorphism;
use mergeable_summaries::lowerror::{
    merge_frequent_baseline, merge_frequent_low_error, merge_space_saving_baseline,
    merge_space_saving_low_error, replay_frequent, replay_space_saving, SortedSummary,
};
use mergeable_summaries::quantiles::RankSummary;
use mergeable_summaries::{
    BottomKSample, CountMinSketch, KnownNQuantile, MgSummary, SpaceSavingSummary,
};

/// Small-universe streams make collisions (the hard case) likely.
fn stream_strategy() -> impl Strategy<Value = Vec<u64>> {
    vec(0u64..64, 1..2_000)
}

fn tree_strategy() -> impl Strategy<Value = MergeTree> {
    prop_oneof![
        Just(MergeTree::Chain),
        Just(MergeTree::Balanced),
        any::<u64>().prop_map(|seed| MergeTree::Random { seed }),
        (1usize..6).prop_map(|fan| MergeTree::TwoLevel { fan }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MG invariant: `est ≤ truth` and `(truth − est)·(k+1) ≤ n − n̂`, for
    /// every item, any stream, any capacity, any partition, any tree.
    #[test]
    fn mg_bound_holds_under_any_merge(
        items in stream_strategy(),
        k in 1usize..20,
        sites in 1usize..8,
        shape in tree_strategy(),
    ) {
        let oracle = FrequencyOracle::from_stream(items.iter().copied());
        let leaves: Vec<MgSummary<u64>> = items
            .chunks(items.len().div_ceil(sites).max(1))
            .map(|chunk| {
                let mut s = MgSummary::new(k);
                s.extend_from(chunk.iter().copied());
                s
            })
            .collect();
        let merged = merge_all(leaves, shape).unwrap();
        prop_assert_eq!(merged.total_weight(), oracle.total());
        prop_assert!(merged.size() <= k);
        let err_num = merged.error_numerator();
        for (item, truth) in oracle.iter() {
            let est = merged.estimate(item);
            prop_assert!(est <= truth);
            prop_assert!((truth - est) * (k as u64 + 1) <= err_num);
        }
    }

    /// SS bracket: `lower ≤ truth ≤ upper` for every item, and the radius
    /// stays within ⌈n/k⌉.
    #[test]
    fn ss_bracket_holds_under_any_merge(
        items in stream_strategy(),
        k in 2usize..20,
        sites in 1usize..8,
        shape in tree_strategy(),
    ) {
        let oracle = FrequencyOracle::from_stream(items.iter().copied());
        let leaves: Vec<SpaceSavingSummary<u64>> = items
            .chunks(items.len().div_ceil(sites).max(1))
            .map(|chunk| {
                let mut s = SpaceSavingSummary::new(k);
                s.extend_from(chunk.iter().copied());
                s
            })
            .collect();
        let merged = merge_all(leaves, shape).unwrap();
        prop_assert!(merged.error_bound() <= oracle.total().div_ceil(k as u64));
        for (item, truth) in oracle.iter() {
            prop_assert!(merged.lower_bound(item) <= truth);
            prop_assert!(merged.upper_bound(item) >= truth);
        }
    }

    /// Lemma 1 (isomorphism): MG(k) and SS(k+1) correspond on any stream.
    #[test]
    fn isomorphism_on_any_stream(items in stream_strategy(), k in 1usize..16) {
        let mut mg = MgSummary::new(k);
        let mut ss = SpaceSavingSummary::new(k + 1);
        for &item in &items {
            mg.update(item);
            ss.update(item);
        }
        prop_assert!(check_isomorphism(&mg, &ss).is_ok());
    }

    /// Merging is "associative within the bound": the (n, n̂) error budget
    /// of an MG merge is the same no matter the association order.
    #[test]
    fn mg_merge_weight_is_association_invariant(
        items in stream_strategy(),
        k in 1usize..12,
    ) {
        let third = (items.len() / 3).max(1);
        let mk = |slice: &[u64]| {
            let mut s = MgSummary::new(k);
            s.extend_from(slice.iter().copied());
            s
        };
        let (a1, b1, c1) = (mk(&items[..third.min(items.len())]),
                            mk(&items[third.min(items.len())..(2 * third).min(items.len())]),
                            mk(&items[(2 * third).min(items.len())..]));
        let left = a1.merge(b1).unwrap().merge(c1).unwrap();
        let (a2, b2, c2) = (mk(&items[..third.min(items.len())]),
                            mk(&items[third.min(items.len())..(2 * third).min(items.len())]),
                            mk(&items[(2 * third).min(items.len())..]));
        let right = a2.merge(b2.merge(c2).unwrap()).unwrap();
        prop_assert_eq!(left.total_weight(), right.total_weight());
        // Both satisfy the invariant; their budgets may differ, but both
        // must fit under n/(k+1).
        prop_assert!(left.error_numerator() <= left.total_weight());
        prop_assert!(right.error_numerator() <= right.total_weight());
    }

    /// Count-Min linearity: the sketch of a concatenation equals the merge
    /// of the sketches, cell for cell (checked via estimates).
    #[test]
    fn count_min_linearity(
        a in vec(0u64..128, 0..500),
        b in vec(0u64..128, 0..500),
        seed in any::<u64>(),
    ) {
        let mut whole = CountMinSketch::new(32, 3, seed);
        whole.extend_from(a.iter().copied().chain(b.iter().copied()));
        let mut sa = CountMinSketch::new(32, 3, seed);
        sa.extend_from(a.iter().copied());
        let mut sb = CountMinSketch::new(32, 3, seed);
        sb.extend_from(b.iter().copied());
        let merged = sa.merge(sb).unwrap();
        for probe in 0u64..128 {
            prop_assert_eq!(merged.estimate(&probe), whole.estimate(&probe));
        }
    }

    /// Count-Min never underestimates, under any merge.
    #[test]
    fn count_min_overestimates(
        items in stream_strategy(),
        seed in any::<u64>(),
        sites in 1usize..6,
    ) {
        let oracle = FrequencyOracle::from_stream(items.iter().copied());
        let leaves: Vec<CountMinSketch<u64>> = items
            .chunks(items.len().div_ceil(sites).max(1))
            .map(|chunk| {
                let mut s = CountMinSketch::new(16, 2, seed);
                s.extend_from(chunk.iter().copied());
                s
            })
            .collect();
        let merged = merge_all(leaves, MergeTree::Chain).unwrap();
        for (item, truth) in oracle.iter() {
            prop_assert!(merged.estimate(item) >= truth);
        }
    }

    /// Extension crate: the closed-form low-error merges equal a literal
    /// replay of Frequent / SpaceSaving, and never exceed the baseline's
    /// total error (Lemmas 4.3 and 4.6 of the extension paper).
    #[test]
    fn low_error_merges_exact_and_dominant(
        counts_a in vec(1u64..500, 0..12),
        counts_b in vec(1u64..500, 0..12),
        k in 3usize..16,
    ) {
        let a = SortedSummary::new(
            counts_a.iter().take(k - 1).enumerate().map(|(i, &c)| (i as u64, c)).collect(),
        );
        let b = SortedSummary::new(
            counts_b.iter().take(k - 1).enumerate().map(|(i, &c)| (100 + i as u64, c)).collect(),
        );
        // Frequent.
        let low = merge_frequent_low_error(&a, &b, k);
        let base = merge_frequent_baseline(&a, &b, k);
        prop_assert_eq!(&low.summary, &replay_frequent(&a, &b, k));
        prop_assert!(low.total_error <= base.total_error);
        // SpaceSaving (same inputs are valid: ≤ k−1 ≤ k counters).
        let low_ss = merge_space_saving_low_error(&a, &b, k);
        let base_ss = merge_space_saving_baseline(&a, &b, k);
        prop_assert_eq!(&low_ss.summary, &replay_space_saving(&a, &b, k));
        prop_assert!(low_ss.total_error <= base_ss.total_error);
    }

    /// Bottom-k sampling: merge equals the bottom-k of the union (checked
    /// through the size and count bookkeeping), and rank estimates of the
    /// full-retention regime are exact.
    #[test]
    fn bottom_k_merge_bookkeeping(
        a_len in 0usize..200,
        b_len in 0usize..200,
        k in 1usize..64,
    ) {
        let mut sa = BottomKSample::new(k, 1);
        for i in 0..a_len as u64 {
            sa.insert(i);
        }
        let mut sb = BottomKSample::new(k, 2);
        for i in 0..b_len as u64 {
            sb.insert(1_000 + i);
        }
        let merged = sa.merge(sb).unwrap();
        prop_assert_eq!(merged.count(), (a_len + b_len) as u64);
        prop_assert!(merged.size() <= k);
        prop_assert_eq!(merged.size(), k.min(a_len + b_len));
    }

    /// Known-n quantile summary: rank estimates stay within εn on uniform
    /// random streams for a fixed generous ε (a smoke-level statistical
    /// property kept deterministic by seeding).
    #[test]
    fn known_n_rank_error_bounded(
        seed in 0u64..1_000,
        sites in 1usize..6,
    ) {
        let values = ms_workloads::ValueDist::Uniform.generate(8_192, seed);
        let oracle = RankOracle::from_stream(values.clone());
        let eps = 0.1;
        let leaves: Vec<KnownNQuantile<u64>> = values
            .chunks(values.len().div_ceil(sites).max(1))
            .enumerate()
            .map(|(i, chunk)| {
                let mut q = KnownNQuantile::new(eps, values.len() as u64, seed ^ i as u64);
                for &v in chunk {
                    q.insert(v);
                }
                q
            })
            .collect();
        let merged = merge_all(leaves, MergeTree::Balanced).unwrap();
        let n = values.len() as f64;
        for phi in [0.1, 0.5, 0.9] {
            let probe = *oracle.quantile(phi).unwrap();
            let err = oracle.rank_error(&probe, merged.rank(&probe)) as f64 / n;
            prop_assert!(err <= eps, "phi {}: err {}", phi, err);
        }
    }
}

//! Acceptance tests for the overload control plane, end to end over real
//! TCP and with no sleeps anywhere:
//!
//! 1. A seeded 4-client ingest storm against a deliberately small server
//!    (one slow shard, two-deep queues, tight watermarks) must be shed
//!    with typed `Overloaded` answers — never a wedge, never a lost byte
//!    of *acked* weight — and the shed/admit split must be visible in
//!    the telemetry registry.
//! 2. A request arriving with its deadline budget already spent is shed
//!    before dispatch.
//! 3. A coordinator facing a dead node trips that node's circuit
//!    breaker within the retry budget, keeps answering partial gathers
//!    with an explicit `coverage` fraction, and closes the breaker via
//!    a half-open probe once the node rejoins — breaker windows driven
//!    by a manual clock, not wall time.
//! 4. Pressure-driven coarsening holds the sealed-segment count at the
//!    watermark while range queries stay within `ε·n` of exact ranks on
//!    the admitted stream (PODS'12 Definition 1: merging summaries —
//!    here adjacent segments — does not degrade the bound).

use std::sync::Arc;
use std::time::Duration;

use mergeable_summaries::cluster::{BreakerConfig, BreakerState, ClusterConfig, Coordinator};
use mergeable_summaries::core::{RankOracle, ServiceError, Summary};
use mergeable_summaries::service::{
    plan_fn, Client, ClientOptions, Engine, FaultAction, ManualClock, OverloadConfig, Request,
    Response, SegmentConfig, Server, ServiceConfig, SummaryKind, TraceContext,
};
use mergeable_summaries::workloads::StreamKind;

const EPS: f64 = 0.02;
const SEED: u64 = 0x0E2E_10AD;

fn stream(n: usize) -> Vec<u64> {
    StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 14,
    }
    .generate(n, SEED)
}

fn fast_options() -> ClientOptions {
    ClientOptions {
        connect_timeout: Duration::from_secs(5),
        read_timeout: Duration::from_secs(5),
        retries: 1,
        backoff: Duration::from_millis(5),
        ..ClientOptions::default()
    }
}

/// Storm scenario: four concurrent flooders against a server whose
/// capacity is roughly a quarter of the offered load. Every request is
/// either acked or answered with a typed shed; afterwards a fresh client
/// is served immediately and the snapshot holds exactly the acked weight.
#[test]
fn storm_is_shed_typed_never_wedges_and_loses_no_acked_weight() {
    let cfg = ServiceConfig::new(SummaryKind::Mg, EPS)
        .shards(1)
        .queue_depth(2)
        .delta_updates(256)
        .seed(SEED)
        .overload(
            OverloadConfig::default()
                .max_inflight(8)
                .shed_watermark(0.5)
                .ingest_watermark(0.5)
                .retry_after_micros(5_000),
        )
        // A quarter of all batches stall 1ms inside the single shard, so
        // the two-deep queue saturates under concurrent load.
        .fault_plan(plan_fn(|_, idx| {
            if idx % 4 == 0 {
                FaultAction::StallMs(1)
            } else {
                FaultAction::Continue
            }
        }));
    let engine = Engine::start(cfg).expect("engine");
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("server");
    let addr = server.local_addr();

    let items = stream(16_000);
    let workers: Vec<_> = items
        .chunks(items.len() / 4)
        .map(|slice| {
            let slice = slice.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect_with(
                    addr,
                    ClientOptions {
                        deadline: Some(Duration::from_secs(2)),
                        ..fast_options()
                    },
                )
                .expect("flood client");
                let mut acked = 0u64;
                let mut sheds = 0u64;
                for batch in slice.chunks(100) {
                    match client.ingest(batch.to_vec()) {
                        Ok(()) => acked += batch.len() as u64,
                        Err(ServiceError::Overloaded { retry_after_micros }) => {
                            assert!(retry_after_micros > 0, "shed must carry a retry hint");
                            sheds += 1;
                        }
                        Err(other) => panic!("storm must shed typed, got {other}"),
                    }
                }
                (acked, sheds)
            })
        })
        .collect();
    let mut acked = 0u64;
    let mut client_sheds = 0u64;
    for worker in workers {
        let (a, s) = worker.join().expect("flood thread");
        acked += a;
        client_sheds += s;
    }

    // Shed-not-wedged: a *fresh* client connects and is served right
    // away — flush is control-plane and doubles as the drain barrier.
    let mut after = Client::connect_with(addr, fast_options()).expect("post-storm client");
    after.flush().expect("post-storm flush");
    assert!(client_sheds > 0, "the storm never overloaded the server");
    assert!(acked > 0, "the storm shed everything");

    let admission = engine.admission();
    assert!(admission.sheds() >= client_sheds, "every shed is counted");
    assert_eq!(admission.inflight(), 0, "no in-flight slot leaked");

    // The shed/admit split is observable: registry counters carry it.
    let telemetry = after.telemetry().expect("telemetry rpc");
    let counter = |name: &str| {
        telemetry
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("counter {name} missing from registry"))
    };
    assert!(counter("admission_admitted_total") > 0);
    assert!(counter("admission_shed_total{class=\"ingest\"}") > 0);

    // No acked loss: the snapshot holds exactly the admitted weight.
    server.stop();
    let snap = engine.snapshot();
    assert_eq!(
        snap.summary.total_weight(),
        acked,
        "shedding must not lose acked data"
    );
}

/// A request whose deadline budget is already spent must be refused
/// before it queues — and counted as a deadline shed.
#[test]
fn spent_deadline_is_shed_before_dispatch() {
    let engine = Engine::start(ServiceConfig::new(SummaryKind::SpaceSaving, EPS).seed(SEED))
        .expect("engine");
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("server");
    let mut client = Client::connect_with(server.local_addr(), fast_options()).expect("client");
    let ctx = TraceContext {
        trace_id: 0x51,
        parent_span: 0,
    };

    // A generous budget flows through untouched.
    let ok = client
        .call_with_deadline(ctx, 5_000_000, &Request::Ping)
        .expect("ping under budget");
    assert_eq!(ok, Response::Ok);

    // A spent budget is shed before dispatch, typed.
    let shed = client
        .call_with_deadline(ctx, 0, &Request::Quantile(0.5))
        .expect("transport ok; shed is in-band");
    let Response::Overloaded { .. } = shed else {
        panic!("spent deadline must shed, got {shed:?}");
    };
    assert!(engine.admission().sheds() >= 1, "deadline shed not counted");
    server.stop();
}

fn backend(kind: SummaryKind) -> (Arc<Engine>, Server) {
    let engine = Engine::start(ServiceConfig::new(kind, EPS).shards(2).seed(SEED)).expect("engine");
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("server");
    (engine, server)
}

/// Breaker lifecycle against a *slow* node — a listener that accepts
/// (via the kernel backlog) but never answers, so every request times
/// out. Closed → open on consecutive timeouts (the retry drawn from the
/// budget), partial gathers with explicit coverage while open, a failed
/// half-open probe re-trips, and an operator rejoin resets. The open
/// window runs on a manual clock; the only real time spent is the
/// client's read timeout on the dark socket — there is no sleep
/// anywhere.
#[test]
fn breaker_opens_on_slow_node_and_partial_gathers_report_coverage() {
    let clock = Arc::new(ManualClock::new(0));
    let nodes: Vec<_> = (0..2).map(|_| backend(SummaryKind::Mg)).collect();
    // Node 2 is dark: connects land in the accept backlog, reads hang.
    let dark = std::net::TcpListener::bind("127.0.0.1:0").expect("dark listener");
    let mut addrs: Vec<String> = nodes
        .iter()
        .map(|(_, s)| s.local_addr().to_string())
        .collect();
    addrs.push(dark.local_addr().expect("dark addr").to_string());
    let coordinator = Coordinator::start(
        ClusterConfig::new(addrs)
            .client_options(ClientOptions {
                connect_timeout: Duration::from_secs(2),
                read_timeout: Duration::from_millis(150),
                retries: 0,
                backoff: Duration::from_millis(1),
                ..ClientOptions::default()
            })
            .ping_interval(None)
            // Keep membership out of the picture: timeouts only count
            // toward suspect/dead via these thresholds, set far above
            // anything this test generates, so every fail-fast below is
            // the breaker's decision, not the ring's.
            .thresholds(100, 200)
            .breaker(BreakerConfig {
                failure_threshold: 2,
                open_micros: 1_000_000,
                half_open_successes: 1,
            })
            .retry_budget(10, 1_000)
            .clock(Arc::clone(&clock) as Arc<dyn mergeable_summaries::service::CubeClock>),
    )
    .expect("coordinator");

    // First gather: the dark leg times out, the budget grants one retry,
    // it times out too — `failure_threshold` consecutive failures, the
    // breaker trips. The survivors still answer: partial gather with an
    // explicit coverage fraction, not an error.
    let report = coordinator.gather().expect("partial gather");
    assert_eq!(report.answered, 2, "two live nodes answer");
    assert!(
        (report.coverage - 2.0 / 3.0).abs() < 1e-9,
        "coverage must report the dark third, got {}",
        report.coverage
    );
    assert_eq!(coordinator.breaker_state(2), BreakerState::Open);
    assert_eq!(coordinator.breaker_trips(2), 1);
    assert!(
        coordinator.retry_budget().withdrawn() >= 1,
        "the timeout retry must draw from the budget"
    );
    assert!(
        coordinator.retry_budget().tokens() > 0,
        "the breaker must open long before the budget drains"
    );

    // While open, the leg fails fast: same partial coverage, no socket
    // touched, no new trip.
    let fast = coordinator.gather().expect("gather while open");
    assert_eq!(fast.answered, 2);
    assert_eq!(coordinator.breaker_trips(2), 1, "fail-fast is not a trip");

    // Advance past the open window while the node is still dark: the
    // next leg is the half-open probe, it times out, and the breaker
    // reopens with a fresh window — the automatic path never trusts a
    // node that has not proven itself.
    clock.advance(1_000_001);
    let probed = coordinator.gather().expect("gather around failed probe");
    assert_eq!(probed.answered, 2, "failed probe keeps the leg dark");
    assert_eq!(coordinator.breaker_state(2), BreakerState::Open);
    assert_eq!(coordinator.breaker_trips(2), 2, "probe failure re-trips");

    // Replace the dark node with a real one and rejoin it. Rejoin is
    // the operator asserting recovery: its ping bypasses the fail-fast
    // and a success resets the breaker outright — no window to wait
    // out.
    drop(dark);
    let (replacement_engine, replacement) = backend(SummaryKind::Mg);
    let new_addr = replacement.local_addr().to_string();
    coordinator.rejoin(2, Some(&new_addr)).expect("rejoin");
    assert_eq!(coordinator.breaker_state(2), BreakerState::Closed);

    // Full service restored: ingest spreads over all three nodes and a
    // gather covers every slot again.
    coordinator
        .ingest(&stream(3_000))
        .expect("post-heal ingest");
    coordinator.flush().expect("flush");
    let healed = coordinator.gather().expect("gather after rejoin");
    assert_eq!(healed.answered, 3, "rejoin restores the leg");
    assert!((healed.coverage - 1.0).abs() < 1e-9);
    let merged = healed.summary.expect("merged summary");
    assert_eq!(merged.total_weight(), 3_000);
    assert_eq!(coordinator.breaker_state(2), BreakerState::Closed);
    drop(replacement_engine);
    coordinator.shutdown();
}

/// Coarsening under segment pressure: with `seal_batches(1)` every batch
/// seals a segment, so 24 batches cross a watermark of 4 twenty times.
/// The cube must merge adjacent segments (tier > 0) to hold the sealed
/// count at the watermark, and a full-window range quantile must still
/// land within `ε·n` of the exact rank over everything admitted.
#[test]
fn coarsening_holds_sealed_count_and_range_accuracy() {
    let clock = Arc::new(ManualClock::new(1_000));
    let cfg = ServiceConfig::new(SummaryKind::HybridQuantile, EPS)
        .shards(2)
        .seed(SEED)
        .segments(
            SegmentConfig::new()
                .seal_batches(1)
                .coarsen_watermark(4)
                .clock(Arc::clone(&clock) as Arc<dyn mergeable_summaries::service::CubeClock>),
        );
    let engine = Engine::start(cfg).expect("engine");
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("server");
    let mut client = Client::connect_with(server.local_addr(), fast_options()).expect("client");

    let items = stream(24_000);
    for batch in items.chunks(1_000) {
        client.ingest(batch.to_vec()).expect("ingest");
        client.flush().expect("flush seals the batch");
        clock.advance(1_000);
    }

    let report = client.segments().expect("segment report");
    let sealed: Vec<_> = report.segments.iter().filter(|s| s.sealed).collect();
    assert!(
        sealed.len() <= 4,
        "coarsening must hold sealed count at the watermark, got {}",
        sealed.len()
    );
    assert!(
        sealed.iter().any(|s| s.tier > 0),
        "24 seals over watermark 4 must have coarsened"
    );
    let total: u64 = sealed.iter().map(|s| s.weight).sum();
    assert_eq!(
        total,
        items.len() as u64,
        "coarsening is lossless on weight"
    );

    // Accuracy on the admitted stream: the full window covers every
    // item, and the merged (coarsened) summary owes the same ε·n bound
    // an uncoarsened one does.
    let answer = client
        .range_quantile(0, report.now_micros, 0.5)
        .expect("range quantile");
    assert_eq!(answer.meta.covered_weight, items.len() as u64);
    let value = answer.value.expect("median over full window");
    let oracle = RankOracle::from_stream(items.iter().copied());
    let target = (0.5 * items.len() as f64) as u64;
    let err = oracle.rank_error(&value, target);
    let bound = EPS * items.len() as f64;
    assert!(
        err as f64 <= bound,
        "median rank error {err} above ε·n bound {bound:.1}"
    );
    server.stop();
}

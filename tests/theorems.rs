//! The paper's results as executable statements — one test per theorem,
//! phrased as closely to the paper as an assertion allows. These duplicate
//! coverage that exists elsewhere at larger scale; their job is to be the
//! readable index from theorem to behavior.

use mergeable_summaries::core::{
    merge_all, FrequencyOracle, ItemSummary, MergeTree, Mergeable, RankOracle, Summary,
};
use mergeable_summaries::frequency::isomorphism::check_isomorphism;
use mergeable_summaries::quantiles::RankSummary;
use mergeable_summaries::workloads::{CloudKind, Partitioner, StreamKind, ValueDist};
use mergeable_summaries::{
    EpsKernel, Frame, HybridQuantile, KnownNQuantile, MgSummary, SpaceSavingSummary,
};

/// §3, Theorem 1: "MG summaries are mergeable with error parameter ε and
/// size O(1/ε)" — for any dataset, any partition into sites, and any merge
/// order, the merged summary with k = ⌈1/ε⌉ − 1 counters answers every
/// frequency query within εn from below.
#[test]
fn theorem_1_mg_summaries_are_mergeable() {
    let eps = 0.05;
    let items = StreamKind::Zipf {
        s: 1.2,
        universe: 5_000,
    }
    .generate(50_000, 42);
    let oracle = FrequencyOracle::from_stream(items.iter().copied());
    let bound = (eps * items.len() as f64) as u64;

    for partitioner in Partitioner::canonical() {
        for shape in MergeTree::canonical() {
            let leaves: Vec<MgSummary<u64>> = partitioner
                .split(&items, 16)
                .into_iter()
                .map(|part| {
                    let mut s = MgSummary::for_epsilon(eps);
                    s.extend_from(part);
                    s
                })
                .collect();
            let merged = merge_all(leaves, shape).unwrap();
            // Size bound: still O(1/ε) counters after all merges.
            assert!(merged.size() <= (1.0 / eps) as usize);
            // Error bound: one-sided, ≤ εn, for every item.
            for (item, truth) in oracle.iter() {
                let est = merged.estimate(item);
                assert!(est <= truth && truth - est <= bound);
            }
        }
    }
}

/// §3, Lemma (isomorphism): "the MG summary with k counters and the
/// SpaceSaving summary with k+1 counters are isomorphic" — their counter
/// values correspond via δ = (n − n̂)/(k+1) on every stream.
#[test]
fn lemma_mg_spacesaving_isomorphism() {
    for (kind, seed) in [
        (
            StreamKind::Zipf {
                s: 1.4,
                universe: 600,
            },
            1u64,
        ),
        (StreamKind::Uniform { universe: 100 }, 2),
        (StreamKind::AllDistinct, 3),
    ] {
        let items = kind.generate(8_000, seed);
        for k in [4usize, 17, 63] {
            let mut mg = MgSummary::new(k);
            let mut ss = SpaceSavingSummary::new(k + 1);
            for &item in &items {
                mg.update(item);
                ss.update(item);
            }
            check_isomorphism(&mg, &ss).unwrap_or_else(|e| panic!("{} k={k}: {e}", kind.label()));
        }
    }
}

/// §4.2: "for known n there is a randomized mergeable quantile summary of
/// size O((1/ε)·polylog) with rank error εn w.h.p." — exercised here on
/// one seeded instance per tree shape.
#[test]
fn theorem_known_n_quantiles_merge() {
    let eps = 0.05;
    let n = 1 << 15;
    let values = ValueDist::Normal.generate(n, 7);
    let oracle = RankOracle::from_stream(values.clone());
    for shape in MergeTree::canonical() {
        let leaves: Vec<KnownNQuantile<u64>> = values
            .chunks(n / 16)
            .enumerate()
            .map(|(i, c)| {
                let mut q = KnownNQuantile::new(eps, n as u64, i as u64);
                for &v in c {
                    q.insert(v);
                }
                q
            })
            .collect();
        let merged = merge_all(leaves, shape).unwrap();
        assert!(
            merged.size() < n / 4,
            "summary must be much smaller than data"
        );
        for phi in [0.1, 0.5, 0.9] {
            let probe = *oracle.quantile(phi).unwrap();
            let err = oracle.rank_error(&probe, merged.rank(&probe));
            assert!((err as f64) <= eps * n as f64, "{}: {err}", shape.label());
        }
    }
}

/// §4.3: "a fully mergeable quantile summary of size O((1/ε)·log^1.5(1/ε))
/// — independent of n — exists" — the same summary object absorbs 16× more
/// data without growing.
#[test]
fn theorem_hybrid_size_independent_of_n() {
    let eps = 0.1;
    let build = |n: usize| {
        let mut q = HybridQuantile::new(eps, 3);
        for &v in &ValueDist::Uniform.generate(n, 5) {
            q.insert(v);
        }
        q
    };
    let small = build(1 << 13);
    let large = build(1 << 17);
    assert_eq!(small.size(), large.size(), "size depends only on ε");
    assert!(large.base_weight() > small.base_weight());
}

/// §5: "ε-approximations of range spaces are mergeable via merge-reduce" —
/// a 16-way merged approximation answers rectangle counts within εn.
#[test]
fn theorem_eps_approximation_merge_reduce() {
    use mergeable_summaries::range::ranges::{count_in, grid_queries};
    use mergeable_summaries::range::{EpsApprox2d, Halving};

    let n = 1 << 14;
    let pts = CloudKind::Gaussian.generate(n, 11);
    let leaves: Vec<EpsApprox2d> = pts
        .chunks(n / 16)
        .enumerate()
        .map(|(i, c)| {
            let mut a = EpsApprox2d::new(256, Halving::Hilbert, i as u64);
            a.extend_from(c.iter().copied());
            a
        })
        .collect();
    let merged = merge_all(leaves, MergeTree::Balanced).unwrap();
    for r in grid_queries(&pts, 4) {
        let exact = count_in(&pts, &r) as f64;
        let est = merged.estimate_count(&r) as f64;
        assert!((est - exact).abs() <= 0.05 * n as f64);
    }
}

/// §6: "ε-kernels are mergeable in the restricted model" — with a shared
/// frame, merging is exact (per-direction max), so any merge order yields
/// the identical kernel; without the shared frame merging is refused.
#[test]
fn theorem_kernels_restricted_mergeability() {
    let pts = CloudKind::Ring.generate(4_096, 13);
    let frame = Frame::from_points(&pts);
    let build = |chunk: &[mergeable_summaries::core::Point2]| {
        let mut k = EpsKernel::new(0.05, frame);
        k.extend_from(chunk.iter().copied());
        k
    };
    let a = merge_all(pts.chunks(256).map(build).collect(), MergeTree::Chain).unwrap();
    let b = merge_all(
        pts.chunks(256).map(build).collect(),
        MergeTree::Random { seed: 99 },
    )
    .unwrap();
    for i in 0..360 {
        let dir = mergeable_summaries::core::unit_dir(i as f64 * 0.0175);
        assert_eq!(a.width(dir), b.width(dir), "merge order must not matter");
    }
    // The restriction is real: a different frame cannot merge.
    let other = EpsKernel::new(0.05, Frame::identity());
    assert!(a.merge(other).is_err());
}

/// §2 (comparison class): linear sketches merge by addition, so their
/// estimates are invariant to the merge tree — bit for bit.
#[test]
fn linear_sketches_are_tree_invariant() {
    use mergeable_summaries::CountMinSketch;
    let items = StreamKind::Uniform { universe: 1_000 }.generate(20_000, 17);
    let build = |shape: MergeTree| {
        let leaves: Vec<CountMinSketch<u64>> = items
            .chunks(2_000)
            .map(|c| {
                let mut s = CountMinSketch::new(64, 4, 0x5EED);
                s.extend_from(c.iter().copied());
                s
            })
            .collect();
        merge_all(leaves, shape).unwrap()
    };
    let (a, b) = (build(MergeTree::Chain), build(MergeTree::Balanced));
    for probe in 0..1_000u64 {
        assert_eq!(a.estimate(&probe), b.estimate(&probe));
    }
}

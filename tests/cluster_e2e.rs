//! Acceptance test for the federated cluster: a coordinator over three
//! real TCP backend nodes, itself fronted by a TCP server and driven
//! exclusively through the wire protocol, must push a million-item
//! seeded Zipf stream through a node kill and a WAL-backed rejoin and
//! still answer heavy-hitter and quantile queries within the paper's
//! strict `ε·n` bound against exact oracles.
//!
//! The kill lands at a batch boundary and the victim runs with
//! fsync-always durability, so every acked item is either on a survivor
//! or in the victim's WAL — after the rejoin the cluster must account
//! for all `n` items exactly, and the one-shot scatter/gather merge
//! (PODS'12 Definition 1) owes the same error bound a single node does.

use std::path::PathBuf;
use std::sync::Arc;

use mergeable_summaries::cluster::{ClusterConfig, Coordinator};
use mergeable_summaries::core::{FrequencyOracle, RankOracle, Summary, Wire};
use mergeable_summaries::service::{
    Client, ClientOptions, DurabilityConfig, Engine, FsyncPolicy, NodeState, Request, Response,
    Server, ServiceConfig, ShardSummary, SummaryKind,
};
use mergeable_summaries::workloads::StreamKind;

const N: usize = 1_000_000;
const EPS: f64 = 0.01;
const SEED: u64 = 0xC1E2E;
/// Ingest batch size; the kill lands on a batch boundary.
const CHUNK: usize = 2_000;
/// Stream index where the victim dies (mid-ingest).
const KILL_AT: usize = 400_000;
/// Stream index where the revived victim rejoins the ring.
const REJOIN_AT: usize = 700_000;

fn zipf_stream() -> Vec<u64> {
    StreamKind::Zipf {
        s: 1.2,
        universe: 1 << 18,
    }
    .generate(N, SEED)
}

struct Node {
    engine: Arc<Engine>,
    server: Server,
}

impl Node {
    fn start(cfg: ServiceConfig) -> Node {
        let engine = Engine::start(cfg).expect("backend engine");
        let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("backend server");
        Node { engine, server }
    }

    fn addr(&self) -> String {
        self.server.local_addr().to_string()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ms-cluster-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The victim's config: fsync-always WAL so a `kill -9` loses nothing
/// that was acked.
fn durable_config(kind: SummaryKind, dir: &PathBuf) -> ServiceConfig {
    ServiceConfig::new(kind, EPS)
        .shards(2)
        .seed(SEED)
        .durability(
            DurabilityConfig::new(dir)
                .fsync(FsyncPolicy::Always)
                .checkpoint_batches(64),
        )
}

fn plain_config(kind: SummaryKind) -> ServiceConfig {
    ServiceConfig::new(kind, EPS).shards(2).seed(SEED)
}

/// Fast-failing coordinator transport so the kill is discovered on the
/// first post-kill request and every health transition is deterministic.
fn cluster_config(addrs: impl IntoIterator<Item = String>) -> ClusterConfig {
    ClusterConfig::new(addrs)
        .client_options(ClientOptions {
            connect_timeout: std::time::Duration::from_secs(2),
            read_timeout: std::time::Duration::from_secs(10),
            retries: 1,
            backoff: std::time::Duration::from_millis(5),
            ..ClientOptions::default()
        })
        .ping_interval(None)
        .thresholds(1, 1)
}

fn cluster_info(client: &mut Client) -> mergeable_summaries::service::ClusterInfo {
    match client
        .call(&Request::ClusterInfo)
        .expect("cluster-info rpc")
    {
        Response::Cluster(info) => info,
        other => panic!("unexpected cluster-info response {other:?}"),
    }
}

/// Run the whole kill/rejoin scenario for one summary kind, driving the
/// coordinator purely over the wire, and return the final one-shot
/// merged summary (decoded from a `Summary` response) plus a client
/// still connected to the front server for follow-up query opcodes.
fn run_scenario(kind: SummaryKind, tag: &str) -> (ShardSummary, Client, Server, Vec<Node>) {
    let items = zipf_stream();
    let dir = scratch_dir(tag);

    // Node 0 is the victim and the only durable node.
    let victim = Node::start(durable_config(kind, &dir));
    let others: Vec<Node> = (0..2).map(|_| Node::start(plain_config(kind))).collect();
    let mut addrs = vec![victim.addr()];
    addrs.extend(others.iter().map(Node::addr));

    let coordinator = Coordinator::start(cluster_config(addrs)).expect("coordinator");
    let front = Server::bind_service(
        Arc::clone(&coordinator) as Arc<dyn mergeable_summaries::service::Service>,
        "127.0.0.1:0",
    )
    .expect("front server");
    let mut client = Client::connect(front.local_addr()).expect("front client");

    // Phase 1: ingest up to the kill point, over the wire.
    for chunk in items[..KILL_AT].chunks(CHUNK) {
        client.ingest_slice(chunk).expect("pre-kill ingest");
    }

    // `kill -9` the victim at a batch boundary: abort the engine, sever
    // its connections. Every batch it acked is in its fsync-always WAL.
    let victim_engine = victim.engine;
    victim.server.kill();
    drop(victim_engine);

    // Phase 2: the rebalance window. The coordinator discovers the death
    // on the first routed batch and walks the ring past the dead slot.
    for chunk in items[KILL_AT..REJOIN_AT].chunks(CHUNK) {
        client.ingest_slice(chunk).expect("rebalance-window ingest");
    }
    let info = cluster_info(&mut client);
    assert_eq!(
        info.nodes[0].state,
        NodeState::Dead,
        "killed node should be dead in the wire-visible membership"
    );
    assert!(
        info.rebalanced_batches > 0,
        "node death should have rebalanced at least one batch"
    );

    // Phase 3: revive the victim from its data directory (checkpoint
    // load + WAL tail replay inside Engine::start) and rejoin it.
    let revived = Node::start(durable_config(kind, &dir));
    let recovery = revived
        .engine
        .recovery()
        .expect("revived node must report recovery");
    assert!(
        recovery.preloaded_weight + recovery.replayed_weight > 0,
        "revived node recovered nothing from its WAL"
    );
    let new_addr = revived.addr();
    coordinator
        .rejoin(0, Some(&new_addr))
        .expect("rejoin should succeed against the revived node");
    let info = cluster_info(&mut client);
    assert_eq!(
        info.nodes[0].state,
        NodeState::Alive,
        "rejoined node should be alive in the wire-visible membership"
    );

    // Phase 4: the rest of the stream routes on the original ring again.
    for chunk in items[REJOIN_AT..].chunks(CHUNK) {
        client.ingest_slice(chunk).expect("post-rejoin ingest");
    }
    client.flush().expect("cluster flush");

    // The one-shot merged summary, fetched over the wire. With a
    // boundary kill and fsync-always durability, every acked item
    // survived somewhere — the merge must account for all n exactly.
    let summary = match client.call(&Request::Summary).expect("summary rpc") {
        Response::Summary(raw) => ShardSummary::decode(&raw).expect("summary decodes"),
        other => panic!("unexpected summary response {other:?}"),
    };
    assert_eq!(
        summary.total_weight(),
        N as u64,
        "kill + WAL rejoin must preserve every acked item"
    );

    // The per-node summaries (new NodeSummary opcode) must partition the
    // stream: their weights sum to exactly n.
    let mut node_weight_sum = 0u64;
    for idx in 0..3u32 {
        match client
            .call(&Request::NodeSummary(idx))
            .expect("node-summary rpc")
        {
            Response::Summary(raw) => {
                node_weight_sum += ShardSummary::decode(&raw)
                    .expect("node summary decodes")
                    .total_weight();
            }
            other => panic!("unexpected node-summary response {other:?}"),
        }
    }
    assert_eq!(
        node_weight_sum, N as u64,
        "per-node summaries must partition the stream"
    );

    // The backends keep serving: the caller still queries through the
    // front server before dropping everything.
    let mut nodes = vec![revived];
    nodes.extend(others);
    (summary, client, front, nodes)
}

#[test]
fn federated_heavy_hitters_survive_kill_and_rejoin() {
    let items = zipf_stream();
    let oracle = FrequencyOracle::from_stream(items.iter().copied());
    let bound = (EPS * N as f64).ceil() as u64;

    let (summary, mut client, front, _nodes) = run_scenario(SummaryKind::Mg, "mg");

    // Point estimates within ε·n for every item the truth says matters,
    // both on the gathered summary and via the wire Point opcode.
    for (item, truth) in oracle.top_k(50) {
        let est = summary.point(item).expect("counter summary");
        assert!(
            est.abs_diff(truth) <= bound,
            "item {item}: est {est}, truth {truth}, bound {bound}"
        );
        match client.call(&Request::Point(item)).expect("point rpc") {
            Response::Count(wire_est) => assert!(
                wire_est.abs_diff(truth) <= bound,
                "wire point {item}: est {wire_est}, truth {truth}"
            ),
            other => panic!("unexpected point response {other:?}"),
        }
    }

    // Every true φ-heavy hitter is reported at φ = 2ε, over the wire.
    let phi = 2.0 * EPS;
    let reported = match client.call(&Request::HeavyHitters(EPS)).expect("hh rpc") {
        Response::Items(items) => items,
        other => panic!("unexpected heavy-hitters response {other:?}"),
    };
    for (item, truth) in oracle.iter() {
        if truth as f64 >= phi * N as f64 {
            assert!(
                reported.iter().any(|(i, _)| i == item),
                "heavy item {item} (truth {truth}) missing from wire answer"
            );
        }
    }
    front.stop();
}

#[test]
fn federated_quantiles_survive_kill_and_rejoin() {
    let items = zipf_stream();
    let oracle = RankOracle::from_stream(items.iter().copied());
    let bound = (EPS * N as f64).ceil() as u64;

    let (summary, mut client, front, _nodes) = run_scenario(SummaryKind::HybridQuantile, "hq");

    for i in 1..20 {
        let phi = i as f64 / 20.0;
        // Rank error on the gathered summary …
        let probe = *oracle.quantile(phi).expect("nonempty");
        let est = summary.rank(probe).expect("quantile summary");
        let err = oracle.rank_error(&probe, est);
        assert!(err <= bound, "phi {phi}: rank error {err} > {bound}");
        // … and the Quantile opcode end-to-end: the returned value's true
        // rank is within ε·n of the requested one.
        match client.call(&Request::Quantile(phi)).expect("quantile rpc") {
            Response::Value(Some(v)) => {
                let target = (phi * N as f64) as u64;
                let err = oracle.rank_error(&v, target);
                assert!(err <= bound, "wire phi {phi}: value {v}, rank error {err}");
            }
            other => panic!("unexpected quantile response {other:?}"),
        }
    }
    front.stop();
}

//! Serialization round-trips: the whole point of a mergeable summary is to
//! be shipped between nodes, so every summary must survive
//! encode → decode → merge with identical answers. All shipping uses the
//! workspace's compact binary wire codec (`ms_core::Wire`).

use mergeable_summaries::core::{ItemSummary, Mergeable, Summary, Wire};
use mergeable_summaries::quantiles::RankSummary;
use mergeable_summaries::range::{EpsApprox2d, Halving};
use mergeable_summaries::service::{ServiceConfig, ShardSummary, SummaryKind};
use mergeable_summaries::workloads::{CloudKind, StreamKind, ValueDist};
use mergeable_summaries::{
    AmsF2Sketch, BottomKSample, CountMinSketch, CountSketch, EpsKernel, Frame, GkSummary,
    HybridQuantile, KnownNQuantile, MgSummary, SpaceSavingSummary,
};

fn roundtrip<T: Wire>(value: &T) -> T {
    T::decode(&value.encode()).expect("decode")
}

#[test]
fn mg_roundtrip_preserves_estimates_and_merging() {
    let items = StreamKind::Zipf {
        s: 1.2,
        universe: 1000,
    }
    .generate(20_000, 1);
    let mut mg = MgSummary::for_epsilon(0.02);
    mg.extend_from(items.iter().copied());

    let restored: MgSummary<u64> = roundtrip(&mg);
    assert_eq!(restored.total_weight(), mg.total_weight());
    assert_eq!(restored.capacity(), mg.capacity());
    for probe in 0..1000u64 {
        assert_eq!(restored.estimate(&probe), mg.estimate(&probe));
    }

    // A decoded summary must still merge (the shipping scenario).
    let mut other = MgSummary::for_epsilon(0.02);
    other.extend_from(items.iter().copied());
    let merged = restored.merge(other).unwrap();
    assert_eq!(merged.total_weight(), 2 * mg.total_weight());
}

#[test]
fn space_saving_roundtrip_both_representations() {
    let items = StreamKind::Uniform { universe: 500 }.generate(10_000, 2);
    let mut ss = SpaceSavingSummary::new(32);
    ss.extend_from(items.iter().copied());

    // Streaming representation.
    let restored = roundtrip(&ss);
    for probe in 0..500u64 {
        assert_eq!(restored.upper_bound(&probe), ss.upper_bound(&probe));
        assert_eq!(restored.lower_bound(&probe), ss.lower_bound(&probe));
    }

    // Merged representation.
    let mut other = SpaceSavingSummary::new(32);
    other.extend_from(items.iter().copied());
    let merged = ss.merge(other).unwrap();
    let restored = roundtrip(&merged);
    for probe in 0..500u64 {
        assert_eq!(restored.upper_bound(&probe), merged.upper_bound(&probe));
    }
}

#[test]
fn quantile_summaries_roundtrip() {
    let values = ValueDist::Normal.generate(30_000, 3);

    let mut known = KnownNQuantile::new(0.05, 30_000, 5);
    let mut hybrid = HybridQuantile::new(0.05, 5);
    let mut gk = GkSummary::new(0.05);
    let mut sample = BottomKSample::new(256, 5);
    for &v in &values {
        known.insert(v);
        hybrid.insert(v);
        gk.insert(v);
        sample.insert(v);
    }

    let (k2, h2, g2, s2) = (
        roundtrip(&known),
        roundtrip(&hybrid),
        roundtrip(&gk),
        roundtrip(&sample),
    );
    for phi in [0.1, 0.5, 0.9] {
        assert_eq!(k2.quantile(phi), known.quantile(phi));
        assert_eq!(h2.quantile(phi), hybrid.quantile(phi));
        assert_eq!(g2.quantile(phi), gk.quantile(phi));
        assert_eq!(s2.quantile(phi), sample.quantile(phi));
    }
    let probe = values[17];
    assert_eq!(k2.rank(&probe), known.rank(&probe));
    assert_eq!(h2.rank(&probe), hybrid.rank(&probe));
}

#[test]
fn deserialized_randomized_summaries_merge_deterministically() {
    // The RNG state must survive the round-trip: merging two restored
    // summaries gives exactly the merge of the originals.
    let values = ValueDist::Uniform.generate(20_000, 7);
    let mk = |seed: u64, slice: &[u64]| {
        let mut q = HybridQuantile::new(0.05, seed);
        for &v in slice {
            q.insert(v);
        }
        q
    };
    let a = mk(1, &values[..10_000]);
    let b = mk(2, &values[10_000..]);
    let direct = a.clone().merge(b.clone()).unwrap();
    let shipped = roundtrip(&a).merge(roundtrip(&b)).unwrap();
    for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
        assert_eq!(direct.quantile(phi), shipped.quantile(phi));
    }
}

#[test]
fn sketches_roundtrip_bit_exact() {
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 2000,
    }
    .generate(15_000, 9);
    let mut cm = CountMinSketch::new(64, 4, 11);
    let mut cs = CountSketch::new(64, 4, 11);
    let mut ams = AmsF2Sketch::new(32, 3, 11);
    for &item in &items {
        cm.update(item);
        cs.update(item);
        ams.update(item);
    }
    let cm2 = roundtrip(&cm);
    let cs2 = roundtrip(&cs);
    let ams2 = roundtrip(&ams);
    // Array-backed sketches re-encode to the exact same bytes.
    assert_eq!(cm2.encode(), cm.encode());
    assert_eq!(cs2.encode(), cs.encode());
    assert_eq!(ams2.encode(), ams.encode());
    for probe in 0..2000u64 {
        assert_eq!(cm2.estimate(&probe), cm.estimate(&probe));
        assert_eq!(cs2.estimate(&probe), cs.estimate(&probe));
    }
    assert_eq!(ams2.estimate_f2(), ams.estimate_f2());
    // Restored sketches stay in the same linear family.
    assert!(cm2.merge(cm).is_ok());
}

#[test]
fn geometric_summaries_roundtrip() {
    let pts = CloudKind::Disk.generate(5_000, 13);
    let frame = Frame::from_points(&pts);
    let mut kernel = EpsKernel::new(0.05, frame);
    kernel.extend_from(pts.iter().copied());
    let mut approx = EpsApprox2d::new(128, Halving::Hilbert, 1);
    approx.extend_from(pts.iter().copied());

    let k2: EpsKernel = roundtrip(&kernel);
    assert_eq!(k2.size(), kernel.size());
    for i in 0..90 {
        let dir = mergeable_summaries::core::unit_dir(i as f64 * 0.07);
        assert_eq!(k2.width(dir), kernel.width(dir));
    }
    // Restored kernel keeps its frame and still merges.
    assert!(k2.merge(kernel).is_ok());

    let a2: EpsApprox2d = roundtrip(&approx);
    let query = mergeable_summaries::core::Rect::new(-0.5, 0.5, -0.5, 0.5);
    assert_eq!(a2.estimate_count(&query), approx.estimate_count(&query));
}

#[test]
fn service_summaries_roundtrip_for_every_family() {
    // The engine's runtime-dispatched summary (what the TCP protocol and
    // the snapshot API ship) round-trips losslessly for all four families.
    let items = StreamKind::Zipf {
        s: 1.2,
        universe: 4096,
    }
    .generate(50_000, 21);
    for kind in SummaryKind::all() {
        let cfg = ServiceConfig::new(kind, 0.02).seed(21);
        let mut s = ShardSummary::new(&cfg, 0);
        for &v in &items {
            s.update(v);
        }
        let back = roundtrip(&s);
        assert_eq!(back.kind(), kind);
        assert_eq!(back.total_weight(), s.total_weight());
        assert_eq!(back.size(), s.size(), "{}", kind.label());
        for probe in 0..64 {
            assert_eq!(back.point(probe), s.point(probe), "{}", kind.label());
            assert_eq!(back.rank(probe), s.rank(probe), "{}", kind.label());
        }
        assert_eq!(back.quantile(0.5), s.quantile(0.5), "{}", kind.label());
        // Decoded summaries must still merge with live ones.
        assert!(back.merge(s).is_ok());
    }
}

//! Golden corpus of malformed wire frames.
//!
//! Each case is a deliberately damaged frame checked in under
//! `tests/corpus/*.bin`, paired with the exact [`WireError`] the decoder
//! must return. The corpus bytes are also rebuilt programmatically and
//! compared byte-for-byte against the checked-in files, so an accidental
//! codec format change (shifted header field, new magic, resized length)
//! shows up as a corpus mismatch instead of silently re-deriving the
//! goldens from the new — possibly wrong — behavior.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! REGEN=1 cargo test --test wire_corpus
//! ```

use std::path::PathBuf;

use mergeable_summaries::service::protocol::{
    deadline_frame, decode_request, decode_traced_request, traced_frame, Request, RequestEnvelope,
    Response, REQUEST_TAG, RESPONSE_TAG, TRACED_REQUEST_TAG,
};
use mergeable_summaries::service::TraceContext;
use ms_core::wire::{FRAME_HEADER_LEN, MAX_FRAME_LEN, WIRE_VERSION};
use ms_core::{WireError, WireFrame};

/// What the decoder must say about one corpus entry.
enum Expect {
    /// `WireFrame::from_bytes` fails with exactly this error.
    Frame(WireError),
    /// The frame parses, but `decode_request` fails with exactly this error.
    Request(WireError),
    /// The frame parses and decodes to exactly this request — pinning the
    /// on-wire encoding of an opcode, not just its failure modes.
    Decodes(Request),
    /// The frame parses, `decode_traced_request` yields exactly this
    /// request + envelope — and, for a `TRACED_REQUEST_TAG` frame, the
    /// trace-unaware `decode_request` must refuse it with `BadTag`, so
    /// old components fail loudly instead of misparsing the envelope.
    Traced(Request, RequestEnvelope),
    /// The frame parses, but `decode_traced_request` fails with exactly
    /// this error.
    TracedErr(WireError),
    /// The frame parses and its payload decodes to exactly this response
    /// — pinning a server→client encoding the same way `Decodes` pins a
    /// request's.
    Answers(Response),
    /// The frame parses, but decoding the payload as a [`Response`]
    /// fails with exactly this error.
    AnswersErr(WireError),
}

struct Case {
    /// File name under `tests/corpus/`.
    name: &'static str,
    /// The damaged bytes.
    bytes: Vec<u8>,
    /// The golden error.
    expect: Expect,
}

/// A well-formed reference frame the damaged cases start from.
fn good_frame() -> WireFrame {
    WireFrame::from_value(REQUEST_TAG, &Request::Ingest(vec![1, 2, 3, 500, 70_000]))
}

fn corpus() -> Vec<Case> {
    let good = good_frame().to_bytes();
    vec![
        Case {
            name: "truncated_header.bin",
            bytes: good[..FRAME_HEADER_LEN - 3].to_vec(),
            expect: Expect::Frame(WireError::Truncated),
        },
        Case {
            name: "truncated_payload.bin",
            bytes: good[..good.len() - 2].to_vec(),
            expect: Expect::Frame(WireError::Truncated),
        },
        Case {
            name: "trailing_garbage.bin",
            bytes: {
                let mut b = good.clone();
                b.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
                b
            },
            expect: Expect::Frame(WireError::Trailing(3)),
        },
        Case {
            name: "bad_magic.bin",
            bytes: {
                let mut b = good.clone();
                b[0] = b'X';
                b[1] = b'Y';
                b
            },
            expect: Expect::Frame(WireError::BadMagic([b'X', b'Y'])),
        },
        Case {
            name: "bad_version.bin",
            bytes: {
                let mut b = good.clone();
                b[2..4].copy_from_slice(&0x7FFFu16.to_le_bytes());
                b
            },
            expect: Expect::Frame(WireError::BadVersion {
                found: 0x7FFF,
                expected: WIRE_VERSION,
            }),
        },
        Case {
            name: "oversize_len.bin",
            bytes: {
                let mut b = good.clone();
                b[5..9].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
                b
            },
            expect: Expect::Frame(WireError::Malformed("frame length over limit")),
        },
        Case {
            name: "bad_request_opcode.bin",
            bytes: WireFrame {
                tag: REQUEST_TAG,
                payload: vec![0xEE],
            }
            .to_bytes(),
            expect: Expect::Request(WireError::Malformed("unknown request opcode")),
        },
        Case {
            name: "wrong_tag.bin",
            bytes: WireFrame::from_value(RESPONSE_TAG, &Request::Ping).to_bytes(),
            expect: Expect::Request(WireError::BadTag(RESPONSE_TAG)),
        },
        Case {
            name: "empty_request_payload.bin",
            bytes: WireFrame {
                tag: REQUEST_TAG,
                payload: Vec::new(),
            }
            .to_bytes(),
            expect: Expect::Request(WireError::Truncated),
        },
        Case {
            name: "request_trailing_bytes.bin",
            bytes: {
                let mut frame = good_frame();
                frame.payload.push(0xFF);
                frame.to_bytes()
            },
            expect: Expect::Request(WireError::Trailing(1)),
        },
        // The Telemetry opcode (9, payload-free) joined the protocol after
        // the rest of this corpus; pin its exact frame bytes so a renumber
        // or accidental payload shows up as a golden mismatch.
        Case {
            name: "telemetry_request.bin",
            bytes: WireFrame::from_value(REQUEST_TAG, &Request::Telemetry).to_bytes(),
            expect: Expect::Decodes(Request::Telemetry),
        },
        Case {
            name: "telemetry_trailing.bin",
            bytes: WireFrame {
                tag: REQUEST_TAG,
                payload: vec![9, 0x00],
            }
            .to_bytes(),
            expect: Expect::Request(WireError::Trailing(1)),
        },
        // The cluster opcodes (10 ClusterInfo, 11 NodeSummary) and the
        // coordinator's liveness probe ride the same codec; pin each
        // opcode's exact frame bytes plus its rejection modes.
        Case {
            name: "ping_request.bin",
            bytes: WireFrame::from_value(REQUEST_TAG, &Request::Ping).to_bytes(),
            expect: Expect::Decodes(Request::Ping),
        },
        Case {
            name: "cluster_info_request.bin",
            bytes: WireFrame::from_value(REQUEST_TAG, &Request::ClusterInfo).to_bytes(),
            expect: Expect::Decodes(Request::ClusterInfo),
        },
        Case {
            name: "node_summary_request.bin",
            bytes: WireFrame::from_value(REQUEST_TAG, &Request::NodeSummary(2)).to_bytes(),
            expect: Expect::Decodes(Request::NodeSummary(2)),
        },
        Case {
            name: "cluster_info_trailing.bin",
            bytes: WireFrame {
                tag: REQUEST_TAG,
                payload: vec![10, 0x00],
            }
            .to_bytes(),
            expect: Expect::Request(WireError::Trailing(1)),
        },
        Case {
            name: "node_summary_truncated.bin",
            bytes: WireFrame {
                tag: REQUEST_TAG,
                payload: vec![11],
            }
            .to_bytes(),
            expect: Expect::Request(WireError::Truncated),
        },
        Case {
            name: "node_summary_trailing.bin",
            bytes: WireFrame {
                tag: REQUEST_TAG,
                payload: vec![11, 0x02, 0xFF],
            }
            .to_bytes(),
            expect: Expect::Request(WireError::Trailing(1)),
        },
        // The segment-cube range opcodes (12 RangeQuantile,
        // 13 RangeHeavyHitters, 14 SegmentInfo): pin each opcode's exact
        // frame bytes, plus truncation, trailing bytes, and a corrupted
        // frame envelope.
        Case {
            name: "range_quantile_request.bin",
            bytes: WireFrame::from_value(
                REQUEST_TAG,
                &Request::RangeQuantile {
                    start_micros: 1_000,
                    end_micros: 5_000_000,
                    phi: 0.5,
                },
            )
            .to_bytes(),
            expect: Expect::Decodes(Request::RangeQuantile {
                start_micros: 1_000,
                end_micros: 5_000_000,
                phi: 0.5,
            }),
        },
        Case {
            name: "range_heavy_hitters_request.bin",
            bytes: WireFrame::from_value(
                REQUEST_TAG,
                &Request::RangeHeavyHitters {
                    start_micros: 0,
                    end_micros: u64::MAX,
                    phi: 0.01,
                },
            )
            .to_bytes(),
            expect: Expect::Decodes(Request::RangeHeavyHitters {
                start_micros: 0,
                end_micros: u64::MAX,
                phi: 0.01,
            }),
        },
        Case {
            name: "segment_info_request.bin",
            bytes: WireFrame::from_value(REQUEST_TAG, &Request::SegmentInfo).to_bytes(),
            expect: Expect::Decodes(Request::SegmentInfo),
        },
        Case {
            name: "range_quantile_truncated.bin",
            bytes: {
                let mut frame = WireFrame::from_value(
                    REQUEST_TAG,
                    &Request::RangeQuantile {
                        start_micros: 1_000,
                        end_micros: 5_000_000,
                        phi: 0.5,
                    },
                );
                frame.payload.truncate(frame.payload.len() - 2);
                frame.to_bytes()
            },
            expect: Expect::Request(WireError::Truncated),
        },
        Case {
            name: "range_heavy_hitters_trailing.bin",
            bytes: {
                let mut frame = WireFrame::from_value(
                    REQUEST_TAG,
                    &Request::RangeHeavyHitters {
                        start_micros: 0,
                        end_micros: u64::MAX,
                        phi: 0.01,
                    },
                );
                frame.payload.push(0xAB);
                frame.to_bytes()
            },
            expect: Expect::Request(WireError::Trailing(1)),
        },
        Case {
            name: "segment_info_trailing.bin",
            bytes: WireFrame {
                tag: REQUEST_TAG,
                payload: vec![14, 0x00],
            }
            .to_bytes(),
            expect: Expect::Request(WireError::Trailing(1)),
        },
        Case {
            name: "range_quantile_bad_magic.bin",
            bytes: {
                let mut b = WireFrame::from_value(
                    REQUEST_TAG,
                    &Request::RangeQuantile {
                        start_micros: 1_000,
                        end_micros: 5_000_000,
                        phi: 0.5,
                    },
                )
                .to_bytes();
                b[0] = b'Q';
                b[1] = b'R';
                b
            },
            expect: Expect::Frame(WireError::BadMagic([b'Q', b'R'])),
        },
        Case {
            name: "range_quantile_cut_frame.bin",
            bytes: {
                let b = WireFrame::from_value(
                    REQUEST_TAG,
                    &Request::RangeQuantile {
                        start_micros: 1_000,
                        end_micros: 5_000_000,
                        phi: 0.5,
                    },
                )
                .to_bytes();
                b[..b.len() - 3].to_vec()
            },
            expect: Expect::Frame(WireError::Truncated),
        },
        // The observability opcodes (15 TraceDump, 16 AccuracyReport) are
        // payload-free like Telemetry; pin their exact frame bytes plus
        // trailing-byte, bad-magic, and cut-frame rejections.
        Case {
            name: "trace_dump_request.bin",
            bytes: WireFrame::from_value(REQUEST_TAG, &Request::TraceDump).to_bytes(),
            expect: Expect::Decodes(Request::TraceDump),
        },
        Case {
            name: "accuracy_report_request.bin",
            bytes: WireFrame::from_value(REQUEST_TAG, &Request::AccuracyReport).to_bytes(),
            expect: Expect::Decodes(Request::AccuracyReport),
        },
        Case {
            name: "trace_dump_trailing.bin",
            bytes: WireFrame {
                tag: REQUEST_TAG,
                payload: vec![15, 0x00],
            }
            .to_bytes(),
            expect: Expect::Request(WireError::Trailing(1)),
        },
        Case {
            name: "accuracy_report_trailing.bin",
            bytes: WireFrame {
                tag: REQUEST_TAG,
                payload: vec![16, 0xAB],
            }
            .to_bytes(),
            expect: Expect::Request(WireError::Trailing(1)),
        },
        Case {
            name: "trace_dump_bad_magic.bin",
            bytes: {
                let mut b = WireFrame::from_value(REQUEST_TAG, &Request::TraceDump).to_bytes();
                b[0] = b'T';
                b[1] = b'D';
                b
            },
            expect: Expect::Frame(WireError::BadMagic([b'T', b'D'])),
        },
        Case {
            name: "accuracy_report_cut_frame.bin",
            bytes: {
                let b = WireFrame::from_value(REQUEST_TAG, &Request::AccuracyReport).to_bytes();
                b[..b.len() - 1].to_vec()
            },
            expect: Expect::Frame(WireError::Truncated),
        },
        // The traced-request envelope (tag 0x12: trace context varints,
        // then the plain request encoding). Pin the exact bytes the
        // coordinator puts on the wire, the plain-frame fallback, and the
        // failure modes of a damaged context prefix.
        Case {
            name: "traced_query_request.bin",
            bytes: traced_frame(
                TraceContext {
                    trace_id: 0x1122_3344_5566_7788,
                    parent_span: 0x0000_9876_5432_10AB,
                },
                &Request::Quantile(0.5),
            )
            .to_bytes(),
            expect: Expect::Traced(
                Request::Quantile(0.5),
                RequestEnvelope {
                    ctx: Some(TraceContext {
                        trace_id: 0x1122_3344_5566_7788,
                        parent_span: 0x0000_9876_5432_10AB,
                    }),
                    deadline_micros: None,
                },
            ),
        },
        Case {
            name: "traced_plain_fallback.bin",
            bytes: WireFrame::from_value(REQUEST_TAG, &Request::Ping).to_bytes(),
            expect: Expect::Traced(Request::Ping, RequestEnvelope::default()),
        },
        Case {
            name: "traced_ctx_truncated.bin",
            bytes: {
                let mut frame = traced_frame(
                    TraceContext {
                        trace_id: 0x1122_3344_5566_7788,
                        parent_span: 0x0000_9876_5432_10AB,
                    },
                    &Request::Ping,
                );
                // Cut inside the varint trace context, before the request.
                frame.payload.truncate(1);
                frame.to_bytes()
            },
            expect: Expect::TracedErr(WireError::Truncated),
        },
        Case {
            name: "traced_trailing.bin",
            bytes: {
                let mut frame = traced_frame(
                    TraceContext {
                        trace_id: 0x1122_3344_5566_7788,
                        parent_span: 0x0000_9876_5432_10AB,
                    },
                    &Request::Ping,
                );
                frame.payload.push(0xFF);
                frame.to_bytes()
            },
            expect: Expect::TracedErr(WireError::Trailing(1)),
        },
        // The sentinel-0 deadline envelope (tag 0x12, first varint 0:
        // trace id, parent span, remaining budget in micros, then the
        // plain request). Pin the exact overload-control bytes a
        // deadline-carrying client puts on the wire — with a trace,
        // without one, and with the budget already spent — plus the
        // damaged forms.
        Case {
            name: "deadline_request.bin",
            bytes: deadline_frame(
                Some(TraceContext {
                    trace_id: 0x1122_3344_5566_7788,
                    parent_span: 0x0000_9876_5432_10AB,
                }),
                250_000,
                &Request::Quantile(0.5),
            )
            .to_bytes(),
            expect: Expect::Traced(
                Request::Quantile(0.5),
                RequestEnvelope {
                    ctx: Some(TraceContext {
                        trace_id: 0x1122_3344_5566_7788,
                        parent_span: 0x0000_9876_5432_10AB,
                    }),
                    deadline_micros: Some(250_000),
                },
            ),
        },
        Case {
            name: "deadline_no_trace_request.bin",
            bytes: deadline_frame(None, 1_000, &Request::Ingest(vec![7, 8, 9])).to_bytes(),
            expect: Expect::Traced(
                Request::Ingest(vec![7, 8, 9]),
                RequestEnvelope {
                    ctx: None,
                    deadline_micros: Some(1_000),
                },
            ),
        },
        Case {
            name: "deadline_spent_request.bin",
            bytes: deadline_frame(None, 0, &Request::Ping).to_bytes(),
            expect: Expect::Traced(
                Request::Ping,
                RequestEnvelope {
                    ctx: None,
                    deadline_micros: Some(0),
                },
            ),
        },
        Case {
            name: "deadline_truncated.bin",
            bytes: {
                let mut frame = deadline_frame(None, 250_000, &Request::Ping);
                // Cut inside the budget varint, before the request.
                frame.payload.truncate(4);
                frame.to_bytes()
            },
            expect: Expect::TracedErr(WireError::Truncated),
        },
        Case {
            name: "deadline_trailing.bin",
            bytes: {
                let mut frame = deadline_frame(None, 250_000, &Request::Ping);
                frame.payload.push(0xFF);
                frame.to_bytes()
            },
            expect: Expect::TracedErr(WireError::Trailing(1)),
        },
        Case {
            name: "deadline_bad_magic.bin",
            bytes: {
                let mut b = deadline_frame(None, 250_000, &Request::Ping).to_bytes();
                b[0] = b'D';
                b[1] = b'L';
                b
            },
            expect: Expect::Frame(WireError::BadMagic([b'D', b'L'])),
        },
        // The typed shed answer (Overloaded, with its retry-after hint):
        // pin the exact response bytes plus the damaged forms, so the
        // overload control plane's wire contract is as frozen as the
        // request side's.
        Case {
            name: "overloaded_response.bin",
            bytes: WireFrame::from_value(
                RESPONSE_TAG,
                &Response::Overloaded {
                    retry_after_micros: 250_000,
                },
            )
            .to_bytes(),
            expect: Expect::Answers(Response::Overloaded {
                retry_after_micros: 250_000,
            }),
        },
        Case {
            name: "overloaded_trailing.bin",
            bytes: {
                let mut frame = WireFrame::from_value(
                    RESPONSE_TAG,
                    &Response::Overloaded {
                        retry_after_micros: 250_000,
                    },
                );
                frame.payload.push(0xEE);
                frame.to_bytes()
            },
            expect: Expect::AnswersErr(WireError::Trailing(1)),
        },
        Case {
            name: "overloaded_truncated.bin",
            bytes: {
                let b = WireFrame::from_value(
                    RESPONSE_TAG,
                    &Response::Overloaded {
                        retry_after_micros: 250_000,
                    },
                )
                .to_bytes();
                b[..b.len() - 2].to_vec()
            },
            expect: Expect::Frame(WireError::Truncated),
        },
        Case {
            name: "overloaded_bad_magic.bin",
            bytes: {
                let mut b = WireFrame::from_value(
                    RESPONSE_TAG,
                    &Response::Overloaded {
                        retry_after_micros: 250_000,
                    },
                )
                .to_bytes();
                b[0] = b'O';
                b[1] = b'V';
                b
            },
            expect: Expect::Frame(WireError::BadMagic([b'O', b'V'])),
        },
    ]
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

#[test]
fn corpus_files_match_their_construction() {
    let dir = corpus_dir();
    if std::env::var_os("REGEN").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        for case in corpus() {
            std::fs::write(dir.join(case.name), &case.bytes).unwrap();
        }
        return;
    }
    for case in corpus() {
        let path = dir.join(case.name);
        let on_disk = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e} — run `REGEN=1 cargo test --test wire_corpus`",
                path.display()
            )
        });
        assert_eq!(
            on_disk, case.bytes,
            "{}: checked-in bytes diverge from construction — if the wire \
             format changed intentionally, regenerate with REGEN=1",
            case.name
        );
    }
}

#[test]
fn every_corpus_entry_fails_with_its_golden_error() {
    for case in corpus() {
        // Decode the *checked-in* bytes when present, else the built ones,
        // so the goldens really cover what is in the repository.
        let bytes = std::fs::read(corpus_dir().join(case.name)).unwrap_or(case.bytes);
        match case.expect {
            Expect::Frame(golden) => {
                let err = WireFrame::from_bytes(&bytes)
                    .expect_err(&format!("{}: frame decoded", case.name));
                assert_eq!(err, golden, "{}", case.name);
            }
            Expect::Request(golden) => {
                let frame = WireFrame::from_bytes(&bytes)
                    .unwrap_or_else(|e| panic!("{}: frame should parse, got {e}", case.name));
                let err =
                    decode_request(&frame).expect_err(&format!("{}: request decoded", case.name));
                assert_eq!(err, golden, "{}", case.name);
            }
            Expect::Decodes(golden) => {
                let frame = WireFrame::from_bytes(&bytes)
                    .unwrap_or_else(|e| panic!("{}: frame should parse, got {e}", case.name));
                let req = decode_request(&frame)
                    .unwrap_or_else(|e| panic!("{}: request should decode, got {e}", case.name));
                assert_eq!(req, golden, "{}", case.name);
                // A plain frame must decode identically through the
                // trace-aware path, with an empty envelope attached.
                let (req, envelope) = decode_traced_request(&frame)
                    .unwrap_or_else(|e| panic!("{}: traced decode failed, got {e}", case.name));
                assert_eq!(req, golden, "{}", case.name);
                assert_eq!(envelope, RequestEnvelope::default(), "{}", case.name);
            }
            Expect::Traced(golden_req, golden_envelope) => {
                let frame = WireFrame::from_bytes(&bytes)
                    .unwrap_or_else(|e| panic!("{}: frame should parse, got {e}", case.name));
                let (req, envelope) = decode_traced_request(&frame)
                    .unwrap_or_else(|e| panic!("{}: traced decode failed, got {e}", case.name));
                assert_eq!(req, golden_req, "{}", case.name);
                assert_eq!(envelope, golden_envelope, "{}", case.name);
                if frame.tag == TRACED_REQUEST_TAG {
                    let err = decode_request(&frame).expect_err(&format!(
                        "{}: trace-unaware decode accepted a traced frame",
                        case.name
                    ));
                    assert_eq!(err, WireError::BadTag(TRACED_REQUEST_TAG), "{}", case.name);
                }
            }
            Expect::TracedErr(golden) => {
                let frame = WireFrame::from_bytes(&bytes)
                    .unwrap_or_else(|e| panic!("{}: frame should parse, got {e}", case.name));
                let err = decode_traced_request(&frame)
                    .expect_err(&format!("{}: traced request decoded", case.name));
                assert_eq!(err, golden, "{}", case.name);
            }
            Expect::Answers(golden) => {
                let frame = WireFrame::from_bytes(&bytes)
                    .unwrap_or_else(|e| panic!("{}: frame should parse, got {e}", case.name));
                assert_eq!(frame.tag, RESPONSE_TAG, "{}", case.name);
                let response = frame
                    .value::<Response>()
                    .unwrap_or_else(|e| panic!("{}: response should decode, got {e}", case.name));
                assert_eq!(response, golden, "{}", case.name);
            }
            Expect::AnswersErr(golden) => {
                let frame = WireFrame::from_bytes(&bytes)
                    .unwrap_or_else(|e| panic!("{}: frame should parse, got {e}", case.name));
                let err = frame
                    .value::<Response>()
                    .expect_err(&format!("{}: response decoded", case.name));
                assert_eq!(err, golden, "{}", case.name);
            }
        }
    }
}

#[test]
fn the_reference_frame_itself_is_valid() {
    let frame = good_frame();
    let parsed = WireFrame::from_bytes(&frame.to_bytes()).unwrap();
    assert_eq!(parsed, frame);
    assert_eq!(
        decode_request(&parsed).unwrap(),
        Request::Ingest(vec![1, 2, 3, 500, 70_000])
    );
}

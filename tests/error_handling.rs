//! Failure injection: incompatible summaries must merge into typed errors,
//! never into a silently wrong summary.

use mergeable_summaries::core::{ItemSummary, MergeError, Mergeable};
use mergeable_summaries::range::{EpsApprox2d, Halving};
use mergeable_summaries::{
    AmsF2Sketch, BottomKSample, CountMinSketch, CountSketch, EpsKernel, Frame, GkSummary,
    HybridQuantile, KnownNQuantile, MgSummary, SpaceSavingSummary,
};

#[test]
fn mg_capacity_mismatch() {
    let mut a = MgSummary::new(4);
    a.update(1u64);
    let b = MgSummary::new(5);
    match a.merge(b) {
        Err(MergeError::CapacityMismatch {
            parameter,
            left,
            right,
        }) => {
            assert!(parameter.contains("counters"));
            assert_eq!((left, right), (4, 5));
        }
        other => panic!("expected CapacityMismatch, got {other:?}"),
    }
}

#[test]
fn ss_capacity_mismatch() {
    let a = SpaceSavingSummary::<u64>::new(4);
    let b = SpaceSavingSummary::<u64>::new(8);
    assert!(matches!(
        a.merge(b),
        Err(MergeError::CapacityMismatch { .. })
    ));
}

#[test]
fn count_min_shape_and_seed_mismatches() {
    let base = || CountMinSketch::<u64>::new(32, 4, 7);
    assert!(matches!(
        base().merge(CountMinSketch::new(64, 4, 7)),
        Err(MergeError::CapacityMismatch { .. })
    ));
    assert!(matches!(
        base().merge(CountMinSketch::new(32, 5, 7)),
        Err(MergeError::CapacityMismatch { .. })
    ));
    assert!(matches!(
        base().merge(CountMinSketch::new(32, 4, 8)),
        Err(MergeError::SeedMismatch { .. })
    ));
}

#[test]
fn count_sketch_and_ams_family_mismatches() {
    let cs = CountSketch::<u64>::new(16, 3, 1);
    assert!(matches!(
        cs.merge(CountSketch::new(16, 3, 2)),
        Err(MergeError::SeedMismatch { .. })
    ));
    let ams = AmsF2Sketch::<u64>::new(8, 3, 1);
    assert!(matches!(
        ams.merge(AmsF2Sketch::new(16, 3, 1)),
        Err(MergeError::CapacityMismatch { .. })
    ));
}

#[test]
fn quantile_epsilon_mismatches() {
    let a = KnownNQuantile::<u64>::new(0.1, 1_000, 0);
    let b = KnownNQuantile::<u64>::new(0.01, 1_000, 0);
    assert!(matches!(
        a.merge(b),
        Err(MergeError::EpsilonMismatch { .. })
    ));
    let a = HybridQuantile::<u64>::new(0.1, 0);
    let b = HybridQuantile::<u64>::new(0.01, 0);
    assert!(matches!(
        a.merge(b),
        Err(MergeError::EpsilonMismatch { .. })
    ));
    let a = GkSummary::<u64>::new(0.1);
    let b = GkSummary::<u64>::new(0.2);
    assert!(matches!(
        a.merge(b),
        Err(MergeError::EpsilonMismatch { .. })
    ));
}

#[test]
fn sample_capacity_mismatch() {
    let a = BottomKSample::<u64>::new(16, 0);
    let b = BottomKSample::<u64>::new(32, 0);
    assert!(matches!(
        a.merge(b),
        Err(MergeError::CapacityMismatch { .. })
    ));
}

#[test]
fn approx2d_parameter_mismatches() {
    let a = EpsApprox2d::new(64, Halving::Hilbert, 0);
    let b = EpsApprox2d::new(32, Halving::Hilbert, 0);
    assert!(matches!(
        a.merge(b),
        Err(MergeError::CapacityMismatch { .. })
    ));
    let a = EpsApprox2d::new(64, Halving::Hilbert, 0);
    let b = EpsApprox2d::new(64, Halving::SortedX, 0);
    assert!(matches!(a.merge(b), Err(MergeError::Incompatible(_))));
}

#[test]
fn kernel_frame_mismatch() {
    let a = EpsKernel::new(0.1, Frame::identity());
    let b = EpsKernel::new(
        0.1,
        Frame {
            x0: 0.0,
            y0: 0.0,
            sx: 2.0,
            sy: 1.0,
        },
    );
    assert!(matches!(a.merge(b), Err(MergeError::FrameMismatch)));
}

#[test]
fn error_messages_name_the_parameter() {
    let a = MgSummary::<u64>::new(4);
    let err = a.merge(MgSummary::new(5)).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("counters") && msg.contains('4') && msg.contains('5'),
        "{msg}"
    );

    let k = EpsKernel::new(0.1, Frame::identity());
    let err = k
        .merge(EpsKernel::new(
            0.1,
            Frame {
                x0: 1.0,
                y0: 0.0,
                sx: 1.0,
                sy: 1.0,
            },
        ))
        .unwrap_err();
    assert!(err.to_string().contains("frame"), "{err}");
}

#[test]
fn failed_merges_do_not_panic_in_trees() {
    // A mismatched leaf inside a tree surfaces as an error from merge_all.
    use mergeable_summaries::core::{merge_all, MergeTree};
    let mut leaves: Vec<MgSummary<u64>> = (0..4).map(|_| MgSummary::new(4)).collect();
    leaves.push(MgSummary::new(5));
    let result = merge_all(leaves, MergeTree::Balanced);
    assert!(matches!(result, Err(MergeError::CapacityMismatch { .. })));
}

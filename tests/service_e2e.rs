//! Acceptance test for the sharded concurrent aggregation service: four
//! producer threads push a million-item seeded Zipf stream through a
//! 4-shard engine, and the published snapshot must answer heavy-hitter and
//! quantile queries within the paper's error bounds — the merge guarantee
//! (PODS'12 Definition 1) is exactly what makes the nondeterministic
//! interleaving of shard hand-offs harmless. The snapshot must also
//! survive a trip through the binary wire codec for every family.

use std::sync::Arc;

use mergeable_summaries::core::{FrequencyOracle, RankOracle, Summary, Wire};
use mergeable_summaries::service::{Engine, ServiceConfig, ShardSummary, SummaryKind};
use mergeable_summaries::workloads::StreamKind;

const N: usize = 1_000_000;
const EPS: f64 = 0.01;
const SHARDS: usize = 4;
const SEED: u64 = 0xE2E;

fn zipf_stream() -> Vec<u64> {
    StreamKind::Zipf {
        s: 1.2,
        universe: 1 << 18,
    }
    .generate(N, SEED)
}

/// Run `items` through a fresh engine with four concurrent producer
/// threads and return the final published snapshot's summary.
fn ingest_concurrently(kind: SummaryKind, items: &[u64]) -> ShardSummary {
    let cfg = ServiceConfig::new(kind, EPS)
        .shards(SHARDS)
        .delta_updates(8_192)
        .seed(SEED);
    let engine = Engine::start(cfg).expect("engine start");
    std::thread::scope(|scope| {
        for part in items.chunks(items.len().div_ceil(4)) {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for chunk in part.chunks(1_000) {
                    engine.ingest(chunk.to_vec()).unwrap();
                }
            });
        }
    });
    let snapshot = engine.shutdown();
    assert_eq!(snapshot.summary.total_weight(), items.len() as u64);
    snapshot.summary.clone()
}

#[test]
fn concurrent_heavy_hitters_meet_the_paper_bound() {
    let items = zipf_stream();
    let oracle = FrequencyOracle::from_stream(items.iter().copied());
    let bound = (EPS * N as f64).ceil() as u64;

    for kind in [SummaryKind::Mg, SummaryKind::SpaceSaving] {
        let summary = ingest_concurrently(kind, &items);

        // Frequency error ≤ εn for every item the truth says matters …
        for (item, truth) in oracle.top_k(50) {
            let est = summary.point(item).expect("counter summary");
            assert!(
                est.abs_diff(truth) <= bound,
                "{}: item {item}: est {est}, truth {truth}",
                kind.label()
            );
        }
        // … and every true φ-heavy hitter is reported at φ = 2ε.
        let phi = 2.0 * EPS;
        let reported = summary.heavy_hitters(EPS).expect("counter summary");
        for (item, truth) in oracle.iter() {
            if truth as f64 >= phi * N as f64 {
                assert!(
                    reported.iter().any(|(i, _)| i == item),
                    "{}: heavy item {item} (truth {truth}) missing",
                    kind.label()
                );
            }
        }
    }
}

#[test]
fn concurrent_quantiles_meet_the_paper_bound() {
    let items = zipf_stream();
    let oracle = RankOracle::from_stream(items.iter().copied());
    let summary = ingest_concurrently(SummaryKind::HybridQuantile, &items);
    let bound = (EPS * N as f64).ceil() as u64;

    for i in 1..20 {
        let phi = i as f64 / 20.0;
        let probe = *oracle.quantile(phi).expect("nonempty");
        let est = summary.rank(probe).expect("quantile summary");
        let err = oracle.rank_error(&probe, est);
        assert!(err <= bound, "phi {phi}: rank error {err} > {bound}");
    }
}

#[test]
fn concurrent_count_min_never_underestimates() {
    let items = zipf_stream();
    let oracle = FrequencyOracle::from_stream(items.iter().copied());
    let summary = ingest_concurrently(SummaryKind::CountMin, &items);
    let bound = (EPS * N as f64).ceil() as u64;

    for (item, truth) in oracle.top_k(100) {
        let est = summary.point(item).expect("counter summary");
        assert!(est >= truth, "item {item}: est {est} < truth {truth}");
        assert!(
            est - truth <= bound,
            "item {item}: overshoot {} > {bound}",
            est - truth
        );
    }
}

#[test]
fn snapshots_survive_the_wire_codec() {
    // A short stream suffices: this checks the codec, not the bounds.
    let items = StreamKind::Zipf {
        s: 1.2,
        universe: 1 << 12,
    }
    .generate(50_000, SEED);
    for kind in SummaryKind::all() {
        let cfg = ServiceConfig::new(kind, EPS).shards(SHARDS).seed(SEED);
        let engine = Engine::start(cfg).expect("engine start");
        for chunk in items.chunks(1_000) {
            engine.ingest(chunk.to_vec()).unwrap();
        }
        let snapshot = engine.shutdown();
        let back = ShardSummary::decode(&snapshot.summary.encode()).expect("decode");
        assert_eq!(back.kind(), kind);
        assert_eq!(back.total_weight(), snapshot.summary.total_weight());
        assert_eq!(back.size(), snapshot.summary.size(), "{}", kind.label());
        for probe in 0..32 {
            assert_eq!(back.point(probe), snapshot.summary.point(probe));
            assert_eq!(back.rank(probe), snapshot.summary.rank(probe));
        }
        assert_eq!(back.quantile(0.5), snapshot.summary.quantile(0.5));
    }
}

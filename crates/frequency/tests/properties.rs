//! Property tests for the heavy-hitter summaries: the §3 invariants over
//! randomized weighted update sequences (seeded, so failures reproduce).

use ms_core::{ItemSummary, Mergeable, Rng64, Summary};
use ms_frequency::isomorphism::{check_isomorphism, mg_offset};
use ms_frequency::{ExactCounts, MgSummary, SpaceSavingSummary};

const CASES: u64 = 96;

/// Weighted updates over a small universe (collisions likely).
fn updates(rng: &mut Rng64) -> Vec<(u64, u64)> {
    let len = rng.below_usize(600);
    (0..len)
        .map(|_| (rng.below(40), 1 + rng.below(49)))
        .collect()
}

/// MG with weighted updates: never overestimates, integer-exact error
/// bound, capacity respected, total weight exact.
#[test]
fn mg_weighted_invariant() {
    let mut rng = Rng64::new(0xF0_01);
    for _ in 0..CASES {
        let updates = updates(&mut rng);
        let k = 1 + rng.below_usize(23);
        let mut mg = MgSummary::new(k);
        let mut exact = ExactCounts::new();
        for &(item, w) in &updates {
            mg.update_weighted(item, w);
            exact.update_weighted(item, w);
        }
        assert_eq!(mg.total_weight(), exact.total_weight());
        assert!(mg.size() <= k);
        let err_num = mg.error_numerator();
        for item in 0u64..40 {
            let truth = exact.estimate(&item);
            let est = mg.estimate(&item);
            assert!(est <= truth);
            assert!((truth - est) * (k as u64 + 1) <= err_num);
            assert!(mg.estimate_upper(&item) >= truth);
        }
    }
}

/// SpaceSaving with weighted updates: bracket always correct, sum of
/// counters equals n in the streaming representation.
#[test]
fn ss_weighted_invariant() {
    let mut rng = Rng64::new(0xF0_02);
    for _ in 0..CASES {
        let updates = updates(&mut rng);
        let k = 2 + rng.below_usize(22);
        let mut ss = SpaceSavingSummary::new(k);
        let mut exact = ExactCounts::new();
        for &(item, w) in &updates {
            ss.update_weighted(item, w);
            exact.update_weighted(item, w);
        }
        assert_eq!(ss.total_weight(), exact.total_weight());
        assert!(ss.size() <= k);
        let stored: u64 = ss.iter().map(|(_, c)| c).sum();
        assert_eq!(stored, ss.total_weight(), "stream repr sums to n");
        for item in 0u64..40 {
            let truth = exact.estimate(&item);
            assert!(ss.lower_bound(&item) <= truth);
            assert!(ss.upper_bound(&item) >= truth);
        }
    }
}

/// The isomorphism lemma holds for weighted streams too (the decrement
/// argument carries through with weights).
#[test]
fn isomorphism_with_weights() {
    let mut rng = Rng64::new(0xF0_03);
    for _ in 0..CASES {
        let updates = updates(&mut rng);
        let k = 1 + rng.below_usize(15);
        let mut mg = MgSummary::new(k);
        let mut ss = SpaceSavingSummary::new(k + 1);
        for &(item, w) in &updates {
            mg.update_weighted(item, w);
            ss.update_weighted(item, w);
        }
        assert!(check_isomorphism(&mg, &ss).is_ok());
        assert!(mg_offset(&mg).is_some());
    }
}

/// Splitting a weighted stream at any point and merging the halves keeps
/// the invariant (merge = concatenation, error-wise).
#[test]
fn split_anywhere_and_merge() {
    let mut rng = Rng64::new(0xF0_04);
    for _ in 0..CASES {
        let updates = updates(&mut rng);
        let k = 1 + rng.below_usize(15);
        let cut_ppm = rng.below(1_000_000);
        let cut = (updates.len() as u64 * cut_ppm / 1_000_000) as usize;
        let mut left = MgSummary::new(k);
        let mut right = MgSummary::new(k);
        let mut exact = ExactCounts::new();
        for &(item, w) in &updates[..cut] {
            left.update_weighted(item, w);
            exact.update_weighted(item, w);
        }
        for &(item, w) in &updates[cut..] {
            right.update_weighted(item, w);
            exact.update_weighted(item, w);
        }
        let merged = left.merge(right).unwrap();
        let err_num = merged.error_numerator();
        assert!(err_num <= merged.total_weight());
        for item in 0u64..40 {
            let truth = exact.estimate(&item);
            let est = merged.estimate(&item);
            assert!(est <= truth);
            assert!((truth - est) * (k as u64 + 1) <= err_num);
        }
    }
}

/// SpaceSaving's conversion to MG form preserves the total weight and
/// produces a valid MG summary.
#[test]
fn ss_into_mg_is_valid() {
    let mut rng = Rng64::new(0xF0_05);
    for _ in 0..CASES {
        let updates = updates(&mut rng);
        let k = 2 + rng.below_usize(14);
        let mut ss = SpaceSavingSummary::new(k);
        let mut exact = ExactCounts::new();
        for &(item, w) in &updates {
            ss.update_weighted(item, w);
            exact.update_weighted(item, w);
        }
        let mg = ss.into_mg();
        assert_eq!(mg.total_weight(), exact.total_weight());
        assert!(mg.size() < k);
        let err_num = mg.error_numerator();
        for item in 0u64..40 {
            let truth = exact.estimate(&item);
            let est = mg.estimate(&item);
            assert!(est <= truth);
            assert!((truth - est) * (k as u64) <= err_num);
        }
    }
}

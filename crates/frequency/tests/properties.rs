//! Property tests for the heavy-hitter summaries: the §3 invariants over
//! arbitrary weighted update sequences.

use proptest::collection::vec;
use proptest::prelude::*;

use ms_core::{ItemSummary, Mergeable, Summary};
use ms_frequency::isomorphism::{check_isomorphism, mg_offset};
use ms_frequency::{ExactCounts, MgSummary, SpaceSavingSummary};

/// Weighted updates over a small universe (collisions likely).
fn updates() -> impl Strategy<Value = Vec<(u64, u64)>> {
    vec((0u64..40, 1u64..50), 0..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// MG with weighted updates: never overestimates, integer-exact error
    /// bound, capacity respected, total weight exact.
    #[test]
    fn mg_weighted_invariant(updates in updates(), k in 1usize..24) {
        let mut mg = MgSummary::new(k);
        let mut exact = ExactCounts::new();
        for &(item, w) in &updates {
            mg.update_weighted(item, w);
            exact.update_weighted(item, w);
        }
        prop_assert_eq!(mg.total_weight(), exact.total_weight());
        prop_assert!(mg.size() <= k);
        let err_num = mg.error_numerator();
        for item in 0u64..40 {
            let truth = exact.estimate(&item);
            let est = mg.estimate(&item);
            prop_assert!(est <= truth);
            prop_assert!((truth - est) * (k as u64 + 1) <= err_num);
            prop_assert!(mg.estimate_upper(&item) >= truth);
        }
    }

    /// SpaceSaving with weighted updates: bracket always correct, sum of
    /// counters equals n in the streaming representation.
    #[test]
    fn ss_weighted_invariant(updates in updates(), k in 2usize..24) {
        let mut ss = SpaceSavingSummary::new(k);
        let mut exact = ExactCounts::new();
        for &(item, w) in &updates {
            ss.update_weighted(item, w);
            exact.update_weighted(item, w);
        }
        prop_assert_eq!(ss.total_weight(), exact.total_weight());
        prop_assert!(ss.size() <= k);
        let stored: u64 = ss.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(stored, ss.total_weight(), "stream repr sums to n");
        for item in 0u64..40 {
            let truth = exact.estimate(&item);
            prop_assert!(ss.lower_bound(&item) <= truth);
            prop_assert!(ss.upper_bound(&item) >= truth);
        }
    }

    /// The isomorphism lemma holds for weighted streams too (the decrement
    /// argument carries through with weights).
    #[test]
    fn isomorphism_with_weights(updates in updates(), k in 1usize..16) {
        let mut mg = MgSummary::new(k);
        let mut ss = SpaceSavingSummary::new(k + 1);
        for &(item, w) in &updates {
            mg.update_weighted(item, w);
            ss.update_weighted(item, w);
        }
        prop_assert!(check_isomorphism(&mg, &ss).is_ok());
        prop_assert!(mg_offset(&mg).is_some());
    }

    /// Splitting a weighted stream at any point and merging the halves
    /// keeps the invariant (merge = concatenation, error-wise).
    #[test]
    fn split_anywhere_and_merge(
        updates in updates(),
        k in 1usize..16,
        cut_ppm in 0u32..1_000_000,
    ) {
        let cut = (updates.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        let mut left = MgSummary::new(k);
        let mut right = MgSummary::new(k);
        let mut exact = ExactCounts::new();
        for &(item, w) in &updates[..cut] {
            left.update_weighted(item, w);
            exact.update_weighted(item, w);
        }
        for &(item, w) in &updates[cut..] {
            right.update_weighted(item, w);
            exact.update_weighted(item, w);
        }
        let merged = left.merge(right).unwrap();
        let err_num = merged.error_numerator();
        prop_assert!(err_num <= merged.total_weight());
        for item in 0u64..40 {
            let truth = exact.estimate(&item);
            let est = merged.estimate(&item);
            prop_assert!(est <= truth);
            prop_assert!((truth - est) * (k as u64 + 1) <= err_num);
        }
    }

    /// SpaceSaving's conversion to MG form preserves the total weight and
    /// produces a valid MG summary.
    #[test]
    fn ss_into_mg_is_valid(updates in updates(), k in 2usize..16) {
        let mut ss = SpaceSavingSummary::new(k);
        let mut exact = ExactCounts::new();
        for &(item, w) in &updates {
            ss.update_weighted(item, w);
            exact.update_weighted(item, w);
        }
        let mg = ss.into_mg();
        prop_assert_eq!(mg.total_weight(), exact.total_weight());
        prop_assert!(mg.size() < k);
        let err_num = mg.error_numerator();
        for item in 0u64..40 {
            let truth = exact.estimate(&item);
            let est = mg.estimate(&item);
            prop_assert!(est <= truth);
            prop_assert!((truth - est) * (k as u64) <= err_num);
        }
    }
}

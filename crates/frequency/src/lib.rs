//! Mergeable heavy-hitter summaries (PODS'12, §3).
//!
//! This crate implements the frequency-estimation results of *Mergeable
//! summaries*:
//!
//! * [`MgSummary`] — the Misra-Gries (a.k.a. *Frequent*) summary with `k`
//!   counters. Estimates **underestimate** true frequencies by at most
//!   `(n − n̂)/(k+1) ≤ n/(k+1)`, where `n̂` is the total weight currently
//!   stored. The crate's central result is the merge algorithm that keeps
//!   exactly this bound under arbitrary merge trees (Theorem 1 of the
//!   paper): combine counter-wise, subtract the `(k+1)`-th largest combined
//!   counter from every counter, discard non-positive counters.
//! * [`SpaceSavingSummary`] — the SpaceSaving summary with `k` counters.
//!   Estimates **overestimate** by at most the minimum counter (streaming),
//!   and merging reduces to the MG merge through the isomorphism below.
//! * [`isomorphism`] — Lemma 1 of the paper: after the same input stream,
//!   the SpaceSaving summary with `k+1` counters equals the MG summary with
//!   `k` counters plus `(n − n̂)/(k+1)` added to every counter (and one
//!   extra counter holding exactly that value).
//! * [`ExactCounts`] — the trivially mergeable exact baseline.
//!
//! All counters hold `u64` weights and all error bounds are checked with
//! exact integer arithmetic (`(true − est)·(k+1) ≤ n − n̂`), so tests never
//! depend on floating-point rounding.

pub mod exact;
pub mod isomorphism;
pub mod mg;
pub mod space_saving;

pub use exact::ExactCounts;
pub use mg::MgSummary;
pub use space_saving::SpaceSavingSummary;

//! Exact counting — the trivially mergeable baseline.
//!
//! Keeps one counter per distinct item, so its size is unbounded: the point
//! of the paper's `O(1/ε)` summaries is to avoid exactly this. Experiments
//! use it to report the size a naive mergeable aggregation would need.

use std::hash::Hash;

use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{FxHashMap, ItemSummary, Mergeable, Result, Summary};

/// Exact per-item counts. Implements the same traits as the bounded
/// summaries so it can ride through the same merge trees.
#[derive(Debug, Clone, Default)]
pub struct ExactCounts<I> {
    counts: FxHashMap<I, u64>,
    n: u64,
}

impl<I: Wire + Eq + Hash> Wire for ExactCounts<I> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.counts.encode_into(out);
        self.n.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let counts = FxHashMap::<I, u64>::decode_from(r)?;
        let n = u64::decode_from(r)?;
        if counts.values().sum::<u64>() != n {
            return Err(WireError::Malformed("exact counts do not sum to n"));
        }
        Ok(ExactCounts { counts, n })
    }
}

impl<I: Eq + Hash + Clone> ExactCounts<I> {
    /// Empty baseline.
    pub fn new() -> Self {
        ExactCounts {
            counts: FxHashMap::default(),
            n: 0,
        }
    }

    /// Exact frequency of `item`.
    pub fn estimate(&self, item: &I) -> u64 {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// Items with frequency `> εn`, most frequent first.
    pub fn heavy_hitters(&self, epsilon: f64) -> Vec<(I, u64)> {
        let threshold = (epsilon * self.n as f64).floor() as u64;
        let mut out: Vec<(I, u64)> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c > threshold)
            .map(|(i, &c)| (i.clone(), c))
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out
    }
}

impl<I: Eq + Hash + Clone> Summary for ExactCounts<I> {
    fn total_weight(&self) -> u64 {
        self.n
    }

    fn size(&self) -> usize {
        self.counts.len()
    }
}

impl<I: Eq + Hash + Clone> ItemSummary<I> for ExactCounts<I> {
    fn update_weighted(&mut self, item: I, weight: u64) {
        if weight == 0 {
            return;
        }
        *self.counts.entry(item).or_insert(0) += weight;
        self.n = self
            .n
            .checked_add(weight)
            .expect("total weight overflows u64");
    }
}

impl<I: Eq + Hash + Clone> Mergeable for ExactCounts<I> {
    fn merge(mut self, other: Self) -> Result<Self> {
        for (item, c) in other.counts {
            *self.counts.entry(item).or_insert(0) += c;
        }
        self.n += other.n;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::{merge_all, MergeTree};

    #[test]
    fn counts_exactly() {
        let mut e = ExactCounts::new();
        e.extend_from([1u64, 1, 2, 3, 3, 3]);
        assert_eq!(e.estimate(&1), 2);
        assert_eq!(e.estimate(&3), 3);
        assert_eq!(e.estimate(&9), 0);
        assert_eq!(e.total_weight(), 6);
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn merge_is_exact_under_any_tree() {
        let items: Vec<u64> = (0..1000).map(|i| i * i % 101).collect();
        for shape in MergeTree::canonical() {
            let leaves: Vec<ExactCounts<u64>> = items
                .chunks(100)
                .map(|chunk| {
                    let mut e = ExactCounts::new();
                    e.extend_from(chunk.iter().copied());
                    e
                })
                .collect();
            let merged = merge_all(leaves, shape).unwrap();
            let reference = {
                let mut e = ExactCounts::new();
                e.extend_from(items.iter().copied());
                e
            };
            assert_eq!(merged.total_weight(), reference.total_weight());
            for item in 0..101u64 {
                assert_eq!(merged.estimate(&item), reference.estimate(&item));
            }
        }
    }

    #[test]
    fn heavy_hitters_sorted_descending() {
        let mut e = ExactCounts::new();
        e.extend_from([1u64, 1, 1, 2, 2, 3]);
        let hh = e.heavy_hitters(0.25);
        assert_eq!(hh, vec![(1, 3), (2, 2)]);
    }

    #[test]
    fn size_grows_with_distinct_items() {
        let mut e = ExactCounts::new();
        e.extend_from(0..10_000u64);
        assert_eq!(e.size(), 10_000);
    }
}

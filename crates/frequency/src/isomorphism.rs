//! The MG ⇄ SpaceSaving isomorphism (§3, Lemma 1 of the paper).
//!
//! After processing the same stream of total weight `n`:
//!
//! * the Misra-Gries summary with `k` counters stores weight `n̂`, and
//! * the SpaceSaving summary with `k+1` counters stores total weight
//!   exactly `n`,
//!
//! and the two are **isomorphic**: every SpaceSaving counter equals the
//! corresponding MG counter plus `δ = (n − n̂)/(k+1)`, with one extra
//! SpaceSaving counter holding exactly `δ` (the last-evicted slot). The
//! quantity `δ` is an integer on pure streams because each MG decrement
//! round discards exactly `k+1` units of weight.
//!
//! This module provides the conversion both ways and a checker used by the
//! E2 experiment. Conversions compare counter **values** (as multisets):
//! with tied counters the two algorithms may monitor different items, but
//! the value structure — and therefore every error bound — is identical.

use std::hash::Hash;

use ms_core::Summary;

use crate::mg::MgSummary;
use crate::space_saving::SpaceSavingSummary;

/// The per-counter offset `δ = (n − n̂)/(k+1)` relating an MG summary with
/// `k` counters to the SpaceSaving summary with `k+1` counters over the same
/// stream. Returns `None` when `n − n̂` is not divisible by `k+1` (which
/// cannot happen on a pure stream, but can after merges).
pub fn mg_offset<I: Eq + Hash + Clone>(mg: &MgSummary<I>) -> Option<u64> {
    let deficit = mg.error_numerator();
    let k1 = mg.capacity() as u64 + 1;
    deficit.is_multiple_of(k1).then(|| deficit / k1)
}

/// Descending multiset of counter values of an MG summary, shifted by `δ`
/// and padded with the phantom `δ` counter — the value profile the
/// isomorphic SpaceSaving summary must exhibit.
pub fn ss_profile_from_mg<I: Eq + Hash + Clone>(mg: &MgSummary<I>) -> Option<Vec<u64>> {
    let delta = mg_offset(mg)?;
    let mut values: Vec<u64> = mg.iter().map(|(_, c)| c + delta).collect();
    if delta > 0 {
        // δ > 0 means decrements happened, which requires more than k
        // distinct items: the SS summary is saturated with k+1 counters,
        // the extra one(s) sitting at exactly δ. (With δ = 0 nothing was
        // ever discarded, so SS holds exactly the MG counters — even when
        // MG is at capacity.)
        while values.len() < mg.capacity() + 1 {
            values.push(delta);
        }
    }
    values.sort_unstable_by(|a, b| b.cmp(a));
    Some(values)
}

/// Descending multiset of counter values of a SpaceSaving summary.
pub fn ss_profile<I: Eq + Hash + Clone>(ss: &SpaceSavingSummary<I>) -> Vec<u64> {
    let mut values: Vec<u64> = ss.iter().map(|(_, c)| c).collect();
    values.sort_unstable_by(|a, b| b.cmp(a));
    values
}

/// Verify Lemma 1 on a concrete pair of summaries built from the same
/// stream: MG with `k` counters vs SpaceSaving with `k+1` counters.
///
/// Returns `Ok(δ)` when the value profiles correspond, or a description of
/// the first discrepancy.
pub fn check_isomorphism<I: Eq + Hash + Clone>(
    mg: &MgSummary<I>,
    ss: &SpaceSavingSummary<I>,
) -> Result<u64, String> {
    if ss.capacity() != mg.capacity() + 1 {
        return Err(format!(
            "capacity mismatch: SS has {} counters, expected {}",
            ss.capacity(),
            mg.capacity() + 1
        ));
    }
    if ss.total_weight() != mg.total_weight() {
        return Err(format!(
            "weight mismatch: SS saw {}, MG saw {}",
            ss.total_weight(),
            mg.total_weight()
        ));
    }
    let delta = mg_offset(mg).ok_or_else(|| {
        format!(
            "MG deficit {} not divisible by k+1 = {}",
            mg.error_numerator(),
            mg.capacity() + 1
        )
    })?;
    let expected = ss_profile_from_mg(mg).expect("offset already validated");
    let actual = ss_profile(ss);
    if expected == actual {
        Ok(delta)
    } else {
        Err(format!(
            "profiles differ: expected {expected:?}, got {actual:?} (δ = {delta})"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::ItemSummary;
    use ms_workloads::StreamKind;

    fn build_pair(items: &[u64], k_mg: usize) -> (MgSummary<u64>, SpaceSavingSummary<u64>) {
        let mut mg = MgSummary::new(k_mg);
        let mut ss = SpaceSavingSummary::new(k_mg + 1);
        for &item in items {
            mg.update(item);
            ss.update(item);
        }
        (mg, ss)
    }

    #[test]
    fn identity_on_unsaturated_stream() {
        let items = vec![1u64, 2, 2, 3];
        let (mg, ss) = build_pair(&items, 8);
        let delta = check_isomorphism(&mg, &ss).unwrap();
        assert_eq!(delta, 0);
    }

    #[test]
    fn lemma_holds_on_uniform_stream() {
        let items = StreamKind::Uniform { universe: 200 }.generate(10_000, 1);
        for k in [4usize, 9, 16, 33] {
            let (mg, ss) = build_pair(&items, k);
            let delta = check_isomorphism(&mg, &ss).unwrap_or_else(|e| panic!("k = {k}: {e}"));
            // δ must equal MG's exact error term.
            assert_eq!(delta, mg.error_numerator() / (k as u64 + 1));
        }
    }

    #[test]
    fn lemma_holds_on_zipf_stream() {
        let items = StreamKind::Zipf {
            s: 1.3,
            universe: 1000,
        }
        .generate(20_000, 2);
        for k in [5usize, 10, 50] {
            let (mg, ss) = build_pair(&items, k);
            check_isomorphism(&mg, &ss).unwrap_or_else(|e| panic!("k = {k}: {e}"));
        }
    }

    #[test]
    fn lemma_holds_on_all_distinct_stream() {
        let items = StreamKind::AllDistinct.generate(5000, 0);
        let (mg, ss) = build_pair(&items, 7);
        let delta = check_isomorphism(&mg, &ss).unwrap();
        assert!(delta > 0, "distinct stream must force evictions");
    }

    #[test]
    fn capacity_mismatch_is_reported() {
        let items = vec![1u64, 2, 3];
        let mut mg = MgSummary::new(4);
        let mut ss = SpaceSavingSummary::new(4); // should be 5
        for &i in &items {
            mg.update(i);
            ss.update(i);
        }
        let err = check_isomorphism(&mg, &ss).unwrap_err();
        assert!(err.contains("capacity"), "{err}");
    }

    #[test]
    fn weight_mismatch_is_reported() {
        let mut mg = MgSummary::new(4);
        let mut ss = SpaceSavingSummary::new(5);
        mg.update(1u64);
        mg.update(2);
        ss.update(1u64);
        let err = check_isomorphism(&mg, &ss).unwrap_err();
        assert!(err.contains("weight"), "{err}");
    }

    #[test]
    fn into_mg_agrees_with_native_mg_profile() {
        // SS(k+1).into_mg() produces an MG(k)-equivalent whose counter
        // values match the natively built MG(k) on the same stream.
        let items = StreamKind::Zipf {
            s: 1.1,
            universe: 300,
        }
        .generate(8000, 5);
        let (mg, ss) = build_pair(&items, 9);
        let converted = ss.into_mg();
        let mut native: Vec<u64> = mg.iter().map(|(_, c)| c).collect();
        let mut conv: Vec<u64> = converted.iter().map(|(_, c)| c).collect();
        native.sort_unstable();
        conv.sort_unstable();
        assert_eq!(native, conv);
        assert_eq!(converted.total_weight(), mg.total_weight());
    }

    #[test]
    fn offset_is_integer_on_streams() {
        let items = StreamKind::HotSet {
            hot: 10,
            hot_fraction: 0.6,
            universe: 10_000,
        }
        .generate(15_000, 8);
        let mut mg = MgSummary::new(12);
        mg.extend_from(items);
        assert!(mg_offset(&mg).is_some());
    }
}

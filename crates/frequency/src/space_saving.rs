//! The SpaceSaving summary (Metwally et al.) and its PODS'12 merge.
//!
//! # Two representations, one guarantee
//!
//! While a summary is built by **streaming**, it uses the classic
//! SpaceSaving representation: `k` counters, every arrival increments a
//! counter (evicting a minimum counter when the item is new and the summary
//! is full), so the counters sum to exactly `n` and every stored counter is
//! an **upper bound** on the item's true frequency, over by at most the
//! minimum counter `≤ n/k`.
//!
//! **Merging** uses the isomorphism of §3 of the paper: a SpaceSaving
//! summary with `k` counters carries exactly the information of a
//! Misra-Gries summary with `k−1` counters (subtract the minimum counter
//! from every counter and drop the zeros). The merge converts both inputs
//! to MG form, applies the MG merge (Theorem 1), and keeps the result in MG
//! form: counters are then **lower bounds**, and the deficit `n − n̂`
//! (weight not represented in the counters) yields integer-exact upper
//! bounds `counter + ⌈(n − n̂)/k⌉`. The MG invariant
//! `(f(x) − est(x))·k ≤ n − n̂` is self-maintaining under this merge —
//! stripping the minimum `m` removes exactly `k·m` of stored weight,
//! covering the `m` of extra underestimation `k`-fold, and the prune step
//! covers itself the same way — so merged summaries keep the `εn = n/k`
//! guarantee under arbitrary merge trees with no error metadata.
//!
//! The public API exposes the guarantee uniformly through
//! [`SpaceSavingSummary::lower_bound`] / [`SpaceSavingSummary::upper_bound`]:
//! in both representations the true frequency of **every** item (stored or
//! not) lies in `[lower_bound, upper_bound]`, and the bracket width is at
//! most `2·⌈n/k⌉`.

use std::hash::Hash;

use ms_core::error::ensure_same_capacity;
use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{FxHashMap, ItemSummary, Json, Mergeable, Result, Summary, ToJson};

use crate::mg::MgSummary;

/// Which invariant the counter table currently satisfies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Repr {
    /// Classic SpaceSaving: counters sum to `n`, counters overestimate.
    Stream,
    /// Misra-Gries form (capacity `k−1`): counters underestimate and
    /// `n − n̂` bounds the total underestimation `k`-fold.
    Merged,
}

/// Value-bucket index over the streaming counter table, so evictions find
/// a minimum counter in `O(log k)` instead of scanning all `k` counters.
///
/// Maintained only in the streaming representation; rebuilt lazily after
/// deserialization (it is derived state, so it is not serialized) and
/// dropped on merge.
#[derive(Debug, Clone, Default)]
struct MinIndex<I> {
    buckets: std::collections::BTreeMap<u64, ms_core::FxHashSet<I>>,
}

impl<I: Eq + Hash + Clone> MinIndex<I> {
    fn build(counters: &FxHashMap<I, u64>) -> Self {
        let mut index = MinIndex {
            buckets: std::collections::BTreeMap::new(),
        };
        for (item, &count) in counters {
            index.buckets.entry(count).or_default().insert(item.clone());
        }
        index
    }

    /// Record that `item` moved from count `old` (0 = newly inserted) to
    /// count `new`.
    fn bump(&mut self, item: &I, old: u64, new: u64) {
        if old > 0 {
            self.remove(item, old);
        }
        self.buckets.entry(new).or_default().insert(item.clone());
    }

    fn remove(&mut self, item: &I, count: u64) {
        let bucket = self
            .buckets
            .get_mut(&count)
            .expect("index out of sync: missing bucket");
        let removed = bucket.remove(item);
        debug_assert!(removed, "index out of sync: missing item");
        if bucket.is_empty() {
            self.buckets.remove(&count);
        }
    }

    /// Remove and return one arbitrary item at the minimum count.
    fn pop_min(&mut self) -> (I, u64) {
        let (&count, bucket) = self
            .buckets
            .iter_mut()
            .next()
            .expect("pop_min on empty index");
        let item = bucket.iter().next().expect("buckets are non-empty").clone();
        bucket.remove(&item);
        if bucket.is_empty() {
            self.buckets.remove(&count);
        }
        (item, count)
    }
}

/// SpaceSaving summary with at most `k` counters.
///
/// ```
/// use ms_core::{ItemSummary, Mergeable};
/// use ms_frequency::SpaceSavingSummary;
///
/// let mut ss = SpaceSavingSummary::new(4);
/// for item in [1u64, 1, 1, 2, 3, 4, 5, 1] {
///     ss.update(item);
/// }
/// // The true frequency of every item lies in [lower, upper].
/// assert!(ss.lower_bound(&1) <= 4 && 4 <= ss.upper_bound(&1));
/// // Items never seen are bounded too.
/// assert!(ss.upper_bound(&999) <= 8 / 4 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSavingSummary<I> {
    k: usize,
    counters: FxHashMap<I, u64>,
    n: u64,
    repr: Repr,
    /// Derived eviction index (streaming representation only); rebuilt on
    /// demand after decoding or cloning from a merged summary.
    index: Option<MinIndex<I>>,
    /// Reusable sort buffer for the in-place merge's prune step. Kept
    /// empty between calls; never part of the logical state.
    scratch: Vec<u64>,
}

impl<I: Wire + Eq + Hash> Wire for SpaceSavingSummary<I> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.k.encode_into(out);
        self.counters.encode_into(out);
        self.n.encode_into(out);
        // The eviction index is derived state and is rebuilt lazily.
        out.push(match self.repr {
            Repr::Stream => 0,
            Repr::Merged => 1,
        });
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let k = usize::decode_from(r)?;
        let counters = FxHashMap::<I, u64>::decode_from(r)?;
        let n = u64::decode_from(r)?;
        let repr = match r.byte()? {
            0 => Repr::Stream,
            1 => Repr::Merged,
            _ => return Err(WireError::Malformed("unknown SpaceSaving representation")),
        };
        if k < 2 {
            return Err(WireError::Malformed("SpaceSaving needs k >= 2"));
        }
        let cap = match repr {
            Repr::Stream => k,
            Repr::Merged => k - 1,
        };
        if counters.len() > cap {
            return Err(WireError::Malformed("SpaceSaving has more than k counters"));
        }
        let stored: u64 = counters.values().sum();
        let valid = match repr {
            // Streaming invariant: counters sum to exactly n.
            Repr::Stream => stored == n,
            // Merged (MG) form: counters underestimate, so n̂ ≤ n.
            Repr::Merged => stored <= n,
        };
        if !valid {
            return Err(WireError::Malformed(
                "SpaceSaving counter sum violates repr",
            ));
        }
        Ok(SpaceSavingSummary {
            k,
            counters,
            n,
            repr,
            index: None,
            scratch: Vec::new(),
        })
    }
}

impl<I: ToJson> ToJson for SpaceSavingSummary<I> {
    fn to_json(&self) -> Json {
        Json::obj([
            ("k", Json::U64(self.k as u64)),
            (
                "repr",
                Json::Str(
                    match self.repr {
                        Repr::Stream => "stream",
                        Repr::Merged => "merged",
                    }
                    .to_string(),
                ),
            ),
            (
                "counters",
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|(i, &c)| Json::Arr(vec![i.to_json(), Json::U64(c)]))
                        .collect(),
                ),
            ),
            ("n", Json::U64(self.n)),
        ])
    }
}

impl<I: Eq + Hash + Clone> SpaceSavingSummary<I> {
    /// Create a summary with `k ≥ 2` counters (error `≤ n/k`).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (the MG-equivalent form needs `k−1 ≥ 1` counters).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "SpaceSavingSummary needs at least two counters");
        SpaceSavingSummary {
            k,
            counters: FxHashMap::default(),
            n: 0,
            repr: Repr::Stream,
            index: None,
            scratch: Vec::new(),
        }
    }

    /// Create a summary guaranteeing error `≤ εn`: uses `k = ⌈1/ε⌉`
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn for_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        Self::new(((1.0 / epsilon).ceil() as usize).max(2))
    }

    /// Counter capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Smallest stored counter (0 if the summary is not saturated).
    pub fn min_counter(&self) -> u64 {
        if self.counters.len() < self.k {
            0
        } else {
            self.counters.values().copied().min().unwrap_or(0)
        }
    }

    /// Guaranteed lower bound on the true frequency of `item`.
    pub fn lower_bound(&self, item: &I) -> u64 {
        match self.repr {
            Repr::Stream => {
                let c = self.counters.get(item).copied().unwrap_or(0);
                c.saturating_sub(self.stream_error())
            }
            Repr::Merged => self.counters.get(item).copied().unwrap_or(0),
        }
    }

    /// Guaranteed upper bound on the true frequency of `item` — also valid
    /// for items the summary has never seen.
    pub fn upper_bound(&self, item: &I) -> u64 {
        match self.repr {
            Repr::Stream => self
                .counters
                .get(item)
                .copied()
                .unwrap_or_else(|| self.stream_error()),
            Repr::Merged => self.counters.get(item).copied().unwrap_or(0) + self.merged_error(),
        }
    }

    /// Point estimate: the upper bound (the conventional SpaceSaving
    /// answer) for stored items, 0 for unstored items.
    pub fn estimate(&self, item: &I) -> u64 {
        match self.repr {
            Repr::Stream => self.counters.get(item).copied().unwrap_or(0),
            Repr::Merged => match self.counters.get(item) {
                Some(&c) => c + self.merged_error(),
                None => 0,
            },
        }
    }

    /// The guaranteed error radius: for every item the true frequency lies
    /// within `error_bound()` of [`Self::estimate`] (taking absent items'
    /// estimate as 0 with one-sided error). Always `≤ ⌈n/k⌉`.
    pub fn error_bound(&self) -> u64 {
        match self.repr {
            Repr::Stream => self.stream_error(),
            Repr::Merged => self.merged_error(),
        }
    }

    /// Items whose upper bound exceeds `εn` — contains every true ε-heavy
    /// hitter.
    pub fn heavy_hitters(&self, epsilon: f64) -> Vec<(I, u64)> {
        let threshold = epsilon * self.n as f64;
        let mut out: Vec<(I, u64)> = self
            .counters
            .keys()
            .filter_map(|i| {
                let ub = self.upper_bound(i);
                (ub as f64 > threshold).then(|| (i.clone(), ub))
            })
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out
    }

    /// The `k` stored items with the largest upper bounds.
    pub fn top_k(&self, k: usize) -> Vec<(I, u64)> {
        let mut all: Vec<(I, u64)> = self
            .counters
            .keys()
            .map(|i| (i.clone(), self.upper_bound(i)))
            .collect();
        all.sort_by_key(|e| std::cmp::Reverse(e.1));
        all.truncate(k);
        all
    }

    /// Iterate over stored `(item, raw counter)` pairs in unspecified
    /// order. Counter semantics depend on the representation; prefer the
    /// bound accessors for guaranteed statements.
    pub fn iter(&self) -> impl Iterator<Item = (&I, u64)> {
        self.counters.iter().map(|(i, &c)| (i, c))
    }

    /// Convert into the isomorphic Misra-Gries summary with `k−1` counters
    /// (§3, Lemma 1): subtract the minimum counter from every counter and
    /// drop zeros. A merged-form summary is already MG-form and converts
    /// losslessly.
    pub fn into_mg(mut self) -> MgSummary<I> {
        self.make_merged();
        MgSummary::from_parts(self.k - 1, self.counters, self.n)
    }

    /// In-place §3 merge: convert both tables to the MG (`k−1`) form, fold
    /// `other`'s counters into `self`, and prune — the same result as
    /// [`Mergeable::merge`] without rebuilding `self`'s counter table. On
    /// error (capacity mismatch) `self` is left untouched.
    pub fn merge_from(&mut self, mut other: Self) -> Result<()> {
        ensure_same_capacity("counters (k)", self.k, other.k)?;
        self.make_merged();
        other.make_merged();
        self.n += other.n;
        for (item, c) in other.counters {
            *self.counters.entry(item).or_insert(0) += c;
        }
        self.prune_merged();
        Ok(())
    }

    /// Convert the counter table to the MG (`k−1`) representation in place
    /// (§3, Lemma 1): when the streaming table is saturated, subtract the
    /// minimum counter and drop zeros.
    fn make_merged(&mut self) {
        if self.repr == Repr::Stream {
            if self.counters.len() == self.k {
                let m = self.counters.values().copied().min().unwrap_or(0);
                self.counters.retain(|_, c| {
                    *c -= m;
                    *c > 0
                });
            }
            self.repr = Repr::Merged;
            self.index = None;
        }
    }

    /// MG prune at capacity `k−1`: subtract the `k`-th largest counter
    /// value from every counter and discard non-positive ones. Selects in
    /// the reusable scratch buffer, so repeated prunes allocate nothing.
    fn prune_merged(&mut self) {
        let cap = self.k - 1;
        if self.counters.len() <= cap {
            return;
        }
        let mut values = std::mem::take(&mut self.scratch);
        values.extend(self.counters.values().copied());
        // O(n) quickselect for the k-th largest; the subtrahend `s` is the
        // same value the old descending full sort produced at index `cap`.
        let (_, &mut s, _) = values.select_nth_unstable_by(cap, |a, b| b.cmp(a));
        values.clear();
        self.scratch = values;
        self.counters.retain(|_, c| {
            if *c > s {
                *c -= s;
                true
            } else {
                false
            }
        });
        debug_assert!(self.counters.len() <= cap);
    }

    /// Streaming-representation error: the minimum counter when saturated.
    fn stream_error(&self) -> u64 {
        self.min_counter()
    }

    /// Merged-representation error: `⌈(n − n̂)/k⌉` from the MG deficit.
    fn merged_error(&self) -> u64 {
        let stored: u64 = self.counters.values().sum();
        (self.n - stored).div_ceil(self.k as u64)
    }

    /// Misra-Gries update with capacity `k−1` (used after a merge; the MG
    /// invariant keeps the merged guarantee self-maintaining).
    fn update_merged(&mut self, item: I, weight: u64) {
        self.n += weight;
        if let Some(c) = self.counters.get_mut(&item) {
            *c += weight;
            return;
        }
        self.counters.insert(item, weight);
        if self.counters.len() > self.k - 1 {
            let d = *self.counters.values().min().expect("non-empty");
            self.counters.retain(|_, c| {
                *c -= d;
                *c > 0
            });
        }
    }
}

impl<I: Eq + Hash + Clone> Summary for SpaceSavingSummary<I> {
    fn total_weight(&self) -> u64 {
        self.n
    }

    fn size(&self) -> usize {
        self.counters.len()
    }
}

impl<I: Eq + Hash + Clone> ItemSummary<I> for SpaceSavingSummary<I> {
    fn update_weighted(&mut self, item: I, weight: u64) {
        if weight == 0 {
            return;
        }
        if self.repr == Repr::Merged {
            self.update_merged(item, weight);
            return;
        }
        self.n = self
            .n
            .checked_add(weight)
            .expect("total weight overflows u64");
        if self.counters.len() >= self.k && self.index.is_none() {
            // First saturated update (or first after deserialization):
            // build the eviction index.
            self.index = Some(MinIndex::build(&self.counters));
        }
        if let Some(c) = self.counters.get_mut(&item) {
            let old = *c;
            *c += weight;
            if let Some(index) = &mut self.index {
                index.bump(&item, old, old + weight);
            }
            return;
        }
        if self.counters.len() < self.k {
            self.counters.insert(item.clone(), weight);
            if let Some(index) = &mut self.index {
                index.bump(&item, 0, weight);
            }
            return;
        }
        // Evict a minimum counter: the newcomer inherits its count, keeping
        // the sum of counters equal to n (the SpaceSaving invariant).
        let index = self.index.as_mut().expect("index built when saturated");
        let (evict, m) = index.pop_min();
        self.counters.remove(&evict);
        self.counters.insert(item.clone(), m + weight);
        index.bump(&item, 0, m + weight);
    }
}

impl<I: Eq + Hash + Clone> Mergeable for SpaceSavingSummary<I> {
    /// Merge through the MG isomorphism (§3): `SS(k) ≅ MG(k−1)`, so convert
    /// both, apply Theorem 1, and keep the MG form.
    fn merge(mut self, other: Self) -> Result<Self> {
        self.merge_from(other)?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::{merge_all, FrequencyOracle, MergeError, MergeTree};

    /// Check the bracket guarantee for every universe item and the εn error
    /// radius, in exact integer arithmetic.
    fn assert_bracket(ss: &SpaceSavingSummary<u64>, oracle: &FrequencyOracle<u64>) {
        assert_eq!(ss.total_weight(), oracle.total());
        let radius = ss.error_bound();
        // radius ≤ ⌈n/k⌉.
        assert!(
            radius <= ss.total_weight().div_ceil(ss.capacity() as u64),
            "radius {radius} exceeds n/k"
        );
        for (item, truth) in oracle.iter() {
            let lo = ss.lower_bound(item);
            let hi = ss.upper_bound(item);
            assert!(
                lo <= truth && truth <= hi,
                "bracket violated: item {item}, truth {truth}, [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn exact_below_capacity() {
        let mut ss = SpaceSavingSummary::new(8);
        for item in [1u64, 2, 2, 3, 3, 3] {
            ss.update(item);
        }
        assert_eq!(ss.estimate(&3), 3);
        assert_eq!(ss.estimate(&1), 1);
        assert_eq!(ss.lower_bound(&2), 2);
        assert_eq!(ss.upper_bound(&2), 2);
        assert_eq!(ss.error_bound(), 0);
    }

    #[test]
    fn eviction_keeps_sum_equal_to_n() {
        let mut ss = SpaceSavingSummary::new(3);
        for i in 0..100u64 {
            ss.update(i);
            let sum: u64 = ss.iter().map(|(_, c)| c).sum();
            assert_eq!(sum, ss.total_weight());
            assert!(ss.size() <= 3);
        }
    }

    #[test]
    fn stored_counters_overestimate_in_streaming() {
        let items: Vec<u64> = (0..5000).map(|i| i % 37).collect();
        let oracle = FrequencyOracle::from_stream(items.clone());
        let mut ss = SpaceSavingSummary::new(10);
        ss.extend_from(items);
        for (item, counter) in ss.iter() {
            assert!(counter >= oracle.count(item));
        }
        assert_bracket(&ss, &oracle);
    }

    #[test]
    fn absent_items_bounded_by_min_counter() {
        let mut ss = SpaceSavingSummary::new(4);
        for i in 0..1000u64 {
            ss.update(i % 100);
        }
        let unseen = 12345u64;
        assert_eq!(ss.lower_bound(&unseen), 0);
        assert!(ss.upper_bound(&unseen) <= 1000u64.div_ceil(4));
    }

    #[test]
    fn for_epsilon_sets_capacity() {
        assert_eq!(SpaceSavingSummary::<u64>::for_epsilon(0.1).capacity(), 10);
        assert_eq!(SpaceSavingSummary::<u64>::for_epsilon(0.5).capacity(), 2);
        assert_eq!(
            SpaceSavingSummary::<u64>::for_epsilon(0.003).capacity(),
            334
        );
    }

    #[test]
    #[should_panic(expected = "two counters")]
    fn capacity_one_rejected() {
        let _ = SpaceSavingSummary::<u64>::new(1);
    }

    #[test]
    fn merge_capacity_mismatch_errors() {
        let a = SpaceSavingSummary::<u64>::new(4);
        let b = SpaceSavingSummary::<u64>::new(5);
        assert!(matches!(
            a.merge(b),
            Err(MergeError::CapacityMismatch { .. })
        ));
    }

    #[test]
    fn merge_of_unsaturated_summaries_is_exact() {
        let mut a = SpaceSavingSummary::new(8);
        let mut b = SpaceSavingSummary::new(8);
        a.extend_from([1u64, 1, 2]);
        b.extend_from([2u64, 3]);
        let m = a.merge(b).unwrap();
        // 4 distinct ≤ k−1 = 7 counters: everything stays exact.
        assert_eq!(m.lower_bound(&1), 2);
        assert_eq!(m.upper_bound(&1), 2);
        assert_eq!(m.lower_bound(&2), 2);
        assert_eq!(m.lower_bound(&3), 1);
        assert_eq!(m.error_bound(), 0);
    }

    #[test]
    fn paper_example_subtract_minima_then_combine() {
        // The k = 5 SpaceSaving example from the extension paper's §5.2:
        // summaries over items 1-5 (counts 5,7,12,14,18) and 6-10
        // (4,16,17,19,23). After subtracting the minima (5 and 4) the
        // MG forms hold {2:2, 3:7, 4:9, 5:13} and {7:12, 8:13, 9:15, 10:19}.
        let mut a = SpaceSavingSummary::new(5);
        for (item, w) in [(1u64, 5u64), (2, 7), (3, 12), (4, 14), (5, 18)] {
            a.update_weighted(item, w);
        }
        let mut b = SpaceSavingSummary::new(5);
        for (item, w) in [(6u64, 4u64), (7, 16), (8, 17), (9, 19), (10, 23)] {
            b.update_weighted(item, w);
        }
        let mg_a = a.clone().into_mg();
        assert_eq!(mg_a.estimate(&2), 2);
        assert_eq!(mg_a.estimate(&3), 7);
        assert_eq!(mg_a.estimate(&4), 9);
        assert_eq!(mg_a.estimate(&5), 13);
        assert_eq!(mg_a.estimate(&1), 0);

        let m = a.merge(b).unwrap();
        // Combined MG values {2,7,9,12,13,13,15,19}; prune at the 5th
        // largest (12): survivors 13−12, 13−12, 15−12, 19−12.
        assert_eq!(m.lower_bound(&5), 1);
        assert_eq!(m.lower_bound(&8), 1);
        assert_eq!(m.lower_bound(&9), 3);
        assert_eq!(m.lower_bound(&10), 7);
        assert_eq!(m.lower_bound(&3), 0);
        assert_eq!(m.total_weight(), 135);
    }

    #[test]
    fn bracket_survives_every_canonical_merge_tree() {
        use ms_workloads::{Partitioner, StreamKind};
        let items = StreamKind::Zipf {
            s: 1.2,
            universe: 2000,
        }
        .generate(40_000, 99);
        let oracle = FrequencyOracle::from_stream(items.clone());

        for partitioner in Partitioner::canonical() {
            let parts = partitioner.split(&items, 16);
            for shape in MergeTree::canonical() {
                let leaves: Vec<SpaceSavingSummary<u64>> = parts
                    .iter()
                    .map(|part| {
                        let mut ss = SpaceSavingSummary::new(20);
                        ss.extend_from(part.iter().copied());
                        ss
                    })
                    .collect();
                let merged = merge_all(leaves, shape).unwrap();
                assert_bracket(&merged, &oracle);
            }
        }
    }

    #[test]
    fn streaming_after_merge_keeps_bracket() {
        use ms_workloads::StreamKind;
        let items = StreamKind::Zipf {
            s: 1.4,
            universe: 500,
        }
        .generate(20_000, 7);
        let (first, rest) = items.split_at(10_000);
        let (a_items, b_items) = first.split_at(5_000);

        let mut a = SpaceSavingSummary::new(16);
        a.extend_from(a_items.iter().copied());
        let mut b = SpaceSavingSummary::new(16);
        b.extend_from(b_items.iter().copied());

        let mut merged = a.merge(b).unwrap();
        merged.extend_from(rest.iter().copied());

        let oracle = FrequencyOracle::from_stream(items.clone());
        assert_bracket(&merged, &oracle);
    }

    #[test]
    fn merge_from_keeps_bracket_and_survives_mismatch() {
        use ms_workloads::StreamKind;
        let items = StreamKind::Zipf {
            s: 1.3,
            universe: 800,
        }
        .generate(30_000, 17);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let build = |range: std::ops::Range<usize>| {
            let mut ss = SpaceSavingSummary::new(12);
            ss.extend_from(items[range].iter().copied());
            ss
        };
        let mut acc = build(0..10_000);
        acc.merge_from(build(10_000..20_000)).unwrap();
        acc.merge_from(build(20_000..30_000)).unwrap();
        assert_bracket(&acc, &oracle);

        // A capacity mismatch reports the error without touching self.
        let sorted = |ss: &SpaceSavingSummary<u64>| {
            let mut v: Vec<(u64, u64)> = ss.iter().map(|(i, c)| (*i, c)).collect();
            v.sort_unstable();
            v
        };
        let before = sorted(&acc);
        let err = acc.merge_from(SpaceSavingSummary::new(13));
        assert!(matches!(err, Err(MergeError::CapacityMismatch { .. })));
        assert_eq!(sorted(&acc), before);
        assert_eq!(acc.total_weight(), 30_000);
    }

    #[test]
    fn heavy_hitters_contains_all_true_heavy_hitters() {
        use ms_workloads::StreamKind;
        let eps = 0.04;
        let items = StreamKind::Zipf {
            s: 1.5,
            universe: 10_000,
        }
        .generate(100_000, 21);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let mut ss = SpaceSavingSummary::for_epsilon(eps);
        ss.extend_from(items);
        let reported: Vec<u64> = ss.heavy_hitters(eps).into_iter().map(|(i, _)| i).collect();
        for (item, _) in oracle.heavy_hitters(eps) {
            assert!(reported.contains(&item), "missing heavy hitter {item}");
        }
    }

    #[test]
    fn heavy_hitters_survive_merging() {
        use ms_workloads::{Partitioner, StreamKind};
        let eps = 0.05;
        let items = StreamKind::Zipf {
            s: 1.5,
            universe: 5_000,
        }
        .generate(60_000, 33);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let parts = Partitioner::ByKey.split(&items, 8);
        let leaves: Vec<SpaceSavingSummary<u64>> = parts
            .iter()
            .map(|part| {
                let mut ss = SpaceSavingSummary::for_epsilon(eps);
                ss.extend_from(part.iter().copied());
                ss
            })
            .collect();
        let merged = merge_all(leaves, MergeTree::Balanced).unwrap();
        let reported: Vec<u64> = merged
            .heavy_hitters(eps)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        for (item, _) in oracle.heavy_hitters(eps) {
            assert!(reported.contains(&item), "missing heavy hitter {item}");
        }
    }

    #[test]
    fn indexed_eviction_matches_naive_reference() {
        // Differential test: the bucket-index eviction must produce the
        // same counter-value profile, total weight and bounds as a naive
        // scan-for-minimum implementation (item identity may differ on
        // ties, which the guarantee does not depend on).
        use ms_workloads::StreamKind;

        fn naive(items: &[u64], k: usize) -> (u64, Vec<u64>) {
            let mut counters: FxHashMap<u64, u64> = FxHashMap::default();
            for &item in items {
                if let Some(c) = counters.get_mut(&item) {
                    *c += 1;
                } else if counters.len() < k {
                    counters.insert(item, 1);
                } else {
                    let (&evict, &m) = counters.iter().min_by_key(|&(_, &c)| c).expect("non-empty");
                    counters.remove(&evict);
                    counters.insert(item, m + 1);
                }
            }
            let mut values: Vec<u64> = counters.values().copied().collect();
            values.sort_unstable();
            (values.iter().sum(), values)
        }

        for (kind, seed) in [
            (
                StreamKind::Zipf {
                    s: 1.2,
                    universe: 500,
                },
                1u64,
            ),
            (StreamKind::Uniform { universe: 200 }, 2),
            (StreamKind::AllDistinct, 3),
            (StreamKind::AllSame, 4),
        ] {
            let items = kind.generate(5_000, seed);
            for k in [2usize, 5, 16, 64] {
                let mut ss = SpaceSavingSummary::new(k);
                ss.extend_from(items.iter().copied());
                let mut values: Vec<u64> = ss.iter().map(|(_, c)| c).collect();
                values.sort_unstable();
                let (naive_sum, naive_values) = naive(&items, k);
                assert_eq!(
                    values.iter().sum::<u64>(),
                    naive_sum,
                    "{} k={k}: stored weight differs",
                    kind.label()
                );
                assert_eq!(
                    values,
                    naive_values,
                    "{} k={k}: counter profile differs",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn index_survives_codec_roundtrip_and_further_updates() {
        use ms_workloads::StreamKind;
        let items = StreamKind::Zipf {
            s: 1.3,
            universe: 300,
        }
        .generate(10_000, 9);
        let (first, rest) = items.split_at(5_000);
        let mut ss = SpaceSavingSummary::new(16);
        ss.extend_from(first.iter().copied());
        // Round-trip drops the derived index; updates must rebuild it and
        // produce exactly the same profile as the uninterrupted run.
        let mut restored = SpaceSavingSummary::<u64>::decode(&ss.encode()).unwrap();
        restored.extend_from(rest.iter().copied());
        ss.extend_from(rest.iter().copied());
        let profile = |s: &SpaceSavingSummary<u64>| {
            let mut v: Vec<u64> = s.iter().map(|(_, c)| c).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(profile(&restored), profile(&ss));
        assert_eq!(restored.total_weight(), ss.total_weight());
    }

    #[test]
    fn top_k_orders_by_upper_bound() {
        let mut ss = SpaceSavingSummary::new(8);
        for (item, w) in [(1u64, 30u64), (2, 20), (3, 10)] {
            ss.update_weighted(item, w);
        }
        let top = ss.top_k(2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
    }

    #[test]
    fn zero_weight_update_is_noop() {
        let mut ss = SpaceSavingSummary::new(3);
        ss.update_weighted(1, 0);
        assert!(ss.is_empty());
    }
}

//! The Misra-Gries (*Frequent*) summary and the PODS'12 merge.
//!
//! # Guarantee
//!
//! An [`MgSummary`] with `k` counters over a stream of total weight `n`
//! stores at most `k` `(item, count)` pairs with total stored weight `n̂`,
//! such that for **every** item `x` (stored or not):
//!
//! ```text
//! f(x) − (n − n̂)/(k+1)  ≤  est(x)  ≤  f(x)
//! ```
//!
//! where `est(x) = 0` for unstored items. Since `n̂ ≥ 0` this is at most
//! `n/(k+1)`, i.e. error `≤ εn` for `k = ⌈1/ε⌉ − 1` counters.
//!
//! # Mergeability (Theorem 1 of the paper)
//!
//! `merge` combines two summaries counter-wise, then — if more than `k`
//! items remain — subtracts the `(k+1)`-th largest combined counter value
//! `s` from every counter and discards the non-positive ones. The combined
//! step loses nothing; the prune step increases every underestimate by at
//! most `s` while decreasing `n̂` by at least `(k+1)·s` (the top `k`
//! counters lose exactly `s` each and the `(k+1)`-th loses its entire value
//! `s`), so the invariant above survives *any* number of merges in *any*
//! order. No error metadata needs to be carried: the bound is a function of
//! the summary's own `(n, n̂, k)`.

use std::hash::Hash;

use ms_core::error::ensure_same_capacity;
use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{FxHashMap, ItemSummary, Json, Mergeable, Result, Summary, ToJson};

/// Misra-Gries summary with at most `k` counters.
///
/// ```
/// use ms_core::{ItemSummary, Mergeable, Summary};
/// use ms_frequency::MgSummary;
///
/// let mut site_a = MgSummary::for_epsilon(0.1);
/// let mut site_b = MgSummary::for_epsilon(0.1);
/// site_a.extend_from(["x", "x", "x", "y"]);
/// site_b.extend_from(["x", "z"]);
///
/// let merged = site_a.merge(site_b).unwrap();
/// assert_eq!(merged.total_weight(), 6);
/// // Estimates never overestimate and are within (n − n̂)/(k+1) below.
/// assert!(merged.estimate(&"x") <= 4);
/// assert!(merged.error_bound() <= 6.0 * 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct MgSummary<I> {
    k: usize,
    counters: FxHashMap<I, u64>,
    n: u64,
    /// Reused sort buffer for [`MgSummary::prune`]; kept empty between
    /// calls so steady-state merges stop allocating. Never part of the
    /// logical state (not encoded, not compared).
    scratch: Vec<u64>,
}

impl<I: Wire + Eq + Hash> Wire for MgSummary<I> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.k.encode_into(out);
        self.counters.encode_into(out);
        self.n.encode_into(out);
    }
    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let k = usize::decode_from(r)?;
        if k == 0 {
            return Err(WireError::Malformed("MG capacity must be >= 1"));
        }
        let counters: FxHashMap<I, u64> = Wire::decode_from(r)?;
        if counters.len() > k {
            return Err(WireError::Malformed("MG stores more than k counters"));
        }
        let n = u64::decode_from(r)?;
        if counters.values().sum::<u64>() > n {
            return Err(WireError::Malformed("MG stored weight exceeds n"));
        }
        Ok(MgSummary {
            k,
            counters,
            n,
            scratch: Vec::new(),
        })
    }
}

impl<I: ToJson> ToJson for MgSummary<I> {
    fn to_json(&self) -> Json {
        Json::obj([
            ("k", Json::U64(self.k as u64)),
            (
                "counters",
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|(item, count)| Json::Arr(vec![item.to_json(), Json::U64(*count)]))
                        .collect(),
                ),
            ),
            ("n", Json::U64(self.n)),
        ])
    }
}

impl<I: Eq + Hash + Clone> MgSummary<I> {
    /// Create a summary with capacity `k ≥ 1` counters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "MgSummary needs at least one counter");
        MgSummary {
            k,
            counters: FxHashMap::default(),
            n: 0,
            scratch: Vec::new(),
        }
    }

    /// Create a summary guaranteeing error `≤ εn`: uses `k = ⌈1/ε⌉ − 1`
    /// counters (so `k + 1 ≥ 1/ε`).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn for_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        let k = ((1.0 / epsilon).ceil() as usize).saturating_sub(1).max(1);
        Self::new(k)
    }

    /// Counter capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Lower-bound estimate of the frequency of `item` (0 if unstored).
    pub fn estimate(&self, item: &I) -> u64 {
        self.counters.get(item).copied().unwrap_or(0)
    }

    /// Upper-bound estimate: `estimate + error numerator / (k+1)` rounded up.
    pub fn estimate_upper(&self, item: &I) -> u64 {
        self.estimate(item) + self.error_numerator().div_ceil(self.k as u64 + 1)
    }

    /// Total stored weight `n̂ = Σ counters`.
    pub fn stored_weight(&self) -> u64 {
        self.counters.values().sum()
    }

    /// The exact numerator `n − n̂` of the error bound `(n − n̂)/(k+1)`.
    ///
    /// For any item, `f(x) − est(x) ≤ (n − n̂)/(k+1)`; callers wanting an
    /// integer-exact check should verify
    /// `(f(x) − est(x)) · (k+1) ≤ error_numerator()`.
    pub fn error_numerator(&self) -> u64 {
        self.n - self.stored_weight()
    }

    /// The error bound `(n − n̂)/(k+1)` as a float (≤ `n/(k+1)`).
    pub fn error_bound(&self) -> f64 {
        self.error_numerator() as f64 / (self.k as f64 + 1.0)
    }

    /// Items whose estimate exceeds `(ε − 1/(k+1))·n` — the candidate set
    /// guaranteed to contain every true ε-heavy hitter.
    pub fn heavy_hitters(&self, epsilon: f64) -> Vec<(I, u64)> {
        let threshold = (epsilon * self.n as f64 - self.error_bound()).max(0.0);
        let mut out: Vec<(I, u64)> = self
            .counters
            .iter()
            .filter(|&(_, &c)| c as f64 > threshold)
            .map(|(i, &c)| (i.clone(), c))
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out
    }

    /// The `k` stored items with the largest estimates (ties broken by
    /// count only, deterministically within one run).
    pub fn top_k(&self, k: usize) -> Vec<(I, u64)> {
        let mut all: Vec<(I, u64)> = self.counters.iter().map(|(i, &c)| (i.clone(), c)).collect();
        all.sort_by_key(|e| std::cmp::Reverse(e.1));
        all.truncate(k);
        all
    }

    /// Iterate over stored `(item, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&I, u64)> {
        self.counters.iter().map(|(i, &c)| (i, c))
    }

    /// Consume the summary, yielding its counters.
    pub fn into_counters(self) -> FxHashMap<I, u64> {
        self.counters
    }

    /// (internal) Build directly from parts — used by the SpaceSaving
    /// conversion, which must preserve `n` while supplying pruned counters.
    pub(crate) fn from_parts(k: usize, counters: FxHashMap<I, u64>, n: u64) -> Self {
        debug_assert!(counters.len() <= k);
        debug_assert!(counters.values().all(|&c| c > 0));
        MgSummary {
            k,
            counters,
            n,
            scratch: Vec::new(),
        }
    }

    /// In-place Theorem 1 merge: the same counter-wise combine + prune as
    /// [`Mergeable::merge`], but mutating `self` instead of consuming and
    /// reallocating it — the compactor's steady-state path. On error
    /// (capacity mismatch) `self` is left untouched.
    pub fn merge_from(&mut self, other: Self) -> Result<()> {
        ensure_same_capacity("counters (k)", self.k, other.k)?;
        self.n += other.n;
        for (item, c) in other.counters {
            *self.counters.entry(item).or_insert(0) += c;
        }
        self.prune();
        Ok(())
    }

    /// Prune to at most `k` counters by subtracting the `(k+1)`-th largest
    /// value from every counter and discarding non-positive ones. No-op if
    /// at most `k` counters are stored. Selects in the reusable `scratch`
    /// buffer, so repeated prunes allocate nothing.
    fn prune(&mut self) {
        if self.counters.len() <= self.k {
            return;
        }
        let mut values = std::mem::take(&mut self.scratch);
        values.extend(self.counters.values().copied());
        // (k+1)-th largest = index k of the descending order. Only the
        // selected value matters, so an O(n) quickselect replaces the old
        // O(n log n) full sort — the subtrahend `s` is identical.
        let (_, &mut s, _) = values.select_nth_unstable_by(self.k, |a, b| b.cmp(a));
        values.clear();
        self.scratch = values;
        self.counters.retain(|_, c| {
            if *c > s {
                *c -= s;
                true
            } else {
                false
            }
        });
        debug_assert!(self.counters.len() <= self.k);
    }
}

impl<I: Eq + Hash + Clone> Summary for MgSummary<I> {
    fn total_weight(&self) -> u64 {
        self.n
    }

    fn size(&self) -> usize {
        self.counters.len()
    }
}

impl<I: Eq + Hash + Clone> ItemSummary<I> for MgSummary<I> {
    fn update_weighted(&mut self, item: I, weight: u64) {
        if weight == 0 {
            return;
        }
        self.n = self
            .n
            .checked_add(weight)
            .expect("total weight overflows u64");
        if let Some(c) = self.counters.get_mut(&item) {
            *c += weight;
            return;
        }
        self.counters.insert(item, weight);
        if self.counters.len() > self.k {
            // Weighted decrement: subtract the minimum of the k+1 live
            // counters from all of them; at least the minimum hits zero and
            // is discarded. Exactly (k+1)·d weight is discarded, keeping
            // (n − n̂) divisible by k+1 on pure streams (the isomorphism
            // tests rely on this).
            let d = *self.counters.values().min().expect("non-empty");
            self.counters.retain(|_, c| {
                *c -= d;
                *c > 0
            });
            debug_assert!(self.counters.len() <= self.k);
        }
    }
}

impl<I: Eq + Hash + Clone> Mergeable for MgSummary<I> {
    /// Theorem 1 merge: counter-wise combine, then prune at the `(k+1)`-th
    /// largest counter. Delegates to [`MgSummary::merge_from`] so the
    /// consuming and in-place forms can never drift apart.
    fn merge(mut self, other: Self) -> Result<Self> {
        self.merge_from(other)?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::{merge_all, FrequencyOracle, MergeError, MergeTree};

    /// Integer-exact check of the MG invariant for every universe item.
    fn assert_invariant(mg: &MgSummary<u64>, oracle: &FrequencyOracle<u64>) {
        assert_eq!(mg.total_weight(), oracle.total());
        let err_num = mg.error_numerator();
        let k1 = mg.capacity() as u64 + 1;
        for (item, truth) in oracle.iter() {
            let est = mg.estimate(item);
            assert!(
                est <= truth,
                "overestimate: item {item} est {est} > {truth}"
            );
            assert!(
                (truth - est) * k1 <= err_num,
                "bound violated: item {item}, truth {truth}, est {est}, \
                 err_num {err_num}, k+1 {k1}"
            );
        }
        // The bound itself must stay within n/(k+1) (≤ εn).
        assert!(err_num <= mg.total_weight());
    }

    #[test]
    fn small_stream_exact_when_under_capacity() {
        let mut mg = MgSummary::new(10);
        for item in [1u64, 2, 2, 3, 3, 3] {
            mg.update(item);
        }
        assert_eq!(mg.estimate(&1), 1);
        assert_eq!(mg.estimate(&2), 2);
        assert_eq!(mg.estimate(&3), 3);
        assert_eq!(mg.error_numerator(), 0);
        assert_eq!(mg.size(), 3);
    }

    #[test]
    fn classic_majority_example() {
        // k = 1 is the Boyer-Moore majority vote.
        let mut mg = MgSummary::new(1);
        for item in [5u64, 5, 2, 5, 3, 5, 5] {
            mg.update(item);
        }
        assert!(mg.estimate(&5) > 0);
        assert!(mg.size() <= 1);
    }

    #[test]
    fn never_overestimates_and_meets_bound() {
        let items: Vec<u64> = (0..5000).map(|i| i % 100).collect();
        let oracle = FrequencyOracle::from_stream(items.clone());
        let mut mg = MgSummary::new(9);
        mg.extend_from(items);
        assert_invariant(&mg, &oracle);
    }

    #[test]
    fn weighted_equals_repeated_unweighted() {
        let mut by_weight = MgSummary::new(4);
        let mut by_repeat = MgSummary::new(4);
        let updates = [(1u64, 5u64), (2, 3), (3, 7), (4, 1), (5, 2), (1, 4)];
        for &(item, w) in &updates {
            by_weight.update_weighted(item, w);
        }
        for &(item, w) in &updates {
            for _ in 0..w {
                by_repeat.update(item);
            }
        }
        assert_eq!(by_weight.total_weight(), by_repeat.total_weight());
        // Counter contents can differ (decrement granularity), but both
        // must satisfy the invariant; check estimates bound each other
        // within the common error budget.
        let oracle = {
            let mut o = FrequencyOracle::new();
            for &(item, w) in &updates {
                o.insert_weighted(item, w);
            }
            o
        };
        assert_invariant(&by_weight, &oracle);
        assert_invariant(&by_repeat, &oracle);
    }

    #[test]
    fn zero_weight_update_is_noop() {
        let mut mg = MgSummary::new(2);
        mg.update_weighted(9, 0);
        assert!(mg.is_empty());
        assert_eq!(mg.size(), 0);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut mg = MgSummary::new(3);
        for i in 0..1000u64 {
            mg.update(i);
            assert!(mg.size() <= 3);
        }
    }

    #[test]
    fn all_distinct_stream_leaves_bound_tight() {
        let mut mg = MgSummary::new(4);
        for i in 0..1000u64 {
            mg.update(i);
        }
        // 1000 distinct items, 4 counters: error numerator = n − n̂.
        let oracle = FrequencyOracle::from_stream(0..1000u64);
        assert_invariant(&mg, &oracle);
        assert!(mg.error_bound() <= 1000.0 / 5.0);
    }

    #[test]
    fn for_epsilon_sets_capacity() {
        assert_eq!(MgSummary::<u64>::for_epsilon(0.1).capacity(), 9);
        assert_eq!(MgSummary::<u64>::for_epsilon(0.5).capacity(), 1);
        assert_eq!(MgSummary::<u64>::for_epsilon(0.01).capacity(), 99);
        // Guarantee: error ≤ εn needs k+1 ≥ 1/ε.
        for eps in [0.3, 0.07, 0.011] {
            let k = MgSummary::<u64>::for_epsilon(eps).capacity();
            assert!((k + 1) as f64 >= 1.0 / eps - 1e-9, "eps {eps} → k {k}");
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_one_is_rejected() {
        let _ = MgSummary::<u64>::for_epsilon(1.0);
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_capacity_is_rejected() {
        let _ = MgSummary::<u64>::new(0);
    }

    #[test]
    fn merge_capacity_mismatch_errors() {
        let a = MgSummary::<u64>::new(3);
        let b = MgSummary::<u64>::new(4);
        match a.merge(b) {
            Err(MergeError::CapacityMismatch { left, right, .. }) => {
                assert_eq!((left, right), (3, 4));
            }
            other => panic!("expected capacity mismatch, got {other:?}"),
        }
    }

    #[test]
    fn merge_disjoint_summaries_prunes_to_k() {
        // Mirrors the structure of the worked example in the extension
        // paper: two k−1-counter summaries over disjoint items.
        let mut a = MgSummary::new(4);
        let mut b = MgSummary::new(4);
        for (item, w) in [(2u64, 4u64), (3, 11), (4, 22), (5, 33)] {
            a.update_weighted(item, w);
        }
        for (item, w) in [(7u64, 10u64), (8, 20), (9, 30), (10, 45)] {
            b.update_weighted(item, w);
        }
        let m = a.merge(b).unwrap();
        assert!(m.size() <= 4);
        assert_eq!(m.total_weight(), 175);
        // (k+1)-th largest of {4,10,11,20,22,30,33,45} is 20; survivors are
        // 22−20, 30−20, 33−20, 45−20.
        assert_eq!(m.estimate(&4), 2);
        assert_eq!(m.estimate(&9), 10);
        assert_eq!(m.estimate(&5), 13);
        assert_eq!(m.estimate(&10), 25);
        assert_eq!(m.estimate(&2), 0);
    }

    #[test]
    fn merge_from_is_identical_to_consuming_merge() {
        use ms_workloads::StreamKind;
        let items = StreamKind::Zipf {
            s: 1.2,
            universe: 500,
        }
        .generate(30_000, 11);
        let build = |range: std::ops::Range<usize>| {
            let mut mg = MgSummary::new(9);
            mg.extend_from(items[range].iter().copied());
            mg
        };
        let mut in_place = build(0..10_000);
        in_place.merge_from(build(10_000..20_000)).unwrap();
        in_place.merge_from(build(20_000..30_000)).unwrap();
        let consuming = build(0..10_000)
            .merge(build(10_000..20_000))
            .unwrap()
            .merge(build(20_000..30_000))
            .unwrap();
        assert_eq!(in_place.total_weight(), consuming.total_weight());
        let sorted = |mg: &MgSummary<u64>| {
            let mut v: Vec<(u64, u64)> = mg.iter().map(|(i, c)| (*i, c)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(&in_place), sorted(&consuming));
        // Error path leaves self untouched.
        let mut a = MgSummary::<u64>::new(3);
        a.update_weighted(1, 5);
        assert!(a.merge_from(MgSummary::new(4)).is_err());
        assert_eq!(a.estimate(&1), 5);
        assert_eq!(a.total_weight(), 5);
    }

    #[test]
    fn merge_overlapping_summaries_adds_counts() {
        let mut a = MgSummary::new(5);
        let mut b = MgSummary::new(5);
        a.update_weighted(1, 10);
        a.update_weighted(2, 5);
        b.update_weighted(1, 7);
        b.update_weighted(3, 2);
        let m = a.merge(b).unwrap();
        assert_eq!(m.estimate(&1), 17);
        assert_eq!(m.estimate(&2), 5);
        assert_eq!(m.estimate(&3), 2);
        assert_eq!(m.error_numerator(), 0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = MgSummary::new(3);
        a.update_weighted(1, 4);
        a.update_weighted(2, 2);
        let before: Vec<(u64, u64)> = {
            let mut v: Vec<(u64, u64)> = a.iter().map(|(i, c)| (*i, c)).collect();
            v.sort_unstable();
            v
        };
        let m = a.merge(MgSummary::new(3)).unwrap();
        let mut after: Vec<(u64, u64)> = m.iter().map(|(i, c)| (*i, c)).collect();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn invariant_survives_every_canonical_merge_tree() {
        use ms_workloads::{Partitioner, StreamKind};
        let items = StreamKind::Zipf {
            s: 1.2,
            universe: 2000,
        }
        .generate(40_000, 77);
        let oracle = FrequencyOracle::from_stream(items.clone());

        for partitioner in Partitioner::canonical() {
            let parts = partitioner.split(&items, 16);
            for shape in MergeTree::canonical() {
                let leaves: Vec<MgSummary<u64>> = parts
                    .iter()
                    .map(|part| {
                        let mut mg = MgSummary::new(19);
                        mg.extend_from(part.iter().copied());
                        mg
                    })
                    .collect();
                let merged = merge_all(leaves, shape).unwrap();
                assert_invariant(&merged, &oracle);
            }
        }
    }

    #[test]
    fn heavy_hitters_contains_all_true_heavy_hitters() {
        use ms_workloads::StreamKind;
        let eps = 0.05;
        let items = StreamKind::Zipf {
            s: 1.5,
            universe: 10_000,
        }
        .generate(100_000, 3);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let mut mg = MgSummary::for_epsilon(eps);
        mg.extend_from(items);
        let reported: Vec<u64> = mg.heavy_hitters(eps).into_iter().map(|(i, _)| i).collect();
        for (item, _) in oracle.heavy_hitters(eps) {
            assert!(reported.contains(&item), "missing heavy hitter {item}");
        }
    }

    #[test]
    fn estimate_upper_is_an_upper_bound() {
        use ms_workloads::StreamKind;
        let items = StreamKind::Zipf {
            s: 1.1,
            universe: 500,
        }
        .generate(20_000, 9);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let mut mg = MgSummary::new(15);
        mg.extend_from(items);
        for (item, truth) in oracle.iter() {
            assert!(mg.estimate_upper(item) >= truth);
        }
    }

    #[test]
    fn top_k_orders_by_estimate() {
        let mut mg = MgSummary::new(8);
        for (item, w) in [(1u64, 30u64), (2, 20), (3, 10), (4, 5)] {
            mg.update_weighted(item, w);
        }
        assert_eq!(mg.top_k(2), vec![(1, 30), (2, 20)]);
        assert_eq!(mg.top_k(10).len(), 4);
        assert!(mg.top_k(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn weight_overflow_is_detected() {
        let mut mg = MgSummary::new(2);
        mg.update_weighted(1u64, u64::MAX);
        mg.update_weighted(2u64, 1);
    }

    #[test]
    fn chain_of_many_merges_does_not_degrade() {
        // 64 sites, chain merge — error must stay ≤ n/(k+1), not 64× that.
        use ms_workloads::StreamKind;
        let items = StreamKind::Uniform { universe: 300 }.generate(64_000, 5);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let leaves: Vec<MgSummary<u64>> = items
            .chunks(1000)
            .map(|chunk| {
                let mut mg = MgSummary::new(9);
                mg.extend_from(chunk.iter().copied());
                mg
            })
            .collect();
        let merged = merge_all(leaves, MergeTree::Chain).unwrap();
        assert_invariant(&merged, &oracle);
    }
}

//! Deterministic fault-injection harness for the `ms-service` engine.
//!
//! The paper's mergeability guarantee (Agarwal et al., PODS'12,
//! Definition 1) is a statement about *arbitrary* merge trees — including
//! the degenerate trees a crashing system produces: branches pruned by a
//! dead shard, merges deferred by a lagging compactor, leaves that never
//! arrive because a client vanished mid-write. This crate turns that
//! observation into an executable test: seeded schedules of fourteen
//! fault classes ([`FaultClass`]) drive a live engine (and, for the wire
//! classes, a live TCP server), and every schedule ends by asserting the
//! `ε·n` error bound against an exact oracle on the surviving state, plus
//! a byte-identical codec round-trip.
//!
//! The three durability classes (`crash-point`, `torn-write`, `bit-flip`)
//! push the same verdict across a process boundary: kill a durable engine
//! with no shutdown path, damage its WAL segments and checkpoint parts
//! the way a real crash does, and require recovery to account for every
//! surviving batch exactly.
//!
//! The four whole-node classes (`node-kill`, `gather-kill`,
//! `rejoin-rebalance`, `replica-divergence`) lift the verdict to a
//! federated cluster: an `ms-cluster` coordinator over three or four real
//! TCP nodes, with seeded node kills, ring rebalances, WAL-backed rejoins
//! and replica pairs, checked against the same exact oracles.
//!
//! Everything is reproducible from a printed u64 seed:
//!
//! * [`SeededPlan`] decides worker death / stall / compactor delay as a
//!   pure function of `(seed, shard, batch index)`;
//! * [`Corruption`] damages wire frames with a seeded [`ms_core::Rng64`];
//! * seeded indices place checkpoints, crash points, truncation cuts and
//!   bit flips for the durability classes;
//! * [`run_schedule`]`(class, kind, seed)` replays a schedule exactly.
//!
//! The `fault-suite` binary runs the full class × family matrix over a
//! list of seeds (CI pins three) and exits nonzero on any violation.

pub mod cluster;
pub mod plan;
pub mod schedule;
pub mod transport;

pub use plan::SeededPlan;
pub use schedule::{run_schedule, FaultClass, ScheduleReport, EPS};
pub use transport::{partial_prefix, Corruption};

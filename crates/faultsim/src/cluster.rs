//! Whole-node fault schedules: a seeded coordinator over real TCP
//! backend nodes, with node kills, rejoins and replica divergence.
//!
//! These classes extend the loss-slack argument (see [`crate::schedule`])
//! across *process* boundaries. A killed node takes its un-gathered
//! summary with it exactly the way a dying shard takes its delta: the
//! survivors still merge into a valid summary of the surviving updates,
//! and the missing weight widens the bound as slack. Durability closes
//! the gap — a node that recovers its WAL and rejoins restores its weight
//! and the verdict tightens back to the strict zero-slack `ε·n` bound —
//! and replica pairs avoid the gap entirely, provided gathers read
//! exactly one member per slot (additive merge would double-count).
//!
//! Every kill here lands at a batch boundary between coordinator ingest
//! calls. That is deliberate: an acked batch is then unambiguously on
//! some node, so the verdict can demand exact accounting. The in-flight
//! ambiguity of a mid-call death is covered by the coordinator's reroute
//! path, which these schedules trigger by killing *before* the routing
//! tables notice.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use ms_cluster::{ClusterConfig, Coordinator};
use ms_core::{Rng64, ServiceError, Summary};
use ms_service::{
    ClientOptions, Engine, FsyncPolicy, NodeState, Server, ServiceConfig, SummaryKind,
};

use crate::schedule::{
    base_config, durable_config, scratch_dir, stream, FaultClass, Harness, ScheduleReport,
};

/// One backend process stand-in: an engine behind a real TCP server.
struct TestNode {
    engine: Arc<Engine>,
    server: Server,
}

impl TestNode {
    fn start(cfg: ServiceConfig) -> Result<TestNode, ServiceError> {
        let engine = Engine::start(cfg)?;
        let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0")?;
        Ok(TestNode { engine, server })
    }

    fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// `kill -9`: abort the engine (no final flush/checkpoint/fsync) and
    /// sever every live connection.
    fn kill(self) -> Arc<Engine> {
        let engine = self.engine;
        self.server.kill();
        engine
    }

    fn stop(self) {
        self.server.stop();
    }
}

/// Coordinator transport tuned for schedules: fast timeouts, one retry,
/// no background pinger (health moves only on request outcomes, so every
/// transition is seed-deterministic), death on the first failure.
fn cluster_config(addrs: impl IntoIterator<Item = String>) -> ClusterConfig {
    ClusterConfig::new(addrs)
        .client_options(ClientOptions {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            retries: 1,
            backoff: Duration::from_millis(5),
            ..ClientOptions::default()
        })
        .ping_interval(None)
        .thresholds(1, 1)
}

/// Drive `items` through the coordinator in batches of 100. A batch the
/// coordinator acks is accepted; a batch that errors mid-cluster-outage
/// may have been partially delivered, so its weight widens the slack as
/// unacked instead of being retried.
fn drive(coordinator: &Coordinator, h: &mut Harness, items: &[u64]) -> Result<(), String> {
    for batch in items.chunks(100) {
        match coordinator.ingest(batch) {
            Ok(()) => h.accepted.extend_from_slice(batch),
            Err(e) if e.is_transient() => h.unacked_weight += batch.len() as u64,
            Err(e) => return Err(h.fail(e)),
        }
    }
    Ok(())
}

/// Gather and finish: flush the survivors, merge their summaries one-shot
/// and hand the merged summary to the standard loss-slack verdict.
fn finish_cluster(coordinator: &Coordinator, h: Harness) -> Result<ScheduleReport, String> {
    coordinator.flush().map_err(|e| h.fail(e))?;
    let gathered = coordinator.gather().map_err(|e| h.fail(e))?;
    let summary = gathered
        .summary
        .ok_or_else(|| h.fail("gather produced no summary at all"))?;
    let metrics = coordinator.metrics().map_err(|e| h.fail(e))?;
    h.finish(&summary, metrics)
}

/// Class 11: a node dies mid-ingest. Its key range must rebalance to the
/// survivors, the coordinator must report it dead, and the merged answer
/// must honor `ε·n` + slack where the slack is exactly the dead node's
/// unrecovered weight.
pub(crate) fn node_kill(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::NodeKill, kind, seed);
    let mut rng = Rng64::new(seed ^ 0x4E0D_E417);
    let nodes: Vec<TestNode> = (0..3)
        .map(|_| TestNode::start(base_config(kind, seed).shards(2)))
        .collect::<Result<_, _>>()
        .map_err(|e| h.fail(e))?;
    let coordinator =
        Coordinator::start(cluster_config(nodes.iter().map(|n| n.addr().to_string())))
            .map_err(|e| h.fail(e))?;
    h.attach_telemetry(coordinator.telemetry());

    let items = stream(30_000, seed);
    let victim = rng.below(3) as usize;
    // Kill somewhere in the middle third of the stream.
    let kill_at = (10_000 + rng.below(10_000)) as usize;

    drive(&coordinator, &mut h, &items[..kill_at])?;
    let mut nodes = nodes;
    let killed = nodes.remove(victim).kill();
    drive(&coordinator, &mut h, &items[kill_at..])?;

    let info = coordinator.cluster_info();
    if !matches!(info.nodes[victim].state, NodeState::Dead) {
        return Err(h.fail(format!(
            "killed node {victim} is {} instead of dead",
            info.nodes[victim].state.label()
        )));
    }
    if info.rebalanced_batches == 0 {
        return Err(h.fail("node death never rebalanced a batch"));
    }
    let gathered = coordinator.gather().map_err(|e| h.fail(e))?;
    if gathered.dark_slots != 1 {
        return Err(h.fail(format!(
            "expected exactly the dead node's slot dark, saw {}",
            gathered.dark_slots
        )));
    }
    let report = finish_cluster(&coordinator, h)?;
    coordinator.shutdown();
    drop(killed);
    for node in nodes {
        node.stop();
    }
    Ok(report)
}

/// Class 12: a node dies *between* ingest and query, so the gather itself
/// discovers the death: the scatter to the dead node fails, the slot goes
/// dark, and the degraded merge still honors the slack bound.
pub(crate) fn gather_kill(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::GatherKill, kind, seed);
    let mut rng = Rng64::new(seed ^ 0x6A74_E411);
    let nodes: Vec<TestNode> = (0..3)
        .map(|_| TestNode::start(base_config(kind, seed).shards(2)))
        .collect::<Result<_, _>>()
        .map_err(|e| h.fail(e))?;
    let coordinator =
        Coordinator::start(cluster_config(nodes.iter().map(|n| n.addr().to_string())))
            .map_err(|e| h.fail(e))?;
    h.attach_telemetry(coordinator.telemetry());

    drive(&coordinator, &mut h, &stream(30_000, seed))?;
    coordinator.flush().map_err(|e| h.fail(e))?;

    let victim = rng.below(3) as usize;
    let mut nodes = nodes;
    let killed = nodes.remove(victim).kill();

    // The coordinator has not touched the dead node since the kill, so
    // this gather is the discovery: fan-out still counts the dead member,
    // and the slot comes back dark.
    let first = coordinator.gather().map_err(|e| h.fail(e))?;
    if first.fanout != 3 {
        return Err(h.fail(format!(
            "discovery gather should scatter to all 3 nodes, reached {}",
            first.fanout
        )));
    }
    if first.dark_slots != 1 || first.answered != 2 {
        return Err(h.fail(format!(
            "expected 2 answers + 1 dark slot, saw {} + {}",
            first.answered, first.dark_slots
        )));
    }
    if !coordinator.cluster_info().nodes[victim]
        .state
        .label()
        .eq("dead")
    {
        return Err(h.fail("gather failure did not mark the node dead"));
    }
    // A second gather routes around the corpse without retrying it.
    let second = coordinator.gather().map_err(|e| h.fail(e))?;
    if second.fanout != 2 {
        return Err(h.fail(format!(
            "post-discovery gather still scatters to {} nodes",
            second.fanout
        )));
    }
    let summary = second
        .summary
        .ok_or_else(|| h.fail("two live nodes produced no summary"))?;
    let metrics = coordinator.metrics().map_err(|e| h.fail(e))?;
    let report = h.finish(&summary, metrics)?;
    coordinator.shutdown();
    drop(killed);
    for node in nodes {
        node.stop();
    }
    Ok(report)
}

/// Class 13: kill a *durable* node mid-stream, let the ring rebalance,
/// then restart it from its WAL on a fresh port and rejoin it while
/// traffic continues. `FsyncPolicy::Always` means the abort loses
/// nothing, so after rejoin every acknowledged batch is on some node and
/// the verdict runs under the strict zero-slack bound.
pub(crate) fn rejoin_rebalance(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::RejoinRebalance, kind, seed);
    let mut rng = Rng64::new(seed ^ 0x4E30_1B1D);
    let dir = scratch_dir(FaultClass::RejoinRebalance, kind, seed);
    let victim = rng.below(3) as usize;

    let mut nodes: Vec<Option<TestNode>> = (0..3)
        .map(|i| {
            let cfg = if i == victim {
                durable_config(kind, seed, &dir, FsyncPolicy::Always)
            } else {
                base_config(kind, seed).shards(2)
            };
            TestNode::start(cfg).map(Some)
        })
        .collect::<Result<_, _>>()
        .map_err(|e| h.fail(e))?;
    let coordinator = Coordinator::start(cluster_config(
        nodes
            .iter()
            .map(|n| n.as_ref().expect("all started").addr().to_string()),
    ))
    .map_err(|e| h.fail(e))?;
    h.attach_telemetry(coordinator.telemetry());

    let items = stream(30_000, seed);
    let kill_at = (8_000 + rng.below(6_000)) as usize;
    let rejoin_at = (18_000 + rng.below(6_000)) as usize;

    drive(&coordinator, &mut h, &items[..kill_at])?;
    let killed = nodes[victim].take().expect("victim running").kill();
    // Rebalance window: the victim's range drains to the survivors.
    drive(&coordinator, &mut h, &items[kill_at..rejoin_at])?;
    if coordinator.cluster_info().rebalanced_batches == 0 {
        return Err(h.fail("rebalance window produced no rebalanced batches"));
    }
    drop(killed);

    // Restart from the same data directory: WAL replay + checkpoint load
    // happen inside Engine::start, before the node accepts traffic.
    let revived = TestNode::start(durable_config(kind, seed, &dir, FsyncPolicy::Always))
        .map_err(|e| h.fail(e))?;
    let recovery = revived
        .engine
        .recovery()
        .ok_or_else(|| h.fail("restarted node has no recovery report"))?;
    if recovery.preloaded_weight + recovery.replayed_weight == 0 {
        return Err(h.fail("restarted node recovered nothing from its WAL"));
    }
    let new_addr = revived.addr().to_string();
    coordinator
        .rejoin(victim, Some(&new_addr))
        .map_err(|e| h.fail(format!("rejoin failed: {e}")))?;
    if !matches!(
        coordinator.cluster_info().nodes[victim].state,
        NodeState::Alive
    ) {
        return Err(h.fail("rejoined node is not alive"));
    }
    nodes[victim] = Some(revived);

    // Post-rejoin traffic routes to the original ring layout again.
    drive(&coordinator, &mut h, &items[rejoin_at..])?;

    // Flush before gathering: the revived node's replayed weight (and
    // everyone's recent ingests) become visible at the next publish.
    coordinator.flush().map_err(|e| h.fail(e))?;
    let gathered = coordinator.gather().map_err(|e| h.fail(e))?;
    if gathered.dark_slots != 0 {
        return Err(h.fail(format!(
            "{} slots still dark after rejoin",
            gathered.dark_slots
        )));
    }
    if h.unacked_weight == 0
        && gathered.summary.as_ref().map(|s| s.total_weight()) != Some(h.accepted.len() as u64)
    {
        return Err(h.fail(format!(
            "fsync-always kill + rejoin must preserve every acked item: \
             {} acked, {} surviving",
            h.accepted.len(),
            gathered
                .summary
                .as_ref()
                .map(|s| s.total_weight())
                .unwrap_or(0)
        )));
    }
    let report = finish_cluster(&coordinator, h)?;
    coordinator.shutdown();
    for node in nodes.into_iter().flatten() {
        node.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(report)
}

/// Class 14: one member of a replica pair dies mid-stream and rejoins
/// *empty*. Its partner absorbed every write in the window, so the pair's
/// summaries genuinely diverge; the slot never went dark (no rebalance),
/// and the read-one gather must pick the heavier member and land exactly
/// on the accepted weight — merging both members would double-count.
pub(crate) fn replica_divergence(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::ReplicaDivergence, kind, seed);
    let mut rng = Rng64::new(seed ^ 0x4E11_1CA5);
    let mut nodes: Vec<Option<TestNode>> = (0..4)
        .map(|_| TestNode::start(base_config(kind, seed).shards(2)).map(Some))
        .collect::<Result<_, _>>()
        .map_err(|e| h.fail(e))?;
    let coordinator = Coordinator::start(
        cluster_config(
            nodes
                .iter()
                .map(|n| n.as_ref().expect("all started").addr().to_string()),
        )
        .replicas(true),
    )
    .map_err(|e| h.fail(e))?;
    h.attach_telemetry(coordinator.telemetry());

    let items = stream(30_000, seed);
    let victim = rng.below(4) as usize;
    let partner = victim ^ 1; // pairs are (0,1) and (2,3)
    let kill_at = (10_000 + rng.below(6_000)) as usize;
    let rejoin_at = (22_000 + rng.below(4_000)) as usize;

    drive(&coordinator, &mut h, &items[..kill_at])?;
    let killed = nodes[victim].take().expect("victim running").kill();
    // Divergence window: the partner alone carries the slot.
    drive(&coordinator, &mut h, &items[kill_at..rejoin_at])?;
    drop(killed);

    // Rejoin with a *fresh, empty* engine: a node that lost its disk.
    let revived = TestNode::start(base_config(kind, seed).shards(2)).map_err(|e| h.fail(e))?;
    let new_addr = revived.addr().to_string();
    coordinator
        .rejoin(victim, Some(&new_addr))
        .map_err(|e| h.fail(format!("rejoin failed: {e}")))?;
    nodes[victim] = Some(revived);
    drive(&coordinator, &mut h, &items[rejoin_at..])?;

    let info = coordinator.cluster_info();
    // The partner absorbed the whole window: the pair never counted as
    // dead, so nothing rebalanced.
    if info.rebalanced_batches != 0 {
        return Err(h.fail(format!(
            "replica pair should absorb the death without rebalancing, saw {}",
            info.rebalanced_batches
        )));
    }
    coordinator.flush().map_err(|e| h.fail(e))?;
    let gathered = coordinator.gather().map_err(|e| h.fail(e))?;
    if gathered.dark_slots != 0 {
        return Err(h.fail("no slot may go dark while one pair member lives"));
    }
    let info = coordinator.cluster_info();
    let vw = info.nodes[victim].last_weight;
    let pw = info.nodes[partner].last_weight;
    if vw >= pw {
        return Err(h.fail(format!(
            "divergence never happened: rejoined-empty member holds {vw}, partner {pw}"
        )));
    }
    // Read-one on the heavier member recovers *every* acked item: the
    // strict zero-slack bound, and the proof no double-count happened.
    let summary = gathered
        .summary
        .ok_or_else(|| h.fail("gather produced no summary"))?;
    if h.unacked_weight == 0 && summary.total_weight() != h.accepted.len() as u64 {
        return Err(h.fail(format!(
            "read-one gather holds {} of {} acked items",
            summary.total_weight(),
            h.accepted.len()
        )));
    }
    let metrics = coordinator.metrics().map_err(|e| h.fail(e))?;
    let report = h.finish(&summary, metrics)?;
    coordinator.shutdown();
    for node in nodes.into_iter().flatten() {
        node.stop();
    }
    Ok(report)
}

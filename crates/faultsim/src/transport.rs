//! Wire-level fault injection: deterministic corruption of encoded frames.
//!
//! Every mutation is a pure function of the input bytes and a seeded
//! [`Rng64`], so a corrupt-frame schedule replays exactly from its seed.
//! Corruptions are chosen to be *guaranteed rejections*: they damage the
//! 9-byte frame header (magic, version, tag, length) or truncate the
//! frame, both of which the server must answer with a counted
//! `frames_rejected` rather than by dying or by silently ingesting
//! garbage. (A random bit flip in the middle of a payload could decode to
//! a different but valid request — that would corrupt the oracle, not test
//! the server.)

use ms_core::wire::FRAME_HEADER_LEN;
use ms_core::Rng64;

/// The ways a frame can be damaged. `All` picks one of the others
/// uniformly per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Cut the frame mid-byte-stream (a peer that died mid-write).
    Truncate,
    /// Flip one bit somewhere in the 9-byte header.
    HeaderBitFlip,
    /// Replace the magic with foreign bytes.
    BadMagic,
    /// Bump the protocol version past anything we speak.
    BadVersion,
    /// Declare a payload length beyond the decoder's sanity cap.
    OversizeLen,
    /// Seed-uniform choice among the specific corruptions above.
    All,
}

impl Corruption {
    /// Apply this corruption to an encoded frame, returning the damaged
    /// bytes. `frame` must be a complete frame (header + payload).
    pub fn apply(self, frame: &[u8], rng: &mut Rng64) -> Vec<u8> {
        assert!(
            frame.len() >= FRAME_HEADER_LEN,
            "not a complete frame: {} bytes",
            frame.len()
        );
        let mut out = frame.to_vec();
        match self {
            Corruption::Truncate => {
                // Keep at least one byte, never the whole frame.
                let keep = 1 + rng.below_usize(frame.len() - 1);
                out.truncate(keep);
            }
            Corruption::HeaderBitFlip => {
                let byte = rng.below_usize(FRAME_HEADER_LEN);
                let bit = rng.below(8) as u8;
                out[byte] ^= 1 << bit;
                // A flip can only produce a *valid* header by landing on
                // the same value, which XOR cannot; every header field is
                // checked by the decoder, so this always rejects.
            }
            Corruption::BadMagic => {
                out[0] = b'X';
                out[1] = b'Y';
            }
            Corruption::BadVersion => {
                // Version is a u16 LE at offset 2.
                out[2] = 0xFF;
                out[3] = 0x7F;
            }
            Corruption::OversizeLen => {
                // Length is a u32 LE at offset 5; exceed MAX_FRAME_LEN.
                out[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
            }
            Corruption::All => {
                let specific = [
                    Corruption::Truncate,
                    Corruption::HeaderBitFlip,
                    Corruption::BadMagic,
                    Corruption::BadVersion,
                    Corruption::OversizeLen,
                ];
                return specific[rng.below_usize(specific.len())].apply(frame, rng);
            }
        }
        out
    }
}

/// Cut a frame at a seed-derived point strictly inside it — the bytes a
/// peer managed to push before its TCP write was severed.
pub fn partial_prefix(frame: &[u8], rng: &mut Rng64) -> Vec<u8> {
    assert!(frame.len() >= 2, "nothing to cut");
    let keep = 1 + rng.below_usize(frame.len() - 1);
    frame[..keep].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::WireFrame;

    fn sample_frame() -> Vec<u8> {
        WireFrame {
            tag: 0x10,
            payload: vec![1, 2, 3, 4, 5, 6, 7, 8],
        }
        .to_bytes()
    }

    #[test]
    fn every_corruption_is_rejected_by_the_decoder() {
        let frame = sample_frame();
        let mut rng = Rng64::new(0xC0FFEE);
        for kind in [
            Corruption::Truncate,
            Corruption::HeaderBitFlip,
            Corruption::BadMagic,
            Corruption::BadVersion,
            Corruption::OversizeLen,
            Corruption::All,
        ] {
            for _ in 0..50 {
                let bad = kind.apply(&frame, &mut rng);
                let mut cursor = std::io::Cursor::new(bad.clone());
                match WireFrame::read_from(&mut cursor) {
                    Err(_) => {}
                    Ok(Some(decoded)) => {
                        // A header bit flip in the length field can shrink
                        // the frame so a prefix parses; the re-encoding can
                        // then never equal the original intact frame.
                        assert_ne!(decoded.to_bytes(), frame, "{kind:?} survived");
                    }
                    Ok(None) => panic!("{kind:?} decoded as clean EOF"),
                }
            }
        }
    }

    #[test]
    fn corruption_is_deterministic_in_the_seed() {
        let frame = sample_frame();
        let a: Vec<_> = {
            let mut rng = Rng64::new(7);
            (0..20)
                .map(|_| Corruption::All.apply(&frame, &mut rng))
                .collect()
        };
        let b: Vec<_> = {
            let mut rng = Rng64::new(7);
            (0..20)
                .map(|_| Corruption::All.apply(&frame, &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn partial_prefix_is_a_strict_prefix() {
        let frame = sample_frame();
        let mut rng = Rng64::new(3);
        for _ in 0..50 {
            let cut = partial_prefix(&frame, &mut rng);
            assert!(!cut.is_empty() && cut.len() < frame.len());
            assert_eq!(&frame[..cut.len()], &cut[..]);
        }
    }
}

//! Seeded, deterministic fault plans.
//!
//! A [`SeededPlan`] is a pure function of `(seed, shard, batch_index)` —
//! the same seed always produces the same injection decisions, which is
//! what makes a failed schedule reproducible from the printed seed alone.
//! The plan also keeps trigger counters so a schedule can *prove* its
//! fault class actually fired (a fault harness whose faults silently never
//! trigger tests nothing).

use std::sync::atomic::{AtomicU64, Ordering};

use ms_core::rng::splitmix64;
use ms_service::{FaultAction, FaultPlan};

/// Mix `(seed, shard, index)` into a uniform u64, deterministically.
fn mix(seed: u64, shard: u64, index: u64) -> u64 {
    let mut state = seed
        ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    splitmix64(&mut state)
}

/// A deterministic injection schedule derived from a u64 seed.
///
/// Faults are decided per `(shard, cumulative batch index)`:
///
/// * **death**: with `death_period = p > 0`, each shard dies at batch
///   indices congruent to a seed-derived offset mod `p` — guaranteed to
///   fire once a shard has processed `p` batches, across respawns.
/// * **stall**: with probability `stall_per_10k / 10_000`, a batch is
///   delayed by `stall_ms` before being absorbed.
/// * **compactor stall**: every `compactor_period`-th delta merge sleeps
///   `compactor_stall_ms` before merging.
///
/// Deaths take priority over stalls at the same index.
#[derive(Debug, Default)]
pub struct SeededPlan {
    seed: u64,
    death_period: u64,
    stall_per_10k: u64,
    stall_ms: u64,
    compactor_period: u64,
    compactor_stall_ms: u64,
    /// Worker deaths injected so far.
    pub deaths: AtomicU64,
    /// Worker stalls injected so far.
    pub stalls: AtomicU64,
    /// Compactor stalls injected so far.
    pub compactor_stalls: AtomicU64,
}

impl SeededPlan {
    /// A plan that injects nothing (counters still work).
    pub fn new(seed: u64) -> Self {
        SeededPlan {
            seed,
            ..SeededPlan::default()
        }
    }

    /// Kill each shard at seed-derived batch indices, once per `period`
    /// batches it processes.
    pub fn death_every(mut self, period: u64) -> Self {
        self.death_period = period;
        self
    }

    /// Stall a batch for `ms` with probability `per_10k / 10_000`.
    pub fn stall(mut self, per_10k: u64, ms: u64) -> Self {
        self.stall_per_10k = per_10k;
        self.stall_ms = ms;
        self
    }

    /// Sleep `ms` before every `period`-th compactor merge.
    pub fn compactor_stall_every(mut self, period: u64, ms: u64) -> Self {
        self.compactor_period = period;
        self.compactor_stall_ms = ms;
        self
    }

    /// The pure decision for `(shard, index)` — no counters touched.
    /// Exposed so determinism is testable.
    pub fn decide(&self, shard: usize, index: u64) -> FaultAction {
        if self.death_period > 0 {
            let offset = mix(self.seed, shard as u64, u64::MAX) % self.death_period;
            // Skip index 0 so a shard always absorbs something first.
            if index > 0 && index % self.death_period == offset.max(1) {
                return FaultAction::Die;
            }
        }
        if self.stall_per_10k > 0
            && mix(self.seed, shard as u64, index) % 10_000 < self.stall_per_10k
        {
            return FaultAction::StallMs(self.stall_ms);
        }
        FaultAction::Continue
    }
}

impl FaultPlan for SeededPlan {
    fn worker_batch(&self, shard: usize, batch_index: u64) -> FaultAction {
        let action = self.decide(shard, batch_index);
        match action {
            FaultAction::Die => {
                self.deaths.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::StallMs(_) => {
                self.stalls.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Continue => {}
        }
        action
    }

    fn compactor_merge(&self, merge_index: u64) -> u64 {
        if self.compactor_period > 0 && merge_index.is_multiple_of(self.compactor_period) {
            self.compactor_stalls.fetch_add(1, Ordering::Relaxed);
            self.compactor_stall_ms
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let a = SeededPlan::new(42).death_every(10).stall(2_000, 1);
        let b = SeededPlan::new(42).death_every(10).stall(2_000, 1);
        let c = SeededPlan::new(43).death_every(10).stall(2_000, 1);
        let mut diverged = false;
        for shard in 0..4 {
            for index in 0..200 {
                assert_eq!(a.decide(shard, index), b.decide(shard, index));
                if a.decide(shard, index) != c.decide(shard, index) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds should differ somewhere");
    }

    #[test]
    fn death_fires_within_one_period_for_every_shard() {
        let plan = SeededPlan::new(7).death_every(20);
        for shard in 0..8 {
            let died = (0..=40).any(|i| plan.decide(shard, i) == FaultAction::Die);
            assert!(died, "shard {shard} never dies in two periods");
        }
    }

    #[test]
    fn counters_track_injections() {
        let plan = SeededPlan::new(9).stall(10_000, 3);
        assert_eq!(plan.worker_batch(0, 0), FaultAction::StallMs(3));
        assert_eq!(plan.stalls.load(Ordering::Relaxed), 1);
        assert_eq!(plan.compactor_merge(5), 0);
        let stalling = SeededPlan::new(9).compactor_stall_every(2, 4);
        assert_eq!(stalling.compactor_merge(0), 4);
        assert_eq!(stalling.compactor_merge(1), 0);
        assert_eq!(stalling.compactor_stalls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = SeededPlan::new(1);
        for shard in 0..4 {
            for index in 0..100 {
                assert_eq!(plan.decide(shard, index), FaultAction::Continue);
            }
        }
    }
}

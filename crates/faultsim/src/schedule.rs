//! Seeded fault schedules over a live engine (and, for the wire classes, a
//! live TCP server), each ending in the same verdict: **did the surviving
//! state still honor the paper's `ε·n` guarantee, and does its codec
//! round-trip losslessly?**
//!
//! ## The loss-slack bound
//!
//! A schedule tracks `accepted`: the total weight of batches the engine
//! (or server) *acknowledged*. Faults may destroy some of that weight —
//! a dying worker takes its un-handed-off delta and queued batches with
//! it — leaving `surviving = snapshot.total_weight() ≤ accepted`. The
//! surviving multiset `S` is a sub-multiset of the accepted stream `O`
//! with `|O| − |S| = lost`, so for every item/rank query
//!
//! ```text
//! |estimate − exact_O| ≤ |estimate − exact_S| + |exact_S − exact_O|
//!                      ≤ ε·|S|               + lost
//! ```
//!
//! The first term is the mergeability theorem applied to the surviving
//! data (worker deltas merge in an arbitrary tree; a crashed shard only
//! prunes branches, which Definition 1 explicitly allows); the second is
//! the worst case of the missing weight all hitting one query. Requests
//! that were sent but never acknowledged (a client that vanished before
//! reading its response) may or may not have been applied, so their
//! weight `unacked` widens the slack the same way. Fault classes that
//! lose nothing (`backpressure` drops are *rejected*, not accepted;
//! corrupt frames are never acked) run with `slack = 0` — the strict
//! paper bound.
//!
//! ## The durability classes
//!
//! `crash-point`, `torn-write` and `bit-flip` extend the verdict across a
//! process boundary. Each runs a durable engine (WAL + checkpoints under
//! a scratch data directory), kills it with [`Engine::abort`] — no final
//! checkpoint, no flush, no fsync — then damages the on-disk files the
//! way a real crash damages them: a checkpoint part half-written or
//! missing, a WAL segment cut mid-record, a single bit flipped. A fresh
//! engine recovers from the wreckage and must land on an *exactly
//! accounted* state: the surviving weight equals the checkpoint's
//! preloaded weight plus the replayed tail's weight, recovery reports
//! every piece of damage it skipped, and the recovered summary honors the
//! same `ε·n (+ slack)` bound against an oracle over the batches that
//! provably survived.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use ms_core::{
    BoundCheck, FrequencyOracle, RankOracle, Rng64, ServiceError, Summary, Wire, WireFrame,
};
use ms_service::{
    Client, ClientOptions, CubeClock, DurabilityConfig, Engine, EngineTelemetry, FsyncPolicy,
    ManualClock, OverloadConfig, Request, SegmentConfig, Server, ServiceConfig, ShardSummary,
    SummaryKind, REQUEST_TAG,
};
use ms_workloads::StreamKind;

use crate::plan::SeededPlan;
use crate::transport::{partial_prefix, Corruption};

/// Summary error parameter every schedule runs at.
pub const EPS: f64 = 0.02;

/// The sixteen injected failure modes: twelve in-process/wire classes and
/// four whole-node cluster classes (see [`crate::cluster`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Worker threads die mid-stream and are respawned.
    ShardDeath,
    /// Shard deaths force reroutes while the recycling buffer pool is
    /// starved, so every batch takes the allocation fallback path.
    PoolStarve,
    /// Bounded queues saturate; `try_ingest` sheds load.
    Backpressure,
    /// Truncated and bit-flipped frames arrive over TCP.
    CorruptFrames,
    /// Clients push partial frames and vanish mid-write.
    PartialWrites,
    /// The compactor lags behind the workers.
    CompactorDelay,
    /// Clients disconnect mid-epoch without flushing.
    ClientDisconnect,
    /// The process dies at a seeded point, possibly mid-checkpoint;
    /// recovery must lose nothing the WAL holds.
    CrashPoint,
    /// The last WAL segment is cut mid-record; recovery must keep the
    /// exact surviving prefix.
    TornWrite,
    /// A single bit flips in a WAL segment or checkpoint part; recovery
    /// must detect it and account for every surviving batch.
    BitFlip,
    /// A whole backend node is killed mid-ingest; the ring rebalances its
    /// range to the survivors and the lost weight widens the slack.
    NodeKill,
    /// A node is killed between ingest and query, so the coordinator
    /// discovers the death during the gather itself.
    GatherKill,
    /// A durable node is killed mid-stream, traffic rebalances, then the
    /// node restarts from its WAL and rejoins — no acked weight may be
    /// lost (strict zero-slack bound).
    RejoinRebalance,
    /// One member of a replica pair dies and rejoins empty; its partner
    /// carries the slot and read-one gathers must not double-count.
    ReplicaDivergence,
    /// The process dies right after the cube seals a segment — possibly
    /// before the segment file is durably on disk — and restart must
    /// rebuild full range coverage from the WAL; windows straddling the
    /// crash point must stay within ε·(covered weight).
    SegmentCrash,
    /// A seeded ingest flood storms a deliberately small server (slow
    /// workers, shallow queues, tight watermarks). The server must shed
    /// with typed `Overloaded` answers, never wedge, and never lose a
    /// byte of acked weight — the strict zero-slack bound applies to
    /// the admitted stream.
    OverloadStorm,
}

impl FaultClass {
    /// All classes, in a stable order.
    pub fn all() -> [FaultClass; 16] {
        [
            FaultClass::ShardDeath,
            FaultClass::PoolStarve,
            FaultClass::Backpressure,
            FaultClass::CorruptFrames,
            FaultClass::PartialWrites,
            FaultClass::CompactorDelay,
            FaultClass::ClientDisconnect,
            FaultClass::CrashPoint,
            FaultClass::TornWrite,
            FaultClass::BitFlip,
            FaultClass::NodeKill,
            FaultClass::GatherKill,
            FaultClass::RejoinRebalance,
            FaultClass::ReplicaDivergence,
            FaultClass::SegmentCrash,
            FaultClass::OverloadStorm,
        ]
    }

    /// Stable CLI label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::ShardDeath => "shard-death",
            FaultClass::PoolStarve => "pool-starve",
            FaultClass::Backpressure => "backpressure",
            FaultClass::CorruptFrames => "corrupt-frames",
            FaultClass::PartialWrites => "partial-writes",
            FaultClass::CompactorDelay => "compactor-delay",
            FaultClass::ClientDisconnect => "client-disconnect",
            FaultClass::CrashPoint => "crash-point",
            FaultClass::TornWrite => "torn-write",
            FaultClass::BitFlip => "bit-flip",
            FaultClass::NodeKill => "node-kill",
            FaultClass::GatherKill => "gather-kill",
            FaultClass::RejoinRebalance => "rejoin-rebalance",
            FaultClass::ReplicaDivergence => "replica-divergence",
            FaultClass::SegmentCrash => "segment-crash",
            FaultClass::OverloadStorm => "overload-storm",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<FaultClass> {
        FaultClass::all().into_iter().find(|c| c.label() == s)
    }
}

/// Outcome of one schedule. Printing it shows the seed that reproduces
/// the run: `run_schedule(class, kind, seed)` replays the same injection
/// decisions.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// Which failure mode was injected.
    pub class: FaultClass,
    /// Which summary family the engine ran.
    pub kind: SummaryKind,
    /// The seed that reproduces this schedule.
    pub seed: u64,
    /// Total weight of acknowledged batches.
    pub accepted_weight: u64,
    /// Weight sent but never acknowledged (may or may not be applied).
    pub unacked_weight: u64,
    /// Weight visible in the final snapshot.
    pub surviving_weight: u64,
    /// Slack added to the `ε·n` bound: lost + unacked weight.
    pub slack: u64,
    /// Final engine metrics.
    pub metrics: ms_service::MetricsReport,
    /// Point-estimate errors vs. the exact oracle (frequency families).
    pub point_check: Option<BoundCheck>,
    /// Rank/quantile errors vs. the exact oracle (quantile family).
    pub rank_check: Option<BoundCheck>,
    /// Encoded size of the surviving summary (whose round-trip was
    /// verified byte-for-byte).
    pub codec_bytes: usize,
}

impl fmt::Display for ScheduleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<17} {:<15} seed=0x{:X} accepted={} surviving={} slack={} \
             lost_shards={} rejected_frames={} retries={} dropped={}",
            self.class.label(),
            self.kind.label(),
            self.seed,
            self.accepted_weight,
            self.surviving_weight,
            self.slack,
            self.metrics.shards_lost,
            self.metrics.frames_rejected,
            self.metrics.retries,
            self.metrics.dropped,
        )?;
        if let Some(c) = &self.point_check {
            write!(f, " point_err={:.1}/{:.1}", c.stats.max, c.bound)?;
        }
        if let Some(c) = &self.rank_check {
            write!(f, " rank_err={:.1}/{:.1}", c.stats.max, c.bound)?;
        }
        write!(f, " codec={}B", self.codec_bytes)
    }
}

/// Everything a schedule accumulates while driving faults.
pub(crate) struct Harness {
    pub(crate) class: FaultClass,
    pub(crate) kind: SummaryKind,
    pub(crate) seed: u64,
    pub(crate) accepted: Vec<u64>,
    pub(crate) unacked_weight: u64,
    /// The engine's telemetry plane, attached after `Engine::start` so a
    /// failing verdict can dump the flight recorder for forensics.
    telemetry: Option<Arc<EngineTelemetry>>,
}

impl Harness {
    pub(crate) fn new(class: FaultClass, kind: SummaryKind, seed: u64) -> Self {
        Harness {
            class,
            kind,
            seed,
            accepted: Vec::new(),
            unacked_weight: 0,
            telemetry: None,
        }
    }

    /// Hold onto the engine's telemetry so [`Harness::fail`] can dump the
    /// flight recorder when a schedule's verdict fails.
    fn attach(&mut self, engine: &Arc<Engine>) {
        self.attach_telemetry(engine.telemetry());
    }

    /// Hold onto any telemetry plane (a coordinator's, for the
    /// whole-node classes) for failure-time flight dumps.
    pub(crate) fn attach_telemetry(&mut self, telemetry: &Arc<EngineTelemetry>) {
        self.telemetry = Some(Arc::clone(telemetry));
    }

    /// Build a failure message carrying the reproducing seed. If the
    /// engine's flight recorder is attached, dump it seed-stamped (first
    /// failure only) and cite the file in the message.
    pub(crate) fn fail(&self, msg: impl fmt::Display) -> String {
        let mut text = format!(
            "[{} {} seed=0x{:X}] {msg}",
            self.class.label(),
            self.kind.label(),
            self.seed
        );
        if let Some(telemetry) = &self.telemetry {
            if let Some(path) = telemetry.dump_flight(self.seed, self.class.label()) {
                text.push_str(&format!(" (flight recording: {})", path.display()));
            }
        }
        text
    }

    /// Final verdict: codec round-trip plus the loss-slack error bound on
    /// every query family the summary supports.
    pub(crate) fn finish(
        self,
        summary: &ShardSummary,
        metrics: ms_service::MetricsReport,
    ) -> Result<ScheduleReport, String> {
        let accepted_weight = self.accepted.len() as u64;
        let surviving_weight = summary.total_weight();
        if surviving_weight > accepted_weight + self.unacked_weight {
            return Err(self.fail(format!(
                "snapshot holds {surviving_weight} but only {accepted_weight} acked + \
                 {} unacked were ever sent",
                self.unacked_weight
            )));
        }
        let lost = accepted_weight.saturating_sub(surviving_weight);
        let slack = lost + self.unacked_weight;
        let bound = EPS * surviving_weight as f64 + slack as f64 + 1.0;

        // Lossless codec round-trip on the surviving state: the decoded
        // summary must answer every query identically. (Byte-identity is
        // deliberately not required — counter maps serialize in arbitrary
        // iteration order.)
        let bytes = summary.encode();
        let decoded = ShardSummary::decode(&bytes)
            .map_err(|e| self.fail(format!("surviving summary failed to decode: {e}")))?;
        if decoded.total_weight() != surviving_weight {
            return Err(self.fail("decoded summary lost weight"));
        }

        let mut point_check = None;
        let mut rank_check = None;
        match self.kind {
            SummaryKind::Mg | SummaryKind::SpaceSaving | SummaryKind::CountMin => {
                let oracle = FrequencyOracle::from_stream(self.accepted.iter().copied());
                for (item, _) in oracle.iter() {
                    if decoded.point(*item) != summary.point(*item) {
                        return Err(self.fail(format!(
                            "codec round-trip changed the estimate for item {item}"
                        )));
                    }
                }
                let errors: Vec<u64> = oracle
                    .iter()
                    .map(|(item, truth)| summary.point(*item).unwrap_or(0).abs_diff(truth))
                    .collect();
                let check = BoundCheck::from_u64(&errors, bound);
                if !check.ok() {
                    return Err(self.fail(format!(
                        "point error {:.1} exceeds ε·n+slack bound {:.1}",
                        check.stats.max, check.bound
                    )));
                }
                // Heavy-hitter answers must agree with the point estimates
                // they are drawn from.
                if let Some(hh) = summary.heavy_hitters(0.05) {
                    for (item, est) in hh {
                        let exact = oracle.count(&item);
                        if est.abs_diff(exact) as f64 > bound {
                            return Err(self.fail(format!(
                                "heavy hitter {item}: estimate {est} vs exact {exact} \
                                 outside bound {bound:.1}"
                            )));
                        }
                    }
                }
                point_check = Some(check);
            }
            SummaryKind::HybridQuantile => {
                let oracle = RankOracle::from_stream(self.accepted.iter().copied());
                let mut errors: Vec<u64> = Vec::new();
                // Rank queries at evenly spaced probe values.
                for i in 0..=32u64 {
                    let x = i * UNIVERSE / 32;
                    if decoded.rank(x) != summary.rank(x) {
                        return Err(
                            self.fail(format!("codec round-trip changed the rank estimate at {x}"))
                        );
                    }
                    if let Some(est) = summary.rank(x) {
                        errors.push(oracle.rank_error(&x, est));
                    }
                }
                // Quantile queries: the returned value's exact rank must be
                // within the bound of its target.
                for i in 1..20u64 {
                    let phi = i as f64 / 20.0;
                    if let Some(Some(v)) = summary.quantile(phi) {
                        let target = (phi * surviving_weight as f64).round() as u64;
                        errors.push(oracle.rank_error(&v, target));
                    }
                }
                let check = BoundCheck::from_u64(&errors, bound);
                if !check.ok() {
                    return Err(self.fail(format!(
                        "rank error {:.1} exceeds ε·n+slack bound {:.1}",
                        check.stats.max, check.bound
                    )));
                }
                rank_check = Some(check);
            }
        }

        Ok(ScheduleReport {
            class: self.class,
            kind: self.kind,
            seed: self.seed,
            accepted_weight,
            unacked_weight: self.unacked_weight,
            surviving_weight,
            slack,
            metrics,
            point_check,
            rank_check,
            codec_bytes: bytes.len(),
        })
    }
}

pub(crate) const UNIVERSE: u64 = 1 << 14;

pub(crate) fn stream(n: usize, seed: u64) -> Vec<u64> {
    StreamKind::Zipf {
        s: 1.2,
        universe: UNIVERSE,
    }
    .generate(n, seed)
}

pub(crate) fn base_config(kind: SummaryKind, seed: u64) -> ServiceConfig {
    ServiceConfig::new(kind, EPS).seed(seed ^ 0xD15EA5E)
}

fn fast_client(addr: std::net::SocketAddr) -> Result<Client, ServiceError> {
    Client::connect_with(
        addr,
        ClientOptions {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(5),
            retries: 2,
            backoff: Duration::from_millis(10),
            ..ClientOptions::default()
        },
    )
}

/// Run one seeded schedule to completion and verdict. Every injection
/// decision derives from `seed`, so a failure message's seed replays it.
pub fn run_schedule(
    class: FaultClass,
    kind: SummaryKind,
    seed: u64,
) -> Result<ScheduleReport, String> {
    match class {
        FaultClass::ShardDeath => shard_death(kind, seed),
        FaultClass::PoolStarve => pool_starve(kind, seed),
        FaultClass::Backpressure => backpressure(kind, seed),
        FaultClass::CorruptFrames => corrupt_frames(kind, seed),
        FaultClass::PartialWrites => partial_writes(kind, seed),
        FaultClass::CompactorDelay => compactor_delay(kind, seed),
        FaultClass::ClientDisconnect => client_disconnect(kind, seed),
        FaultClass::CrashPoint => crash_point(kind, seed),
        FaultClass::TornWrite => torn_write(kind, seed),
        FaultClass::BitFlip => bit_flip(kind, seed),
        FaultClass::NodeKill => crate::cluster::node_kill(kind, seed),
        FaultClass::GatherKill => crate::cluster::gather_kill(kind, seed),
        FaultClass::RejoinRebalance => crate::cluster::rejoin_rebalance(kind, seed),
        FaultClass::ReplicaDivergence => crate::cluster::replica_divergence(kind, seed),
        FaultClass::SegmentCrash => segment_crash(kind, seed),
        FaultClass::OverloadStorm => overload_storm(kind, seed),
    }
}

/// Class 1: worker threads die and respawn. Every batch is still
/// acknowledged (rerouted to a surviving shard); the loss is whatever the
/// dead incarnations held, and the bound absorbs it as slack.
fn shard_death(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::ShardDeath, kind, seed);
    let plan = Arc::new(SeededPlan::new(seed).death_every(40));
    let cfg = base_config(kind, seed)
        .shards(4)
        .queue_depth(4)
        .delta_updates(256)
        .fault_plan(Arc::clone(&plan) as Arc<dyn ms_service::FaultPlan>);
    let engine = Engine::start(cfg).map_err(|e| h.fail(e))?;
    h.attach(&engine);
    for batch in stream(40_000, seed).chunks(100) {
        engine.ingest(batch.to_vec()).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
    }
    let snap = engine.shutdown();
    let metrics = engine.metrics();
    if metrics.shards_lost == 0 || plan.deaths.load(Ordering::Relaxed) == 0 {
        return Err(h.fail("no shard death was ever triggered"));
    }
    if metrics.retries == 0 {
        return Err(h.fail("no batch was ever rerouted off a dead shard"));
    }
    h.finish(&snap.summary, metrics)
}

/// Class 1b: reroute while the pool is starved. A zero-slot buffer pool
/// forces every ingest onto the allocation-fallback path (each get a
/// counted miss, never an error) at the same time as seeded shard deaths
/// force reroutes — the two degraded paths compose without violating the
/// loss-slack bound.
fn pool_starve(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::PoolStarve, kind, seed);
    let plan = Arc::new(SeededPlan::new(seed).death_every(40));
    let cfg = base_config(kind, seed)
        .shards(4)
        .queue_depth(4)
        .delta_updates(256)
        .pool_buffers(0)
        .fault_plan(Arc::clone(&plan) as Arc<dyn ms_service::FaultPlan>);
    let engine = Engine::start(cfg).map_err(|e| h.fail(e))?;
    h.attach(&engine);
    for batch in stream(40_000, seed).chunks(100) {
        let mut buf = engine.ingest_buffer();
        buf.extend_from_slice(batch);
        engine.ingest(buf).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
    }
    let snap = engine.shutdown();
    let metrics = engine.metrics();
    let (reuses, misses, _) = engine.pool_stats();
    if misses == 0 {
        return Err(h.fail("pool was never starved"));
    }
    if reuses != 0 {
        return Err(h.fail("a zero-slot pool cannot serve reuses"));
    }
    if metrics.shards_lost == 0 || plan.deaths.load(Ordering::Relaxed) == 0 {
        return Err(h.fail("no shard death was ever triggered"));
    }
    if metrics.retries == 0 {
        return Err(h.fail("no batch was ever rerouted off a dead shard"));
    }
    h.finish(&snap.summary, metrics)
}

/// Class 2: queues saturate. `try_ingest` sheds batches under a stalling
/// worker; shed batches were never accepted, so the strict `ε·n` bound
/// applies to what was.
fn backpressure(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::Backpressure, kind, seed);
    let plan = Arc::new(SeededPlan::new(seed).stall(10_000, 1));
    let cfg = base_config(kind, seed)
        .shards(1)
        .queue_depth(1)
        .delta_updates(256)
        .fault_plan(Arc::clone(&plan) as Arc<dyn ms_service::FaultPlan>);
    let engine = Engine::start(cfg).map_err(|e| h.fail(e))?;
    h.attach(&engine);
    for batch in stream(20_000, seed).chunks(100) {
        match engine.try_ingest(batch.to_vec()) {
            Ok(()) => h.accepted.extend_from_slice(batch),
            Err(ServiceError::Backpressure) => {
                // Shed. Brief pause so the stalled worker makes progress
                // and later batches have a chance.
                std::thread::sleep(Duration::from_micros(300));
            }
            Err(other) => return Err(h.fail(other)),
        }
    }
    let snap = engine.shutdown();
    let metrics = engine.metrics();
    if metrics.dropped == 0 {
        return Err(h.fail("queues never saturated"));
    }
    if h.accepted.is_empty() {
        return Err(h.fail("backpressure rejected everything"));
    }
    if snap.summary.total_weight() != h.accepted.len() as u64 {
        return Err(h.fail(format!(
            "accepted {} but snapshot holds {} — shedding must not lose accepted data",
            h.accepted.len(),
            snap.summary.total_weight()
        )));
    }
    h.finish(&snap.summary, metrics)
}

/// Class 3: corrupted frames over TCP — truncations, header bit flips,
/// foreign magic, future versions, absurd lengths. Each must be counted
/// and rejected without disturbing the clean traffic sharing the server.
fn corrupt_frames(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::CorruptFrames, kind, seed);
    let mut rng = Rng64::new(seed);
    let engine = Engine::start(base_config(kind, seed).shards(2)).map_err(|e| h.fail(e))?;
    h.attach(&engine);
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").map_err(|e| h.fail(e))?;
    let addr = server.local_addr();
    let mut clean = fast_client(addr).map_err(|e| h.fail(e))?;

    let mut corrupted = 0u64;
    for (i, batch) in stream(16_000, seed).chunks(100).enumerate() {
        clean.ingest(batch.to_vec()).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
        if i % 8 == 0 {
            // A separate, doomed connection delivers the damaged frame so
            // the clean client's stream stays parseable.
            let frame =
                WireFrame::from_value(REQUEST_TAG, &Request::Ingest(batch.to_vec())).to_bytes();
            let bad = Corruption::All.apply(&frame, &mut rng);
            let mut victim = fast_client(addr).map_err(|e| h.fail(e))?;
            victim.send_raw(&bad).map_err(|e| h.fail(e))?;
            // Abandon without waiting: a corruption the server detects
            // immediately is answered and counted; one that leaves it
            // blocked mid-read resolves to a counted rejection when the
            // severed connection is observed.
            victim.abandon();
            corrupted += 1;
        }
    }
    clean.flush().map_err(|e| h.fail(e))?;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while engine.metrics().frames_rejected < corrupted && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    server.stop();
    let snap = engine.snapshot();
    let metrics = engine.metrics();
    if metrics.frames_rejected < corrupted {
        return Err(h.fail(format!(
            "sent {corrupted} corrupt frames but only {} were counted as rejected",
            metrics.frames_rejected
        )));
    }
    h.finish(&snap.summary, metrics)
}

/// Class 4: partial TCP writes — valid frames cut mid-stream by a peer
/// that dies. The server must treat the stub as a rejected frame and the
/// accepted stream must stay exact.
fn partial_writes(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::PartialWrites, kind, seed);
    let mut rng = Rng64::new(seed);
    let engine = Engine::start(base_config(kind, seed).shards(2)).map_err(|e| h.fail(e))?;
    h.attach(&engine);
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").map_err(|e| h.fail(e))?;
    let addr = server.local_addr();
    let mut clean = fast_client(addr).map_err(|e| h.fail(e))?;

    let mut partials = 0u64;
    for (i, batch) in stream(16_000, seed).chunks(100).enumerate() {
        clean.ingest(batch.to_vec()).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
        if i % 10 == 0 {
            let frame =
                WireFrame::from_value(REQUEST_TAG, &Request::Ingest(batch.to_vec())).to_bytes();
            let prefix = partial_prefix(&frame, &mut rng);
            let mut victim = fast_client(addr).map_err(|e| h.fail(e))?;
            victim.send_raw(&prefix).map_err(|e| h.fail(e))?;
            // Die mid-write: the severed connection is the fault.
            victim.abandon();
            partials += 1;
        }
    }
    clean.flush().map_err(|e| h.fail(e))?;
    // Give the connection threads a moment to observe the severed peers.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while engine.metrics().frames_rejected < partials && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    server.stop();
    let snap = engine.snapshot();
    let metrics = engine.metrics();
    if metrics.frames_rejected < partials {
        return Err(h.fail(format!(
            "sent {partials} partial frames but only {} were counted as rejected",
            metrics.frames_rejected
        )));
    }
    h.finish(&snap.summary, metrics)
}

/// Class 5: the compactor lags. Delayed merges must delay visibility, not
/// correctness — after the final flush everything accepted is visible and
/// within the strict bound.
fn compactor_delay(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::CompactorDelay, kind, seed);
    let plan = Arc::new(SeededPlan::new(seed).compactor_stall_every(3, 2));
    let cfg = base_config(kind, seed)
        .shards(4)
        .delta_updates(256)
        .fault_plan(Arc::clone(&plan) as Arc<dyn ms_service::FaultPlan>);
    let engine = Engine::start(cfg).map_err(|e| h.fail(e))?;
    h.attach(&engine);
    for batch in stream(20_000, seed).chunks(100) {
        engine.ingest(batch.to_vec()).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
    }
    engine.flush().map_err(|e| h.fail(e))?;
    let snap = engine.shutdown();
    let metrics = engine.metrics();
    if plan.compactor_stalls.load(Ordering::Relaxed) == 0 {
        return Err(h.fail("compactor was never stalled"));
    }
    if snap.summary.total_weight() != h.accepted.len() as u64 {
        return Err(h.fail("a lagging compactor lost data"));
    }
    h.finish(&snap.summary, metrics)
}

/// Class 6: clients vanish mid-epoch. Acked ingests from a vanished
/// client must survive; one request abandoned before its ack may or may
/// not have landed (its weight widens the slack); a mid-frame abandon is
/// a rejected frame.
fn client_disconnect(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::ClientDisconnect, kind, seed);
    let mut rng = Rng64::new(seed);
    let engine = Engine::start(base_config(kind, seed).shards(2)).map_err(|e| h.fail(e))?;
    h.attach(&engine);
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").map_err(|e| h.fail(e))?;
    let addr = server.local_addr();

    let items = stream(18_000, seed);
    let (first, rest) = items.split_at(6_000);
    let (second, third) = rest.split_at(6_000);

    // Client A: ingests its slice, acked, then vanishes without flushing.
    let mut a = fast_client(addr).map_err(|e| h.fail(e))?;
    for batch in first.chunks(100) {
        a.ingest(batch.to_vec()).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
    }
    a.abandon();

    // Client B: acked ingests, then one full request abandoned before
    // reading the ack (it may have been applied), then a frame severed
    // mid-write (never applied, counted as rejected).
    let mut b = fast_client(addr).map_err(|e| h.fail(e))?;
    let mut batches = second.chunks(100);
    let orphan = batches.next().expect("slice is non-empty");
    for batch in batches {
        b.ingest(batch.to_vec()).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
    }
    let orphan_frame =
        WireFrame::from_value(REQUEST_TAG, &Request::Ingest(orphan.to_vec())).to_bytes();
    b.send_raw(&orphan_frame).map_err(|e| h.fail(e))?;
    h.unacked_weight += orphan.len() as u64;
    b.abandon();

    let mut c = fast_client(addr).map_err(|e| h.fail(e))?;
    let cut_frame =
        WireFrame::from_value(REQUEST_TAG, &Request::Ingest(orphan.to_vec())).to_bytes();
    c.send_raw(&partial_prefix(&cut_frame, &mut rng))
        .map_err(|e| h.fail(e))?;
    c.abandon();

    // Client D survives all three disconnects and finishes the stream.
    let mut d = fast_client(addr).map_err(|e| h.fail(e))?;
    for batch in third.chunks(100) {
        d.ingest(batch.to_vec()).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
    }
    d.flush().map_err(|e| h.fail(e))?;

    // Wait until the severed mid-frame write is observed and any orphan
    // ingest has settled.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while engine.metrics().frames_rejected < 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    d.flush().map_err(|e| h.fail(e))?;
    server.stop();
    let snap = engine.snapshot();
    let metrics = engine.metrics();
    if metrics.frames_rejected < 1 {
        return Err(h.fail("mid-frame disconnect was never observed"));
    }
    if snap.summary.total_weight() < h.accepted.len() as u64 {
        return Err(h.fail(format!(
            "acked weight {} outlived its clients but snapshot holds only {}",
            h.accepted.len(),
            snap.summary.total_weight()
        )));
    }
    h.finish(&snap.summary, metrics)
}

/// Fresh scratch data directory for one durable schedule, named by the
/// run's coordinates so concurrent suites never collide.
pub(crate) fn scratch_dir(class: FaultClass, kind: SummaryKind, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ms-faultsim-{}-{}-{seed:x}-{}",
        class.label(),
        kind.label(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable engine config for the crash classes: small segments so a
/// short stream spans several files, manual checkpoints only (the
/// schedules place them at seeded indices).
pub(crate) fn durable_config(
    kind: SummaryKind,
    seed: u64,
    dir: &Path,
    fsync: FsyncPolicy,
) -> ServiceConfig {
    base_config(kind, seed)
        .shards(2)
        .delta_updates(64)
        .durability(
            DurabilityConfig::new(dir)
                .fsync(fsync)
                .checkpoint_batches(u64::MAX)
                .segment_bytes(8192),
        )
}

/// WAL segment files under the data directory, in append order.
fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir.join("wal"))
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "seg"))
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

/// Part files of the newest checkpoint set on disk. Sequence numbers are
/// fixed-width hex, so the lexicographically greatest name belongs to the
/// newest set and its parts share the `ckpt-<seq>` prefix (21 chars).
fn newest_checkpoint_parts(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir.join("ckpt"))
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    let Some(prefix) = files
        .last()
        .and_then(|p| p.file_name())
        .and_then(|n| n.to_str())
        .and_then(|n| n.get(..21))
        .map(str::to_owned)
    else {
        return Vec::new();
    };
    files.retain(|p| {
        p.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with(&prefix))
    });
    files
}

fn truncate_file(path: &Path, len: u64) -> std::io::Result<()> {
    std::fs::OpenOptions::new()
        .write(true)
        .open(path)?
        .set_len(len)
}

/// Flip one seeded bit somewhere in `path`.
fn flip_bit(path: &Path, rng: &mut Rng64) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    let idx = rng.below_usize(bytes.len());
    bytes[idx] ^= 1 << rng.below(8);
    std::fs::write(path, bytes)
}

/// Class 7: the process dies at a seeded batch index with no shutdown
/// path, possibly leaving the newest checkpoint set half-written (a part
/// truncated mid-write or missing entirely). Because the WAL is synced
/// before a checkpoint set ever claims its cut, a damaged set must fall
/// back to the previous one plus a longer WAL replay — recovering *all*
/// `k` acknowledged batches, under the strict zero-slack bound.
fn crash_point(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::CrashPoint, kind, seed);
    let mut rng = Rng64::new(seed ^ 0xC4A5_4B01);
    let dir = scratch_dir(FaultClass::CrashPoint, kind, seed);

    // Two seeded checkpoints and a seeded crash index: c1 < c2 < k ≤ 200.
    let c1 = 20 + rng.below(40) as usize;
    let c2 = c1 + 20 + rng.below(40) as usize;
    let k = c2 + 10 + rng.below((200 - c2 - 10 + 1) as u64) as usize;

    let engine = Engine::start(durable_config(kind, seed, &dir, FsyncPolicy::EveryN(4)))
        .map_err(|e| h.fail(e))?;
    h.attach(&engine);
    for (i, batch) in stream(k * 100, seed).chunks(100).enumerate() {
        engine.ingest(batch.to_vec()).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
        if i + 1 == c1 || i + 1 == c2 {
            engine.checkpoint_now().map_err(|e| h.fail(e))?;
        }
    }
    engine.abort();

    // Seeded crash damage: the files a dying process can leave behind.
    let damaged = match rng.below(3) {
        0 => false, // clean crash: every buffered page made it to disk
        mode => {
            let parts = newest_checkpoint_parts(&dir);
            if parts.is_empty() {
                return Err(h.fail("no checkpoint part files on disk"));
            }
            let victim = &parts[rng.below_usize(parts.len())];
            if mode == 1 {
                std::fs::remove_file(victim).map_err(|e| h.fail(e))?;
            } else {
                let len = std::fs::metadata(victim).map_err(|e| h.fail(e))?.len();
                truncate_file(victim, len / 2).map_err(|e| h.fail(e))?;
            }
            true
        }
    };

    let engine = Engine::start(durable_config(kind, seed, &dir, FsyncPolicy::EveryN(4)))
        .map_err(|e| h.fail(e))?;
    h.attach(&engine);
    let report = engine
        .recovery()
        .ok_or_else(|| h.fail("restarted engine has no recovery report"))?;
    let expect_ckpt = if damaged { c1 } else { c2 } as u64;
    if report.checkpoint_seq != expect_ckpt {
        return Err(h.fail(format!(
            "recovered from checkpoint {} but expected {expect_ckpt} (damaged={damaged})",
            report.checkpoint_seq
        )));
    }
    if damaged && report.corrupt_checkpoints == 0 {
        return Err(h.fail("damaged checkpoint set was not detected"));
    }
    if report.replayed_records != k as u64 - expect_ckpt {
        return Err(h.fail(format!(
            "replayed {} WAL records but expected {}",
            report.replayed_records,
            k as u64 - expect_ckpt
        )));
    }
    let snap = engine.shutdown();
    let metrics = engine.metrics();
    let surviving = snap.summary.total_weight();
    if surviving != (k * 100) as u64 {
        return Err(h.fail(format!(
            "crash lost acknowledged data: {surviving} of {} items survived",
            k * 100
        )));
    }
    if report.preloaded_weight + report.replayed_weight != surviving {
        return Err(h.fail(format!(
            "recovery accounting mismatch: preloaded {} + replayed {} != surviving {surviving}",
            report.preloaded_weight, report.replayed_weight
        )));
    }
    let _ = std::fs::remove_dir_all(&dir);
    h.finish(&snap.summary, metrics)
}

/// Class 8: the last WAL segment is cut mid-write (no checkpoint exists,
/// `fsync never` — the worst case). Recovery must keep exactly the
/// records wholly before the cut: an *exact prefix* of the acknowledged
/// stream, verified under the strict zero-slack bound. A cut inside the
/// final record's trailer additionally must be *reported* as a torn tail
/// and lose exactly that one record.
fn torn_write(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::TornWrite, kind, seed);
    let mut rng = Rng64::new(seed ^ 0x7042_11E5);
    let dir = scratch_dir(FaultClass::TornWrite, kind, seed);

    let engine = Engine::start(durable_config(kind, seed, &dir, FsyncPolicy::Never))
        .map_err(|e| h.fail(e))?;
    h.attach(&engine);
    for batch in stream(20_000, seed).chunks(100) {
        engine.ingest(batch.to_vec()).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
    }
    engine.abort();

    let segments = wal_segments(&dir);
    let last = segments
        .last()
        .ok_or_else(|| h.fail("no WAL segments on disk"))?;
    let len = std::fs::metadata(last).map_err(|e| h.fail(e))?.len();
    // Two torn-write shapes. A cut inside the last record's 8-byte
    // trailer always leaves detectable garbage. A seeded cut in the
    // upper half may land exactly on a record boundary — in principle
    // indistinguishable from a shorter clean log, so only the
    // exact-prefix property is asserted there.
    let trailer_cut = rng.coin();
    let cut = if trailer_cut {
        len - 1 - rng.below(7)
    } else {
        len / 2 + rng.below(len / 2 - 8)
    };
    truncate_file(last, cut).map_err(|e| h.fail(e))?;

    let engine = Engine::start(durable_config(kind, seed, &dir, FsyncPolicy::Never))
        .map_err(|e| h.fail(e))?;
    h.attach(&engine);
    let report = engine
        .recovery()
        .ok_or_else(|| h.fail("restarted engine has no recovery report"))?;
    if report.checkpoint_seq != 0 {
        return Err(h.fail("no checkpoint was ever written, yet recovery found one"));
    }
    let m = report.replayed_records as usize;
    if m == 0 || m >= 200 {
        return Err(h.fail(format!("torn tail recovered {m} of 200 batches")));
    }
    if trailer_cut {
        if m != 199 {
            return Err(h.fail(format!(
                "a cut inside the final trailer must lose exactly the last record, recovered {m}"
            )));
        }
        if report.torn_bytes == 0 {
            return Err(h.fail("torn tail was not reported"));
        }
    }
    // The recovered state must be the exact prefix the cut left behind.
    h.accepted.truncate(m * 100);
    let snap = engine.shutdown();
    let metrics = engine.metrics();
    if snap.summary.total_weight() != (m * 100) as u64 {
        return Err(h.fail(format!(
            "replay of {m} batches surfaced weight {} instead of {}",
            snap.summary.total_weight(),
            m * 100
        )));
    }
    let _ = std::fs::remove_dir_all(&dir);
    h.finish(&snap.summary, metrics)
}

/// Class 9: one seeded bit flips at rest — in a WAL segment or in a part
/// of the only checkpoint set. Every flip must be *detected* (CRC-covered
/// records and parts, never trusted), the damage skipped, and the
/// surviving weight exactly equal to what recovery says it preloaded plus
/// replayed; the lost weight widens the bound as slack.
fn bit_flip(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::BitFlip, kind, seed);
    let mut rng = Rng64::new(seed ^ 0xB17F_11B5);
    let dir = scratch_dir(FaultClass::BitFlip, kind, seed);

    let c = 40 + rng.below(80) as usize;
    let engine = Engine::start(durable_config(kind, seed, &dir, FsyncPolicy::EveryN(8)))
        .map_err(|e| h.fail(e))?;
    h.attach(&engine);
    for (i, batch) in stream(20_000, seed).chunks(100).enumerate() {
        engine.ingest(batch.to_vec()).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
        if i + 1 == c {
            engine.checkpoint_now().map_err(|e| h.fail(e))?;
        }
    }
    engine.abort();

    let flip_wal = rng.coin();
    let victims = if flip_wal {
        wal_segments(&dir)
    } else {
        newest_checkpoint_parts(&dir)
    };
    if victims.is_empty() {
        return Err(h.fail("no durable files on disk to damage"));
    }
    let victim = &victims[rng.below_usize(victims.len())];
    flip_bit(victim, &mut rng).map_err(|e| h.fail(e))?;

    let engine = Engine::start(durable_config(kind, seed, &dir, FsyncPolicy::EveryN(8)))
        .map_err(|e| h.fail(e))?;
    h.attach(&engine);
    let report = engine
        .recovery()
        .ok_or_else(|| h.fail("restarted engine has no recovery report"))?;
    if flip_wal {
        // A flipped WAL bit corrupts one record (an interior flip resyncs
        // past it; a final-record flip reads as a torn tail) and must
        // never disturb the checkpoint.
        if report.corrupt_records == 0 && report.torn_bytes == 0 {
            return Err(h.fail("flipped WAL bit was not detected"));
        }
        if report.checkpoint_seq != c as u64 {
            return Err(h.fail(format!(
                "WAL damage must not disturb the checkpoint, yet recovery used seq {}",
                report.checkpoint_seq
            )));
        }
    } else {
        // A flipped checkpoint bit invalidates the whole (only) set;
        // recovery degrades to whatever WAL survives pruning.
        if report.corrupt_checkpoints == 0 {
            return Err(h.fail("flipped checkpoint bit was not detected"));
        }
        if report.checkpoint_seq != 0 {
            return Err(h.fail(
                "the only checkpoint set was damaged, yet recovery claims to have used one",
            ));
        }
    }
    let snap = engine.shutdown();
    let metrics = engine.metrics();
    let surviving = snap.summary.total_weight();
    if report.preloaded_weight + report.replayed_weight != surviving {
        return Err(h.fail(format!(
            "recovery accounting mismatch: preloaded {} + replayed {} != surviving {surviving}",
            report.preloaded_weight, report.replayed_weight
        )));
    }
    let _ = std::fs::remove_dir_all(&dir);
    h.finish(&snap.summary, metrics)
}

/// Verify one range query against an exact oracle over the covered
/// sequence span. The cube's covering rule reports exactly which batch
/// seqs the merged summary holds (`meta.start_seq ..= meta.end_seq`), so
/// the oracle is the corresponding slice of the original stream and the
/// bound is the strict `ε·(covered weight) + 1` — no slack: segments are
/// rebuilt from the WAL, so a crash may shift *which* span a window
/// covers but must never blur the answer over the span it claims.
fn check_range(
    h: &Harness,
    engine: &Arc<Engine>,
    items: &[u64],
    start_micros: u64,
) -> Result<(), String> {
    for qkind in [SummaryKind::Mg, SummaryKind::HybridQuantile] {
        let (meta, merged) = engine
            .range_query(start_micros, u64::MAX, qkind)
            .map_err(|e| h.fail(e))?;
        let merged =
            merged.ok_or_else(|| h.fail("range query over live data found no coverage"))?;
        if meta.start_seq == 0 || (meta.end_seq as usize) * 100 > items.len() {
            return Err(h.fail(format!(
                "range meta claims seqs {}..={} outside the {}-batch stream",
                meta.start_seq,
                meta.end_seq,
                items.len() / 100
            )));
        }
        let span = &items[((meta.start_seq - 1) * 100) as usize..(meta.end_seq * 100) as usize];
        if meta.covered_weight != span.len() as u64 || merged.total_weight() != meta.covered_weight
        {
            return Err(h.fail(format!(
                "range meta covers weight {} but the seq span holds {} and the summary {}",
                meta.covered_weight,
                span.len(),
                merged.total_weight()
            )));
        }
        let bound = EPS * meta.covered_weight as f64 + 1.0;
        match qkind {
            SummaryKind::HybridQuantile => {
                let oracle = RankOracle::from_stream(span.iter().copied());
                let mut errors: Vec<u64> = Vec::new();
                for i in 0..=16u64 {
                    let x = i * UNIVERSE / 16;
                    if let Some(est) = merged.rank(x) {
                        errors.push(oracle.rank_error(&x, est));
                    }
                }
                let check = BoundCheck::from_u64(&errors, bound);
                if !check.ok() {
                    return Err(h.fail(format!(
                        "range rank error {:.1} exceeds ε·covered bound {:.1}",
                        check.stats.max, check.bound
                    )));
                }
            }
            _ => {
                let oracle = FrequencyOracle::from_stream(span.iter().copied());
                let errors: Vec<u64> = oracle
                    .iter()
                    .map(|(item, truth)| merged.point(*item).unwrap_or(0).abs_diff(truth))
                    .collect();
                let check = BoundCheck::from_u64(&errors, bound);
                if !check.ok() {
                    return Err(h.fail(format!(
                        "range point error {:.1} exceeds ε·covered bound {:.1}",
                        check.stats.max, check.bound
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Class 15: the process dies right after the cube seals segments,
/// possibly leaving the newest sealed-segment file missing or torn — the
/// window a real crash leaves between the in-memory seal and the
/// segment's durable rename. Restart must rebuild full range coverage
/// from the WAL (sealed prefix adopted from disk, the rest re-folded
/// from the tail), and range queries straddling the crash point — before
/// and after fresh post-restart ingest — must stay within the strict
/// `ε·(covered weight)` bound against an exact oracle. The schedule's
/// clock is a shared [`ManualClock`]: every seal boundary is seeded,
/// never slept for.
fn segment_crash(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::SegmentCrash, kind, seed);
    let mut rng = Rng64::new(seed ^ 0x5E67_C4A5);
    let dir = scratch_dir(FaultClass::SegmentCrash, kind, seed);
    let clock = Arc::new(ManualClock::new(1));
    let seg_cfg = SegmentConfig::new()
        .seal_batches(8)
        .seal_micros(5_000)
        .clock(Arc::clone(&clock) as Arc<dyn CubeClock>);
    let config =
        |seg: SegmentConfig| durable_config(kind, seed, &dir, FsyncPolicy::EveryN(4)).segments(seg);

    let k1 = 40 + rng.below(40) as usize; // pre-crash batches
    let k2 = 20 + rng.below(20) as usize; // post-restart batches
    let c1 = 10 + rng.below((k1 - 15) as u64) as usize; // seeded checkpoint
    let items = stream((k1 + k2) * 100, seed);
    // Cube time at which each batch seq was recorded (window anchors).
    let mut batch_time = vec![0u64; k1 + k2 + 1];

    let engine = Engine::start(config(seg_cfg.clone())).map_err(|e| h.fail(e))?;
    h.attach(&engine);
    for (i, batch) in items[..k1 * 100].chunks(100).enumerate() {
        // Seeded clock steps; the occasional jump past `seal_micros`
        // forces a wall-clock seal mid-count.
        let step = if rng.below(10) == 0 {
            6_000
        } else {
            rng.below(1_500)
        };
        batch_time[i + 1] = clock.advance(step);
        engine.ingest(batch.to_vec()).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
        if i + 1 == c1 {
            engine.checkpoint_now().map_err(|e| h.fail(e))?;
        }
    }
    let sealed_before = engine
        .segment_report()
        .map_err(|e| h.fail(e))?
        .segments
        .iter()
        .filter(|s| s.sealed)
        .count();
    if sealed_before == 0 {
        return Err(h.fail("no segment was ever sealed before the crash"));
    }
    engine.abort();

    // Seeded crash damage to the newest sealed-segment file: exactly the
    // file a crash between seal and fsync leaves missing or torn.
    let mode = rng.below(3);
    if mode > 0 {
        let mut segs: Vec<PathBuf> = std::fs::read_dir(dir.join("seg"))
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "seg"))
                    .collect()
            })
            .unwrap_or_default();
        segs.sort();
        let victim = segs
            .last()
            .ok_or_else(|| h.fail("no segment files on disk to damage"))?;
        if mode == 1 {
            std::fs::remove_file(victim).map_err(|e| h.fail(e))?;
        } else {
            let len = std::fs::metadata(victim).map_err(|e| h.fail(e))?.len();
            truncate_file(victim, len / 2).map_err(|e| h.fail(e))?;
        }
    }

    let engine = Engine::start(config(seg_cfg)).map_err(|e| h.fail(e))?;
    h.attach(&engine);
    let report = engine
        .recovery()
        .ok_or_else(|| h.fail("restarted engine has no recovery report"))?;
    if mode == 0 && report.cube_segments_adopted == 0 {
        return Err(h.fail("no sealed segment survived a damage-free crash"));
    }
    if mode == 2 && report.corrupt_cube_segments == 0 {
        return Err(h.fail("torn segment file was not detected"));
    }

    // Full coverage must be back: every pre-crash batch in some segment.
    let rep = engine.segment_report().map_err(|e| h.fail(e))?;
    let covered: u64 = rep.segments.iter().map(|s| s.weight).sum();
    let max_seq = rep.segments.iter().map(|s| s.end_seq).max().unwrap_or(0);
    if covered != (k1 * 100) as u64 || max_seq != k1 as u64 {
        return Err(h.fail(format!(
            "cube lost coverage across the crash: weight {covered} of {}, max seq {max_seq} of {k1}",
            k1 * 100
        )));
    }

    // Windows spanning the crash point, against the exact oracle.
    check_range(&h, &engine, &items, 0)?;
    check_range(&h, &engine, &items, batch_time[k1 / 2])?;

    // Keep ingesting: post-restart seqs continue the WAL's numbering and
    // a straddling window now merges pre-crash and post-restart segments.
    for (i, batch) in items[k1 * 100..].chunks(100).enumerate() {
        let step = if rng.below(10) == 0 {
            6_000
        } else {
            rng.below(1_500)
        };
        batch_time[k1 + i + 1] = clock.advance(step);
        engine.ingest(batch.to_vec()).map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(batch);
    }
    check_range(&h, &engine, &items, batch_time[k1 / 2])?;
    check_range(&h, &engine, &items, batch_time[k1 + k2 / 2])?;

    engine.flush().map_err(|e| h.fail(e))?;
    let snap = engine.shutdown();
    let metrics = engine.metrics();
    if snap.summary.total_weight() != ((k1 + k2) * 100) as u64 {
        return Err(h.fail(format!(
            "crash lost acknowledged data: {} of {} items survived",
            snap.summary.total_weight(),
            (k1 + k2) * 100
        )));
    }
    let _ = std::fs::remove_dir_all(&dir);
    h.finish(&snap.summary, metrics)
}

/// Class 16: a seeded ingest flood storms a deliberately small server —
/// every batch stalls inside a single slow shard, queues are two deep,
/// and the watermarks are tight — over real TCP from four concurrent
/// clients carrying deadline envelopes. The server must answer every
/// over-pressure request with a typed `Overloaded` shed (visible in the
/// admission counters), keep serving after the storm (no wedge, no
/// leaked in-flight slots), and hold every byte of *acked* weight under
/// the strict zero-slack `ε·n` bound.
fn overload_storm(kind: SummaryKind, seed: u64) -> Result<ScheduleReport, String> {
    let mut h = Harness::new(FaultClass::OverloadStorm, kind, seed);
    // The slow node: a quarter of all batches stall 1ms, so the shallow
    // queue backs up and the pressure signal crosses the watermarks —
    // but drains often enough that a real admitted stream accumulates.
    let plan = Arc::new(SeededPlan::new(seed).stall(2_500, 1));
    let overload = OverloadConfig::default()
        .max_inflight(8)
        .shed_watermark(0.5)
        .ingest_watermark(0.5)
        .retry_after_micros(5_000);
    let cfg = base_config(kind, seed)
        .shards(1)
        .queue_depth(2)
        .delta_updates(256)
        .overload(overload)
        .fault_plan(Arc::clone(&plan) as Arc<dyn ms_service::FaultPlan>);
    let engine = Engine::start(cfg).map_err(|e| h.fail(e))?;
    h.attach(&engine);
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").map_err(|e| h.fail(e))?;
    let addr = server.local_addr();

    // Four concurrent flooders, each with a seed-sliced stream and a
    // deadline on the wire so the envelope path runs under pressure. A
    // shed answer is an answer: the batch was refused, not lost.
    let items = stream(16_000, seed);
    let workers: Vec<_> = items
        .chunks(items.len() / 4)
        .map(|slice| {
            let slice = slice.to_vec();
            std::thread::spawn(move || -> Result<(Vec<u64>, u64), ServiceError> {
                let mut client = Client::connect_with(
                    addr,
                    ClientOptions {
                        connect_timeout: Duration::from_secs(5),
                        read_timeout: Duration::from_secs(5),
                        retries: 2,
                        backoff: Duration::from_millis(10),
                        deadline: Some(Duration::from_secs(2)),
                        ..ClientOptions::default()
                    },
                )?;
                let mut acked = Vec::new();
                let mut shed = 0u64;
                for batch in slice.chunks(100) {
                    match client.ingest(batch.to_vec()) {
                        Ok(()) => acked.extend_from_slice(batch),
                        Err(ServiceError::Overloaded { .. }) => shed += 1,
                        Err(other) => return Err(other),
                    }
                }
                Ok((acked, shed))
            })
        })
        .collect();
    let mut client_sheds = 0u64;
    for worker in workers {
        let (acked, shed) = worker
            .join()
            .map_err(|_| h.fail("flood client panicked"))?
            .map_err(|e| h.fail(e))?;
        h.accepted.extend_from_slice(&acked);
        client_sheds += shed;
    }

    // Shed-not-wedged: after the storm a fresh client is served, the
    // sheds the clients saw are all counted, and no in-flight slot
    // leaked (a leak would hold the server at cap forever).
    let mut after = fast_client(addr).map_err(|e| h.fail(e))?;
    after.flush().map_err(|e| h.fail(e))?;
    let admission = engine.admission();
    if admission.sheds() == 0 || client_sheds == 0 {
        return Err(h.fail(format!(
            "the storm was never shed (server counted {}, clients saw {client_sheds})",
            admission.sheds()
        )));
    }
    if admission.sheds() < client_sheds {
        return Err(h.fail(format!(
            "clients saw {client_sheds} sheds but the server only counted {}",
            admission.sheds()
        )));
    }
    if admission.inflight() != 0 {
        return Err(h.fail(format!(
            "{} in-flight slots leaked past the storm",
            admission.inflight()
        )));
    }
    server.stop();
    let snap = engine.snapshot();
    let metrics = engine.metrics();
    if h.accepted.is_empty() {
        return Err(h.fail("the storm shed everything"));
    }
    if snap.summary.total_weight() != h.accepted.len() as u64 {
        return Err(h.fail(format!(
            "acked {} but snapshot holds {} — shedding must not lose acked data",
            h.accepted.len(),
            snap.summary.total_weight()
        )));
    }
    h.finish(&snap.summary, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A schedule verdict that fails must leave a seed-stamped flight
    /// recording behind and cite it in the failure message — and only
    /// once: the first failure wins the latch.
    #[test]
    fn failing_verdict_dumps_seed_stamped_flight_recording() {
        let dir = std::env::temp_dir().join(format!("ms-faultsim-flight-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::env::set_var("MS_FLIGHT_DIR", &dir);

        let seed = 0xFA11ED;
        let mut h = Harness::new(FaultClass::ShardDeath, SummaryKind::Mg, seed);
        let engine = Engine::start(base_config(SummaryKind::Mg, seed).shards(2)).unwrap();
        h.attach(&engine);
        engine.ingest((0..100).collect()).unwrap();
        engine.flush().unwrap();

        let msg = h.fail("forced failure for the flight-dump test");
        std::env::remove_var("MS_FLIGHT_DIR");
        engine.shutdown();

        assert!(msg.contains("flight recording:"), "{msg}");
        let expected = dir.join(format!("flight-shard-death-{seed:#x}.json"));
        assert!(expected.exists(), "missing {}", expected.display());
        let json = std::fs::read_to_string(&expected).unwrap();
        assert!(
            json.contains(&format!("\"seed\": \"{seed:#x}\"")),
            "dump is not seed-stamped: {json}"
        );

        // The latch: a second failure on the same engine reports plainly.
        let again = h.fail("second failure");
        assert!(!again.contains("flight recording:"), "{again}");

        std::fs::remove_dir_all(&dir).ok();
    }

    /// A harness that never saw an engine (e.g. `Engine::start` itself
    /// failed) still formats a plain failure message.
    #[test]
    fn unattached_harness_fails_without_dump() {
        let h = Harness::new(FaultClass::Backpressure, SummaryKind::CountMin, 7);
        let msg = h.fail("boom");
        assert_eq!(msg, "[backpressure count-min seed=0x7] boom");
    }
}

//! Run the full fault-schedule matrix: every fault class × summary family
//! × seed. Prints one line per schedule (including the seed that replays
//! it) and exits nonzero if any schedule violates its error bound, codec
//! round-trip, or fault-trigger assertion.
//!
//! ```text
//! fault-suite [--seeds 11,12,13] [--classes shard-death,...] [--kinds mg,...]
//! ```

use std::process::ExitCode;

use ms_faultsim::{run_schedule, FaultClass};
use ms_service::SummaryKind;

/// Default seeds; CI pins these three.
const DEFAULT_SEEDS: [u64; 3] = [0xF417_5EED, 0xB0B5_CAFE, 0x2026_0806];

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn usage(detail: &str) -> ExitCode {
    eprintln!("error: {detail}");
    eprintln!("usage: fault-suite [--seeds N,N,...] [--classes C,C,...] [--kinds K,K,...]");
    eprintln!(
        "classes: {}",
        FaultClass::all().map(|c| c.label()).join(", ")
    );
    eprintln!(
        "kinds: {}",
        SummaryKind::all().map(|k| k.label()).join(", ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut seeds: Vec<u64> = DEFAULT_SEEDS.to_vec();
    let mut classes: Vec<FaultClass> = FaultClass::all().to_vec();
    let mut kinds: Vec<SummaryKind> = SummaryKind::all().to_vec();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            return usage(&format!("{flag} needs a value"));
        };
        match flag {
            "--seeds" => {
                let parsed: Option<Vec<u64>> = value.split(',').map(parse_seed).collect();
                match parsed {
                    Some(list) if !list.is_empty() => seeds = list,
                    _ => return usage(&format!("bad seed list {value:?}")),
                }
            }
            "--classes" => {
                let parsed: Option<Vec<FaultClass>> =
                    value.split(',').map(FaultClass::parse).collect();
                match parsed {
                    Some(list) if !list.is_empty() => classes = list,
                    _ => return usage(&format!("bad class list {value:?}")),
                }
            }
            "--kinds" => {
                let parsed: Option<Vec<SummaryKind>> =
                    value.split(',').map(SummaryKind::parse).collect();
                match parsed {
                    Some(list) if !list.is_empty() => kinds = list,
                    _ => return usage(&format!("bad kind list {value:?}")),
                }
            }
            other => return usage(&format!("unknown flag {other:?}")),
        }
        i += 2;
    }

    let mut failures = 0usize;
    let mut ran = 0usize;
    for &seed in &seeds {
        for &class in &classes {
            for &kind in &kinds {
                ran += 1;
                match run_schedule(class, kind, seed) {
                    Ok(report) => println!("ok   {report}"),
                    Err(msg) => {
                        failures += 1;
                        println!("FAIL {msg}");
                    }
                }
            }
        }
    }
    println!(
        "fault-suite: {ran} schedules, {failures} failures ({} seeds × {} classes × {} kinds)",
        seeds.len(),
        classes.len(),
        kinds.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! One seeded schedule per fault class (and a full family matrix for the
//! richest class). Each test prints the schedule report, whose seed
//! replays the run via `run_schedule(class, kind, seed)` — a failure
//! message carries the same seed.

use ms_faultsim::{run_schedule, FaultClass};
use ms_service::SummaryKind;

/// Seed shared by the per-class tests. The schedules are deterministic in
/// it; if a test fails, rerun with the printed seed.
const SEED: u64 = 0xF417_5EED;

fn run(class: FaultClass, kind: SummaryKind) -> ms_faultsim::ScheduleReport {
    let report = run_schedule(class, kind, SEED).unwrap_or_else(|msg| panic!("{msg}"));
    println!("{report}");
    report
}

#[test]
fn shard_death_respawns_and_keeps_the_bound() {
    let report = run(FaultClass::ShardDeath, SummaryKind::Mg);
    assert!(report.metrics.shards_lost >= 1, "fault never triggered");
    assert!(report.metrics.retries >= 1, "no batch was rerouted");
    // Deaths lose only bounded state: pending delta + queued batches.
    assert!(report.surviving_weight > 0);
}

#[test]
fn shard_death_holds_for_every_family() {
    for kind in SummaryKind::all() {
        let report = run(FaultClass::ShardDeath, kind);
        assert!(report.metrics.shards_lost >= 1, "{kind:?}: no death");
    }
}

#[test]
fn reroute_while_pool_starved_keeps_the_bound() {
    let report = run(FaultClass::PoolStarve, SummaryKind::Mg);
    assert!(report.metrics.shards_lost >= 1, "fault never triggered");
    assert!(report.metrics.retries >= 1, "no batch was rerouted");
    // Starvation degrades to allocation, never to data loss beyond what
    // the dying shards held.
    assert!(report.surviving_weight > 0);
}

#[test]
fn backpressure_sheds_load_without_losing_accepted_data() {
    let report = run(FaultClass::Backpressure, SummaryKind::SpaceSaving);
    assert!(report.metrics.dropped >= 1, "queues never saturated");
    // Shedding is not loss: everything acknowledged survived.
    assert_eq!(report.surviving_weight, report.accepted_weight);
    assert_eq!(report.slack, 0);
}

#[test]
fn corrupt_frames_are_rejected_and_counted() {
    let report = run(FaultClass::CorruptFrames, SummaryKind::Mg);
    assert!(report.metrics.frames_rejected >= 1, "no frame was rejected");
    // Corruption must not leak into the accepted stream.
    assert_eq!(report.surviving_weight, report.accepted_weight);
}

#[test]
fn partial_writes_are_rejected_and_counted() {
    let report = run(FaultClass::PartialWrites, SummaryKind::CountMin);
    assert!(report.metrics.frames_rejected >= 1, "no stub was rejected");
    assert_eq!(report.surviving_weight, report.accepted_weight);
}

#[test]
fn compactor_delay_postpones_visibility_not_correctness() {
    let report = run(FaultClass::CompactorDelay, SummaryKind::HybridQuantile);
    assert_eq!(report.surviving_weight, report.accepted_weight);
    assert!(report.metrics.merges >= 1);
}

#[test]
fn client_disconnects_leave_acked_data_intact() {
    let report = run(FaultClass::ClientDisconnect, SummaryKind::Mg);
    assert!(report.metrics.frames_rejected >= 1, "severed frame unseen");
    assert!(report.surviving_weight >= report.accepted_weight);
    // The one unacked request bounds the slack.
    assert!(report.slack <= report.unacked_weight);
    assert_eq!(report.unacked_weight, 100);
}

#[test]
fn segment_crash_rebuilds_range_coverage() {
    let report = run(FaultClass::SegmentCrash, SummaryKind::Mg);
    // Segments rebuild from the WAL: acked weight survives the crash
    // exactly, and range windows straddling the crash point were checked
    // inside the schedule under the strict zero-slack bound.
    assert_eq!(report.surviving_weight, report.accepted_weight);
    assert_eq!(report.slack, 0);
}

#[test]
fn segment_crash_holds_for_the_quantile_family() {
    let report = run(FaultClass::SegmentCrash, SummaryKind::HybridQuantile);
    assert_eq!(report.surviving_weight, report.accepted_weight);
    assert!(report.rank_check.is_some(), "rank bound was not checked");
}

#[test]
fn overload_storm_sheds_typed_without_losing_acked_data() {
    let report = run(FaultClass::OverloadStorm, SummaryKind::Mg);
    // The schedule itself asserts the storm shed (typed `Overloaded`
    // answers, server-side counters) and that a fresh client is served
    // afterwards; here we re-check the acked-loss invariant on top.
    assert_eq!(report.surviving_weight, report.accepted_weight);
    assert_eq!(report.slack, 0);
}

#[test]
fn overload_storm_holds_on_every_pinned_seed() {
    for seed in [0xF417_5EEDu64, 0xB0B5_CAFE, 0x2026_0806] {
        let report = run_schedule(FaultClass::OverloadStorm, SummaryKind::SpaceSaving, seed)
            .unwrap_or_else(|msg| panic!("{msg}"));
        assert_eq!(
            report.surviving_weight, report.accepted_weight,
            "seed {seed:#x}: acked weight lost under shedding"
        );
        assert_eq!(report.slack, 0, "seed {seed:#x}");
    }
}

#[test]
fn quantile_family_survives_wire_faults() {
    let report = run(FaultClass::CorruptFrames, SummaryKind::HybridQuantile);
    assert!(report.metrics.frames_rejected >= 1);
    assert!(report.rank_check.is_some(), "rank bound was not checked");
}

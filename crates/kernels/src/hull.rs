//! Convex hull of kernel points — the standard post-processing step for
//! extent queries (an ε-kernel's hull approximates the hull of the whole
//! input within ε in every direction).

use ms_core::Point2;

/// Convex hull by Andrew's monotone chain, counter-clockwise, without
//  collinear points. Returns fewer than 3 points for degenerate inputs.
pub fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("no NaN coordinates")
            .then(a.y.partial_cmp(&b.y).expect("no NaN coordinates"))
    });
    pts.dedup();
    if pts.len() < 3 {
        return pts;
    }

    let cross = |o: &Point2, a: &Point2, b: &Point2| -> f64 {
        (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)
    };

    let mut lower: Vec<Point2> = Vec::with_capacity(pts.len());
    for p in &pts {
        while lower.len() >= 2 && cross(&lower[lower.len() - 2], &lower[lower.len() - 1], p) <= 0.0
        {
            lower.pop();
        }
        lower.push(*p);
    }
    let mut upper: Vec<Point2> = Vec::with_capacity(pts.len());
    for p in pts.iter().rev() {
        while upper.len() >= 2 && cross(&upper[upper.len() - 2], &upper[upper.len() - 1], p) <= 0.0
        {
            upper.pop();
        }
        upper.push(*p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

/// Area of a convex polygon given in order (shoelace formula); 0 for fewer
/// than 3 vertices.
pub fn polygon_area(hull: &[Point2]) -> f64 {
    if hull.len() < 3 {
        return 0.0;
    }
    let mut twice_area = 0.0;
    for i in 0..hull.len() {
        let a = &hull[i];
        let b = &hull[(i + 1) % hull.len()];
        twice_area += a.x * b.y - b.x * a.y;
    }
    twice_area.abs() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.5, 0.5),
            Point2::new(0.25, 0.75),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!((polygon_area(&hull) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hull_drops_collinear_points() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(1.0, 1.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 3);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point2::new(1.0, 2.0)]).len(), 1);
        let two = convex_hull(&[Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]);
        assert_eq!(two.len(), 2);
        assert_eq!(polygon_area(&two), 0.0);
        // All-collinear set reduces to its two extremes.
        let line: Vec<Point2> = (0..10).map(|i| Point2::new(i as f64, 0.0)).collect();
        assert_eq!(convex_hull(&line).len(), 2);
    }

    #[test]
    fn duplicates_are_deduplicated() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        ];
        assert_eq!(convex_hull(&pts).len(), 3);
    }

    #[test]
    fn hull_of_random_cloud_contains_extremes() {
        use ms_core::Rng64;
        let mut rng = Rng64::new(5);
        let pts: Vec<Point2> = (0..500)
            .map(|_| Point2::new(rng.f64() * 4.0 - 2.0, rng.f64() * 4.0 - 2.0))
            .collect();
        let hull = convex_hull(&pts);
        // Every input's x must be within the hull's x-extent.
        let hx_min = hull.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let hx_max = hull.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
        for p in &pts {
            assert!(p.x >= hx_min && p.x <= hx_max);
        }
        // Hull is convex: all cross products around the boundary share a sign.
        for i in 0..hull.len() {
            let o = &hull[i];
            let a = &hull[(i + 1) % hull.len()];
            let b = &hull[(i + 2) % hull.len()];
            let cr = (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
            assert!(cr > 0.0, "non-convex turn at {i}");
        }
    }
}

//! Restricted-mergeable ε-kernels for directional width (PODS'12, §6).
//!
//! An **ε-kernel** of a point set `P` is a subset `Q ⊆ P` such that for
//! every direction `u`
//!
//! ```text
//! width(Q, u)  ≥  (1 − ε) · width(P, u) ,
//! ```
//!
//! where `width(S, u) = max_{p∈S}⟨p,u⟩ − min_{p∈S}⟨p,u⟩`. Kernels are the
//! universal summary for extent problems (diameter, minimum enclosing
//! annulus/box, …).
//!
//! The paper shows ε-kernels are **not** mergeable in general — the
//! normalization that makes a point set *fat* depends on the data, and two
//! summaries normalized differently cannot be reconciled — but they *are*
//! mergeable in a **restricted model**: fix a common reference frame (an
//! affine normalization known up-front, e.g. from the data domain or a
//! first scan) and a common direction grid. Then a kernel is simply the
//! per-direction extreme point, and merging takes the more extreme point
//! per direction — associative, commutative, idempotent, with no error
//! accumulation at all beyond the one-shot grid discretization.
//!
//! * [`Frame`] — the shared affine normalization (the restricted model's
//!   up-front agreement); merging summaries with different frames returns
//!   [`ms_core::MergeError::FrameMismatch`].
//! * [`EpsKernel`] — the kernel summary: `O(1/√ε)` grid directions, one
//!   stored extreme point each.

pub mod frame;
pub mod hull;
pub mod kernel;

pub use frame::Frame;
pub use hull::{convex_hull, polygon_area};
pub use kernel::EpsKernel;

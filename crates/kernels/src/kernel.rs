//! The ε-kernel summary.
//!
//! In the shared [`Frame`], the summary keeps one extreme *original* point
//! per grid direction. The grid has `t = Θ(1/√ε)` directions: for a fat
//! (frame-normalized) set, the support function is smooth enough that the
//! extreme point of the nearest grid direction is within `ε·width` of the
//! true extreme in any query direction — the classic Agarwal-Har-Peled
//! argument, validated empirically by experiment E8.
//!
//! Merging keeps, per direction, whichever input's stored point is more
//! extreme; this is exactly the kernel of the union, so the merge commits
//! **zero additional error** no matter the merge tree — but only because
//! both inputs share the frame and grid (the restricted model; violations
//! return typed errors).

use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{directional_width, unit_dir, MergeError, Mergeable, Point2, Result, Summary};

use crate::frame::Frame;

/// Restricted-mergeable ε-kernel for directional width in the plane.
///
/// ```
/// use ms_core::{Mergeable, Point2};
/// use ms_kernels::{EpsKernel, Frame};
///
/// // The restricted model: both sites share one reference frame.
/// let frame = Frame::identity();
/// let mut a = EpsKernel::new(0.1, frame);
/// let mut b = EpsKernel::new(0.1, frame);
/// a.insert(Point2::new(0.0, 0.0));
/// a.insert(Point2::new(1.0, 0.0));
/// b.insert(Point2::new(0.5, 1.0));
///
/// let merged = a.merge(b).unwrap();
/// let width_x = merged.width((1.0, 0.0));
/// assert!((width_x - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct EpsKernel {
    epsilon: f64,
    frame: Frame,
    /// Unit directions of the grid (normalized space), length `t`.
    directions: Vec<(f64, f64)>,
    /// Per direction: the best dot product seen (normalized space) and the
    /// original-space point achieving it.
    extremes: Vec<Option<(f64, Point2)>>,
    n: u64,
}

impl Wire for EpsKernel {
    fn encode_into(&self, out: &mut Vec<u8>) {
        // The direction grid is derived from epsilon and is rebuilt on
        // decode; only the extremes travel.
        self.epsilon.encode_into(out);
        self.frame.encode_into(out);
        self.extremes.encode_into(out);
        self.n.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let epsilon = f64::decode_from(r)?;
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(WireError::Malformed("epsilon out of (0, 1)"));
        }
        let frame = Frame::decode_from(r)?;
        let mut kernel = EpsKernel::new(epsilon, frame);
        let extremes = Vec::<Option<(f64, Point2)>>::decode_from(r)?;
        if extremes.len() != kernel.directions.len() {
            return Err(WireError::Malformed("extreme count does not match grid"));
        }
        kernel.extremes = extremes;
        kernel.n = u64::decode_from(r)?;
        Ok(kernel)
    }
}

impl EpsKernel {
    /// Create a kernel summary for error target `ε`, normalizing with
    /// `frame`. The direction grid has `t = max(8, ⌈2π/√(ε/2)⌉)` entries.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn new(epsilon: f64, frame: Frame) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        let t = ((std::f64::consts::TAU / (epsilon / 2.0).sqrt()).ceil() as usize).max(8);
        let directions = (0..t)
            .map(|i| unit_dir(std::f64::consts::TAU * i as f64 / t as f64))
            .collect::<Vec<_>>();
        EpsKernel {
            epsilon,
            frame,
            extremes: vec![None; t],
            directions,
            n: 0,
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The shared frame.
    pub fn frame(&self) -> Frame {
        self.frame
    }

    /// Number of grid directions `t`.
    pub fn grid_size(&self) -> usize {
        self.directions.len()
    }

    /// Insert a point.
    pub fn insert(&mut self, p: Point2) {
        self.n += 1;
        let q = self.frame.normalize(&p);
        for (slot, dir) in self.extremes.iter_mut().zip(self.directions.iter()) {
            let d = q.dot(*dir);
            match slot {
                Some((best, _)) if *best >= d => {}
                _ => *slot = Some((d, p)),
            }
        }
    }

    /// Insert many points.
    pub fn extend_from<T: IntoIterator<Item = Point2>>(&mut self, points: T) {
        for p in points {
            self.insert(p);
        }
    }

    /// The kernel: stored extreme points (original space), deduplicated.
    pub fn points(&self) -> Vec<Point2> {
        let mut out: Vec<Point2> = Vec::with_capacity(self.extremes.len());
        for slot in self.extremes.iter().flatten() {
            let p = slot.1;
            if !out.iter().any(|q| q == &p) {
                out.push(p);
            }
        }
        out
    }

    /// Directional width of the kernel along `dir` (original space) — a
    /// `(1 − ε)`-approximation, from below, of the input's width.
    pub fn width(&self, dir: (f64, f64)) -> f64 {
        directional_width(&self.points(), dir)
    }

    /// Axis-aligned bounding box of the kernel points — within ε·extent
    /// of the input's bounding box on each side. `None` if empty.
    pub fn bounding_box(&self) -> Option<ms_core::Rect> {
        ms_core::Rect::bounding(&self.points())
    }

    /// Convex hull of the kernel points (counter-clockwise) — an
    /// ε-approximation of the input's convex hull for extent purposes.
    pub fn hull(&self) -> Vec<Point2> {
        crate::hull::convex_hull(&self.points())
    }

    /// Area of the kernel's convex hull — a lower bound on the input
    /// hull's area, within the width guarantee in every direction.
    pub fn hull_area(&self) -> f64 {
        crate::hull::polygon_area(&self.hull())
    }

    /// Approximate diameter: the largest pairwise distance among kernel
    /// points (`O(t²)`, with t = O(1/√ε) points).
    pub fn diameter(&self) -> f64 {
        let pts = self.points();
        let mut best = 0.0f64;
        for (i, p) in pts.iter().enumerate() {
            for q in &pts[i + 1..] {
                best = best.max(p.distance(q));
            }
        }
        best
    }
}

impl Summary for EpsKernel {
    fn total_weight(&self) -> u64 {
        self.n
    }

    fn size(&self) -> usize {
        self.extremes.iter().flatten().count()
    }
}

impl Mergeable for EpsKernel {
    fn merge(mut self, other: Self) -> Result<Self> {
        if self.frame != other.frame {
            return Err(MergeError::FrameMismatch);
        }
        if self.directions.len() != other.directions.len()
            || (self.epsilon - other.epsilon).abs() > f64::EPSILON
        {
            return Err(MergeError::EpsilonMismatch {
                left: self.epsilon,
                right: other.epsilon,
            });
        }
        for (mine, theirs) in self.extremes.iter_mut().zip(other.extremes) {
            match (&mine, theirs) {
                (_, None) => {}
                (None, theirs @ Some(_)) => *mine = theirs,
                (Some((a, _)), Some((b, p))) => {
                    if b > *a {
                        *mine = Some((b, p));
                    }
                }
            }
        }
        self.n += other.n;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::{merge_all, MergeTree};
    use ms_workloads::CloudKind;

    /// Max relative width error over a dense direction sweep.
    fn max_width_error(kernel: &EpsKernel, points: &[Point2], probes: usize) -> f64 {
        (0..probes)
            .map(|i| {
                let dir = unit_dir(std::f64::consts::TAU * i as f64 / probes as f64);
                let truth = directional_width(points, dir);
                let approx = kernel.width(dir);
                assert!(
                    approx <= truth + 1e-9,
                    "kernel width exceeds true width: {approx} > {truth}"
                );
                if truth == 0.0 {
                    0.0
                } else {
                    (truth - approx) / truth
                }
            })
            .fold(0.0, f64::max)
    }

    fn build(points: &[Point2], eps: f64) -> EpsKernel {
        let mut k = EpsKernel::new(eps, Frame::from_points(points));
        k.extend_from(points.iter().copied());
        k
    }

    #[test]
    fn kernel_size_is_bounded_by_grid() {
        let pts = CloudKind::Disk.generate(10_000, 1);
        let k = build(&pts, 0.05);
        assert!(k.size() <= k.grid_size());
        assert!(k.points().len() <= k.grid_size());
    }

    #[test]
    fn width_error_within_epsilon_on_clouds() {
        let eps = 0.05;
        for cloud in CloudKind::canonical() {
            let pts = cloud.generate(20_000, 2);
            let k = build(&pts, eps);
            let err = max_width_error(&k, &pts, 720);
            assert!(err <= eps, "{}: width error {err}", cloud.label());
        }
    }

    #[test]
    fn merge_is_exact_under_any_tree() {
        let eps = 0.05;
        let pts = CloudKind::Ring.generate(8_192, 3);
        let frame = Frame::from_points(&pts);
        let whole = {
            let mut k = EpsKernel::new(eps, frame);
            k.extend_from(pts.iter().copied());
            k
        };
        for shape in MergeTree::canonical() {
            let leaves: Vec<EpsKernel> = pts
                .chunks(512)
                .map(|c| {
                    let mut k = EpsKernel::new(eps, frame);
                    k.extend_from(c.iter().copied());
                    k
                })
                .collect();
            let merged = merge_all(leaves, shape).unwrap();
            // Per-direction max of maxes: identical to the single-pass
            // kernel, bit for bit.
            for i in 0..720 {
                let dir = unit_dir(std::f64::consts::TAU * i as f64 / 720.0);
                assert_eq!(merged.width(dir), whole.width(dir), "{}", shape.label());
            }
            assert_eq!(merged.total_weight(), pts.len() as u64);
        }
    }

    #[test]
    fn frame_mismatch_is_rejected() {
        let a = EpsKernel::new(0.1, Frame::identity());
        let b = EpsKernel::new(
            0.1,
            Frame {
                x0: 1.0,
                y0: 0.0,
                sx: 1.0,
                sy: 1.0,
            },
        );
        assert!(matches!(a.merge(b), Err(MergeError::FrameMismatch)));
    }

    #[test]
    fn epsilon_mismatch_is_rejected() {
        let a = EpsKernel::new(0.1, Frame::identity());
        let b = EpsKernel::new(0.2, Frame::identity());
        assert!(matches!(
            a.merge(b),
            Err(MergeError::EpsilonMismatch { .. })
        ));
    }

    #[test]
    fn shared_frame_handles_anisotropy_identity_frame_does_not() {
        // The restricted model's point: a thin ellipse is handled when the
        // frame normalizes it, and degrades under the identity frame.
        let eps = 0.05;
        let pts = CloudKind::Ellipse { aspect: 50.0 }.generate(20_000, 4);
        let with_frame = build(&pts, eps);
        let err_framed = max_width_error(&with_frame, &pts, 720);
        assert!(err_framed <= eps, "framed error {err_framed}");

        let mut bare = EpsKernel::new(eps, Frame::identity());
        bare.extend_from(pts.iter().copied());
        let err_bare = max_width_error(&bare, &pts, 720);
        assert!(
            err_bare > err_framed,
            "identity frame {err_bare} should be worse than shared frame {err_framed}"
        );
    }

    #[test]
    fn diameter_approximation() {
        let pts = CloudKind::Ring.generate(10_000, 5);
        let k = build(&pts, 0.02);
        // True diameter of the unit circle cloud ≈ 2.
        let d = k.diameter();
        assert!((1.9..=2.0001).contains(&d), "diameter {d}");
    }

    #[test]
    fn bounding_box_matches_input_within_epsilon() {
        let pts = CloudKind::Disk.generate(20_000, 9);
        let k = build(&pts, 0.02);
        let kb = k.bounding_box().unwrap();
        let fb = ms_core::Rect::bounding(&pts).unwrap();
        for (a, b) in [
            (kb.x_lo, fb.x_lo),
            (kb.x_hi, fb.x_hi),
            (kb.y_lo, fb.y_lo),
            (kb.y_hi, fb.y_hi),
        ] {
            assert!((a - b).abs() <= 0.02 * 2.0, "side {a} vs {b}");
        }
        assert!(EpsKernel::new(0.1, Frame::identity())
            .bounding_box()
            .is_none());
    }

    #[test]
    fn hull_area_approximates_input_hull_area() {
        // Disk cloud: hull area → π for the unit disk; the kernel's hull
        // must come within a few percent at eps = 0.01.
        let pts = CloudKind::Disk.generate(50_000, 7);
        let k = build(&pts, 0.01);
        let area = k.hull_area();
        assert!(
            (2.95..=std::f64::consts::PI + 1e-6).contains(&area),
            "hull area {area}"
        );
        // Hull is a subset of the input's hull, so never larger.
        let full_area = crate::hull::polygon_area(&crate::hull::convex_hull(&pts));
        assert!(area <= full_area + 1e-9);
    }

    #[test]
    fn empty_kernel() {
        let k = EpsKernel::new(0.1, Frame::identity());
        assert_eq!(k.size(), 0);
        assert_eq!(k.width((1.0, 0.0)), 0.0);
        assert_eq!(k.diameter(), 0.0);
        assert!(k.is_empty());
    }

    #[test]
    fn degenerate_point_sets() {
        // All points identical: every width is 0, diameter 0.
        let mut k = EpsKernel::new(0.1, Frame::identity());
        for _ in 0..100 {
            k.insert(Point2::new(3.0, 4.0));
        }
        assert_eq!(k.width((1.0, 0.0)), 0.0);
        assert_eq!(k.diameter(), 0.0);
        assert_eq!(k.points().len(), 1);

        // Collinear points: width 0 along the perpendicular only.
        let mut k = EpsKernel::new(0.05, Frame::identity());
        for i in 0..100 {
            k.insert(Point2::new(i as f64, 0.0));
        }
        assert_eq!(k.width((0.0, 1.0)), 0.0);
        assert!((k.width((1.0, 0.0)) - 99.0).abs() < 1e-9);
        assert!((k.diameter() - 99.0).abs() < 1e-9);
    }

    #[test]
    fn merging_empty_kernels_is_fine() {
        let frame = Frame::identity();
        let mut a = EpsKernel::new(0.1, frame);
        a.insert(Point2::new(1.0, 2.0));
        let b = EpsKernel::new(0.1, frame);
        let m = a.merge(b).unwrap();
        assert_eq!(m.total_weight(), 1);
        assert_eq!(m.points().len(), 1);
        let e1 = EpsKernel::new(0.1, frame);
        let e2 = EpsKernel::new(0.1, frame);
        assert!(e1.merge(e2).unwrap().is_empty());
    }

    #[test]
    fn grid_scales_with_inverse_sqrt_epsilon() {
        let coarse = EpsKernel::new(0.1, Frame::identity()).grid_size();
        let fine = EpsKernel::new(0.001, Frame::identity()).grid_size();
        let ratio = fine as f64 / coarse as f64;
        // 1/√ε grows by 10× for a 100× smaller ε.
        assert!((8.0..13.0).contains(&ratio), "ratio {ratio}");
    }
}

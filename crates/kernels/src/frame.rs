//! The shared reference frame of the restricted mergeability model.
//!
//! The ε-kernel guarantee needs the point set to be *fat* (its width
//! similar in every direction) after normalization. In the restricted
//! model every site normalizes with the **same** affine frame, agreed
//! up-front — from domain knowledge or a cheap first pass. Sites that
//! normalize differently cannot merge, which the summaries enforce with a
//! typed error.

use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{Point2, Rect};

/// An axis-aligned affine normalization `p ↦ ((p.x−x₀)/sx, (p.y−y₀)/sy)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frame {
    /// Origin x.
    pub x0: f64,
    /// Origin y.
    pub y0: f64,
    /// Scale along x (must be positive).
    pub sx: f64,
    /// Scale along y (must be positive).
    pub sy: f64,
}

impl Wire for Frame {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.x0.encode_into(out);
        self.y0.encode_into(out);
        self.sx.encode_into(out);
        self.sy.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let frame = Frame {
            x0: f64::decode_from(r)?,
            y0: f64::decode_from(r)?,
            sx: f64::decode_from(r)?,
            sy: f64::decode_from(r)?,
        };
        if !(frame.sx > 0.0 && frame.sy > 0.0) {
            return Err(WireError::Malformed("frame scales must be positive"));
        }
        Ok(frame)
    }
}

impl Frame {
    /// The identity frame (no normalization).
    pub fn identity() -> Self {
        Frame {
            x0: 0.0,
            y0: 0.0,
            sx: 1.0,
            sy: 1.0,
        }
    }

    /// Frame normalizing the bounding box of `points` to the unit square —
    /// the cheap "first scan" frame of the restricted model. Returns the
    /// identity frame for degenerate inputs (empty, or zero extent on an
    /// axis).
    pub fn from_points(points: &[Point2]) -> Self {
        let Some(b) = Rect::bounding(points) else {
            return Self::identity();
        };
        let sx = b.x_hi - b.x_lo;
        let sy = b.y_hi - b.y_lo;
        if sx <= 0.0 || sy <= 0.0 {
            return Self::identity();
        }
        Frame {
            x0: b.x_lo,
            y0: b.y_lo,
            sx,
            sy,
        }
    }

    /// Normalize a point into frame coordinates.
    #[inline]
    pub fn normalize(&self, p: &Point2) -> Point2 {
        Point2::new((p.x - self.x0) / self.sx, (p.y - self.y0) / self.sy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_a_noop() {
        let f = Frame::identity();
        let p = Point2::new(3.5, -2.0);
        assert_eq!(f.normalize(&p), p);
    }

    #[test]
    fn from_points_maps_bounding_box_to_unit_square() {
        let pts = vec![
            Point2::new(10.0, -5.0),
            Point2::new(20.0, 5.0),
            Point2::new(15.0, 0.0),
        ];
        let f = Frame::from_points(&pts);
        assert_eq!(f.normalize(&pts[0]), Point2::new(0.0, 0.0));
        assert_eq!(f.normalize(&pts[1]), Point2::new(1.0, 1.0));
        assert_eq!(f.normalize(&pts[2]), Point2::new(0.5, 0.5));
    }

    #[test]
    fn degenerate_inputs_fall_back_to_identity() {
        assert_eq!(Frame::from_points(&[]), Frame::identity());
        // Zero vertical extent.
        let flat = vec![Point2::new(0.0, 1.0), Point2::new(5.0, 1.0)];
        assert_eq!(Frame::from_points(&flat), Frame::identity());
    }

    #[test]
    fn frames_compare_by_value() {
        let a = Frame::from_points(&[Point2::new(0.0, 0.0), Point2::new(1.0, 2.0)]);
        let b = Frame::from_points(&[Point2::new(0.0, 0.0), Point2::new(1.0, 2.0)]);
        let c = Frame::from_points(&[Point2::new(0.0, 0.0), Point2::new(2.0, 2.0)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

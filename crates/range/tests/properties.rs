//! Property tests for the merge-reduce ε-approximations.

use proptest::collection::vec;
use proptest::prelude::*;

use ms_core::{Mergeable, Point2, Rect, Rng64, Summary};
use ms_range::{EpsApprox1d, EpsApprox2d, Halving};

fn points() -> impl Strategy<Value = Vec<Point2>> {
    vec((-100.0f64..100.0, -100.0f64..100.0), 0..400)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every halving keeps ⌊len/2⌋ or ⌈len/2⌉ points and only points from
    /// the input.
    #[test]
    fn halvings_keep_half_a_subset(pts in points(), seed in any::<u64>()) {
        for strategy in [Halving::Random, Halving::SortedX, Halving::Hilbert] {
            let mut rng = Rng64::new(seed);
            let kept = strategy.halve(pts.clone(), &mut rng);
            prop_assert!(
                kept.len() == pts.len() / 2 || kept.len() == pts.len().div_ceil(2),
                "{}: kept {} of {}",
                strategy.label(),
                kept.len(),
                pts.len()
            );
            let mut pool = pts.clone();
            for p in &kept {
                let pos = pool.iter().position(|q| q == p);
                prop_assert!(pos.is_some(), "{} invented a point", strategy.label());
                pool.swap_remove(pos.unwrap());
            }
        }
    }

    /// The whole-bounding-box query counts all represented weight, which
    /// stays within one halving-loss per level of the true n.
    #[test]
    fn total_weight_is_nearly_conserved(pts in points(), seed in any::<u64>()) {
        let mut a = EpsApprox2d::new(16, Halving::Hilbert, seed);
        a.extend_from(pts.iter().copied());
        prop_assert_eq!(a.total_weight(), pts.len() as u64);
        if let Some(bbox) = Rect::bounding(&pts) {
            let est = a.estimate_count(&bbox);
            // Odd-size halvings may drop/duplicate one point per level.
            let slack = 16 * 8;
            prop_assert!(
                est.abs_diff(pts.len() as u64) <= slack,
                "estimate {est} vs n {}",
                pts.len()
            );
        }
    }

    /// Merging conserves the input count exactly in `n` and the merged
    /// summary answers with the same slack guarantee.
    #[test]
    fn merge_conserves_n(pts in points(), cut_ppm in 0u32..1_000_000) {
        let cut = (pts.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        let mk = |slice: &[Point2], seed| {
            let mut a = EpsApprox2d::new(32, Halving::SortedX, seed);
            a.extend_from(slice.iter().copied());
            a
        };
        let merged = mk(&pts[..cut], 1).merge(mk(&pts[cut..], 2)).unwrap();
        prop_assert_eq!(merged.total_weight(), pts.len() as u64);
    }

    /// 1D: rank estimates are monotone and interval counts are consistent
    /// with rank differences.
    #[test]
    fn one_d_rank_consistency(values in vec(-1000.0f64..1000.0, 1..500), seed in any::<u64>()) {
        let mut a = EpsApprox1d::new(32, seed);
        a.extend_from(values.iter().copied());
        let mut prev = 0u64;
        for x in [-1000.0, -100.0, 0.0, 100.0, 1000.5] {
            let r = a.rank(x);
            prop_assert!(r >= prev, "rank not monotone at {x}");
            prop_assert!(r <= values.len() as u64);
            prev = r;
        }
        // The full interval counts everything the structure stores.
        let all = a.estimate_count(-1000.0, 1000.0);
        prop_assert!(all.abs_diff(values.len() as u64) <= 32 * 8);
    }
}

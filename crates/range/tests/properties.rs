//! Property tests for the merge-reduce ε-approximations, randomized over
//! seeded point sets so failures reproduce.

use ms_core::{Mergeable, Point2, Rect, Rng64, Summary};
use ms_range::{EpsApprox1d, EpsApprox2d, Halving};

const CASES: u64 = 64;

fn points(rng: &mut Rng64, max_len: usize) -> Vec<Point2> {
    let len = rng.below_usize(max_len);
    (0..len)
        .map(|_| Point2::new(rng.f64() * 200.0 - 100.0, rng.f64() * 200.0 - 100.0))
        .collect()
}

/// Every halving keeps ⌊len/2⌋ or ⌈len/2⌉ points and only points from
/// the input.
#[test]
fn halvings_keep_half_a_subset() {
    let mut outer = Rng64::new(0x2D_01);
    for _ in 0..CASES {
        let pts = points(&mut outer, 400);
        let seed = outer.next_u64();
        for strategy in [Halving::Random, Halving::SortedX, Halving::Hilbert] {
            let mut rng = Rng64::new(seed);
            let kept = strategy.halve(pts.clone(), &mut rng);
            assert!(
                kept.len() == pts.len() / 2 || kept.len() == pts.len().div_ceil(2),
                "{}: kept {} of {}",
                strategy.label(),
                kept.len(),
                pts.len()
            );
            let mut pool = pts.clone();
            for p in &kept {
                let pos = pool.iter().position(|q| q == p);
                assert!(pos.is_some(), "{} invented a point", strategy.label());
                pool.swap_remove(pos.unwrap());
            }
        }
    }
}

/// The whole-bounding-box query counts all represented weight, which
/// stays within one halving-loss per level of the true n.
#[test]
fn total_weight_is_nearly_conserved() {
    let mut outer = Rng64::new(0x2D_02);
    for _ in 0..CASES {
        let pts = points(&mut outer, 400);
        let seed = outer.next_u64();
        let mut a = EpsApprox2d::new(16, Halving::Hilbert, seed);
        a.extend_from(pts.iter().copied());
        assert_eq!(a.total_weight(), pts.len() as u64);
        if let Some(bbox) = Rect::bounding(&pts) {
            let est = a.estimate_count(&bbox);
            // Odd-size halvings may drop/duplicate one point per level.
            let slack = 16 * 8;
            assert!(
                est.abs_diff(pts.len() as u64) <= slack,
                "estimate {est} vs n {}",
                pts.len()
            );
        }
    }
}

/// Merging conserves the input count exactly in `n` and the merged
/// summary answers with the same slack guarantee.
#[test]
fn merge_conserves_n() {
    let mut outer = Rng64::new(0x2D_03);
    for _ in 0..CASES {
        let pts = points(&mut outer, 400);
        let cut_ppm = outer.below(1_000_000);
        let cut = (pts.len() as u64 * cut_ppm / 1_000_000) as usize;
        let mk = |slice: &[Point2], seed| {
            let mut a = EpsApprox2d::new(32, Halving::SortedX, seed);
            a.extend_from(slice.iter().copied());
            a
        };
        let merged = mk(&pts[..cut], 1).merge(mk(&pts[cut..], 2)).unwrap();
        assert_eq!(merged.total_weight(), pts.len() as u64);
    }
}

/// 1D: rank estimates are monotone and interval counts are consistent
/// with rank differences.
#[test]
fn one_d_rank_consistency() {
    let mut outer = Rng64::new(0x2D_04);
    for _ in 0..CASES {
        let len = 1 + outer.below_usize(499);
        let values: Vec<f64> = (0..len).map(|_| outer.f64() * 2000.0 - 1000.0).collect();
        let seed = outer.next_u64();
        let mut a = EpsApprox1d::new(32, seed);
        a.extend_from(values.iter().copied());
        let mut prev = 0u64;
        for x in [-1000.0, -100.0, 0.0, 100.0, 1000.5] {
            let r = a.rank(x);
            assert!(r >= prev, "rank not monotone at {x}");
            assert!(r <= values.len() as u64);
            prev = r;
        }
        // The full interval counts everything the structure stores.
        let all = a.estimate_count(-1000.0, 1000.0);
        assert!(all.abs_diff(values.len() as u64) <= 32 * 8);
    }
}

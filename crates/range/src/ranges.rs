//! Rectangle query workloads and the discrepancy measure used to score
//! ε-approximations.

use ms_core::{Point2, Rect, Rng64};

/// A closed halfplane `a·x + b·y ≤ c` — the VC-dimension-3 range family of
/// §5 (rectangles have VC dimension 4; halfplanes are the other canonical
/// family the merge-reduce framework covers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Halfplane {
    /// Normal x component.
    pub a: f64,
    /// Normal y component.
    pub b: f64,
    /// Offset.
    pub c: f64,
}

impl ms_core::Wire for Halfplane {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.a.encode_into(out);
        self.b.encode_into(out);
        self.c.encode_into(out);
    }

    fn decode_from(
        r: &mut ms_core::WireReader<'_>,
    ) -> std::result::Result<Self, ms_core::WireError> {
        Ok(Halfplane {
            a: f64::decode_from(r)?,
            b: f64::decode_from(r)?,
            c: f64::decode_from(r)?,
        })
    }
}

impl Halfplane {
    /// Containment test.
    #[inline]
    pub fn contains(&self, p: &Point2) -> bool {
        self.a * p.x + self.b * p.y <= self.c
    }
}

/// `count` random halfplanes whose boundary crosses the data's bounding
/// box (degenerate all-in / all-out queries are uninformative).
pub fn random_halfplanes(points: &[Point2], count: usize, seed: u64) -> Vec<Halfplane> {
    let Some(bbox) = Rect::bounding(points) else {
        return Vec::new();
    };
    let mut rng = Rng64::new(seed);
    (0..count)
        .map(|_| {
            let theta = rng.f64() * std::f64::consts::TAU;
            let (a, b) = (theta.cos(), theta.sin());
            // Pick the offset so the boundary passes through a random
            // point of the bounding box.
            let px = bbox.x_lo + rng.f64() * (bbox.x_hi - bbox.x_lo);
            let py = bbox.y_lo + rng.f64() * (bbox.y_hi - bbox.y_lo);
            Halfplane {
                a,
                b,
                c: a * px + b * py,
            }
        })
        .collect()
}

/// Count points satisfying an arbitrary range predicate.
pub fn count_where<F: Fn(&Point2) -> bool>(set: &[Point2], range: F) -> u64 {
    set.iter().filter(|p| range(p)).count() as u64
}

/// All axis-aligned rectangles spanned by a `(side+1)²` grid of cut points
/// over the data's bounding box — `O(side⁴)` queries that systematically
/// cover the range space at grid resolution.
pub fn grid_queries(points: &[Point2], side: usize) -> Vec<Rect> {
    let Some(b) = Rect::bounding(points) else {
        return Vec::new();
    };
    let xs: Vec<f64> = (0..=side)
        .map(|i| b.x_lo + (b.x_hi - b.x_lo) * i as f64 / side as f64)
        .collect();
    let ys: Vec<f64> = (0..=side)
        .map(|i| b.y_lo + (b.y_hi - b.y_lo) * i as f64 / side as f64)
        .collect();
    let mut out = Vec::new();
    for i in 0..=side {
        for j in (i + 1)..=side {
            for k in 0..=side {
                for l in (k + 1)..=side {
                    out.push(Rect::new(xs[i], xs[j], ys[k], ys[l]));
                }
            }
        }
    }
    out
}

/// `count` random rectangles inside the data's bounding box.
pub fn random_queries(points: &[Point2], count: usize, seed: u64) -> Vec<Rect> {
    let Some(b) = Rect::bounding(points) else {
        return Vec::new();
    };
    let mut rng = Rng64::new(seed);
    (0..count)
        .map(|_| {
            let x1 = b.x_lo + rng.f64() * (b.x_hi - b.x_lo);
            let x2 = b.x_lo + rng.f64() * (b.x_hi - b.x_lo);
            let y1 = b.y_lo + rng.f64() * (b.y_hi - b.y_lo);
            let y2 = b.y_lo + rng.f64() * (b.y_hi - b.y_lo);
            Rect::new(x1, x2, y1, y2)
        })
        .collect()
}

/// Count points of `set` inside `r`.
pub fn count_in(set: &[Point2], r: &Rect) -> u64 {
    set.iter().filter(|p| r.contains(p)).count() as u64
}

/// Maximum over `queries` of `|weight·|A∩r| − |P∩r||`, i.e. the absolute
/// range-count error of the weighted subset `approx` against the full set.
pub fn discrepancy(full: &[Point2], approx: &[Point2], weight: u64, queries: &[Rect]) -> f64 {
    queries
        .iter()
        .map(|r| {
            let exact = count_in(full, r) as f64;
            let est = (weight * count_in(approx, r)) as f64;
            (est - exact).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_workloads::CloudKind;

    #[test]
    fn halfplane_contains() {
        let h = Halfplane {
            a: 1.0,
            b: 0.0,
            c: 0.5,
        };
        assert!(h.contains(&Point2::new(0.5, 99.0)));
        assert!(h.contains(&Point2::new(-3.0, 0.0)));
        assert!(!h.contains(&Point2::new(0.6, 0.0)));
    }

    #[test]
    fn random_halfplanes_are_non_degenerate() {
        let pts = CloudKind::UniformSquare.generate(2_000, 11);
        let planes = random_halfplanes(&pts, 100, 7);
        assert_eq!(planes.len(), 100);
        // Most planes must split the data (not all-in or all-out).
        let splitting = planes
            .iter()
            .filter(|h| {
                let inside = count_where(&pts, |p| h.contains(p));
                inside > 0 && inside < pts.len() as u64
            })
            .count();
        assert!(splitting > 80, "only {splitting} of 100 planes split");
    }

    #[test]
    fn count_where_matches_count_in() {
        let pts = CloudKind::Disk.generate(500, 12);
        let r = Rect::new(-0.5, 0.5, -0.5, 0.5);
        assert_eq!(count_where(&pts, |p| r.contains(p)), count_in(&pts, &r));
    }

    #[test]
    fn grid_queries_count() {
        let pts = CloudKind::UniformSquare.generate(100, 1);
        let q = grid_queries(&pts, 4);
        // C(5,2)² = 100 rectangles.
        assert_eq!(q.len(), 100);
    }

    #[test]
    fn grid_queries_cover_the_bounding_box() {
        let pts = CloudKind::UniformSquare.generate(500, 2);
        let q = grid_queries(&pts, 2);
        // The largest grid rectangle is the bounding box: contains all.
        let all = q.iter().map(|r| count_in(&pts, r)).max().unwrap();
        assert_eq!(all, 500);
    }

    #[test]
    fn random_queries_are_inside_bounds() {
        let pts = CloudKind::Disk.generate(200, 3);
        let b = Rect::bounding(&pts).unwrap();
        for r in random_queries(&pts, 50, 4) {
            assert!(r.x_lo >= b.x_lo && r.x_hi <= b.x_hi);
            assert!(r.y_lo >= b.y_lo && r.y_hi <= b.y_hi);
        }
    }

    #[test]
    fn discrepancy_of_identity_is_zero() {
        let pts = CloudKind::UniformSquare.generate(300, 5);
        let q = grid_queries(&pts, 4);
        assert_eq!(discrepancy(&pts, &pts, 1, &q), 0.0);
    }

    #[test]
    fn discrepancy_of_empty_approx_is_max_count() {
        let pts = CloudKind::UniformSquare.generate(300, 6);
        let q = grid_queries(&pts, 2);
        assert_eq!(discrepancy(&pts, &[], 1, &q), 300.0);
    }

    #[test]
    fn empty_point_set_yields_no_queries() {
        assert!(grid_queries(&[], 4).is_empty());
        assert!(random_queries(&[], 10, 0).is_empty());
    }
}

//! The mergeable 1D ε-approximation — interval range counting on the line.
//!
//! One-dimensional intervals are the range space that connects §5 back to
//! §4: an ε-approximation for intervals answers every rank query within
//! `εn`, i.e. it *is* a quantile summary. Here the merge-reduce framework
//! is instantiated directly on the line (sorted halving is the *optimal*
//! low-discrepancy coloring in 1D: an interval cuts at most two pairs), so
//! experiments can compare the generic framework against the specialized
//! quantile summaries of `ms-quantiles`.

use ms_core::error::ensure_same_capacity;
use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{Mergeable, Result, Rng64, Summary};

/// Mergeable ε-approximation for interval ranges over `f64` values.
#[derive(Debug, Clone)]
pub struct EpsApprox1d {
    m: usize,
    base: Vec<f64>,
    /// Level `i` holds at most one sorted buffer of values, each worth
    /// `2^i` inputs.
    levels: Vec<Option<Vec<f64>>>,
    n: u64,
    rng: Rng64,
}

impl Wire for EpsApprox1d {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.m.encode_into(out);
        self.base.encode_into(out);
        self.levels.encode_into(out);
        self.n.encode_into(out);
        self.rng.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let m = usize::decode_from(r)?;
        if m < 2 {
            return Err(WireError::Malformed("buffer size must be at least 2"));
        }
        Ok(EpsApprox1d {
            m,
            base: Vec::<f64>::decode_from(r)?,
            levels: Vec::<Option<Vec<f64>>>::decode_from(r)?,
            n: u64::decode_from(r)?,
            rng: Rng64::decode_from(r)?,
        })
    }
}

impl EpsApprox1d {
    /// Create a summary with buffers of `m ≥ 2` values.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2`.
    pub fn new(m: usize, seed: u64) -> Self {
        assert!(m >= 2, "buffer size must be at least 2");
        EpsApprox1d {
            m,
            base: Vec::with_capacity(m),
            levels: Vec::new(),
            n: 0,
            rng: Rng64::new(seed),
        }
    }

    /// Buffer size `m`.
    pub fn buffer_capacity(&self) -> usize {
        self.m
    }

    /// Insert a value (must not be NaN).
    pub fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan(), "NaN has no rank");
        self.n += 1;
        self.base.push(value);
        if self.base.len() >= self.m {
            let mut buffer = std::mem::replace(&mut self.base, Vec::with_capacity(self.m));
            buffer.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            self.push_level(0, buffer);
        }
    }

    /// Insert many values.
    pub fn extend_from<T: IntoIterator<Item = f64>>(&mut self, values: T) {
        for v in values {
            self.insert(v);
        }
    }

    /// Carry a sorted buffer into the level structure; collisions merge by
    /// keeping alternate positions of the merged order (the optimal 1D
    /// halving).
    fn push_level(&mut self, mut level: usize, mut buffer: Vec<f64>) {
        loop {
            if buffer.is_empty() {
                return;
            }
            if self.levels.len() <= level {
                self.levels.resize_with(level + 1, || None);
            }
            match self.levels[level].take() {
                None => {
                    self.levels[level] = Some(buffer);
                    return;
                }
                Some(existing) => {
                    buffer = halve_sorted(existing, buffer, &mut self.rng);
                    level += 1;
                }
            }
        }
    }

    /// Estimated number of inputs in the closed interval `[lo, hi]`.
    pub fn estimate_count(&self, lo: f64, hi: f64) -> u64 {
        let in_range = |v: f64| v >= lo && v <= hi;
        let mut count = self.base.iter().filter(|&&v| in_range(v)).count() as u64;
        for (i, slot) in self.levels.iter().enumerate() {
            if let Some(buf) = slot {
                count += (1u64 << i) * buf.iter().filter(|&&v| in_range(v)).count() as u64;
            }
        }
        count
    }

    /// Estimated rank of `x` (inputs strictly below).
    pub fn rank(&self, x: f64) -> u64 {
        let mut rank = self.base.iter().filter(|&&v| v < x).count() as u64;
        for (i, slot) in self.levels.iter().enumerate() {
            if let Some(buf) = slot {
                rank += (1u64 << i) * buf.partition_point(|&v| v < x) as u64;
            }
        }
        rank
    }
}

/// Merge two sorted buffers and keep alternate positions (random parity).
fn halve_sorted(a: Vec<f64>, b: Vec<f64>, rng: &mut Rng64) -> Vec<f64> {
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    merged.push(ia.next().expect("peeked"));
                } else {
                    merged.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => merged.push(ia.next().expect("peeked")),
            (None, Some(_)) => merged.push(ib.next().expect("peeked")),
            (None, None) => break,
        }
    }
    let offset = usize::from(rng.coin());
    merged.into_iter().skip(offset).step_by(2).collect()
}

impl Summary for EpsApprox1d {
    fn total_weight(&self) -> u64 {
        self.n
    }

    fn size(&self) -> usize {
        self.base.len() + self.levels.iter().flatten().map(Vec::len).sum::<usize>()
    }
}

impl Mergeable for EpsApprox1d {
    fn merge(mut self, other: Self) -> Result<Self> {
        ensure_same_capacity("buffer size (m)", self.m, other.m)?;
        self.n += other.n;
        self.rng.absorb(&other.rng);
        for (level, slot) in other.levels.into_iter().enumerate() {
            if let Some(buffer) = slot {
                self.push_level(level, buffer);
            }
        }
        for v in other.base {
            self.insert(v);
            self.n -= 1; // insert() counted it again; the weight moved, not grew
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::{merge_all, MergeTree};
    use ms_workloads::ValueDist;

    fn to_f64(values: &[u64]) -> Vec<f64> {
        values.iter().map(|&v| v as f64).collect()
    }

    fn build(values: &[f64], m: usize, seed: u64) -> EpsApprox1d {
        let mut a = EpsApprox1d::new(m, seed);
        a.extend_from(values.iter().copied());
        a
    }

    fn max_interval_error(a: &EpsApprox1d, sorted: &[f64]) -> f64 {
        let n = sorted.len() as f64;
        let mut worst: f64 = 0.0;
        for i in (0..sorted.len()).step_by(sorted.len() / 50 + 1) {
            for j in (i..sorted.len()).step_by(sorted.len() / 50 + 1) {
                let (lo, hi) = (sorted[i], sorted[j]);
                let exact = sorted.iter().filter(|&&v| v >= lo && v <= hi).count() as f64;
                let est = a.estimate_count(lo, hi) as f64;
                worst = worst.max((est - exact).abs() / n);
            }
        }
        worst
    }

    #[test]
    fn exact_while_in_base() {
        let a = build(&[3.0, 1.0, 2.0], 8, 0);
        assert_eq!(a.estimate_count(1.0, 2.0), 2);
        assert_eq!(a.rank(2.5), 2);
        assert_eq!(a.total_weight(), 3);
    }

    #[test]
    fn interval_error_within_epsilon() {
        let values = to_f64(&ValueDist::Uniform.generate(32_768, 21));
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let a = build(&values, 256, 3);
        let err = max_interval_error(&a, &sorted);
        assert!(err <= 0.02, "interval error {err}");
    }

    #[test]
    fn error_survives_merge_trees() {
        let values = to_f64(&ValueDist::Normal.generate(32_768, 23));
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for shape in MergeTree::canonical() {
            let leaves: Vec<EpsApprox1d> = values
                .chunks(2048)
                .enumerate()
                .map(|(i, c)| build(c, 256, 100 + i as u64))
                .collect();
            let merged = merge_all(leaves, shape).unwrap();
            assert_eq!(merged.total_weight(), values.len() as u64);
            let err = max_interval_error(&merged, &sorted);
            assert!(err <= 0.02, "{}: interval error {err}", shape.label());
        }
    }

    #[test]
    fn size_is_logarithmic() {
        let small = build(&to_f64(&ValueDist::Uniform.generate(4_096, 1)), 128, 1);
        let large = build(&to_f64(&ValueDist::Uniform.generate(262_144, 1)), 128, 1);
        assert!(large.size() < 12 * small.size().max(1));
    }

    #[test]
    fn merge_rejects_mismatched_m() {
        let a = EpsApprox1d::new(64, 0);
        let b = EpsApprox1d::new(128, 0);
        assert!(a.merge(b).is_err());
    }

    #[test]
    fn merge_weight_accounting_with_partial_bases() {
        let mut a = EpsApprox1d::new(16, 1);
        a.extend_from((0..10).map(|i| i as f64));
        let mut b = EpsApprox1d::new(16, 2);
        b.extend_from((10..25).map(|i| i as f64));
        let m = a.merge(b).unwrap();
        assert_eq!(m.total_weight(), 25);
        assert_eq!(m.estimate_count(0.0, 24.0), 25);
    }
}

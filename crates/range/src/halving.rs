//! Halving strategies: reduce `2m` points to `m` while keeping every
//! rectangle's count nearly proportional.

use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{Point2, Rect, Rng64};

/// How a buffer of points is halved during a reduce step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halving {
    /// Keep a uniformly random half — the control strategy; per-halving
    /// discrepancy `Θ(√m)`.
    Random,
    /// Sort by `x` and keep alternate positions (random parity). Optimal
    /// for ranges determined by an `x`-interval; used for the 1D
    /// experiments and as a cheap general-purpose fallback.
    SortedX,
    /// Sort along a Hilbert space-filling curve, pair consecutive points
    /// and keep one per pair (random choice). Paired points are spatial
    /// neighbors, so any rectangle splits few pairs — low discrepancy for
    /// axis-aligned ranges.
    Hilbert,
}

impl Wire for Halving {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Halving::Random => 0,
            Halving::SortedX => 1,
            Halving::Hilbert => 2,
        });
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(Halving::Random),
            1 => Ok(Halving::SortedX),
            2 => Ok(Halving::Hilbert),
            _ => Err(WireError::Malformed("unknown halving strategy")),
        }
    }
}

impl Halving {
    /// Reduce `points` (any even or odd length) to `⌈len/2⌉` or `⌊len/2⌋`
    /// points (parity chosen by the RNG where applicable).
    pub fn halve(&self, mut points: Vec<Point2>, rng: &mut Rng64) -> Vec<Point2> {
        match self {
            Halving::Random => {
                rng.shuffle(&mut points);
                points.truncate(points.len() / 2);
                points
            }
            Halving::SortedX => {
                points.sort_by(|a, b| {
                    a.x.partial_cmp(&b.x)
                        .expect("point coordinates must not be NaN")
                        .then(
                            a.y.partial_cmp(&b.y)
                                .expect("point coordinates must not be NaN"),
                        )
                });
                let offset = usize::from(rng.coin());
                points.into_iter().skip(offset).step_by(2).collect()
            }
            Halving::Hilbert => {
                let keys = hilbert_keys(&points);
                let mut indexed: Vec<(u64, Point2)> = keys.into_iter().zip(points).collect();
                indexed.sort_by_key(|&(k, _)| k);
                // Keep one point of each consecutive pair, chosen by coin.
                let mut out = Vec::with_capacity(indexed.len() / 2 + 1);
                let mut iter = indexed.into_iter();
                while let Some((_, a)) = iter.next() {
                    match iter.next() {
                        Some((_, b)) => out.push(if rng.coin() { a } else { b }),
                        None => {
                            // Odd leftover survives with probability 1/2 —
                            // keeps the expected kept-weight unbiased.
                            if rng.coin() {
                                out.push(a);
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Halving::Random => "random",
            Halving::SortedX => "sorted-x",
            Halving::Hilbert => "hilbert",
        }
    }
}

/// Order of the Hilbert curve used for pairing (coordinates quantized to
/// 16 bits within the buffer's bounding box).
const HILBERT_ORDER: u32 = 16;

/// Hilbert index of every point, quantized within the set's bounding box.
fn hilbert_keys(points: &[Point2]) -> Vec<u64> {
    let Some(bounds) = Rect::bounding(points) else {
        return Vec::new();
    };
    let side = (1u32 << HILBERT_ORDER) - 1;
    let span_x = (bounds.x_hi - bounds.x_lo).max(f64::MIN_POSITIVE);
    let span_y = (bounds.y_hi - bounds.y_lo).max(f64::MIN_POSITIVE);
    points
        .iter()
        .map(|p| {
            let qx = (((p.x - bounds.x_lo) / span_x) * side as f64) as u32;
            let qy = (((p.y - bounds.y_lo) / span_y) * side as f64) as u32;
            hilbert_d(qx.min(side), qy.min(side))
        })
        .collect()
}

/// Map quantized `(x, y)` to its distance along the order-16 Hilbert curve
/// (the standard bit-twiddling walk).
fn hilbert_d(mut x: u32, mut y: u32) -> u64 {
    let n: u32 = 1 << HILBERT_ORDER;
    let mut d: u64 = 0;
    let mut s = n / 2;
    while s > 0 {
        let rx = u32::from(x & s > 0);
        let ry = u32::from(y & s > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant so the curve orientation is consistent.
        if ry == 0 {
            if rx == 1 {
                x = (n - 1) - x;
                y = (n - 1) - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_workloads::CloudKind;

    #[test]
    fn halving_keeps_half() {
        let pts = CloudKind::UniformSquare.generate(256, 1);
        let mut rng = Rng64::new(2);
        for strategy in [Halving::Random, Halving::SortedX, Halving::Hilbert] {
            let kept = strategy.halve(pts.clone(), &mut rng);
            assert_eq!(kept.len(), 128, "{}", strategy.label());
        }
    }

    #[test]
    fn odd_lengths_are_handled() {
        let pts = CloudKind::UniformSquare.generate(257, 3);
        let mut rng = Rng64::new(4);
        for strategy in [Halving::Random, Halving::SortedX, Halving::Hilbert] {
            let kept = strategy.halve(pts.clone(), &mut rng).len();
            assert!(
                kept == 128 || kept == 129,
                "{}: kept {kept}",
                strategy.label()
            );
        }
    }

    #[test]
    fn kept_points_are_a_subset() {
        let pts = CloudKind::Gaussian.generate(128, 5);
        let mut rng = Rng64::new(6);
        for strategy in [Halving::Random, Halving::SortedX, Halving::Hilbert] {
            for p in strategy.halve(pts.clone(), &mut rng) {
                assert!(
                    pts.iter().any(|q| q == &p),
                    "{} invented a point",
                    strategy.label()
                );
            }
        }
    }

    #[test]
    fn hilbert_d_is_injective_on_small_grid() {
        // All order-16 indices of a 16×16 sub-grid must be distinct.
        let mut seen = std::collections::HashSet::new();
        for x in 0..16u32 {
            for y in 0..16u32 {
                assert!(seen.insert(hilbert_d(x * 4096, y * 4096)), "({x},{y})");
            }
        }
    }

    #[test]
    fn hilbert_neighbors_are_close_in_space() {
        // Walking one step along the curve moves one grid cell.
        let n: u64 = 1 << HILBERT_ORDER;
        let corner = hilbert_d(0, 0);
        assert_eq!(corner, 0);
        let last = hilbert_d(n as u32 - 1, 0);
        assert_eq!(last, n * n - 1); // the curve ends at (n-1, 0)
    }

    #[test]
    fn halving_discrepancy_ranking() {
        // For one halving of uniform points, the max rectangle-count error
        // of Hilbert/SortedX pairing is below random sampling's.
        use crate::ranges::{discrepancy, grid_queries};
        let pts = CloudKind::UniformSquare.generate(4096, 7);
        let queries = grid_queries(&pts, 8);
        let err = |strategy: Halving| -> f64 {
            // Average over seeds to suppress luck.
            (0..10)
                .map(|seed| {
                    let mut rng = Rng64::new(seed);
                    let kept = strategy.halve(pts.clone(), &mut rng);
                    discrepancy(&pts, &kept, 2, &queries)
                })
                .sum::<f64>()
                / 10.0
        };
        let random = err(Halving::Random);
        let hilbert = err(Halving::Hilbert);
        assert!(
            hilbert < random,
            "hilbert {hilbert} should beat random {random}"
        );
    }

    #[test]
    fn halve_empty_and_single() {
        let mut rng = Rng64::new(8);
        for strategy in [Halving::Random, Halving::SortedX, Halving::Hilbert] {
            assert!(strategy.halve(Vec::new(), &mut rng).is_empty());
            let one = strategy.halve(vec![Point2::new(1.0, 2.0)], &mut rng);
            assert!(one.len() <= 1);
        }
    }
}

//! Mergeable ε-approximations of range spaces (PODS'12, §5).
//!
//! An **ε-approximation** of a point set `P` for a range family `R` is a
//! weighted subset `A ⊆ P` such that for every range `r ∈ R`
//!
//! ```text
//! | weight(A ∩ r) − |P ∩ r| |  ≤  ε·|P| .
//! ```
//!
//! It generalizes quantile summaries (1D intervals) to geometric ranges —
//! here axis-aligned rectangles in the plane, the canonical VC-dimension-4
//! family.
//!
//! The paper makes ε-approximations mergeable with the **merge-reduce**
//! framework: keep at most one buffer of `m` points per level (points at
//! level `i` weigh `2^i`); merging two same-level buffers concatenates the
//! `2m` points and *reduces* back to `m` by a **low-discrepancy halving** —
//! a coloring of the points into pairs such that keeping one point per pair
//! misclassifies few points of any range. The hierarchy is a binary
//! counter, so arbitrary merge trees reduce to the same level-wise
//! operation and the error telescopes to `ε·n`.
//!
//! Substitution note (see `DESIGN.md`): the paper's optimal halvings come
//! from iterated low-discrepancy colorings (Beck's theorem / ham-sandwich
//! constructions). This crate implements three practical halvings behind
//! one interface — [`Halving::Random`] (the control), [`Halving::SortedX`]
//! (optimal for 1D-like ranges), and [`Halving::Hilbert`] (pair spatial
//! neighbors along a Hilbert curve, drop one per pair) — which preserve the
//! merge-reduce code path and the `εn` error *shape*; constants differ from
//! the theory. Experiment E7 measures all three.

pub mod approx1d;
pub mod approx2d;
pub mod halving;
pub mod merge_reduce;
pub mod ranges;

pub use approx1d::EpsApprox1d;
pub use approx2d::EpsApprox2d;
pub use halving::Halving;
pub use merge_reduce::PointHierarchy;
pub use ranges::{discrepancy, grid_queries, random_halfplanes, random_queries, Halfplane};

//! The merge-reduce hierarchy over point buffers — the geometric analogue
//! of the quantile buffer hierarchy, with a pluggable halving.

use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{Point2, Rng64};

use crate::halving::Halving;

/// Binary-counter hierarchy of point buffers: level `i` holds at most one
/// buffer whose points each represent `2^i` input points.
#[derive(Debug, Clone)]
pub struct PointHierarchy {
    levels: Vec<Option<Vec<Point2>>>,
    halving: Halving,
}

impl Wire for PointHierarchy {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.levels.encode_into(out);
        self.halving.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(PointHierarchy {
            levels: Vec::<Option<Vec<Point2>>>::decode_from(r)?,
            halving: Halving::decode_from(r)?,
        })
    }
}

impl PointHierarchy {
    /// Empty hierarchy with the given reduce strategy.
    pub fn new(halving: Halving) -> Self {
        PointHierarchy {
            levels: Vec::new(),
            halving,
        }
    }

    /// The reduce strategy in use.
    pub fn halving(&self) -> Halving {
        self.halving
    }

    /// Index of the highest occupied level + 1 (0 if empty).
    pub fn num_levels(&self) -> usize {
        self.levels
            .iter()
            .rposition(|l| l.is_some())
            .map_or(0, |i| i + 1)
    }

    /// Total stored points.
    pub fn stored_points(&self) -> usize {
        self.levels.iter().flatten().map(Vec::len).sum()
    }

    /// Insert a buffer at `level`, merging-and-reducing upward on
    /// collision: concatenate the two buffers (2m points) and halve back
    /// to m, placing the result one level up.
    pub fn push_buffer(&mut self, mut level: usize, mut buffer: Vec<Point2>, rng: &mut Rng64) {
        loop {
            if buffer.is_empty() {
                return;
            }
            if self.levels.len() <= level {
                self.levels.resize_with(level + 1, || None);
            }
            match self.levels[level].take() {
                None => {
                    self.levels[level] = Some(buffer);
                    return;
                }
                Some(mut existing) => {
                    existing.append(&mut buffer);
                    buffer = self.halving.halve(existing, rng);
                    level += 1;
                }
            }
        }
    }

    /// Merge another hierarchy into this one, level-wise with carries.
    ///
    /// # Panics
    ///
    /// Panics if the two hierarchies use different halvings (callers
    /// validate first and return a typed error).
    pub fn absorb(&mut self, other: PointHierarchy, rng: &mut Rng64) {
        assert_eq!(self.halving, other.halving, "halving mismatch");
        for (level, slot) in other.levels.into_iter().enumerate() {
            if let Some(buffer) = slot {
                self.push_buffer(level, buffer, rng);
            }
        }
    }

    /// Weighted count of stored points satisfying `pred`.
    pub fn weighted_count<F: Fn(&Point2) -> bool>(&self, pred: F) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_ref()
                    .map(|buf| (1u64 << i) * buf.iter().filter(|p| pred(p)).count() as u64)
            })
            .sum()
    }

    /// Total represented weight.
    pub fn total_weight(&self) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|buf| (1u64 << i) * buf.len() as u64))
            .sum()
    }

    /// Append every stored point with its weight to `out`.
    pub fn collect_weighted(&self, out: &mut Vec<(Point2, u64)>) {
        for (i, slot) in self.levels.iter().enumerate() {
            if let Some(buf) = slot {
                out.extend(buf.iter().map(|p| (*p, 1u64 << i)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(range: std::ops::Range<i32>) -> Vec<Point2> {
        range.map(|i| Point2::new(i as f64, -i as f64)).collect()
    }

    #[test]
    fn binary_counter_structure() {
        let mut h = PointHierarchy::new(Halving::Hilbert);
        let mut rng = Rng64::new(1);
        for i in 0..8 {
            h.push_buffer(0, pts(i * 4..(i + 1) * 4), &mut rng);
        }
        // 8 pushes → one buffer at level 3 of (about) 4 points.
        assert_eq!(h.num_levels(), 4);
        assert!(h.stored_points() <= 5);
    }

    #[test]
    fn weight_is_approximately_conserved() {
        let mut h = PointHierarchy::new(Halving::SortedX);
        let mut rng = Rng64::new(2);
        for i in 0..16 {
            h.push_buffer(0, pts(i * 8..(i + 1) * 8), &mut rng);
        }
        let total = h.total_weight();
        // 128 input points; halvings of even-size buffers conserve weight
        // exactly; odd leftovers can drift by ±(level weight).
        assert!(total.abs_diff(128) <= 16, "total weight {total}");
    }

    #[test]
    fn weighted_count_tracks_predicates() {
        let mut h = PointHierarchy::new(Halving::SortedX);
        let mut rng = Rng64::new(3);
        for i in 0..4 {
            h.push_buffer(0, pts(i * 16..(i + 1) * 16), &mut rng);
        }
        // Half the 64 points have x < 32.
        let est = h.weighted_count(|p| p.x < 32.0);
        assert!(est.abs_diff(32) <= 8, "estimate {est}");
    }

    #[test]
    fn absorb_carries_levels() {
        let mut rng = Rng64::new(4);
        let mut a = PointHierarchy::new(Halving::Random);
        let mut b = PointHierarchy::new(Halving::Random);
        a.push_buffer(0, pts(0..8), &mut rng);
        b.push_buffer(0, pts(8..16), &mut rng);
        a.absorb(b, &mut rng);
        assert_eq!(a.num_levels(), 2);
        assert_eq!(a.total_weight(), 16);
    }

    #[test]
    #[should_panic(expected = "halving mismatch")]
    fn absorb_rejects_mixed_strategies() {
        let mut rng = Rng64::new(5);
        let mut a = PointHierarchy::new(Halving::Random);
        let b = PointHierarchy::new(Halving::Hilbert);
        a.absorb(b, &mut rng);
    }

    #[test]
    fn collect_weighted_reports_level_weights() {
        let mut h = PointHierarchy::new(Halving::SortedX);
        let mut rng = Rng64::new(6);
        h.push_buffer(1, pts(0..2), &mut rng);
        let mut out = Vec::new();
        h.collect_weighted(&mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|&(_, w)| w == 2));
    }
}

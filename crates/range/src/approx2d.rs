//! The mergeable 2D ε-approximation summary.

use ms_core::error::ensure_same_capacity;
use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{MergeError, Mergeable, Point2, Rect, Result, Rng64, Summary};

use crate::halving::Halving;
use crate::merge_reduce::PointHierarchy;

/// Mergeable ε-approximation for axis-aligned rectangle ranges in the
/// plane, built on the merge-reduce framework of §5.
///
/// ```
/// use ms_core::{Point2, Rect};
/// use ms_range::{EpsApprox2d, Halving};
///
/// let mut approx = EpsApprox2d::new(256, Halving::Hilbert, 7);
/// for i in 0..1000 {
///     approx.insert(Point2::new((i % 100) as f64, (i / 100) as f64));
/// }
/// let quadrant = Rect::new(0.0, 49.0, 0.0, 4.0);
/// let estimate = approx.estimate_count(&quadrant);
/// assert!((200..=300).contains(&estimate)); // exact answer is 250
/// ```
#[derive(Debug, Clone)]
pub struct EpsApprox2d {
    m: usize,
    base: Vec<Point2>,
    hierarchy: PointHierarchy,
    n: u64,
    rng: Rng64,
}

impl Wire for EpsApprox2d {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.m.encode_into(out);
        self.base.encode_into(out);
        self.hierarchy.encode_into(out);
        self.n.encode_into(out);
        self.rng.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let m = usize::decode_from(r)?;
        if m < 2 {
            return Err(WireError::Malformed("buffer size must be at least 2"));
        }
        Ok(EpsApprox2d {
            m,
            base: Vec::<Point2>::decode_from(r)?,
            hierarchy: PointHierarchy::decode_from(r)?,
            n: u64::decode_from(r)?,
            rng: Rng64::decode_from(r)?,
        })
    }
}

impl EpsApprox2d {
    /// Create a summary with buffers of `m ≥ 2` points and the given
    /// halving strategy.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2`.
    pub fn new(m: usize, halving: Halving, seed: u64) -> Self {
        assert!(m >= 2, "buffer size must be at least 2");
        EpsApprox2d {
            m,
            base: Vec::with_capacity(m),
            hierarchy: PointHierarchy::new(halving),
            n: 0,
            rng: Rng64::new(seed),
        }
    }

    /// Heuristic sizing for a target ε with the Hilbert halving: buffers of
    /// `m = ⌈4/ε⌉` points keep the observed rectangle-count error under
    /// `εn` on the experiment workloads (the paper's asymptotic sizes hide
    /// constants; E7 sweeps `m` explicitly).
    pub fn for_epsilon(epsilon: f64, seed: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        Self::new(
            ((4.0 / epsilon).ceil() as usize).max(8),
            Halving::Hilbert,
            seed,
        )
    }

    /// Buffer size `m`.
    pub fn buffer_capacity(&self) -> usize {
        self.m
    }

    /// The halving strategy.
    pub fn halving(&self) -> Halving {
        self.halving_ref()
    }

    fn halving_ref(&self) -> Halving {
        self.hierarchy.halving()
    }

    /// Insert a point.
    pub fn insert(&mut self, p: Point2) {
        self.n += 1;
        self.base.push(p);
        if self.base.len() >= self.m {
            let buffer = std::mem::replace(&mut self.base, Vec::with_capacity(self.m));
            self.hierarchy.push_buffer(0, buffer, &mut self.rng);
        }
    }

    /// Insert many points.
    pub fn extend_from<T: IntoIterator<Item = Point2>>(&mut self, points: T) {
        for p in points {
            self.insert(p);
        }
    }

    /// Estimated number of input points inside `r`.
    pub fn estimate_count(&self, r: &Rect) -> u64 {
        let base = self.base.iter().filter(|p| r.contains(p)).count() as u64;
        base + self.hierarchy.weighted_count(|p| r.contains(p))
    }

    /// Estimated number of input points satisfying an arbitrary range
    /// predicate (halfplanes, disks, …). The εn guarantee applies to range
    /// families of bounded VC dimension whose shapes the halving respects;
    /// experiment E7 measures rectangles and halfplanes.
    pub fn estimate_count_where<F: Fn(&Point2) -> bool>(&self, range: F) -> u64 {
        let base = self.base.iter().filter(|p| range(p)).count() as u64;
        base + self.hierarchy.weighted_count(range)
    }

    /// Estimated fraction of input points inside `r`.
    pub fn estimate_fraction(&self, r: &Rect) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.estimate_count(r) as f64 / self.n as f64
        }
    }

    /// Every stored point with its weight (base points weigh 1).
    pub fn weighted_points(&self) -> Vec<(Point2, u64)> {
        let mut out: Vec<(Point2, u64)> = self.base.iter().map(|p| (*p, 1u64)).collect();
        self.hierarchy.collect_weighted(&mut out);
        out
    }
}

impl Summary for EpsApprox2d {
    fn total_weight(&self) -> u64 {
        self.n
    }

    fn size(&self) -> usize {
        self.base.len() + self.hierarchy.stored_points()
    }
}

impl Mergeable for EpsApprox2d {
    fn merge(mut self, other: Self) -> Result<Self> {
        ensure_same_capacity("buffer size (m)", self.m, other.m)?;
        if self.halving_ref() != other.halving_ref() {
            return Err(MergeError::Incompatible(
                "halving strategies differ between summaries",
            ));
        }
        self.n += other.n;
        self.rng.absorb(&other.rng);
        self.hierarchy.absorb(other.hierarchy, &mut self.rng);
        for p in other.base {
            self.base.push(p);
            if self.base.len() >= self.m {
                let buffer = std::mem::replace(&mut self.base, Vec::with_capacity(self.m));
                self.hierarchy.push_buffer(0, buffer, &mut self.rng);
            }
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::{count_in, grid_queries};
    use ms_core::{merge_all, MergeTree};
    use ms_workloads::CloudKind;

    fn build(points: &[Point2], m: usize, halving: Halving, seed: u64) -> EpsApprox2d {
        let mut a = EpsApprox2d::new(m, halving, seed);
        a.extend_from(points.iter().copied());
        a
    }

    /// Max |estimate − exact| over a query grid, in units of n.
    fn max_rel_error(a: &EpsApprox2d, points: &[Point2], side: usize) -> f64 {
        let n = points.len() as f64;
        grid_queries(points, side)
            .iter()
            .map(|r| (a.estimate_count(r) as f64 - count_in(points, r) as f64).abs() / n)
            .fold(0.0, f64::max)
    }

    #[test]
    fn exact_while_in_base() {
        let pts = CloudKind::UniformSquare.generate(10, 1);
        let a = build(&pts, 64, Halving::Hilbert, 1);
        let r = Rect::new(0.0, 1.0, 0.0, 1.0);
        assert_eq!(a.estimate_count(&r), 10);
        assert_eq!(a.size(), 10);
    }

    #[test]
    fn error_within_epsilon_on_clouds() {
        let eps = 0.05;
        for cloud in [
            CloudKind::UniformSquare,
            CloudKind::Gaussian,
            CloudKind::TwoClusters,
        ] {
            let pts = cloud.generate(20_000, 3);
            let a = build(&pts, 256, Halving::Hilbert, 9);
            let err = max_rel_error(&a, &pts, 6);
            assert!(err <= eps, "{}: error {err}", cloud.label());
        }
    }

    #[test]
    fn error_within_epsilon_under_merge_trees() {
        let eps = 0.05;
        let pts = CloudKind::UniformSquare.generate(16_384, 5);
        for shape in MergeTree::canonical() {
            let leaves: Vec<EpsApprox2d> = pts
                .chunks(1024)
                .enumerate()
                .map(|(i, c)| build(c, 256, Halving::Hilbert, 50 + i as u64))
                .collect();
            let merged = merge_all(leaves, shape).unwrap();
            assert_eq!(merged.total_weight(), pts.len() as u64);
            let err = max_rel_error(&merged, &pts, 6);
            assert!(err <= eps, "{}: error {err}", shape.label());
        }
    }

    #[test]
    fn size_grows_logarithmically_in_n() {
        let small = build(
            &CloudKind::UniformSquare.generate(4_096, 6),
            128,
            Halving::Hilbert,
            1,
        );
        let large = build(
            &CloudKind::UniformSquare.generate(262_144, 6),
            128,
            Halving::Hilbert,
            1,
        );
        assert!(
            large.size() < 12 * small.size().max(1),
            "small {}, large {}",
            small.size(),
            large.size()
        );
    }

    #[test]
    fn hilbert_beats_random_halving_end_to_end() {
        let pts = CloudKind::UniformSquare.generate(32_768, 7);
        let avg = |halving: Halving| -> f64 {
            (0..5)
                .map(|seed| {
                    let a = build(&pts, 128, halving, seed);
                    max_rel_error(&a, &pts, 5)
                })
                .sum::<f64>()
                / 5.0
        };
        let hilbert = avg(Halving::Hilbert);
        let random = avg(Halving::Random);
        assert!(
            hilbert < random,
            "hilbert {hilbert} should beat random {random}"
        );
    }

    #[test]
    fn merge_rejects_mismatched_parameters() {
        let a = EpsApprox2d::new(64, Halving::Hilbert, 1);
        let b = EpsApprox2d::new(128, Halving::Hilbert, 1);
        assert!(matches!(
            a.merge(b),
            Err(MergeError::CapacityMismatch { .. })
        ));
        let a = EpsApprox2d::new(64, Halving::Hilbert, 1);
        let b = EpsApprox2d::new(64, Halving::Random, 1);
        assert!(matches!(a.merge(b), Err(MergeError::Incompatible(_))));
    }

    #[test]
    fn fraction_estimates() {
        let pts = CloudKind::UniformSquare.generate(10_000, 8);
        let a = build(&pts, 256, Halving::Hilbert, 2);
        let half = Rect::new(0.0, 0.5, 0.0, 1.0);
        let frac = a.estimate_fraction(&half);
        assert!((frac - 0.5).abs() < 0.05, "fraction {frac}");
        let empty = EpsApprox2d::new(16, Halving::Hilbert, 0);
        assert_eq!(empty.estimate_fraction(&half), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = CloudKind::Gaussian.generate(50_000, 9);
        let run = || {
            let a = build(&pts, 128, Halving::Hilbert, 33);
            let r = Rect::new(-1.0, 1.0, -1.0, 1.0);
            a.estimate_count(&r)
        };
        assert_eq!(run(), run());
    }
}

//! Property tests for the aggregation-network schedules.

use proptest::prelude::*;

use ms_netsim::Topology;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every topology compiles, for any site count, into a schedule that
    /// consumes n−1 live slots and leaves exactly the declared sink.
    #[test]
    fn schedules_always_reduce_to_the_sink(sites in 1usize..300, fan in 1usize..24) {
        let topologies = [
            Topology::Star,
            Topology::Chain,
            Topology::BalancedTree,
            Topology::TwoLevel { fan },
        ];
        for t in topologies {
            let steps = t.schedule(sites);
            prop_assert_eq!(steps.len(), sites - 1, "{}", t.label());
            let mut alive = vec![true; sites];
            for step in &steps {
                prop_assert!(alive[step.src]);
                prop_assert!(alive[step.dst]);
                prop_assert_ne!(step.src, step.dst);
                prop_assert!(step.level >= 1);
                alive[step.src] = false;
            }
            let survivors: Vec<usize> = (0..sites).filter(|&i| alive[i]).collect();
            prop_assert_eq!(survivors, vec![t.sink(sites)], "{}", t.label());
        }
    }

    /// Aggregation over any topology preserves the exact total weight and
    /// ships exactly n−1 messages.
    #[test]
    fn aggregation_conserves_weight(sites in 1usize..40, fan in 1usize..8) {
        use ms_core::{ItemSummary, Summary};
        use ms_frequency::MgSummary;

        let leaves: Vec<MgSummary<u64>> = (0..sites)
            .map(|s| {
                let mut m = MgSummary::new(8);
                for i in 0..10u64 {
                    m.update(s as u64 * 100 + i);
                }
                m
            })
            .collect();
        for t in [
            Topology::Star,
            Topology::Chain,
            Topology::BalancedTree,
            Topology::TwoLevel { fan },
        ] {
            let (merged, stats) = ms_netsim::aggregate(leaves.clone(), t).unwrap();
            prop_assert_eq!(merged.total_weight(), sites as u64 * 10);
            prop_assert_eq!(stats.messages, sites - 1);
            prop_assert!(stats.max_message_bytes <= stats.total_bytes.max(1));
        }
    }
}

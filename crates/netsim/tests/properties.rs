//! Property tests for the aggregation-network schedules, randomized over
//! seeded site counts so failures reproduce.

use ms_core::Rng64;
use ms_netsim::Topology;

/// Every topology compiles, for any site count, into a schedule that
/// consumes n−1 live slots and leaves exactly the declared sink.
#[test]
fn schedules_always_reduce_to_the_sink() {
    let mut rng = Rng64::new(0x4E_01);
    for _ in 0..128 {
        let sites = 1 + rng.below_usize(299);
        let fan = 1 + rng.below_usize(23);
        let topologies = [
            Topology::Star,
            Topology::Chain,
            Topology::BalancedTree,
            Topology::TwoLevel { fan },
        ];
        for t in topologies {
            let steps = t.schedule(sites);
            assert_eq!(steps.len(), sites - 1, "{}", t.label());
            let mut alive = vec![true; sites];
            for step in &steps {
                assert!(alive[step.src]);
                assert!(alive[step.dst]);
                assert_ne!(step.src, step.dst);
                assert!(step.level >= 1);
                alive[step.src] = false;
            }
            let survivors: Vec<usize> = (0..sites).filter(|&i| alive[i]).collect();
            assert_eq!(survivors, vec![t.sink(sites)], "{}", t.label());
        }
    }
}

/// Aggregation over any topology preserves the exact total weight, ships
/// exactly n−1 messages, and the binary codec never loses to JSON.
#[test]
fn aggregation_conserves_weight() {
    use ms_core::{ItemSummary, Summary};
    use ms_frequency::MgSummary;

    let mut rng = Rng64::new(0x4E_02);
    for _ in 0..128 {
        let sites = 1 + rng.below_usize(39);
        let fan = 1 + rng.below_usize(7);
        let leaves: Vec<MgSummary<u64>> = (0..sites)
            .map(|s| {
                let mut m = MgSummary::new(8);
                for i in 0..10u64 {
                    m.update(s as u64 * 100 + i);
                }
                m
            })
            .collect();
        for t in [
            Topology::Star,
            Topology::Chain,
            Topology::BalancedTree,
            Topology::TwoLevel { fan },
        ] {
            let (merged, stats) = ms_netsim::aggregate(leaves.clone(), t).unwrap();
            assert_eq!(merged.total_weight(), sites as u64 * 10);
            assert_eq!(stats.messages, sites - 1);
            assert!(stats.max_message_bytes <= stats.total_bytes.max(1));
            assert!(
                stats.total_bytes <= stats.json_total_bytes,
                "binary {} should not exceed JSON {}",
                stats.total_bytes,
                stats.json_total_bytes
            );
        }
    }
}

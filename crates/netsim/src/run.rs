//! Running a merge schedule with byte accounting.

use ms_core::{Mergeable, Result, ToJson, Wire};

use crate::topology::Topology;

/// What the network observed while aggregating.
///
/// Every message is priced under two encodings: the compact binary codec
/// (`*_bytes` fields — what a real deployment ships, see
/// [`ms_core::wire`]) and a JSON text encoding (`json_*` fields — the
/// comparison point for text protocols).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetStats {
    /// Messages shipped (one per merge step).
    pub messages: usize,
    /// Total bytes over all links (binary codec).
    pub total_bytes: usize,
    /// Largest single message (binary codec).
    pub max_message_bytes: usize,
    /// Total bytes over all links under a JSON encoding.
    pub json_total_bytes: usize,
    /// Largest single message under a JSON encoding.
    pub json_max_message_bytes: usize,
    /// Deepest hop level used.
    pub depth: usize,
}

/// Aggregate `leaves` up `topology`, accounting each shipped summary's
/// encoded size. Returns the final summary (at the topology's sink) and
/// the traffic statistics.
///
/// # Panics
///
/// Panics if `leaves` is empty.
pub fn aggregate<S: Mergeable + Wire + ToJson>(
    leaves: Vec<S>,
    topology: Topology,
) -> Result<(S, NetStats)> {
    assert!(
        !leaves.is_empty(),
        "aggregate requires at least one summary"
    );
    let sites = leaves.len();
    let mut slots: Vec<Option<S>> = leaves.into_iter().map(Some).collect();
    let mut stats = NetStats {
        messages: 0,
        total_bytes: 0,
        max_message_bytes: 0,
        json_total_bytes: 0,
        json_max_message_bytes: 0,
        depth: 0,
    };
    for step in topology.schedule(sites) {
        let shipped = slots[step.src].take().expect("schedule uses live slots");
        let bytes = message_bytes(&shipped);
        let json_bytes = json_message_bytes(&shipped);
        stats.messages += 1;
        stats.total_bytes += bytes;
        stats.max_message_bytes = stats.max_message_bytes.max(bytes);
        stats.json_total_bytes += json_bytes;
        stats.json_max_message_bytes = stats.json_max_message_bytes.max(json_bytes);
        stats.depth = stats.depth.max(step.level);
        let receiver = slots[step.dst].take().expect("schedule uses live slots");
        slots[step.dst] = Some(receiver.merge(shipped)?);
    }
    let sink = topology.sink(sites);
    Ok((
        slots[sink].take().expect("sink holds the final aggregate"),
        stats,
    ))
}

/// Encoded size of one message under the binary codec — the real wire
/// cost a deployment pays per hop.
pub fn message_bytes<S: Wire>(summary: &S) -> usize {
    summary.wire_len()
}

/// Encoded size of one message under a compact JSON encoding — the text
/// protocol comparison point reported by experiment E10.
pub fn json_message_bytes<S: ToJson>(summary: &S) -> usize {
    summary.json_len()
}

/// Bytes the naive scheme ships: every site forwards its *raw data*
/// upward, so each element crosses every hop between its site and the
/// sink. For a topology of depth `d_i` per site this is `Σ items_i · hops_i
/// · bytes_per_item`; this helper computes the star-topology lower bound
/// (one hop each), which already dominates every summary-based scheme.
pub fn raw_shipping_bytes(items_per_site: &[usize], bytes_per_item: usize) -> usize {
    items_per_site.iter().sum::<usize>() * bytes_per_item
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::{ItemSummary, Summary};
    use ms_frequency::MgSummary;
    use ms_workloads::{Partitioner, StreamKind};

    fn leaves(sites: usize, k: usize) -> (Vec<MgSummary<u64>>, Vec<u64>) {
        let items = StreamKind::Zipf {
            s: 1.2,
            universe: 10_000,
        }
        .generate(sites * 2_000, 5);
        let parts = Partitioner::RoundRobin.split(&items, sites);
        let summaries = parts
            .iter()
            .map(|p| {
                let mut s = MgSummary::new(k);
                s.extend_from(p.iter().copied());
                s
            })
            .collect();
        (summaries, items)
    }

    #[test]
    fn aggregation_result_matches_direct_merge() {
        let (summaries, _) = leaves(16, 64);
        for t in Topology::canonical() {
            let (merged, stats) = aggregate(summaries.clone(), t).unwrap();
            assert_eq!(merged.total_weight(), 32_000, "{}", t.label());
            assert_eq!(stats.messages, 15, "{}", t.label());
            assert!(stats.total_bytes > 0);
            assert!(stats.max_message_bytes <= stats.total_bytes);
        }
    }

    #[test]
    fn message_sizes_stay_bounded_at_every_hop() {
        // The point of mergeability: the biggest message on any link is
        // O(summary size), not O(data below the link).
        let (summaries, _) = leaves(64, 64);
        let single_size = message_bytes(&summaries[0]);
        let (_, stats) = aggregate(summaries, Topology::Chain).unwrap();
        // A merged MG summary with k counters is never more than a small
        // constant factor larger than a leaf summary.
        assert!(
            stats.max_message_bytes < 4 * single_size,
            "max message {} vs leaf {}",
            stats.max_message_bytes,
            single_size
        );
    }

    #[test]
    fn summaries_beat_raw_shipping() {
        let sites = 64;
        let (summaries, items) = leaves(sites, 64);
        let (_, stats) = aggregate(summaries, Topology::BalancedTree).unwrap();
        let raw = raw_shipping_bytes(&vec![items.len() / sites; sites], 8);
        assert!(
            stats.total_bytes < raw,
            "summary traffic {} should beat raw {}",
            stats.total_bytes,
            raw
        );
    }

    #[test]
    fn depth_accounting() {
        let (summaries, _) = leaves(16, 32);
        let (_, star) = aggregate(summaries.clone(), Topology::Star).unwrap();
        let (_, chain) = aggregate(summaries.clone(), Topology::Chain).unwrap();
        let (_, tree) = aggregate(summaries, Topology::BalancedTree).unwrap();
        assert_eq!(star.depth, 1);
        assert_eq!(chain.depth, 15);
        assert_eq!(tree.depth, 4);
    }

    #[test]
    fn single_leaf_ships_nothing() {
        let (summaries, _) = leaves(1, 8);
        let (merged, stats) = aggregate(summaries, Topology::Star).unwrap();
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.total_bytes, 0);
        assert_eq!(merged.total_weight(), 2_000);
    }

    #[test]
    fn incompatible_summaries_error_through_the_network() {
        let mut bad = vec![MgSummary::<u64>::new(8), MgSummary::<u64>::new(9)];
        bad[0].update(1);
        bad[1].update(2);
        assert!(aggregate(bad, Topology::Star).is_err());
    }
}

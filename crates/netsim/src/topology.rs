//! Aggregation topologies, expressed as merge schedules.
//!
//! A topology over `sites` leaves is compiled into an ordered list of
//! [`MergeStep`]s over a working set of partial aggregates. Step
//! `{ src, dst }` ships the aggregate at slot `src` to the node holding
//! slot `dst` (one message) and merges it in; the last surviving slot is
//! the final answer at the sink.

/// One shipped-and-merged message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeStep {
    /// Slot whose aggregate is shipped (consumed).
    pub src: usize,
    /// Slot that receives and merges.
    pub dst: usize,
    /// Hop depth of this step (root = highest); used for depth accounting.
    pub level: usize,
}

/// Shape of the aggregation network.
///
/// ```
/// use ms_netsim::Topology;
///
/// // 8 sites up a balanced tree: 7 messages, 3 hop levels.
/// let steps = Topology::BalancedTree.schedule(8);
/// assert_eq!(steps.len(), 7);
/// assert_eq!(steps.iter().map(|s| s.level).max(), Some(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every site ships directly to one sink that merges sequentially —
    /// scatter/gather.
    Star,
    /// Sites form a line; each node merges its predecessor's aggregate and
    /// ships on — maximal depth, the worst case for error-accumulating
    /// schemes.
    Chain,
    /// Balanced binary routing tree — `⌈log₂ sites⌉` hops.
    BalancedTree,
    /// `fan` racks aggregate internally (chain), then rack heads ship to
    /// the sink.
    TwoLevel {
        /// Number of first-level groups.
        fan: usize,
    },
    /// Coordinator fan-out: backends star into `groups` group heads
    /// (level 1, one scatter/gather each), then the heads star into the
    /// root coordinator (level 2). This is the merge schedule an
    /// `ms-cluster` coordinator tree induces: every query is answered in
    /// two hop levels regardless of backend count, and each link carries
    /// exactly one summary.
    Fanout {
        /// Number of first-level coordinator groups.
        groups: usize,
    },
}

impl Topology {
    /// Compile the merge schedule for `sites` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0`.
    pub fn schedule(&self, sites: usize) -> Vec<MergeStep> {
        assert!(sites > 0, "a topology needs at least one site");
        match *self {
            Topology::Star => (1..sites)
                .map(|src| MergeStep {
                    src,
                    dst: 0,
                    level: 1,
                })
                .collect(),
            Topology::Chain => (1..sites)
                .map(|i| MergeStep {
                    src: i - 1,
                    dst: i,
                    level: i,
                })
                .collect(),
            Topology::BalancedTree => {
                let mut steps = Vec::with_capacity(sites.saturating_sub(1));
                let mut live: Vec<usize> = (0..sites).collect();
                let mut level = 1;
                while live.len() > 1 {
                    let mut next = Vec::with_capacity(live.len().div_ceil(2));
                    let mut iter = live.chunks(2);
                    for pair in &mut iter {
                        match pair {
                            [a, b] => {
                                steps.push(MergeStep {
                                    src: *b,
                                    dst: *a,
                                    level,
                                });
                                next.push(*a);
                            }
                            [a] => next.push(*a),
                            _ => unreachable!("chunks(2)"),
                        }
                    }
                    live = next;
                    level += 1;
                }
                steps
            }
            Topology::TwoLevel { fan } => {
                let fan = fan.max(1);
                let group = sites.div_ceil(fan).max(1);
                let mut steps = Vec::with_capacity(sites.saturating_sub(1));
                let mut heads = Vec::new();
                let mut start = 0;
                while start < sites {
                    let end = (start + group).min(sites);
                    for i in (start + 1)..end {
                        steps.push(MergeStep {
                            src: i - 1,
                            dst: i,
                            level: i - start,
                        });
                    }
                    heads.push(end - 1);
                    start = end;
                }
                for head in heads.iter().skip(1) {
                    steps.push(MergeStep {
                        src: *head,
                        dst: heads[0],
                        level: group + 1,
                    });
                }
                steps
            }
            Topology::Fanout { groups } => {
                let groups = groups.max(1);
                let group = sites.div_ceil(groups).max(1);
                let mut steps = Vec::with_capacity(sites.saturating_sub(1));
                let mut heads = Vec::new();
                let mut start = 0;
                while start < sites {
                    let end = (start + group).min(sites);
                    // Group members star into the group head: one gather.
                    for src in (start + 1)..end {
                        steps.push(MergeStep {
                            src,
                            dst: start,
                            level: 1,
                        });
                    }
                    heads.push(start);
                    start = end;
                }
                // Group heads star into the root coordinator.
                for head in heads.iter().skip(1) {
                    steps.push(MergeStep {
                        src: *head,
                        dst: heads[0],
                        level: 2,
                    });
                }
                steps
            }
        }
    }

    /// Slot index holding the final aggregate after the schedule runs.
    pub fn sink(&self, sites: usize) -> usize {
        match *self {
            Topology::Star => 0,
            Topology::Chain => sites - 1,
            Topology::BalancedTree => 0,
            Topology::TwoLevel { fan } => {
                let fan = fan.max(1);
                let group = sites.div_ceil(fan).max(1);
                group.min(sites) - 1
            }
            Topology::Fanout { .. } => 0,
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Topology::Star => "star",
            Topology::Chain => "chain",
            Topology::BalancedTree => "balanced-tree",
            Topology::TwoLevel { .. } => "two-level",
            Topology::Fanout { .. } => "fanout",
        }
    }

    /// The topologies swept by experiment E10.
    pub fn canonical() -> [Topology; 5] {
        [
            Topology::Star,
            Topology::Chain,
            Topology::BalancedTree,
            Topology::TwoLevel { fan: 8 },
            Topology::Fanout { groups: 4 },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every schedule must merge `sites` slots into exactly one: n−1 steps,
    /// each consuming a live slot, ending at the declared sink.
    fn check_schedule(t: Topology, sites: usize) {
        let steps = t.schedule(sites);
        assert_eq!(steps.len(), sites - 1, "{}", t.label());
        let mut alive = vec![true; sites];
        for step in &steps {
            assert!(alive[step.src], "{}: src {} reused", t.label(), step.src);
            assert!(alive[step.dst], "{}: dst {} dead", t.label(), step.dst);
            assert_ne!(step.src, step.dst);
            alive[step.src] = false;
        }
        let survivors: Vec<usize> = (0..sites).filter(|&i| alive[i]).collect();
        assert_eq!(survivors, vec![t.sink(sites)], "{}", t.label());
    }

    #[test]
    fn schedules_are_complete_and_consistent() {
        for t in Topology::canonical() {
            for sites in [1usize, 2, 3, 7, 8, 16, 33, 64] {
                if sites >= 1 {
                    check_schedule(t, sites.max(1));
                }
            }
        }
    }

    #[test]
    fn star_is_depth_one() {
        let steps = Topology::Star.schedule(16);
        assert!(steps.iter().all(|s| s.level == 1));
        assert!(steps.iter().all(|s| s.dst == 0));
    }

    #[test]
    fn chain_depth_grows_linearly() {
        let steps = Topology::Chain.schedule(16);
        assert_eq!(steps.last().unwrap().level, 15);
    }

    #[test]
    fn balanced_tree_depth_is_logarithmic() {
        let steps = Topology::BalancedTree.schedule(64);
        let max_level = steps.iter().map(|s| s.level).max().unwrap();
        assert_eq!(max_level, 6);
    }

    #[test]
    fn fanout_is_two_hop_levels() {
        let steps = Topology::Fanout { groups: 4 }.schedule(16);
        assert!(steps.iter().all(|s| s.level <= 2));
        assert_eq!(steps.iter().filter(|s| s.level == 2).count(), 3);
        // Level-1 gathers land on group heads, level-2 gathers on the root.
        assert!(steps
            .iter()
            .filter(|s| s.level == 2)
            .all(|s| s.dst == 0 && s.src % 4 == 0));
    }

    #[test]
    fn single_site_needs_no_messages() {
        for t in Topology::canonical() {
            assert!(t.schedule(1).is_empty());
            assert_eq!(t.sink(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_panics() {
        let _ = Topology::Star.schedule(0);
    }
}

//! Aggregation-network simulator.
//!
//! The paper's motivation is *in-network aggregation*: summaries are
//! computed at the edge and **shipped** up a routing topology, merging at
//! every interior node. What mergeability buys is that the message size is
//! bounded by the summary size — `O(poly(1/ε))` — at *every* hop, instead
//! of growing with the data below.
//!
//! This crate simulates that: it runs any [`ms_core::Mergeable`] +
//! [`serde::Serialize`] summary up a [`Topology`] and accounts every
//! message (count, bytes, per-link maximum, depth). Wire size is measured
//! as the summary's JSON encoding — a simulation substitution for a real
//! wire format (documented in `DESIGN.md`): JSON inflates all summaries by
//! a similar constant factor, so *relative* comparisons (summary vs
//! summary, summary vs raw shipping) are preserved, which is what
//! experiment E10 reports.

pub mod run;
pub mod topology;

pub use run::{aggregate, message_bytes, raw_shipping_bytes, NetStats};
pub use topology::Topology;

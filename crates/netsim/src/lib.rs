//! Aggregation-network simulator.
//!
//! The paper's motivation is *in-network aggregation*: summaries are
//! computed at the edge and **shipped** up a routing topology, merging at
//! every interior node. What mergeability buys is that the message size is
//! bounded by the summary size — `O(poly(1/ε))` — at *every* hop, instead
//! of growing with the data below.
//!
//! This crate simulates that: it runs any [`ms_core::Mergeable`] +
//! [`ms_core::Wire`] + [`ms_core::ToJson`] summary up a [`Topology`] and
//! accounts every message (count, bytes, per-link maximum, depth). Each
//! message is priced twice: under the compact binary codec
//! ([`ms_core::wire`], the format the service actually ships) and under a
//! JSON text encoding, so experiment E10 can report both the real wire
//! cost and the text-protocol comparison point.

pub mod run;
pub mod topology;

pub use run::{aggregate, json_message_bytes, message_bytes, raw_shipping_bytes, NetStats};
pub use topology::Topology;

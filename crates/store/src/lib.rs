//! Crash-safe durability for the aggregation service.
//!
//! The paper's mergeability guarantee (PODS'12, Definition 1) is what
//! makes a *cheap* durability story possible: a summary checkpointed to
//! disk merges back into a fresh engine with no error degradation, so
//! recovery is "load the newest checkpoint per shard, replay the short
//! WAL tail, merge" — never "re-aggregate the stream from scratch".
//!
//! On-disk layout under one data directory:
//!
//! ```text
//! <data-dir>/
//!   wal/wal-<first-seq:016x>.seg     append-only ingest-batch records
//!   ckpt/ckpt-<wal-seq:016x>-<shard:04x>.ckpt   per-shard summary files
//!   seg/seg-<id:016x>.seg            sealed cube segments (cube only)
//! ```
//!
//! Every record — WAL batch or checkpoint — is an `ms_core::wire` frame
//! followed by a length + CRC-32 trailer ([`ms_core::wire::WireFrame::
//! to_durable_bytes`]). The trailer is the contract that makes recovery
//! honest: a record that does not verify is **truncated** (torn tail at
//! end of log — the normal crash artifact) or **skipped and reported**
//! (bit rot / corruption mid-file, resynchronized on the frame magic),
//! never trusted.
//!
//! The WAL is segment-based so checkpoints can garbage-collect whole
//! files, and the fsync policy ([`FsyncPolicy`]) trades durability for
//! throughput explicitly: `always` survives power loss per acked batch,
//! `every:N` bounds the loss window to N batches, `never` leaves flushing
//! to the OS (still crash-consistent, not power-loss-durable).

use std::io;
use std::path::PathBuf;

pub mod checkpoint;
pub mod group;
pub mod inspect;
pub mod segment;
pub mod wal;

pub use checkpoint::{CheckpointRecord, CheckpointSet, CheckpointStore, CHECKPOINT_TAG};
pub use group::{GroupCommit, GroupOutcome, LedStats};
pub use inspect::{inspect, CheckpointInfo, InspectReport, SegmentInfo};
pub use segment::{LoadedSegments, SegmentRecord, SegmentStore, SEGMENT_TAG};
pub use wal::{scan_segment, GroupAppend, SegmentScan, Wal, WalEntry, WAL_RECORD_TAG};

/// When the WAL fsyncs its segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended record: an acked batch survives power
    /// loss. The slowest and safest setting.
    Always,
    /// fsync once every N appends (and on rotation, checkpoint and clean
    /// shutdown): at most N acked batches are exposed to power loss.
    EveryN(u64),
    /// Never fsync during appends; the OS flushes when it pleases. Still
    /// safe against process crashes (`kill -9`), not against power loss.
    Never,
}

impl FsyncPolicy {
    /// Parse a CLI label: `always`, `never`, or `every:N`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => {
                let n: u64 = s.strip_prefix("every:")?.parse().ok()?;
                (n > 0).then_some(FsyncPolicy::EveryN(n))
            }
        }
    }

    /// True when this policy ever fsyncs on its own.
    pub fn syncs(&self) -> bool {
        !matches!(self, FsyncPolicy::Never)
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every:{n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Sizing and sync policy for one data directory.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root data directory (`wal/` and `ckpt/` live under it).
    pub dir: PathBuf,
    /// Rotate WAL segments once they exceed this many bytes.
    pub segment_bytes: u64,
    /// When the WAL fsyncs.
    pub fsync: FsyncPolicy,
    /// Also open `seg/` and recover sealed cube segments (the segment
    /// cube; see [`segment`]). Off for engines without segmented ingest.
    pub cube_segments: bool,
}

impl StoreConfig {
    /// A config for `dir` with 4 MiB segments and `every:64` fsyncs.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            fsync: FsyncPolicy::EveryN(64),
            cube_segments: false,
        }
    }

    /// Set the segment rotation threshold.
    pub fn segment_bytes(mut self, bytes: u64) -> StoreConfig {
        self.segment_bytes = bytes;
        self
    }

    /// Set the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> StoreConfig {
        self.fsync = policy;
        self
    }

    /// Enable (or disable) sealed cube-segment recovery under `seg/`.
    pub fn cube_segments(mut self, enabled: bool) -> StoreConfig {
        self.cube_segments = enabled;
        self
    }
}

/// What a [`Store::open`] recovery scan found. The caller merges
/// `checkpoint` parts back into its shards, re-applies `tail` in order,
/// and *reports* the damage counters — corrupted records must never be
/// silently ingested.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Newest complete, fully-verified checkpoint set, if any.
    pub checkpoint: Option<CheckpointSet>,
    /// Valid WAL records newer than the checkpoint, in seq order.
    pub tail: Vec<WalEntry>,
    /// Damaged spans skipped by resynchronizing on the frame magic.
    pub corrupt_records: u64,
    /// Unrecoverable trailing bytes truncated from the last segment.
    pub torn_bytes: u64,
    /// Checkpoint files discarded (CRC failure, wrong metadata, or an
    /// incomplete per-shard set).
    pub corrupt_checkpoints: u64,
    /// WAL records dropped because their seq was not strictly increasing
    /// (replay idempotence: a duplicate is never applied twice).
    pub duplicates: u64,
    /// Segment files scanned.
    pub segments: usize,
    /// Total WAL bytes scanned.
    pub wal_bytes: u64,
    /// Highest valid seq seen anywhere in the WAL (0 when empty).
    pub last_seq: u64,
    /// Intact sealed cube segments, a contiguous seq prefix in id order
    /// (empty unless [`StoreConfig::cube_segments`] is on).
    pub cube: Vec<SegmentRecord>,
    /// Cube segment files discarded (CRC failure, id mismatch, or lost
    /// past a contiguity gap).
    pub corrupt_cube_segments: u64,
    /// Highest batch seq covered by an intact sealed cube segment (0
    /// when none): the WAL tail above this floor rebuilds the open
    /// segment and any sealed-but-lost ones.
    pub cube_floor: u64,
    /// Human-readable notes about damage and fallbacks, for logs.
    pub notes: Vec<String>,
}

/// An open data directory: the live WAL plus its checkpoint store (and,
/// when the segment cube is enabled, the sealed-segment store).
pub struct Store {
    /// Append-only ingest-batch log.
    pub wal: Wal,
    /// Per-shard checkpoint files.
    pub checkpoints: CheckpointStore,
    /// Sealed cube segments; `None` unless [`StoreConfig::cube_segments`].
    pub segments: Option<SegmentStore>,
}

impl Store {
    /// Open (or create) a data directory and run the recovery scan:
    /// load the newest valid checkpoint set, scan every WAL segment with
    /// CRC verification, truncate the torn tail of the last segment, and
    /// position the WAL to continue appending after the highest valid seq.
    pub fn open(cfg: &StoreConfig) -> io::Result<(Store, Recovery)> {
        let checkpoints = CheckpointStore::open(cfg.dir.join("ckpt"), cfg.fsync.syncs())?;
        let mut recovery = Recovery::default();

        let loaded = checkpoints.load_newest()?;
        recovery.corrupt_checkpoints = loaded.discarded;
        recovery.notes.extend(loaded.notes);
        let ckpt_seq = loaded.newest.as_ref().map_or(0, |s| s.wal_seq);
        recovery.checkpoint = loaded.newest;

        // With the cube on, the WAL tail must also reach back past the
        // checkpoint cut to the last persisted segment, so lost or
        // unsealed segments can be rebuilt by replay.
        let mut segments = None;
        let mut tail_floor = ckpt_seq;
        if cfg.cube_segments {
            let store = SegmentStore::open(cfg.dir.join("seg"), cfg.fsync.syncs())?;
            let loaded = store.load_all()?;
            recovery.corrupt_cube_segments = loaded.discarded;
            recovery.notes.extend(loaded.notes);
            recovery.cube_floor = loaded.records.last().map_or(0, |r| r.end_seq);
            recovery.cube = loaded.records;
            tail_floor = tail_floor.min(recovery.cube_floor);
            segments = Some(store);
        }

        let (wal, scans) = Wal::open(cfg)?;
        recovery.segments = scans.len();
        let mut last_seq = 0u64;
        for (path, scan) in &scans {
            recovery.wal_bytes += scan.bytes;
            recovery.corrupt_records += scan.corrupt_spans;
            recovery.torn_bytes += scan.torn_bytes;
            if scan.corrupt_spans > 0 || scan.torn_bytes > 0 {
                recovery.notes.push(format!(
                    "{}: {} corrupt span(s), {} torn byte(s){}",
                    path.display(),
                    scan.corrupt_spans,
                    scan.torn_bytes,
                    scan.tail_error
                        .as_ref()
                        .map(|e| format!(" ({e})"))
                        .unwrap_or_default(),
                ));
            }
            for entry in &scan.entries {
                if entry.seq <= last_seq {
                    recovery.duplicates += 1;
                    continue;
                }
                last_seq = entry.seq;
                if entry.seq > tail_floor {
                    recovery.tail.push(entry.clone());
                }
            }
        }
        recovery.last_seq = last_seq;
        Ok((
            Store {
                wal,
                checkpoints,
                segments,
            },
            recovery,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_labels_roundtrip() {
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::Never,
            FsyncPolicy::EveryN(8),
        ] {
            assert_eq!(FsyncPolicy::parse(&policy.to_string()), Some(policy));
        }
        assert_eq!(FsyncPolicy::parse("every:0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::parse("every:x"), None);
    }
}

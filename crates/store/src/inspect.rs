//! Read-only inspection of a data directory, for the `mergeable store
//! inspect` subcommand and for tests that want to look at segment and
//! checkpoint health without opening the store for writing.

use std::fs::{self, File};
use std::io::{self, Read};
use std::path::Path;

use ms_core::{Json, ToJson};

use crate::checkpoint::{parse_part_seq, read_part};
use crate::wal::{scan_segment, segment_paths};

/// One WAL segment's health, from a full CRC scan.
#[derive(Debug)]
pub struct SegmentInfo {
    /// Filename (not the full path).
    pub file: String,
    /// File length in bytes.
    pub bytes: u64,
    /// Records that verified.
    pub records: u64,
    /// First valid seq (0 when the segment holds none).
    pub first_seq: u64,
    /// Last valid seq (0 when the segment holds none).
    pub last_seq: u64,
    /// Interior damaged spans skipped via magic resync.
    pub corrupt_spans: u64,
    /// Unrecoverable bytes at the tail.
    pub torn_bytes: u64,
}

/// One checkpoint part file's health.
#[derive(Debug)]
pub struct CheckpointInfo {
    /// Filename (not the full path).
    pub file: String,
    /// File length in bytes.
    pub bytes: u64,
    /// Shard the part claims (from the record when it verifies, else
    /// from the filename).
    pub shard: u32,
    /// Shards the full set should have (0 when the record is damaged).
    pub shards_total: u32,
    /// WAL cut the part claims.
    pub wal_seq: u64,
    /// Engine epoch stamped at write time.
    pub epoch: u64,
    /// `ok` or the verification error.
    pub status: String,
}

/// Everything [`inspect`] found in a data directory.
#[derive(Debug, Default)]
pub struct InspectReport {
    /// Per-segment health, in seq order.
    pub segments: Vec<SegmentInfo>,
    /// Per-part checkpoint health, newest set first.
    pub checkpoints: Vec<CheckpointInfo>,
}

impl InspectReport {
    /// Total records that verified across all segments.
    pub fn total_records(&self) -> u64 {
        self.segments.iter().map(|s| s.records).sum()
    }

    /// Total damage observed (corrupt spans + torn tails + bad parts).
    pub fn total_damage(&self) -> u64 {
        let wal: u64 = self
            .segments
            .iter()
            .map(|s| s.corrupt_spans + u64::from(s.torn_bytes > 0))
            .sum();
        wal + self.checkpoints.iter().filter(|c| c.status != "ok").count() as u64
    }
}

impl ToJson for SegmentInfo {
    fn to_json(&self) -> Json {
        Json::obj([
            ("file", self.file.to_json()),
            ("bytes", self.bytes.to_json()),
            ("records", self.records.to_json()),
            ("first_seq", self.first_seq.to_json()),
            ("last_seq", self.last_seq.to_json()),
            ("corrupt_spans", self.corrupt_spans.to_json()),
            ("torn_bytes", self.torn_bytes.to_json()),
        ])
    }
}

impl ToJson for CheckpointInfo {
    fn to_json(&self) -> Json {
        Json::obj([
            ("file", self.file.to_json()),
            ("bytes", self.bytes.to_json()),
            ("shard", u64::from(self.shard).to_json()),
            ("shards_total", u64::from(self.shards_total).to_json()),
            ("wal_seq", self.wal_seq.to_json()),
            ("epoch", self.epoch.to_json()),
            ("status", self.status.to_json()),
        ])
    }
}

impl ToJson for InspectReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("segments", Json::arr(self.segments.iter())),
            ("checkpoints", Json::arr(self.checkpoints.iter())),
            ("total_records", self.total_records().to_json()),
            ("total_damage", self.total_damage().to_json()),
        ])
    }
}

/// Scan a data directory read-only: every WAL segment is CRC-verified
/// record by record, every checkpoint part is read and verified. Nothing
/// is truncated, repaired, or deleted.
pub fn inspect(dir: &Path) -> io::Result<InspectReport> {
    let mut report = InspectReport::default();

    let wal_dir = dir.join("wal");
    if wal_dir.is_dir() {
        for path in segment_paths(&wal_dir)? {
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            let scan = scan_segment(&bytes);
            report.segments.push(SegmentInfo {
                file: file_name(&path),
                bytes: bytes.len() as u64,
                records: scan.entries.len() as u64,
                first_seq: scan.entries.first().map_or(0, |e| e.seq),
                last_seq: scan.entries.last().map_or(0, |e| e.seq),
                corrupt_spans: scan.corrupt_spans,
                torn_bytes: scan.torn_bytes,
            });
        }
    }

    let ckpt_dir = dir.join("ckpt");
    if ckpt_dir.is_dir() {
        let mut paths: Vec<_> = fs::read_dir(&ckpt_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
            .collect();
        // Newest set first, shards in order within a set.
        paths.sort_by_key(|p| {
            (
                std::cmp::Reverse(parse_part_seq(p).unwrap_or(0)),
                file_name(p),
            )
        });
        for path in paths {
            let bytes = fs::metadata(&path)?.len();
            let info = match read_part(&path) {
                Ok(rec) => CheckpointInfo {
                    file: file_name(&path),
                    bytes,
                    shard: rec.shard,
                    shards_total: rec.shards_total,
                    wal_seq: rec.wal_seq,
                    epoch: rec.epoch,
                    status: "ok".to_string(),
                },
                Err(e) => CheckpointInfo {
                    file: file_name(&path),
                    bytes,
                    shard: 0,
                    shards_total: 0,
                    wal_seq: parse_part_seq(&path).unwrap_or(0),
                    epoch: 0,
                    status: e.to_string(),
                },
            };
            report.checkpoints.push(info);
        }
    }

    Ok(report)
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FsyncPolicy, Store, StoreConfig};

    #[test]
    fn inspect_reports_segments_checkpoints_and_damage() {
        let dir = std::env::temp_dir().join(format!("ms-store-inspect-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cfg = StoreConfig::new(&dir).fsync(FsyncPolicy::Never);
        let (mut store, _) = Store::open(&cfg).unwrap();
        for i in 0..8u64 {
            store.wal.append(&i.to_le_bytes()).unwrap();
        }
        store.wal.sync().unwrap();
        store
            .checkpoints
            .write_set(4, 1, &[vec![1, 2], vec![3, 4]])
            .unwrap();

        let report = inspect(&dir).unwrap();
        assert_eq!(report.segments.len(), 1);
        assert_eq!(report.total_records(), 8);
        assert_eq!(report.segments[0].first_seq, 1);
        assert_eq!(report.segments[0].last_seq, 8);
        assert_eq!(report.checkpoints.len(), 2);
        assert!(report.checkpoints.iter().all(|c| c.status == "ok"));
        assert_eq!(report.total_damage(), 0);

        // Corrupt one checkpoint part; inspect must say so, not fix it.
        let victim = dir.join("ckpt").join(&report.checkpoints[0].file);
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&victim, &bytes).unwrap();
        let report = inspect(&dir).unwrap();
        assert_eq!(report.total_damage(), 1);
        assert!(report.checkpoints.iter().any(|c| c.status != "ok"));

        // JSON rendering includes the damage counters.
        let json = report.to_json().to_string_pretty();
        assert!(json.contains("\"total_damage\": 1"));
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Sealed cube segments on disk.
//!
//! The segment cube (DESIGN.md §Segment cube) partitions the ingest
//! stream into sealed segments, each carrying one precomputed summary per
//! family. A sealed segment is persisted here as one self-describing file
//! `seg/seg-<id:016x>.seg` holding a durable-framed [`SegmentRecord`] —
//! the same CRC-trailer contract as WAL records and checkpoint parts, so
//! a torn or bit-rotted segment is *detected and dropped*, never merged.
//!
//! Recovery keeps only the longest contiguous prefix of intact segments
//! (by batch seq). Anything after the first gap — a segment file lost in
//! a crash between seal and directory fsync — is discarded with a note
//! and rebuilt from the WAL tail, which the engine never prunes past the
//! last *persisted* segment's end seq.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use ms_core::{Wire, WireError, WireFrame, WireReader};

use crate::wal::sync_dir;

/// Frame tag of sealed-segment records.
pub const SEGMENT_TAG: u8 = 0x23;

/// One sealed segment: its coordinates in the stream plus a wire-encoded
/// summary per family (the store treats the summaries as opaque bytes;
/// the service layer knows the family order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRecord {
    /// Monotone segment id (0-based, contiguous per data dir).
    pub id: u64,
    /// First WAL/batch seq folded into this segment (1-based, inclusive).
    pub start_seq: u64,
    /// Last batch seq folded in (inclusive).
    pub end_seq: u64,
    /// Arrival time of the segment's first batch (engine clock, µs).
    pub start_micros: u64,
    /// Arrival time of the segment's last batch (engine clock, µs).
    pub end_micros: u64,
    /// Total items across the segment's batches.
    pub weight: u64,
    /// Number of batches folded in.
    pub batches: u64,
    /// Coarsening tier: 0 as originally sealed; a pressure-driven merge
    /// of two adjacent segments records `max(a,b)+1` (the service layer
    /// drives this — the store just persists it).
    pub tier: u64,
    /// One wire-encoded summary per family, in `SummaryKind::all()` order.
    pub summaries: Vec<Vec<u8>>,
}

impl Wire for SegmentRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.id.encode_into(out);
        self.start_seq.encode_into(out);
        self.end_seq.encode_into(out);
        self.start_micros.encode_into(out);
        self.end_micros.encode_into(out);
        self.weight.encode_into(out);
        self.batches.encode_into(out);
        self.tier.encode_into(out);
        self.summaries.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SegmentRecord {
            id: u64::decode_from(r)?,
            start_seq: u64::decode_from(r)?,
            end_seq: u64::decode_from(r)?,
            start_micros: u64::decode_from(r)?,
            end_micros: u64::decode_from(r)?,
            weight: u64::decode_from(r)?,
            batches: u64::decode_from(r)?,
            tier: u64::decode_from(r)?,
            summaries: Vec::decode_from(r)?,
        })
    }
}

/// Result of [`SegmentStore::load_all`].
#[derive(Debug, Default)]
pub struct LoadedSegments {
    /// Intact records forming a contiguous seq prefix, in id order.
    pub records: Vec<SegmentRecord>,
    /// Files discarded: CRC/decode failures, id/filename mismatches, or
    /// records after a contiguity gap.
    pub discarded: u64,
    /// Human-readable notes on what was discarded and why.
    pub notes: Vec<String>,
}

/// The sealed-segment side of a data directory.
pub struct SegmentStore {
    dir: PathBuf,
    sync: bool,
}

impl SegmentStore {
    /// Open (or create) the segment directory, clearing tmp leftovers
    /// from interrupted writes.
    pub fn open(dir: PathBuf, sync: bool) -> io::Result<SegmentStore> {
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|x| x == "tmp") {
                fs::remove_file(&path)?;
            }
        }
        Ok(SegmentStore { dir, sync })
    }

    /// Where this store keeps its files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persist one sealed segment atomically: tmp file, fsync (when the
    /// policy syncs), rename, directory fsync. Once this returns, the
    /// WAL records the segment covers may be pruned. Returns bytes
    /// written.
    pub fn write(&self, record: &SegmentRecord) -> io::Result<u64> {
        let frame = WireFrame {
            tag: SEGMENT_TAG,
            payload: record.encode(),
        };
        let bytes = frame.to_durable_bytes();
        let finals = self.segment_path(record.id);
        let tmp = finals.with_extension("tmp");
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&tmp)?;
        file.write_all(&bytes)?;
        if self.sync {
            file.sync_data()?;
        }
        drop(file);
        fs::rename(&tmp, &finals)?;
        if self.sync {
            sync_dir(&self.dir)?;
        }
        Ok(bytes.len() as u64)
    }

    /// Delete one sealed segment's file (cube eviction past `max_sealed`).
    /// Missing files are fine — eviction may race a crash that already
    /// lost the file.
    pub fn remove(&self, id: u64) -> io::Result<()> {
        match fs::remove_file(self.segment_path(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Load every intact segment, verify each fully, and keep the longest
    /// contiguous prefix by batch seq: the first gap (damaged or missing
    /// file) discards everything after it, because the cube must never
    /// answer a range with a silent hole in the middle.
    pub fn load_all(&self) -> io::Result<LoadedSegments> {
        let mut loaded = LoadedSegments::default();
        let mut files: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|x| x == "seg") {
                if let Some(id) = parse_segment_id(&path) {
                    files.push((id, path));
                }
            }
        }
        files.sort_by_key(|(id, _)| *id);

        let mut records: Vec<SegmentRecord> = Vec::new();
        for (id, path) in files {
            match read_segment(&path) {
                Ok(record) if record.id != id => {
                    loaded.discarded += 1;
                    loaded.notes.push(format!(
                        "{}: record id {} contradicts filename",
                        path.display(),
                        record.id
                    ));
                }
                Ok(record) => records.push(record),
                Err(why) => {
                    loaded.discarded += 1;
                    loaded
                        .notes
                        .push(format!("{}: segment discarded: {why}", path.display()));
                }
            }
        }

        // Contiguity: each kept record must continue exactly where the
        // previous one ended. The first break truncates the prefix. Ids
        // need only strictly increase — coarsening merges adjacent
        // segments under the older id and evicts the younger, leaving id
        // gaps while seq coverage stays gapless.
        let mut keep = 0usize;
        for (i, record) in records.iter().enumerate() {
            let contiguous = match i.checked_sub(1).map(|p| &records[p]) {
                Some(prev) => record.id > prev.id && record.start_seq == prev.end_seq + 1,
                None => record.start_seq >= 1,
            } && record.start_seq <= record.end_seq;
            if !contiguous {
                break;
            }
            keep = i + 1;
        }
        if keep < records.len() {
            let dropped = records.len() - keep;
            loaded.discarded += dropped as u64;
            loaded.notes.push(format!(
                "segment contiguity gap after id {}: {} later segment(s) dropped \
                 (rebuilt from the WAL tail)",
                records.get(keep.wrapping_sub(1)).map_or(0, |r| r.id),
                dropped
            ));
            records.truncate(keep);
        }
        loaded.records = records;
        Ok(loaded)
    }

    fn segment_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("seg-{id:016x}.seg"))
    }
}

/// The id encoded in a segment filename, if it parses.
fn parse_segment_id(path: &Path) -> Option<u64> {
    let name = path.file_stem()?.to_str()?.strip_prefix("seg-")?;
    u64::from_str_radix(name, 16).ok()
}

/// Read and fully verify one segment file.
fn read_segment(path: &Path) -> Result<SegmentRecord, WireError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|_| WireError::Truncated)?;
    let mut r = WireReader::new(&bytes);
    let frame = WireFrame::read_durable(&mut r)?;
    if frame.tag != SEGMENT_TAG {
        return Err(WireError::BadTag(frame.tag));
    }
    if r.pos() != bytes.len() {
        return Err(WireError::Malformed("trailing bytes after segment record"));
    }
    frame.value::<SegmentRecord>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> SegmentStore {
        let dir = std::env::temp_dir().join(format!("ms-store-seg-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SegmentStore::open(dir, false).unwrap()
    }

    fn cleanup(store: &SegmentStore) {
        let _ = fs::remove_dir_all(store.dir());
    }

    fn record(id: u64, start_seq: u64, end_seq: u64) -> SegmentRecord {
        SegmentRecord {
            id,
            start_seq,
            end_seq,
            start_micros: id * 1_000,
            end_micros: id * 1_000 + 999,
            weight: (end_seq - start_seq + 1) * 100,
            batches: end_seq - start_seq + 1,
            tier: 0,
            summaries: vec![vec![id as u8; 8]; 4],
        }
    }

    #[test]
    fn write_then_load_roundtrip() {
        let store = temp_store("roundtrip");
        for rec in [record(0, 1, 8), record(1, 9, 16), record(2, 17, 20)] {
            store.write(&rec).unwrap();
        }
        let loaded = store.load_all().unwrap();
        assert_eq!(loaded.discarded, 0, "{:?}", loaded.notes);
        assert_eq!(loaded.records.len(), 3);
        assert_eq!(loaded.records[2], record(2, 17, 20));
        cleanup(&store);
    }

    #[test]
    fn damaged_newest_is_dropped_and_noted() {
        let store = temp_store("damaged");
        store.write(&record(0, 1, 8)).unwrap();
        store.write(&record(1, 9, 16)).unwrap();
        let victim = store.segment_path(1);
        let len = fs::metadata(&victim).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&victim)
            .unwrap()
            .set_len(len / 2)
            .unwrap();
        let loaded = store.load_all().unwrap();
        assert_eq!(loaded.discarded, 1);
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.records[0].id, 0);
        assert!(loaded.notes[0].contains("discarded"), "{:?}", loaded.notes);
        cleanup(&store);
    }

    #[test]
    fn gap_in_the_middle_truncates_the_prefix() {
        let store = temp_store("gap");
        for rec in [record(0, 1, 8), record(1, 9, 16), record(2, 17, 20)] {
            store.write(&rec).unwrap();
        }
        fs::remove_file(store.segment_path(1)).unwrap();
        let loaded = store.load_all().unwrap();
        // Segment 2 is intact but unreachable past the hole: dropped.
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.records[0].id, 0);
        assert_eq!(loaded.discarded, 1);
        assert!(
            loaded.notes.iter().any(|n| n.contains("contiguity gap")),
            "{:?}",
            loaded.notes
        );
        cleanup(&store);
    }

    #[test]
    fn coarsened_id_gaps_load_when_seqs_stay_contiguous() {
        // Coarsening merges ids 0 and 1 under id 0 and evicts id 1: the
        // surviving files have an id gap but gapless seq coverage.
        let store = temp_store("coarse-gap");
        let mut merged = record(0, 1, 16);
        merged.tier = 1;
        for rec in [merged.clone(), record(2, 17, 20), record(5, 21, 30)] {
            store.write(&rec).unwrap();
        }
        let loaded = store.load_all().unwrap();
        assert_eq!(loaded.discarded, 0, "{:?}", loaded.notes);
        assert_eq!(loaded.records.len(), 3);
        assert_eq!(loaded.records[0], merged);
        assert_eq!(loaded.records[0].tier, 1);
        assert_eq!(loaded.records[2].id, 5);
        cleanup(&store);
    }

    #[test]
    fn filename_id_mismatch_rejects_the_file() {
        let store = temp_store("rename");
        store.write(&record(0, 1, 8)).unwrap();
        fs::rename(store.segment_path(0), store.segment_path(7)).unwrap();
        let loaded = store.load_all().unwrap();
        assert!(loaded.records.is_empty());
        assert_eq!(loaded.discarded, 1);
        assert!(loaded.notes[0].contains("contradicts filename"));
        cleanup(&store);
    }

    #[test]
    fn remove_is_idempotent() {
        let store = temp_store("remove");
        store.write(&record(0, 1, 4)).unwrap();
        store.remove(0).unwrap();
        store.remove(0).unwrap();
        assert!(store.load_all().unwrap().records.is_empty());
        cleanup(&store);
    }

    #[test]
    fn record_wire_roundtrip() {
        let rec = record(3, 21, 40);
        assert_eq!(SegmentRecord::decode(&rec.encode()).unwrap(), rec);
    }
}

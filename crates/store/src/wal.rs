//! Segment-based write-ahead log of opaque payloads (the service logs one
//! encoded ingest batch per record).
//!
//! A record on disk is `WireFrame { tag: WAL_RECORD_TAG, payload:
//! (seq, bytes) }` in durable (CRC-trailered) form. Appends go to the
//! newest segment; segments rotate at a size threshold so checkpointing
//! can delete whole covered files. The scanner never trusts a record that
//! fails verification: terminal damage is measured as a torn tail (the
//! opener truncates it), interior damage is skipped by resynchronizing on
//! the frame magic and counted — callers must surface that count.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use ms_core::wire::{put_varint, WIRE_MAGIC, WIRE_VERSION};
use ms_core::{crc32, Wire, WireError, WireFrame, WireReader};

use crate::StoreConfig;

/// Frame tag of WAL batch records.
pub const WAL_RECORD_TAG: u8 = 0x20;

/// One valid WAL record: its sequence number and opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Strictly-increasing record sequence number (1-based).
    pub seq: u64,
    /// The payload as handed to [`Wal::append`].
    pub payload: Vec<u8>,
}

/// What one segment file holds, after CRC verification of every record.
#[derive(Debug, Default)]
pub struct SegmentScan {
    /// Every record that verified, in file order.
    pub entries: Vec<WalEntry>,
    /// File length in bytes (before any truncation).
    pub bytes: u64,
    /// Interior damaged spans skipped via magic resynchronization.
    pub corrupt_spans: u64,
    /// Unrecoverable bytes at the end of the file (no valid record
    /// follows the damage). A plain torn write lands here.
    pub torn_bytes: u64,
    /// Byte offset where the terminal damage begins (== `bytes` when the
    /// file is clean); the safe truncation point.
    pub valid_end: u64,
    /// The error that started the terminal damage, if any. `Truncated`
    /// is the ordinary torn-write artifact; anything else is corruption.
    pub tail_error: Option<WireError>,
}

/// Scan one segment's bytes, verifying every record trailer.
///
/// On damage the scanner searches forward for the next offset where a
/// complete record verifies (frame magic + CRC); if found, the skipped
/// span counts as corrupt and scanning resumes — if not, the remainder is
/// the torn tail.
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut scan = SegmentScan {
        bytes: bytes.len() as u64,
        valid_end: bytes.len() as u64,
        ..SegmentScan::default()
    };
    let mut pos = 0usize;
    while pos < bytes.len() {
        match read_record(&bytes[pos..]) {
            Ok((entry, consumed)) => {
                scan.entries.push(entry);
                pos += consumed;
            }
            Err(e) => match resync(bytes, pos + 1) {
                Some(next) => {
                    scan.corrupt_spans += 1;
                    if scan.tail_error.is_none() {
                        scan.tail_error = Some(e);
                    }
                    pos = next;
                }
                None => {
                    scan.torn_bytes = (bytes.len() - pos) as u64;
                    scan.valid_end = pos as u64;
                    scan.tail_error = Some(e);
                    return scan;
                }
            },
        }
    }
    scan.tail_error = None;
    scan
}

/// Parse + verify one record at the front of `bytes`; returns the entry
/// and how many bytes it consumed.
fn read_record(bytes: &[u8]) -> Result<(WalEntry, usize), WireError> {
    let mut r = WireReader::new(bytes);
    let frame = WireFrame::read_durable(&mut r)?;
    if frame.tag != WAL_RECORD_TAG {
        return Err(WireError::BadTag(frame.tag));
    }
    let (seq, payload) = <(u64, Vec<u8>)>::decode(&frame.payload)?;
    Ok((WalEntry { seq, payload }, r.pos()))
}

/// Find the next offset ≥ `from` where a complete record verifies.
fn resync(bytes: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i + 1 < bytes.len() {
        if bytes[i] == b'M' && bytes[i + 1] == b'S' && read_record(&bytes[i..]).is_ok() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Statistics one append reports back (the service feeds them into its
/// telemetry counters).
#[derive(Debug, Clone, Copy)]
pub struct WalAppend {
    /// The sequence number assigned to the record.
    pub seq: u64,
    /// Bytes written (frame + trailer).
    pub bytes: u64,
    /// Whether this append fsynced the segment.
    pub synced: bool,
}

/// Aggregate statistics of one [`Wal::append_group`] call.
#[derive(Debug, Clone, Copy)]
pub struct GroupAppend {
    /// Sequence number of the first record in the group.
    pub first_seq: u64,
    /// Records appended.
    pub records: u64,
    /// Total bytes written (frames + trailers).
    pub bytes: u64,
    /// Whether the group ended with an fsync covering every record in it.
    pub synced: bool,
}

/// The append side of the log.
pub struct Wal {
    dir: PathBuf,
    segment_bytes: u64,
    fsync: crate::FsyncPolicy,
    /// Current segment; opened lazily on the first append.
    file: Option<File>,
    /// Bytes in the current segment.
    seg_len: u64,
    /// First seq of the current segment (names the file).
    seg_start: u64,
    next_seq: u64,
    appends_since_sync: u64,
    /// Reused per-record encode buffer: steady-state appends allocate
    /// nothing.
    scratch: Vec<u8>,
}

/// Encode one durable WAL record into `out` (cleared first), byte-for-byte
/// identical to `WireFrame { tag: WAL_RECORD_TAG, payload: (seq,
/// payload.to_vec()).encode() }.to_durable_bytes()` but with zero
/// intermediate allocations. `wal_scratch_encoding_matches_wire_frame`
/// pins the equivalence.
fn encode_record_into(out: &mut Vec<u8>, seq: u64, payload: &[u8]) {
    out.clear();
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(WAL_RECORD_TAG);
    let len_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    put_varint(out, seq);
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    let body_len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
    let frame_len = out.len() as u32;
    out.extend_from_slice(&frame_len.to_le_bytes());
    let crc = crc32(&out[..frame_len as usize]);
    out.extend_from_slice(&crc.to_le_bytes());
}

impl Wal {
    /// Scan `cfg.dir/wal`, truncate the last segment's torn tail, and
    /// return the log positioned to append after the highest valid seq,
    /// together with every segment's scan (for the recovery report).
    pub(crate) fn open(cfg: &StoreConfig) -> io::Result<(Wal, Vec<(PathBuf, SegmentScan)>)> {
        let dir = cfg.dir.join("wal");
        fs::create_dir_all(&dir)?;
        let paths = segment_paths(&dir)?;
        let mut scans = Vec::with_capacity(paths.len());
        for path in paths {
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            scans.push((path, scan_segment(&bytes)));
        }
        // The torn tail of the *last* segment is the normal crash artifact:
        // truncate it so later appends continue from a verified prefix.
        // Earlier segments are history; they are only ever read.
        if let Some((path, scan)) = scans.last() {
            if scan.torn_bytes > 0 {
                OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(scan.valid_end)?;
            }
        }
        let next_seq = scans
            .iter()
            .flat_map(|(_, s)| s.entries.iter().map(|e| e.seq))
            .max()
            .unwrap_or(0)
            + 1;
        // Resume appending into the last segment only when it is fully
        // clean (after tail truncation) and under the rotation threshold;
        // otherwise the first append starts a fresh segment.
        let resume = scans.last().and_then(|(path, scan)| {
            let clean = scan.corrupt_spans == 0;
            (clean && scan.valid_end < cfg.segment_bytes).then(|| (path.clone(), scan))
        });
        let (file, seg_len, seg_start) = match resume {
            Some((path, scan)) => {
                let file = OpenOptions::new().append(true).open(&path)?;
                let start = parse_segment_start(&path).unwrap_or(next_seq);
                (Some(file), scan.valid_end, start)
            }
            None => (None, 0, next_seq),
        };
        Ok((
            Wal {
                dir,
                segment_bytes: cfg.segment_bytes,
                fsync: cfg.fsync,
                file,
                seg_len,
                seg_start,
                next_seq,
                appends_since_sync: 0,
                scratch: Vec::new(),
            },
            scans,
        ))
    }

    /// The seq the next append will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The seq of the last appended record (0 when the log is empty).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Append one payload as the next record, rotating and fsyncing per
    /// policy. The record is durable (per the policy) when this returns.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<WalAppend> {
        let seq = self.next_seq;
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_record_into(&mut scratch, seq, payload);
        let written = self.write_record(&scratch);
        let bytes = scratch.len() as u64;
        self.scratch = scratch;
        written?;
        self.appends_since_sync += 1;
        let synced = match self.fsync {
            crate::FsyncPolicy::Always => true,
            crate::FsyncPolicy::EveryN(n) => self.appends_since_sync >= n,
            crate::FsyncPolicy::Never => false,
        };
        if synced {
            self.sync()?;
        }
        Ok(WalAppend { seq, bytes, synced })
    }

    /// Append a batch of payloads as consecutive records with **one**
    /// fsync decision covering the whole group — the group-commit
    /// primitive. Policy semantics are preserved exactly: `always` means
    /// every record in the group is fsynced before this returns (one
    /// fsync amortized over the group instead of one per record), and
    /// `every:N` counts individual records, so the loss window never
    /// widens beyond N batches.
    pub fn append_group(&mut self, payloads: &[Vec<u8>]) -> io::Result<GroupAppend> {
        let first_seq = self.next_seq;
        let mut total = 0u64;
        let mut scratch = std::mem::take(&mut self.scratch);
        for payload in payloads {
            encode_record_into(&mut scratch, self.next_seq, payload);
            if let Err(e) = self.write_record(&scratch) {
                self.scratch = scratch;
                return Err(e);
            }
            total += scratch.len() as u64;
        }
        self.scratch = scratch;
        self.appends_since_sync += payloads.len() as u64;
        let synced = match self.fsync {
            crate::FsyncPolicy::Always => !payloads.is_empty(),
            crate::FsyncPolicy::EveryN(n) => self.appends_since_sync >= n,
            crate::FsyncPolicy::Never => false,
        };
        if synced {
            self.sync()?;
        }
        Ok(GroupAppend {
            first_seq,
            records: payloads.len() as u64,
            bytes: total,
            synced,
        })
    }

    /// Write one pre-encoded record: rotate if needed, open the segment
    /// lazily, advance `next_seq`. Fsync accounting is the caller's job.
    fn write_record(&mut self, bytes: &[u8]) -> io::Result<()> {
        let seq = self.next_seq;
        if self.file.is_some() && self.seg_len + bytes.len() as u64 > self.segment_bytes {
            self.rotate()?;
        }
        let file = match self.file.as_mut() {
            Some(f) => f,
            None => {
                self.seg_start = seq;
                self.seg_len = 0;
                self.file = Some(create_segment(&self.dir, seq)?);
                self.file.as_mut().expect("just created")
            }
        };
        file.write_all(bytes)?;
        self.seg_len += bytes.len() as u64;
        self.next_seq += 1;
        Ok(())
    }

    /// fsync the current segment now, regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(file) = self.file.as_mut() {
            file.sync_data()?;
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Close the current segment (fsynced unless the policy is `never`)
    /// and start the next one on the following append.
    fn rotate(&mut self) -> io::Result<()> {
        if self.fsync.syncs() {
            self.sync()?;
            // Make the finished segment's directory entry durable too.
            sync_dir(&self.dir)?;
        }
        self.file = None;
        Ok(())
    }

    /// Delete segments every record of which has seq ≤ `covered_seq`
    /// (they are fully covered by a retained checkpoint). The live
    /// segment is never deleted. Returns how many files were removed.
    pub fn prune_covered(&mut self, covered_seq: u64) -> io::Result<u64> {
        let paths = segment_paths(&self.dir)?;
        let mut removed = 0u64;
        for window in paths.windows(2) {
            let (path, next) = (&window[0], &window[1]);
            // A segment's records all precede the next segment's first seq.
            let next_start = match parse_segment_start(next) {
                Some(s) => s,
                None => continue,
            };
            let live = self.file.is_some() && parse_segment_start(path) == Some(self.seg_start);
            if !live && next_start <= covered_seq + 1 {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        if removed > 0 && self.fsync.syncs() {
            sync_dir(&self.dir)?;
        }
        Ok(removed)
    }
}

/// Segment files under `dir`, sorted by name (== by first seq: the hex
/// names are zero-padded).
pub(crate) fn segment_paths(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "seg")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

/// First seq encoded in a segment filename (`wal-<seq:016x>.seg`).
pub(crate) fn parse_segment_start(path: &Path) -> Option<u64> {
    let name = path.file_stem()?.to_str()?;
    u64::from_str_radix(name.strip_prefix("wal-")?, 16).ok()
}

fn create_segment(dir: &Path, first_seq: u64) -> io::Result<File> {
    let path = dir.join(format!("wal-{first_seq:016x}.seg"));
    OpenOptions::new().create(true).append(true).open(path)
}

/// fsync a directory so renames and new files within it are durable.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FsyncPolicy, StoreConfig};

    fn temp_cfg(tag: &str) -> StoreConfig {
        let dir = std::env::temp_dir().join(format!("ms-store-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        StoreConfig::new(dir)
    }

    fn cleanup(cfg: &StoreConfig) {
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn wal_scratch_encoding_matches_wire_frame() {
        // The hand-assembled record (zero-allocation path) must stay
        // byte-identical to the WireFrame reference encoding — the
        // on-disk format the golden corpus and the scanner both pin.
        for (seq, payload) in [
            (1u64, vec![]),
            (127, vec![0xAB; 3]),
            (128, (0..200).collect::<Vec<u8>>()),
            (u64::MAX, vec![1, 2, 3]),
        ] {
            let reference = WireFrame {
                tag: WAL_RECORD_TAG,
                payload: (seq, payload.clone()).encode(),
            }
            .to_durable_bytes();
            let mut fast = vec![0xFF; 7]; // pre-dirtied: must be cleared
            encode_record_into(&mut fast, seq, &payload);
            assert_eq!(fast, reference, "seq {seq}");
        }
    }

    #[test]
    fn group_append_matches_individual_appends_on_disk() {
        let cfg_one = temp_cfg("group-one").fsync(FsyncPolicy::Never);
        let cfg_grp = temp_cfg("group-grp").fsync(FsyncPolicy::Never);
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; (i as usize) + 1]).collect();
        let (mut one, _) = Wal::open(&cfg_one).unwrap();
        for p in &payloads {
            one.append(p).unwrap();
        }
        let (mut grp, _) = Wal::open(&cfg_grp).unwrap();
        let g = grp.append_group(&payloads).unwrap();
        assert_eq!((g.first_seq, g.records), (1, 10));
        assert_eq!(grp.last_seq(), one.last_seq());
        drop((one, grp));
        let seg = |cfg: &StoreConfig| {
            let path = segment_paths(&cfg.dir.join("wal")).unwrap().pop().unwrap();
            fs::read(path).unwrap()
        };
        assert_eq!(seg(&cfg_one), seg(&cfg_grp), "identical bytes on disk");
        cleanup(&cfg_one);
        cleanup(&cfg_grp);
    }

    #[test]
    fn group_append_fsync_policies() {
        // always: one fsync covers the whole group.
        let cfg = temp_cfg("group-always").fsync(FsyncPolicy::Always);
        let (mut wal, _) = Wal::open(&cfg).unwrap();
        let g = wal.append_group(&[vec![1], vec![2], vec![3]]).unwrap();
        assert!(g.synced);
        assert_eq!(wal.appends_since_sync, 0);
        cleanup(&cfg);

        // every:N counts records, not groups: a 3-record group against
        // every:4 leaves the counter at 3; the next group crosses it.
        let cfg = temp_cfg("group-everyn").fsync(FsyncPolicy::EveryN(4));
        let (mut wal, _) = Wal::open(&cfg).unwrap();
        assert!(
            !wal.append_group(&[vec![1], vec![2], vec![3]])
                .unwrap()
                .synced
        );
        assert!(wal.append_group(&[vec![4], vec![5]]).unwrap().synced);
        assert_eq!(wal.appends_since_sync, 0);
        cleanup(&cfg);

        // empty group is a no-op.
        let cfg = temp_cfg("group-empty").fsync(FsyncPolicy::Always);
        let (mut wal, _) = Wal::open(&cfg).unwrap();
        let g = wal.append_group(&[]).unwrap();
        assert_eq!((g.records, g.bytes, g.synced), (0, 0, false));
        cleanup(&cfg);
    }

    #[test]
    fn append_scan_roundtrip_across_segments() {
        let cfg = temp_cfg("roundtrip").segment_bytes(256);
        let (mut wal, scans) = Wal::open(&cfg).unwrap();
        assert!(scans.is_empty());
        for i in 0..40u64 {
            let appended = wal.append(&i.to_le_bytes()).unwrap();
            assert_eq!(appended.seq, i + 1);
        }
        wal.sync().unwrap();
        assert_eq!(wal.last_seq(), 40);

        let (wal2, scans) = Wal::open(&cfg).unwrap();
        assert!(scans.len() > 1, "256-byte segments must have rotated");
        let entries: Vec<WalEntry> = scans.iter().flat_map(|(_, s)| s.entries.clone()).collect();
        assert_eq!(entries.len(), 40);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.seq, i as u64 + 1);
            assert_eq!(e.payload, (i as u64).to_le_bytes());
        }
        assert_eq!(wal2.next_seq(), 41);
        for (_, s) in &scans {
            assert_eq!(s.corrupt_spans, 0);
            assert_eq!(s.torn_bytes, 0);
        }
        cleanup(&cfg);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let cfg = temp_cfg("torn").fsync(FsyncPolicy::Never);
        let (mut wal, _) = Wal::open(&cfg).unwrap();
        for i in 0..10u64 {
            wal.append(&[i as u8; 16]).unwrap();
        }
        drop(wal);
        // Tear the last record: cut a few bytes off the file.
        let path = segment_paths(&cfg.dir.join("wal")).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        let (mut wal, scans) = Wal::open(&cfg).unwrap();
        let scan = &scans[0].1;
        assert_eq!(scan.entries.len(), 9, "the torn record must not survive");
        assert!(scan.torn_bytes > 0);
        assert_eq!(scan.tail_error, Some(WireError::Truncated));
        // The file was truncated to the valid prefix.
        assert_eq!(fs::metadata(&path).unwrap().len(), scan.valid_end);
        // Appends continue after the highest surviving seq.
        assert_eq!(wal.append(&[0xAB]).unwrap().seq, 10);
        drop(wal);
        let (_, scans) = Wal::open(&cfg).unwrap();
        let seqs: Vec<u64> = scans
            .iter()
            .flat_map(|(_, s)| s.entries.iter().map(|e| e.seq))
            .collect();
        assert_eq!(seqs, (1..=10).collect::<Vec<u64>>());
        cleanup(&cfg);
    }

    #[test]
    fn interior_bit_flip_is_skipped_via_resync_and_counted() {
        let cfg = temp_cfg("flip").fsync(FsyncPolicy::Never);
        let (mut wal, _) = Wal::open(&cfg).unwrap();
        let mut offsets = vec![0u64];
        for i in 0..5u64 {
            let a = wal.append(&[i as u8; 32]).unwrap();
            offsets.push(offsets.last().unwrap() + a.bytes);
        }
        drop(wal);
        let path = segment_paths(&cfg.dir.join("wal")).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload bit in the middle (third) record.
        let mid = (offsets[2] + offsets[3]) / 2;
        bytes[mid as usize] ^= 0x10;
        fs::write(&path, &bytes).unwrap();

        let scan = scan_segment(&fs::read(&path).unwrap());
        assert_eq!(scan.corrupt_spans, 1, "the flipped record is damage");
        assert_eq!(scan.torn_bytes, 0);
        let seqs: Vec<u64> = scan.entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 4, 5], "resync must recover records 4–5");
        cleanup(&cfg);
    }

    #[test]
    fn fsync_policies_sync_when_promised() {
        let cfg = temp_cfg("fsync").fsync(FsyncPolicy::EveryN(3));
        let (mut wal, _) = Wal::open(&cfg).unwrap();
        let synced: Vec<bool> = (0..7).map(|_| wal.append(b"x").unwrap().synced).collect();
        assert_eq!(synced, vec![false, false, true, false, false, true, false]);
        drop(wal);

        let cfg = temp_cfg("fsync-always").fsync(FsyncPolicy::Always);
        let (mut wal, _) = Wal::open(&cfg).unwrap();
        assert!(wal.append(b"x").unwrap().synced);
        cleanup(&cfg);
    }

    #[test]
    fn prune_removes_only_fully_covered_segments() {
        let cfg = temp_cfg("prune")
            .segment_bytes(128)
            .fsync(FsyncPolicy::Never);
        let (mut wal, _) = Wal::open(&cfg).unwrap();
        for i in 0..30u64 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        let dir = cfg.dir.join("wal");
        let before = segment_paths(&dir).unwrap().len();
        assert!(before >= 3);
        wal.prune_covered(0).unwrap();
        assert_eq!(
            segment_paths(&dir).unwrap().len(),
            before,
            "nothing covered"
        );
        wal.prune_covered(30).unwrap();
        let after = segment_paths(&dir).unwrap();
        assert!(after.len() < before, "covered segments must go");
        // Every surviving record is still intact and the tail survives:
        // the newest segment (live) is never deleted.
        let (_, scans) = Wal::open(&cfg).unwrap();
        let last = scans
            .iter()
            .flat_map(|(_, s)| s.entries.iter().map(|e| e.seq))
            .max()
            .unwrap();
        assert_eq!(last, 30);
        cleanup(&cfg);
    }

    #[test]
    fn duplicate_seqs_across_reopen_are_reported_by_store_open() {
        // Hand-craft a segment holding a duplicated seq: the recovery
        // layer must apply it once (idempotent replay).
        let cfg = temp_cfg("dup");
        let dir = cfg.dir.join("wal");
        fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        for seq in [1u64, 2, 2, 3] {
            let frame = WireFrame {
                tag: WAL_RECORD_TAG,
                payload: (seq, vec![seq as u8]).encode(),
            };
            bytes.extend_from_slice(&frame.to_durable_bytes());
        }
        fs::write(dir.join("wal-0000000000000001.seg"), &bytes).unwrap();
        let (_, recovery) = crate::Store::open(&cfg).unwrap();
        assert_eq!(recovery.duplicates, 1);
        assert_eq!(
            recovery.tail.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        cleanup(&cfg);
    }
}

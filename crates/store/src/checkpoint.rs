//! Per-shard checkpoint sets.
//!
//! A checkpoint is one file per shard, `ckpt-<wal-seq:016x>-<shard:04x>
//! .ckpt`, each holding a durable-framed [`CheckpointRecord`]. The wal-seq
//! in the name is the cut: every WAL record with seq ≤ wal-seq is folded
//! into the set, so recovery replays only the newer tail.
//!
//! Writes are atomic per file (tmp + rename, fsync'd when the store's
//! policy syncs). A set is only *used* when every shard's file is present
//! and verifies; a damaged or incomplete set is discarded with a note and
//! the loader falls back to the next-newest — mergeability (PODS'12,
//! Definition 1) guarantees the older summary merges back with the same
//! error bound, so falling back costs replay time, not accuracy.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use ms_core::{Wire, WireError, WireFrame, WireReader};

use crate::wal::sync_dir;

/// Frame tag of checkpoint records.
pub const CHECKPOINT_TAG: u8 = 0x21;

/// One shard's checkpointed summary plus the metadata that makes the
/// file self-describing (the filename alone is never trusted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Which shard this part belongs to.
    pub shard: u32,
    /// How many shards the full set has.
    pub shards_total: u32,
    /// The WAL cut: records with seq ≤ this are folded in.
    pub wal_seq: u64,
    /// Engine epoch at checkpoint time (monotone per data dir).
    pub epoch: u64,
    /// The shard summary, already wire-encoded by the service.
    pub summary: Vec<u8>,
}

impl Wire for CheckpointRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.shard.encode_into(out);
        self.shards_total.encode_into(out);
        self.wal_seq.encode_into(out);
        self.epoch.encode_into(out);
        self.summary.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CheckpointRecord {
            shard: u32::decode_from(r)?,
            shards_total: u32::decode_from(r)?,
            wal_seq: u64::decode_from(r)?,
            epoch: u64::decode_from(r)?,
            summary: Vec::<u8>::decode_from(r)?,
        })
    }
}

/// A complete, fully-verified checkpoint set, `parts` indexed by shard.
#[derive(Debug, Clone)]
pub struct CheckpointSet {
    /// WAL cut the set covers.
    pub wal_seq: u64,
    /// Engine epoch stamped at write time.
    pub epoch: u64,
    /// One encoded summary per shard.
    pub parts: Vec<Vec<u8>>,
}

/// Result of [`CheckpointStore::load_newest`].
#[derive(Debug, Default)]
pub struct LoadedCheckpoint {
    /// The newest set in which every part verified, if any.
    pub newest: Option<CheckpointSet>,
    /// Files discarded: CRC/decode failures, metadata that contradicts
    /// the filename, or members of an incomplete set.
    pub discarded: u64,
    /// Human-readable notes on what was discarded and why.
    pub notes: Vec<String>,
}

/// The checkpoint side of a data directory.
pub struct CheckpointStore {
    dir: PathBuf,
    sync: bool,
}

impl CheckpointStore {
    /// Open (or create) the checkpoint directory, clearing tmp leftovers
    /// from interrupted writes.
    pub fn open(dir: PathBuf, sync: bool) -> io::Result<CheckpointStore> {
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|x| x == "tmp") {
                fs::remove_file(&path)?;
            }
        }
        Ok(CheckpointStore { dir, sync })
    }

    /// Where this store keeps its files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write a full set atomically: each part goes to a tmp file, is
    /// fsync'd (when the policy syncs), then renamed into place; the
    /// directory is fsync'd last. Returns total bytes written.
    pub fn write_set(&self, wal_seq: u64, epoch: u64, parts: &[Vec<u8>]) -> io::Result<u64> {
        let shards_total = parts.len() as u32;
        let mut bytes_written = 0u64;
        for (shard, summary) in parts.iter().enumerate() {
            let record = CheckpointRecord {
                shard: shard as u32,
                shards_total,
                wal_seq,
                epoch,
                summary: summary.clone(),
            };
            let frame = WireFrame {
                tag: CHECKPOINT_TAG,
                payload: record.encode(),
            };
            let bytes = frame.to_durable_bytes();
            let finals = self.part_path(wal_seq, shard as u32);
            let tmp = finals.with_extension("tmp");
            let mut file = OpenOptions::new()
                .create(true)
                .truncate(true)
                .write(true)
                .open(&tmp)?;
            file.write_all(&bytes)?;
            if self.sync {
                file.sync_data()?;
            }
            drop(file);
            fs::rename(&tmp, &finals)?;
            bytes_written += bytes.len() as u64;
        }
        if self.sync {
            sync_dir(&self.dir)?;
        }
        Ok(bytes_written)
    }

    /// Load the newest set in which every shard's part is present and
    /// verifies; damaged or incomplete sets are discarded with a note.
    pub fn load_newest(&self) -> io::Result<LoadedCheckpoint> {
        let mut loaded = LoadedCheckpoint::default();
        // Group part files by the wal-seq in their name, newest first.
        let mut sets: Vec<(u64, Vec<PathBuf>)> = Vec::new();
        for (seq, path) in self.part_files()? {
            match sets.iter_mut().find(|(s, _)| *s == seq) {
                Some((_, paths)) => paths.push(path),
                None => sets.push((seq, vec![path])),
            }
        }
        sets.sort_by_key(|set| std::cmp::Reverse(set.0));
        for (seq, paths) in sets {
            match self.load_set(seq, &paths) {
                Ok(set) if loaded.newest.is_none() => loaded.newest = Some(set),
                Ok(_) => {} // older intact set kept for pruning, not loaded
                Err(why) => {
                    loaded.discarded += paths.len() as u64;
                    loaded
                        .notes
                        .push(format!("checkpoint set {seq:#x} discarded: {why}"));
                }
            }
        }
        Ok(loaded)
    }

    /// Read and verify every part of one set; any failure rejects the
    /// whole set (a partial merge would silently lose shards).
    fn load_set(&self, wal_seq: u64, paths: &[PathBuf]) -> Result<CheckpointSet, String> {
        let mut parts: Vec<Option<(CheckpointRecord, PathBuf)>> = Vec::new();
        let mut shards_total: Option<u32> = None;
        let mut epoch = 0u64;
        for path in paths {
            let record = read_part(path).map_err(|e| format!("{}: {e}", path.display()))?;
            if record.wal_seq != wal_seq {
                return Err(format!(
                    "{}: wal_seq {:#x} contradicts filename",
                    path.display(),
                    record.wal_seq
                ));
            }
            match shards_total {
                None => shards_total = Some(record.shards_total),
                Some(t) if t != record.shards_total => {
                    return Err(format!("{}: inconsistent shard count", path.display()));
                }
                Some(_) => {}
            }
            let shard = record.shard as usize;
            if parts.len() <= shard {
                parts.resize_with(shard + 1, || None);
            }
            if parts[shard].is_some() {
                return Err(format!("{}: duplicate shard {shard}", path.display()));
            }
            epoch = record.epoch;
            parts[shard] = Some((record, path.clone()));
        }
        let total = shards_total.unwrap_or(0) as usize;
        if parts.len() != total || parts.iter().any(|p| p.is_none()) {
            return Err(format!(
                "incomplete set: {} of {total} shard file(s) present",
                parts.iter().flatten().count()
            ));
        }
        Ok(CheckpointSet {
            wal_seq,
            epoch,
            parts: parts
                .into_iter()
                .map(|p| p.expect("checked complete").0.summary)
                .collect(),
        })
    }

    /// Delete all but the `keep` newest sets (by wal-seq in the name).
    /// Returns the smallest retained wal-seq, which bounds how far the
    /// WAL may be pruned.
    pub fn prune_keep(&self, keep: usize) -> io::Result<Option<u64>> {
        let mut seqs: Vec<u64> = self.part_files()?.into_iter().map(|(s, _)| s).collect();
        seqs.sort_unstable();
        seqs.dedup();
        if seqs.len() <= keep {
            return Ok(seqs.first().copied());
        }
        let cut = seqs.len() - keep;
        let (drop_seqs, keep_seqs) = seqs.split_at(cut);
        for (seq, path) in self.part_files()? {
            if drop_seqs.contains(&seq) {
                fs::remove_file(&path)?;
            }
        }
        if self.sync {
            sync_dir(&self.dir)?;
        }
        Ok(keep_seqs.first().copied())
    }

    fn part_path(&self, wal_seq: u64, shard: u32) -> PathBuf {
        self.dir
            .join(format!("ckpt-{wal_seq:016x}-{shard:04x}.ckpt"))
    }

    /// Every `.ckpt` file with a parseable name, as (wal_seq, path).
    fn part_files(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut files = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|x| x == "ckpt") {
                if let Some(seq) = parse_part_seq(&path) {
                    files.push((seq, path));
                }
            }
        }
        Ok(files)
    }
}

/// The wal-seq encoded in a part filename, if it parses.
pub(crate) fn parse_part_seq(path: &Path) -> Option<u64> {
    let name = path.file_stem()?.to_str()?.strip_prefix("ckpt-")?;
    let (seq, _shard) = name.split_once('-')?;
    u64::from_str_radix(seq, 16).ok()
}

/// Read and fully verify one part file.
pub(crate) fn read_part(path: &Path) -> Result<CheckpointRecord, WireError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|_| WireError::Truncated)?;
    let mut r = WireReader::new(&bytes);
    let frame = WireFrame::read_durable(&mut r)?;
    if frame.tag != CHECKPOINT_TAG {
        return Err(WireError::BadTag(frame.tag));
    }
    if r.pos() != bytes.len() {
        return Err(WireError::Malformed(
            "trailing bytes after checkpoint record",
        ));
    }
    frame.value::<CheckpointRecord>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("ms-store-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::open(dir, false).unwrap()
    }

    fn cleanup(store: &CheckpointStore) {
        let _ = fs::remove_dir_all(store.dir());
    }

    fn parts(n: usize, stamp: u8) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![stamp, i as u8, 0xAA]).collect()
    }

    #[test]
    fn write_then_load_newest_roundtrip() {
        let store = temp_store("roundtrip");
        store.write_set(100, 1, &parts(3, 1)).unwrap();
        store.write_set(250, 2, &parts(3, 2)).unwrap();
        let loaded = store.load_newest().unwrap();
        assert_eq!(loaded.discarded, 0);
        let set = loaded.newest.unwrap();
        assert_eq!(set.wal_seq, 250);
        assert_eq!(set.epoch, 2);
        assert_eq!(set.parts, parts(3, 2));
        cleanup(&store);
    }

    #[test]
    fn damaged_newest_set_falls_back_to_older() {
        let store = temp_store("fallback");
        store.write_set(100, 1, &parts(2, 1)).unwrap();
        store.write_set(250, 2, &parts(2, 2)).unwrap();
        // Flip a payload bit in one part of the newest set.
        let victim = store.part_path(250, 1);
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        fs::write(&victim, &bytes).unwrap();

        let loaded = store.load_newest().unwrap();
        assert_eq!(loaded.discarded, 2, "both parts of the bad set discarded");
        assert!(loaded.notes.iter().any(|n| n.contains("discarded")));
        let set = loaded.newest.unwrap();
        assert_eq!(set.wal_seq, 100, "fallback to the older intact set");
        assert_eq!(set.parts, parts(2, 1));
        cleanup(&store);
    }

    #[test]
    fn incomplete_set_is_discarded() {
        let store = temp_store("incomplete");
        store.write_set(100, 1, &parts(3, 1)).unwrap();
        fs::remove_file(store.part_path(100, 2)).unwrap();
        let loaded = store.load_newest().unwrap();
        assert!(loaded.newest.is_none());
        assert_eq!(loaded.discarded, 2);
        assert!(loaded.notes[0].contains("incomplete"));
        cleanup(&store);
    }

    #[test]
    fn filename_metadata_mismatch_rejects_the_set() {
        let store = temp_store("rename");
        store.write_set(100, 1, &parts(1, 1)).unwrap();
        // Rename the part so the filename claims a different cut: the
        // self-describing record must win and the set must be rejected.
        fs::rename(store.part_path(100, 0), store.part_path(999, 0)).unwrap();
        let loaded = store.load_newest().unwrap();
        assert!(loaded.newest.is_none());
        assert_eq!(loaded.discarded, 1);
        assert!(loaded.notes[0].contains("contradicts filename"));
        cleanup(&store);
    }

    #[test]
    fn prune_keeps_newest_sets_and_reports_floor() {
        let store = temp_store("prune");
        for (seq, epoch) in [(10u64, 1u64), (20, 2), (30, 3), (40, 4)] {
            store.write_set(seq, epoch, &parts(2, seq as u8)).unwrap();
        }
        let floor = store.prune_keep(2).unwrap();
        assert_eq!(floor, Some(30));
        let left: Vec<u64> = {
            let mut seqs: Vec<u64> = store
                .part_files()
                .unwrap()
                .iter()
                .map(|(s, _)| *s)
                .collect();
            seqs.sort_unstable();
            seqs.dedup();
            seqs
        };
        assert_eq!(left, vec![30, 40]);
        // Newest is still loadable after pruning.
        assert_eq!(store.load_newest().unwrap().newest.unwrap().wal_seq, 40);
        cleanup(&store);
    }

    #[test]
    fn open_clears_tmp_leftovers() {
        let store = temp_store("tmp");
        let tmp = store.dir().join("ckpt-0000000000000001-0000.tmp");
        fs::write(&tmp, b"half-written").unwrap();
        let reopened = CheckpointStore::open(store.dir().to_path_buf(), false).unwrap();
        assert!(!tmp.exists());
        assert!(reopened.load_newest().unwrap().newest.is_none());
        cleanup(&store);
    }
}

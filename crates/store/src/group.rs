//! Leader–follower group commit over a shared [`Store`].
//!
//! Without group commit, N concurrent ingest threads serialize on the
//! store mutex and (under `fsync always`) pay N fsyncs for N batches.
//! [`GroupCommit`] collapses that: callers enqueue their encoded payload
//! under a short state lock; the first caller to arrive becomes the
//! **leader**, drains everything queued, and appends the whole group via
//! [`Wal::append_group`] — one store-mutex acquisition and at most one
//! fsync per group. Everyone else (the **followers**) just waits on a
//! condvar for its ticket to complete.
//!
//! Durability semantics are preserved exactly, not weakened: a caller
//! does not return until its record is appended (and fsynced when the
//! policy says so), so "acked ⇒ recoverable" holds record-for-record —
//! the group only amortizes *cost*, never the guarantee. A write error
//! is sticky: after the log fails once, every subsequent append fails
//! fast instead of silently acking into a broken log.
//!
//! [`Wal::append_group`]: crate::wal::Wal::append_group

use std::io;
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::Store;

/// Recycling hook: the leader hands each appended payload buffer back
/// (e.g. into a buffer pool) instead of dropping it.
type Recycler = Box<dyn Fn(Vec<u8>) + Send + Sync>;

/// What one group-commit append reports back.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupOutcome {
    /// True when an fsync at-or-after this record's append has already
    /// happened (the record survives power loss).
    pub synced: bool,
    /// Aggregate of the groups this caller led (all zeros for followers).
    pub led: LedStats,
}

/// Work performed while acting as group leader, for telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct LedStats {
    /// Groups appended.
    pub groups: u64,
    /// Records appended across those groups.
    pub records: u64,
    /// Bytes written across those groups.
    pub bytes: u64,
    /// fsyncs issued across those groups.
    pub fsyncs: u64,
}

struct GroupState {
    /// Payloads queued for the next group, in ticket order.
    queue: Vec<Vec<u8>>,
    /// A leader is currently appending.
    leader: bool,
    /// Tickets handed out (== payloads ever submitted).
    submitted: u64,
    /// Tickets whose records are appended.
    completed: u64,
    /// Highest ticket covered by an fsync.
    synced_ticket: u64,
    /// Sticky failure: the WAL broke; fail every append from now on.
    failed: Option<(io::ErrorKind, String)>,
}

/// Batches concurrent WAL appends into single-lock, single-fsync groups.
pub struct GroupCommit {
    state: Mutex<GroupState>,
    done: Condvar,
    recycle: Option<Recycler>,
}

fn lock(state: &Mutex<GroupState>) -> MutexGuard<'_, GroupState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

fn sticky(failed: &(io::ErrorKind, String)) -> io::Error {
    io::Error::new(failed.0, failed.1.clone())
}

impl GroupCommit {
    /// A fresh group-commit coordinator.
    pub fn new() -> GroupCommit {
        GroupCommit {
            state: Mutex::new(GroupState {
                queue: Vec::new(),
                leader: false,
                submitted: 0,
                completed: 0,
                synced_ticket: 0,
                failed: None,
            }),
            done: Condvar::new(),
            recycle: None,
        }
    }

    /// Install a hook receiving every appended payload buffer back once
    /// its group completes (so the hot path can recycle instead of drop).
    pub fn with_recycler(mut self, f: impl Fn(Vec<u8>) + Send + Sync + 'static) -> GroupCommit {
        self.recycle = Some(Box::new(f));
        self
    }

    /// Append `payload` as one WAL record, batched with whatever other
    /// appends are in flight. Returns once the record is appended — and
    /// fsynced, when the store's policy requires it — or with the sticky
    /// error once the log has failed.
    pub fn append(&self, store: &Mutex<Store>, payload: Vec<u8>) -> io::Result<GroupOutcome> {
        let mut st = lock(&self.state);
        if let Some(failed) = &st.failed {
            return Err(sticky(failed));
        }
        st.queue.push(payload);
        st.submitted += 1;
        let ticket = st.submitted;

        if st.leader {
            // Follower: a leader is already appending and will drain our
            // payload in its next round.
            while st.completed < ticket && st.failed.is_none() {
                st = self.done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.completed < ticket {
                let failed = st.failed.as_ref().expect("loop exits on failure");
                return Err(sticky(failed));
            }
            return Ok(GroupOutcome {
                synced: st.synced_ticket >= ticket,
                led: LedStats::default(),
            });
        }

        // Leader: drain rounds of queued payloads until none are left.
        st.leader = true;
        let mut led = LedStats::default();
        loop {
            let group = std::mem::take(&mut st.queue);
            if group.is_empty() {
                st.leader = false;
                break;
            }
            drop(st);
            let appended = {
                let mut store = store.lock().unwrap_or_else(|e| e.into_inner());
                store.wal.append_group(&group)
            };
            st = lock(&self.state);
            match appended {
                Ok(g) => {
                    st.completed += g.records;
                    if g.synced {
                        st.synced_ticket = st.completed;
                    }
                    led.groups += 1;
                    led.records += g.records;
                    led.bytes += g.bytes;
                    led.fsyncs += u64::from(g.synced);
                    self.done.notify_all();
                    if let Some(recycle) = &self.recycle {
                        for buf in group {
                            recycle(buf);
                        }
                    }
                }
                Err(e) => {
                    st.failed = Some((e.kind(), e.to_string()));
                    st.leader = false;
                    self.done.notify_all();
                    return Err(e);
                }
            }
        }
        let synced = st.synced_ticket >= ticket;
        drop(st);
        Ok(GroupOutcome { synced, led })
    }

    /// Tickets completed so far (test/telemetry hook).
    pub fn completed(&self) -> u64 {
        lock(&self.state).completed
    }
}

impl Default for GroupCommit {
    fn default() -> Self {
        GroupCommit::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FsyncPolicy, StoreConfig};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn temp_store(tag: &str, fsync: FsyncPolicy) -> (Mutex<Store>, StoreConfig) {
        let dir = std::env::temp_dir().join(format!("ms-store-group-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = StoreConfig::new(dir).fsync(fsync);
        let (store, _) = Store::open(&cfg).unwrap();
        (Mutex::new(store), cfg)
    }

    #[test]
    fn single_caller_appends_and_syncs() {
        let (store, cfg) = temp_store("single", FsyncPolicy::Always);
        let gc = GroupCommit::new();
        let outcome = gc.append(&store, vec![1, 2, 3]).unwrap();
        assert!(outcome.synced);
        assert_eq!(outcome.led.groups, 1);
        assert_eq!(outcome.led.records, 1);
        assert_eq!(outcome.led.fsyncs, 1);
        assert_eq!(gc.completed(), 1);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn concurrent_appends_all_land_with_fewer_lock_rounds() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50;
        let (store, cfg) = temp_store("concurrent", FsyncPolicy::Always);
        let store = Arc::new(store);
        let gc = Arc::new(GroupCommit::new());
        let groups = Arc::new(AtomicU64::new(0));
        let fsyncs = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (store, gc) = (Arc::clone(&store), Arc::clone(&gc));
                let (groups, fsyncs) = (Arc::clone(&groups), Arc::clone(&fsyncs));
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let outcome = gc.append(&store, vec![t as u8, i as u8]).unwrap();
                        assert!(outcome.synced, "always-policy append must be synced");
                        groups.fetch_add(outcome.led.groups, Ordering::Relaxed);
                        fsyncs.fetch_add(outcome.led.fsyncs, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = THREADS * PER_THREAD;
        assert_eq!(gc.completed(), total);
        assert_eq!(
            store.lock().unwrap().wal.last_seq(),
            total,
            "every record appended exactly once"
        );
        assert!(groups.load(Ordering::Relaxed) <= total);
        assert_eq!(
            fsyncs.load(Ordering::Relaxed),
            groups.load(Ordering::Relaxed),
            "always-policy: exactly one fsync per group"
        );
        // Everything is on disk and verifies.
        drop(store);
        let (_, recovery) = Store::open(&cfg).unwrap();
        assert_eq!(recovery.tail.len() as u64, total);
        assert_eq!(recovery.corrupt_records, 0);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn recycler_gets_every_payload_buffer_back() {
        let (store, cfg) = temp_store("recycle", FsyncPolicy::Never);
        let returned = Arc::new(AtomicU64::new(0));
        let gc = {
            let returned = Arc::clone(&returned);
            GroupCommit::new().with_recycler(move |buf| {
                returned.fetch_add(buf.capacity() as u64, Ordering::Relaxed);
            })
        };
        for _ in 0..5 {
            gc.append(&store, Vec::with_capacity(64)).unwrap();
        }
        assert!(returned.load(Ordering::Relaxed) >= 5 * 64);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }
}

//! Zero-dependency observability for the mergeable-summaries service.
//!
//! The mergeability theorem (PODS'12, Definition 1) guarantees the error
//! bound under *any* merge tree, but says nothing about where wall-clock
//! time goes inside one. This crate is the instrument panel: it tells you
//! where the `ε·n`-correct answer spent its microseconds — shard-queue
//! wait, compaction stalls, per-opcode server latency — without adding a
//! single external dependency or a lock on any hot path.
//!
//! Three layers:
//!
//! * [`MetricsRegistry`] — named atomic [`Counter`]s, [`Gauge`]s and
//!   log-scaled [`Histogram`]s. `record()` is lock-free (a handful of
//!   relaxed atomic adds); [`RegistrySnapshot`]s are *mergeable* exactly
//!   like the paper's summaries — histograms merge bucket-wise, counters
//!   add — so snapshots from many shards or many scrapes compose.
//! * [`FlightRecorder`] — a span/event tracing layer writing to fixed-size
//!   per-thread ring buffers. Always cheap, always on, dumped as
//!   seed-stamped JSON when something goes wrong (`ServiceError`, a
//!   faultsim schedule failure), so "seed 0x… failed" comes with the
//!   trace of the failing epoch. See the [`span!`] macro.
//! * [`render_prometheus`] — the registry snapshot as Prometheus text
//!   exposition, served by the `mergeable metrics` CLI.

pub mod audit;
pub mod hist;
pub mod prom;
pub mod registry;
pub mod trace;

pub use audit::Reservoir;
pub use hist::{bucket_upper, Histogram, HistogramSnapshot, HIST_BUCKETS};
pub use prom::render_prometheus;
pub use registry::{Counter, Gauge, MetricsRegistry, RegistrySnapshot};
pub use trace::{FlightRecorder, SpanGuard, ThreadExport, TraceEvent, TraceHandle};

/// Open a span on a [`TraceHandle`], recording named `u64` fields and the
/// span's duration into the thread's flight-recorder ring when the guard
/// drops:
///
/// ```
/// use ms_obs::{span, FlightRecorder};
/// let recorder = std::sync::Arc::new(FlightRecorder::new(64));
/// let handle = recorder.register("compactor");
/// {
///     let _span = span!(handle, "compact", epoch = 3u64, deltas = 2u64);
///     // ... timed work ...
/// }
/// assert_eq!(recorder.event_count(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($handle:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __span = $handle.span($name);
        $( __span.field(stringify!($key), $val as u64); )*
        __span
    }};
}

//! Accuracy self-audit primitives: a deterministic reservoir sample of
//! raw stream items.
//!
//! The paper (PODS'12, Definition 1) promises that a merged summary's
//! error stays within `ε·n` under *any* merge tree — but nothing in the
//! serving stack observes that promise. The audit plane closes the loop:
//! the engine keeps a small seeded [`Reservoir`] of raw items alongside
//! the summary, and on demand compares the summary's answers against the
//! sample (empirical ranks for quantile summaries) or against exact
//! counts of a hash-chosen subset of items (frequency summaries, tracked
//! by the engine itself). Everything is seeded and allocation-free at
//! steady state, so an audit run is reproducible from the printed seed
//! and safe to leave enabled on a live server.

use ms_core::rng::splitmix64;

/// Uniform reservoir sample (Algorithm R) over a `u64` stream, driven by
/// a seeded splitmix64 stream so the kept sample is a pure function of
/// `(seed, insertion order)` — no global RNG, fully reproducible.
#[derive(Debug)]
pub struct Reservoir {
    items: Vec<u64>,
    capacity: usize,
    /// Items observed so far (the sample is uniform over all of them).
    observed: u64,
    /// splitmix64 state, advanced once per observation past capacity.
    rng: u64,
}

impl Reservoir {
    /// An empty reservoir keeping at most `capacity` items.
    pub fn new(capacity: usize, seed: u64) -> Reservoir {
        Reservoir {
            items: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            observed: 0,
            rng: seed ^ 0xA076_1D64_78BD_642F,
        }
    }

    /// Observe one stream item. O(1), allocation-free once the backing
    /// vector reached capacity (it is pre-reserved at construction).
    pub fn observe(&mut self, item: u64) {
        self.observed += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        // Classic Algorithm R: keep with probability capacity/observed.
        let j = splitmix64(&mut self.rng) % self.observed;
        if (j as usize) < self.capacity {
            self.items[j as usize] = item;
        }
    }

    /// Observe a whole batch.
    pub fn observe_slice(&mut self, items: &[u64]) {
        for &item in items {
            self.observe(item);
        }
    }

    /// The current sample (unordered).
    pub fn sample(&self) -> &[u64] {
        &self.items
    }

    /// Items currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the sample empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total items observed (the `n` the sample is uniform over).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Empirical rank of `x` scaled to the observed stream: the number of
    /// sampled items strictly below `x`, times `observed / len`. The
    /// estimator's sampling error is O(n/√len) with high probability —
    /// callers must budget that slack on top of the summary's own `ε·n`.
    pub fn scaled_rank(&self, x: u64) -> u64 {
        if self.items.is_empty() {
            return 0;
        }
        let below = self.items.iter().filter(|&&v| v < x).count() as u64;
        // Multiply before dividing in u128 so large n cannot overflow.
        ((below as u128 * self.observed as u128) / self.items.len() as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_is_deterministic_for_a_seed() {
        let stream: Vec<u64> = (0..10_000).map(|i| i * 7 % 997).collect();
        let mut a = Reservoir::new(64, 0xF417_5EED);
        let mut b = Reservoir::new(64, 0xF417_5EED);
        a.observe_slice(&stream);
        b.observe_slice(&stream);
        assert_eq!(a.sample(), b.sample());
        assert_eq!(a.observed(), 10_000);

        let mut c = Reservoir::new(64, 0xB0B5_CAFE);
        c.observe_slice(&stream);
        assert_ne!(a.sample(), c.sample(), "different seeds, different keeps");
    }

    #[test]
    fn reservoir_fills_then_stays_bounded() {
        let mut r = Reservoir::new(16, 1);
        for i in 0..8u64 {
            r.observe(i);
        }
        assert_eq!(r.len(), 8);
        for i in 8..10_000u64 {
            r.observe(i);
        }
        assert_eq!(r.len(), 16);
        assert_eq!(r.observed(), 10_000);
    }

    #[test]
    fn scaled_rank_tracks_the_uniform_stream() {
        // Uniform 0..1000, 100k observations: the scaled empirical rank of
        // the median must land near n/2 well within the O(n/√len) slack.
        let mut r = Reservoir::new(4096, 42);
        let mut state = 42u64;
        let n = 100_000u64;
        for _ in 0..n {
            r.observe(splitmix64(&mut state) % 1000);
        }
        let est = r.scaled_rank(500);
        let slack = 4.0 * n as f64 / (r.len() as f64).sqrt();
        assert!(
            (est as f64 - n as f64 / 2.0).abs() <= slack,
            "median rank estimate {est} strayed past {slack}"
        );
    }

    #[test]
    fn empty_reservoir_answers_zero() {
        let r = Reservoir::new(8, 0);
        assert!(r.is_empty());
        assert_eq!(r.scaled_rank(123), 0);
    }
}

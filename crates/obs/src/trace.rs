//! Span/event tracing into fixed-size per-thread ring buffers — a "flight
//! recorder".
//!
//! The recorder is always on and always cheap: each thread owns a ring of
//! the last `capacity` [`TraceEvent`]s, recording into it touches only
//! that thread's (uncontended) lock, and old events are overwritten — no
//! allocation growth, no global contention, no I/O. Nothing is written
//! anywhere until something goes wrong; then [`FlightRecorder::dump_json`]
//! serializes every ring, stamped with the reproduction seed, so a
//! failure report carries the trace of the epochs leading up to it.
//!
//! Spans are opened with [`TraceHandle::span`] (or the [`crate::span!`]
//! macro, which also attaches named `u64` fields) and record their
//! duration when the guard drops.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use ms_core::{Json, ToJson};

/// One recorded span or instantaneous event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (static so recording never allocates for it).
    pub name: &'static str,
    /// Start offset from the recorder's creation, in microseconds.
    pub start_micros: u64,
    /// Span duration in microseconds (0 for instantaneous events).
    pub duration_micros: u64,
    /// Named `u64` payload fields (epoch, shard, batch size, …).
    pub fields: Vec<(&'static str, u64)>,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::Str(self.name.to_string())),
            ("start_micros".to_string(), Json::U64(self.start_micros)),
            (
                "duration_micros".to_string(),
                Json::U64(self.duration_micros),
            ),
        ];
        for (k, v) in &self.fields {
            fields.push((k.to_string(), Json::U64(*v)));
        }
        Json::Obj(fields)
    }
}

/// Fixed-capacity overwrite-oldest buffer.
#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next slot to overwrite once `buf` is full.
    next: usize,
    /// Events evicted by the ring (so a dump states what it lost).
    overwritten: u64,
}

impl Ring {
    fn push(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.next] = event;
            self.next = (self.next + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Events in recording order (oldest surviving first).
    fn ordered(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }
}

#[derive(Debug)]
struct ThreadRing {
    label: String,
    ring: Mutex<Ring>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One ring's surviving events plus how much history the ring lost, as
/// returned by [`FlightRecorder::export`]. This is the structured twin of
/// the JSON dump: the `TraceDump` wire opcode ships these across the
/// cluster so a coordinator-side CLI can stitch rings from every node.
#[derive(Debug, Clone)]
pub struct ThreadExport {
    /// Ring label (`worker-0`, `compactor`, `conn`, …).
    pub label: String,
    /// Events this ring overwrote — the dump's blind spot.
    pub evicted: u64,
    /// Surviving events in recording order (oldest first).
    pub events: Vec<TraceEvent>,
}

/// The flight recorder: a registry of per-thread rings plus the shared
/// clock origin. Cheap to share as `Arc<FlightRecorder>`.
#[derive(Debug)]
pub struct FlightRecorder {
    origin: Instant,
    capacity: usize,
    enabled: AtomicBool,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

impl FlightRecorder {
    /// A recorder whose threads each keep their last `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            origin: Instant::now(),
            capacity: capacity.max(1),
            enabled: AtomicBool::new(true),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Disable (or re-enable) recording. Disabled spans cost one relaxed
    /// load.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is recording currently enabled?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Register a ring for the calling thread (label it with the thread's
    /// role: `worker-0`, `compactor`, `conn`). Each registration gets its
    /// own ring; a respawned worker registers again and both incarnations
    /// appear in the dump.
    pub fn register(self: &Arc<Self>, label: &str) -> TraceHandle {
        let ring = Arc::new(ThreadRing {
            label: label.to_string(),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                capacity: self.capacity,
                next: 0,
                overwritten: 0,
            }),
        });
        lock(&self.rings).push(Arc::clone(&ring));
        TraceHandle {
            recorder: Arc::clone(self),
            ring,
        }
    }

    /// Total events currently held across all rings (for tests).
    pub fn event_count(&self) -> usize {
        lock(&self.rings)
            .iter()
            .map(|t| lock(&t.ring).buf.len())
            .sum()
    }

    /// Snapshot every ring into owned [`ThreadExport`]s (label, evicted
    /// count, surviving events oldest-first). The wire-facing counterpart
    /// of [`FlightRecorder::dump_json`].
    pub fn export(&self) -> Vec<ThreadExport> {
        lock(&self.rings)
            .iter()
            .map(|t| {
                let ring = lock(&t.ring);
                ThreadExport {
                    label: t.label.clone(),
                    evicted: ring.overwritten,
                    events: ring.ordered(),
                }
            })
            .collect()
    }

    /// Per-thread ring capacity this recorder was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Microseconds captured since the recorder was created (its clock
    /// origin; every event's `start_micros` is an offset from it).
    pub fn captured_micros(&self) -> u64 {
        self.now_micros()
    }

    /// Serialize every ring, stamped with the reproduction `seed`. The
    /// header carries `evicted_total` — the events lost across all rings —
    /// and each ring its own `evicted` count, so a dump states exactly
    /// how much history it is missing.
    pub fn dump_json(&self, seed: u64) -> Json {
        let mut evicted_total = 0u64;
        let threads: Vec<Json> = lock(&self.rings)
            .iter()
            .map(|t| {
                let ring = lock(&t.ring);
                evicted_total += ring.overwritten;
                Json::obj([
                    ("thread", Json::Str(t.label.clone())),
                    ("evicted", Json::U64(ring.overwritten)),
                    (
                        "events",
                        Json::Arr(ring.ordered().iter().map(ToJson::to_json).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("seed", Json::Str(format!("{seed:#x}"))),
            ("ring_capacity", Json::U64(self.capacity as u64)),
            ("evicted_total", Json::U64(evicted_total)),
            (
                "captured_micros",
                Json::U64(self.origin.elapsed().as_micros() as u64),
            ),
            ("threads", Json::Arr(threads)),
        ])
    }

    /// Write [`FlightRecorder::dump_json`] to `dir/name`, creating `dir`.
    /// Returns the path written.
    pub fn dump_to_file(
        &self,
        dir: impl AsRef<Path>,
        name: &str,
        seed: u64,
    ) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(name);
        std::fs::write(&path, self.dump_json(seed).to_string_pretty())?;
        Ok(path)
    }

    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A per-thread recording handle (one ring). Not `Sync`: each thread gets
/// its own via [`FlightRecorder::register`].
#[derive(Debug)]
pub struct TraceHandle {
    recorder: Arc<FlightRecorder>,
    ring: Arc<ThreadRing>,
}

impl TraceHandle {
    /// Open a span; its duration is recorded when the guard drops. When
    /// the recorder is disabled this is one relaxed load and nothing else.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let start = self.recorder.enabled().then(Instant::now);
        SpanGuard {
            handle: self,
            name,
            start,
            fields: Vec::new(),
        }
    }

    /// Record an instantaneous event.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, u64)]) {
        if !self.recorder.enabled() {
            return;
        }
        lock(&self.ring.ring).push(TraceEvent {
            name,
            start_micros: self.recorder.now_micros(),
            duration_micros: 0,
            fields: fields.to_vec(),
        });
    }
}

/// Open span: records `name`, fields, and elapsed time on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    handle: &'a TraceHandle,
    name: &'static str,
    /// `None` when the recorder was disabled at open.
    start: Option<Instant>,
    fields: Vec<(&'static str, u64)>,
}

impl SpanGuard<'_> {
    /// Attach a named `u64` field to the span.
    pub fn field(&mut self, key: &'static str, value: u64) {
        if self.start.is_some() {
            self.fields.push((key, value));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let recorder = &self.handle.recorder;
        let start_micros = start.duration_since(recorder.origin).as_micros() as u64;
        lock(&self.handle.ring.ring).push(TraceEvent {
            name: self.name,
            start_micros,
            duration_micros: start.elapsed().as_micros() as u64,
            fields: std::mem::take(&mut self.fields),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_duration_and_fields() {
        let rec = Arc::new(FlightRecorder::new(8));
        let h = rec.register("worker-0");
        {
            let _span = crate::span!(h, "absorb", shard = 0u64, items = 128u64);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let json = rec.dump_json(0xBEEF).to_string();
        assert!(json.contains("\"absorb\""), "{json}");
        assert!(json.contains("\"shard\":0"), "{json}");
        assert!(json.contains("\"items\":128"), "{json}");
        assert!(json.contains("\"seed\":\"0xbeef\""), "{json}");
        assert_eq!(rec.event_count(), 1);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_evictions() {
        let rec = Arc::new(FlightRecorder::new(4));
        let h = rec.register("t");
        for i in 0..10u64 {
            h.event("e", &[("i", i)]);
        }
        assert_eq!(rec.event_count(), 4);
        let ring = lock(&h.ring.ring);
        assert_eq!(ring.overwritten, 6);
        let order: Vec<u64> = ring.ordered().iter().map(|e| e.fields[0].1).collect();
        assert_eq!(order, vec![6, 7, 8, 9]);
    }

    #[test]
    fn dump_header_pins_evicted_counts() {
        // 10 events into a capacity-4 ring: exactly 6 evictions, stated
        // per ring and summed in the header so a dump declares its blind
        // spot. A second, underfull ring must report 0.
        let rec = Arc::new(FlightRecorder::new(4));
        let busy = rec.register("busy");
        for i in 0..10u64 {
            busy.event("e", &[("i", i)]);
        }
        let quiet = rec.register("quiet");
        quiet.event("q", &[]);
        let json = rec.dump_json(0x5EED).to_string();
        assert!(json.contains("\"evicted_total\":6"), "{json}");
        assert!(json.contains("\"evicted\":6"), "{json}");
        assert!(json.contains("\"evicted\":0"), "{json}");

        let export = rec.export();
        assert_eq!(export.len(), 2);
        assert_eq!(export[0].label, "busy");
        assert_eq!(export[0].evicted, 6);
        assert_eq!(export[0].events.len(), 4);
        // Recording order survives the export: oldest surviving first.
        let order: Vec<u64> = export[0].events.iter().map(|e| e.fields[0].1).collect();
        assert_eq!(order, vec![6, 7, 8, 9]);
        assert_eq!(export[1].evicted, 0);
        assert_eq!(export[1].events.len(), 1);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Arc::new(FlightRecorder::new(8));
        rec.set_enabled(false);
        let h = rec.register("t");
        {
            let mut s = h.span("quiet");
            s.field("k", 1);
        }
        h.event("quiet2", &[]);
        assert_eq!(rec.event_count(), 0);
        rec.set_enabled(true);
        h.event("loud", &[]);
        assert_eq!(rec.event_count(), 1);
    }

    #[test]
    fn dump_to_file_is_seed_stamped() {
        let rec = Arc::new(FlightRecorder::new(8));
        let h = rec.register("compactor");
        {
            let _s = crate::span!(h, "compact", epoch = 7u64);
        }
        let dir = std::env::temp_dir().join("ms-obs-trace-test");
        let path = rec
            .dump_to_file(&dir, "flight_test.json", 0xF417_5EED)
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"seed\": \"0xf4175eed\""), "{text}");
        assert!(text.contains("\"compact\""), "{text}");
        assert!(text.contains("\"epoch\""), "{text}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rings_from_many_threads_all_dump() {
        let rec = Arc::new(FlightRecorder::new(16));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    let h = rec.register(&format!("worker-{t}"));
                    for i in 0..8u64 {
                        h.event("tick", &[("i", i)]);
                    }
                });
            }
        });
        assert_eq!(rec.event_count(), 32);
        let json = rec.dump_json(1).to_string();
        for t in 0..4 {
            assert!(json.contains(&format!("worker-{t}")), "{json}");
        }
    }
}

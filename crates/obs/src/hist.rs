//! Log-scaled latency histograms with lock-free recording and mergeable
//! snapshots.
//!
//! Values (microseconds on every hot path in this workspace) land in
//! power-of-two buckets: bucket `0` holds the value `0`, bucket `i ≥ 1`
//! holds `[2^(i-1), 2^i)`. That is the HDR idea stripped to its cheapest
//! form — `record()` is one `leading_zeros` plus four relaxed atomic
//! operations, and the relative error of any quantile read off the bucket
//! boundaries is at most a factor of two.
//!
//! Snapshots are **mergeable in the paper's sense**: buckets add
//! component-wise, `count`/`sum` add, `max` takes the maximum, so
//! `merge(s1, s2)` summarizes the concatenated observation streams exactly
//! as a single histogram fed both streams would — the unit tests assert
//! bucket-level equality, which makes every quantile bound match too.

use std::sync::atomic::{AtomicU64, Ordering};

use ms_core::{Json, ToJson, Wire, WireError, WireReader};

/// Number of buckets: value 0, then one bucket per power of two up to
/// `u64::MAX` (bucket 64 holds `[2^63, u64::MAX]`).
pub const HIST_BUCKETS: usize = 65;

/// Bucket index for a recorded value.
#[inline]
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (the value a quantile query reports).
pub fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A concurrent histogram. `record()` is wait-free; readers take a
/// [`HistogramSnapshot`] and work on plain integers.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation. Lock-free: four relaxed atomic RMWs.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state. Concurrent `record()`s may straddle the
    /// copy (a bucket incremented after its slot was read), so a snapshot
    /// is a near-point-in-time view; each component is individually exact
    /// and monotone across successive snapshots.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], mergeable bucket-wise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (for the mean).
    pub sum: u64,
    /// Largest observed value, exact.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merge two snapshots: the result summarizes the union of the two
    /// observation streams, mirroring the paper's merge semantics
    /// (buckets and counts add, max takes the maximum). `sum` adds with
    /// wraparound — the same arithmetic `record`'s atomic add uses — so a
    /// merged snapshot equals the one-shot snapshot of the combined
    /// stream even when value sums exceed `u64::MAX`.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_add(other.buckets[i])),
            count: self.count.saturating_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// Nearest-rank `q`-quantile read off the bucket boundaries: the
    /// inclusive upper bound of the bucket holding the rank-`⌈q·count⌉`
    /// observation (clamped by the exact max). Within a factor of two of
    /// the true quantile by construction. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Tiny slack so q·count values computed a hair above an integer
        // (0.95 × 20 = 19.000…004) do not overshoot a rank.
        let target = ((q * self.count as f64 - 1e-9).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Iterate `(inclusive_upper_bound, count)` over the non-empty
    /// buckets, in increasing value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }
}

impl Wire for HistogramSnapshot {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.count.encode_into(out);
        self.sum.encode_into(out);
        self.max.encode_into(out);
        // Sparse bucket encoding: most histograms occupy a handful of the
        // 65 buckets.
        let nonzero: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64, c))
            .collect();
        nonzero.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = u64::decode_from(r)?;
        let sum = u64::decode_from(r)?;
        let max = u64::decode_from(r)?;
        let nonzero = Vec::<(u64, u64)>::decode_from(r)?;
        let mut buckets = [0u64; HIST_BUCKETS];
        let mut total = 0u64;
        for (i, c) in nonzero {
            let slot = buckets
                .get_mut(i as usize)
                .ok_or(WireError::Malformed("histogram bucket index out of range"))?;
            if *slot != 0 {
                return Err(WireError::Malformed("duplicate histogram bucket"));
            }
            *slot = c;
            total = total
                .checked_add(c)
                .ok_or(WireError::Malformed("histogram bucket overflow"))?;
        }
        if total != count {
            return Err(WireError::Malformed("histogram bucket sum != count"));
        }
        Ok(HistogramSnapshot {
            buckets,
            count,
            sum,
            max,
        })
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::U64(self.count)),
            ("mean", Json::F64(self.mean())),
            ("p50", Json::U64(self.quantile(0.50))),
            ("p95", Json::U64(self.quantile(0.95))),
            ("p99", Json::U64(self.quantile(0.99))),
            ("max", Json::U64(self.max)),
            (
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .map(|(le, c)| Json::obj([("le", Json::U64(le)), ("count", Json::U64(c))]))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::Rng64;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn record_and_quantile_within_factor_two() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        for (q, truth) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let est = s.quantile(q) as f64;
            assert!(
                est >= truth / 2.0 && est <= truth * 2.0,
                "q={q}: est {est} vs truth {truth}"
            );
        }
        // The top quantile is the exact max, not a bucket bound.
        assert_eq!(s.quantile(1.0), 1000);
    }

    /// The tentpole property: merged snapshots answer quantiles exactly
    /// like a single histogram that saw both streams — bucket counts are
    /// equal, so every quantile bound matches, for both split points and
    /// arbitrary seeded streams.
    #[test]
    fn merge_quantiles_match_one_shot_histogram() {
        let mut rng = Rng64::new(0x0B5E);
        for trial in 0..20 {
            let n = 200 + (trial * 137) % 1800;
            let split = (trial * 71) % n;
            let values: Vec<u64> = (0..n).map(|_| rng.next_u64() >> (trial % 50)).collect();

            let one_shot = Histogram::new();
            let left = Histogram::new();
            let right = Histogram::new();
            for (i, &v) in values.iter().enumerate() {
                one_shot.record(v);
                if i < split { &left } else { &right }.record(v);
            }
            let merged = left.snapshot().merge(&right.snapshot());
            let reference = one_shot.snapshot();
            assert_eq!(merged, reference, "trial {trial}: snapshots diverge");
            for i in 0..=100 {
                let q = i as f64 / 100.0;
                assert_eq!(
                    merged.quantile(q),
                    reference.quantile(q),
                    "trial {trial}: quantile({q}) diverges"
                );
            }
        }
    }

    #[test]
    fn merge_is_commutative_and_tracks_mean_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 10, 100] {
            a.record(v);
        }
        for v in [5u64, 50, 5000] {
            b.record(v);
        }
        let ab = a.snapshot().merge(&b.snapshot());
        let ba = b.snapshot().merge(&a.snapshot());
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 6);
        assert_eq!(ab.max, 5000);
        assert!((ab.mean() - 5166.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 40_000);
        assert_eq!(s.max, 39_999);
    }

    #[test]
    fn wire_roundtrip_including_extremes() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(HistogramSnapshot::decode(&s.encode()).unwrap(), s);
        assert_eq!(
            HistogramSnapshot::decode(&HistogramSnapshot::default().encode()).unwrap(),
            HistogramSnapshot::default()
        );
    }

    #[test]
    fn wire_rejects_inconsistent_payloads() {
        let h = Histogram::new();
        h.record(7);
        let mut s = h.snapshot();
        s.count = 2; // bucket sum is 1
        assert!(matches!(
            HistogramSnapshot::decode(&s.encode()),
            Err(WireError::Malformed(_))
        ));
    }
}

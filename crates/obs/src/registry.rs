//! A registry of named atomic instruments and its mergeable snapshot.
//!
//! Instruments are created once (registration takes a short lock) and
//! handed out as `Arc`s; after that every `add`/`set`/`record` is a
//! relaxed atomic operation with no lock anywhere near a hot path.
//! [`MetricsRegistry::snapshot`] walks the registry and copies each
//! instrument into a [`RegistrySnapshot`] — plain data that merges,
//! encodes on the wire, and renders as JSON or Prometheus text.
//!
//! Naming convention: metric names may carry Prometheus-style labels
//! inline (`queue_depth{shard="0"}`); [`crate::render_prometheus`] groups
//! metrics of the same family (name up to the `{`) under one `# TYPE`
//! header.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use ms_core::{Json, ToJson, Wire, WireError, WireReader};

use crate::hist::{Histogram, HistogramSnapshot};

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (queue depth, live shards).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (negative to subtract).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Named instruments. Registration is idempotent: asking for an existing
/// name returns the same instrument, so call sites need no coordination.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn get_or_insert<T: Default>(list: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut list = lock(list);
    if let Some((_, v)) = list.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    list.push((name.to_string(), Arc::clone(&v)));
    v
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Copy every instrument into plain data, sorted by name so snapshots
    /// compare and merge deterministically.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters: Vec<(String, u64)> = lock(&self.counters)
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(String, i64)> = lock(&self.gauges)
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let mut histograms: Vec<(String, HistogramSnapshot)> = lock(&self.histograms)
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`]: plain data, name-sorted,
/// mergeable, wire-encodable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

fn merge_by_name<V: Clone>(
    left: &[(String, V)],
    right: &[(String, V)],
    combine: impl Fn(&V, &V) -> V,
) -> Vec<(String, V)> {
    let mut out: Vec<(String, V)> = left.to_vec();
    for (name, value) in right {
        match out.iter_mut().find(|(n, _)| n == name) {
            Some((_, existing)) => *existing = combine(existing, value),
            None => out.push((name.clone(), value.clone())),
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

impl RegistrySnapshot {
    /// Merge two snapshots by name: counters and gauges add, histograms
    /// merge bucket-wise — the same semantics the paper gives summary
    /// merges, so snapshots from many shards (or many scrape intervals of
    /// disjoint processes) compose into one valid snapshot.
    pub fn merge(&self, other: &RegistrySnapshot) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: merge_by_name(&self.counters, &other.counters, |a, b| a + b),
            gauges: merge_by_name(&self.gauges, &other.gauges, |a, b| a + b),
            histograms: merge_by_name(&self.histograms, &other.histograms, |a, b| a.merge(b)),
        }
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

impl Wire for RegistrySnapshot {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.counters.encode_into(out);
        self.gauges.encode_into(out);
        self.histograms.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RegistrySnapshot {
            counters: Vec::decode_from(r)?,
            gauges: Vec::decode_from(r)?,
            histograms: Vec::decode_from(r)?,
        })
    }
}

impl ToJson for RegistrySnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::U64(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::I64(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(r.counter("x").get(), 7);
        assert!(Arc::ptr_eq(&a, &b));
        // Distinct kinds may share a name without clashing.
        r.gauge("x").set(-2);
        assert_eq!(r.gauge("x").get(), -2);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = MetricsRegistry::new();
        r.counter("zz").add(1);
        r.counter("aa").add(2);
        r.gauge("depth{shard=\"1\"}").set(5);
        r.histogram("lat").record(100);
        let s = r.snapshot();
        assert_eq!(s.counters[0].0, "aa");
        assert_eq!(s.counter("zz"), Some(1));
        assert_eq!(s.gauge("depth{shard=\"1\"}"), Some(5));
        assert_eq!(s.histogram("lat").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn snapshots_merge_by_name() {
        let r1 = MetricsRegistry::new();
        r1.counter("c").add(10);
        r1.gauge("g").set(3);
        r1.histogram("h").record(8);
        let r2 = MetricsRegistry::new();
        r2.counter("c").add(5);
        r2.counter("only2").add(1);
        r2.gauge("g").set(-1);
        r2.histogram("h").record(200);
        let merged = r1.snapshot().merge(&r2.snapshot());
        assert_eq!(merged.counter("c"), Some(15));
        assert_eq!(merged.counter("only2"), Some(1));
        assert_eq!(merged.gauge("g"), Some(2));
        let h = merged.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 200);
        // Commutative.
        assert_eq!(merged, r2.snapshot().merge(&r1.snapshot()));
    }

    #[test]
    fn wire_roundtrip() {
        let r = MetricsRegistry::new();
        r.counter("updates").add(u64::MAX);
        r.gauge("depth").set(i64::MIN);
        r.gauge("depth2").set(i64::MAX);
        let h = r.histogram("lat");
        h.record(0);
        h.record(u64::MAX);
        let s = r.snapshot();
        assert_eq!(RegistrySnapshot::decode(&s.encode()).unwrap(), s);
        let empty = RegistrySnapshot::default();
        assert_eq!(RegistrySnapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn json_rendering_contains_quantiles() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for v in 1..100u64 {
            h.record(v);
        }
        let j = r.snapshot().to_json().to_string();
        assert!(j.contains("\"p50\""), "{j}");
        assert!(j.contains("\"lat\""), "{j}");
    }
}

//! Prometheus-style text exposition for a [`RegistrySnapshot`].
//!
//! Metric names may carry inline labels (`queue_depth{shard="0"}`); the
//! family is the name up to the `{`. Metrics of one family share a single
//! `# TYPE` header, and histogram bucket lines splice `le="…"` into the
//! metric's existing label set, so the output scrapes cleanly.

use crate::hist::{bucket_upper, HistogramSnapshot, HIST_BUCKETS};
use crate::registry::RegistrySnapshot;

/// Split `name` into (family, labels-without-braces).
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((family, rest)) => (family, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// Rebuild a metric name from a family, optional existing labels, and an
/// optional extra label.
fn with_labels(family: &str, suffix: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let mut all = String::new();
    if let Some(l) = labels {
        all.push_str(l);
    }
    if let Some(e) = extra {
        if !all.is_empty() {
            all.push(',');
        }
        all.push_str(e);
    }
    if all.is_empty() {
        format!("{family}{suffix}")
    } else {
        format!("{family}{suffix}{{{all}}}")
    }
}

fn type_header(out: &mut String, seen: &mut Vec<String>, family: &str, kind: &str) {
    if seen.iter().any(|f| f == family) {
        return;
    }
    seen.push(family.to_string());
    out.push_str(&format!("# TYPE {family} {kind}\n"));
}

fn render_histogram(out: &mut String, family: &str, labels: Option<&str>, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for i in 0..HIST_BUCKETS {
        if h.buckets[i] == 0 {
            continue;
        }
        cumulative += h.buckets[i];
        let le = format!("le=\"{}\"", bucket_upper(i));
        let name = with_labels(family, "_bucket", labels, Some(&le));
        out.push_str(&format!("{name} {cumulative}\n"));
    }
    let inf = with_labels(family, "_bucket", labels, Some("le=\"+Inf\""));
    out.push_str(&format!("{inf} {}\n", h.count));
    let sum = with_labels(family, "_sum", labels, None);
    out.push_str(&format!("{sum} {}\n", h.sum));
    let count = with_labels(family, "_count", labels, None);
    out.push_str(&format!("{count} {}\n", h.count));
}

/// Render a snapshot as Prometheus text exposition (`# TYPE` headers,
/// one sample per line, histograms as cumulative `_bucket` series plus
/// `_sum`/`_count`).
pub fn render_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut seen = Vec::new();
    for (name, value) in &snapshot.counters {
        let (family, _) = split_labels(name);
        type_header(&mut out, &mut seen, family, "counter");
        out.push_str(&format!("{name} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let (family, _) = split_labels(name);
        type_header(&mut out, &mut seen, family, "gauge");
        out.push_str(&format!("{name} {value}\n"));
    }
    for (name, hist) in &snapshot.histograms {
        let (family, labels) = split_labels(name);
        type_header(&mut out, &mut seen, family, "histogram");
        render_histogram(&mut out, family, labels, hist);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn counters_and_gauges_render_with_shared_type_headers() {
        let r = MetricsRegistry::new();
        r.counter("ingest_total{shard=\"0\"}").add(10);
        r.counter("ingest_total{shard=\"1\"}").add(20);
        r.gauge("queue_depth{shard=\"0\"}").set(3);
        let text = render_prometheus(&r.snapshot());
        assert_eq!(
            text.matches("# TYPE ingest_total counter").count(),
            1,
            "{text}"
        );
        assert!(text.contains("ingest_total{shard=\"0\"} 10"), "{text}");
        assert!(text.contains("ingest_total{shard=\"1\"} 20"), "{text}");
        assert!(text.contains("# TYPE queue_depth gauge"), "{text}");
        assert!(text.contains("queue_depth{shard=\"0\"} 3"), "{text}");
    }

    #[test]
    fn histograms_render_cumulative_buckets_sum_count() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat{op=\"ingest\"}");
        h.record(1); // bucket 1, upper 1
        h.record(3); // bucket 2, upper 3
        h.record(3);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE lat histogram"), "{text}");
        assert!(
            text.contains("lat_bucket{op=\"ingest\",le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("lat_bucket{op=\"ingest\",le=\"3\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("lat_bucket{op=\"ingest\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("lat_sum{op=\"ingest\"} 7"), "{text}");
        assert!(text.contains("lat_count{op=\"ingest\"} 3"), "{text}");
    }

    #[test]
    fn unlabeled_histogram_renders_bare_le_labels() {
        let r = MetricsRegistry::new();
        r.histogram("d").record(5);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("d_bucket{le=\"7\"} 1"), "{text}");
        assert!(text.contains("d_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("d_sum 5"), "{text}");
        assert!(text.contains("d_count 1"), "{text}");
    }
}

//! Totally ordered value streams for quantile experiments.
//!
//! Quantile summaries in this workspace are generic over `Ord`; experiments
//! use `u64` values so rank arithmetic is exact. Continuous distributions
//! are discretized onto a 2⁵³-grid, which changes no rank statistics (the
//! map is monotone and collisions are measure-zero at experiment scale).

use ms_core::Rng64;

/// Scale for discretizing the unit interval onto `u64`.
const UNIT_SCALE: f64 = (1u64 << 53) as f64;

/// A distribution over ordered `u64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueDist {
    /// Uniform on the discretized unit interval.
    Uniform,
    /// Gaussian (Box-Muller), mean 2³², sd 2²⁸, clamped to `u64`.
    Normal,
    /// Exponential with rate 1, discretized.
    Exponential,
    /// Already sorted ascending `0..n` — the classic worst case for naive
    /// sampling-based summaries (maximal rank correlation with time).
    Sorted,
    /// Sorted descending.
    ReverseSorted,
    /// Zigzag: alternates low/high halves — adversarial for buffer-based
    /// summaries because every buffer spans the full value range.
    Zigzag,
    /// Heavily duplicated: only `distinct` distinct values.
    Clustered {
        /// Number of distinct values.
        distinct: u64,
    },
}

impl ValueDist {
    /// Materialize `n` values deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Rng64::new(seed);
        match *self {
            ValueDist::Uniform => (0..n).map(|_| (rng.f64() * UNIT_SCALE) as u64).collect(),
            ValueDist::Normal => (0..n)
                .map(|_| {
                    let z = gaussian(&mut rng);
                    let v = 4_294_967_296.0 + z * 268_435_456.0;
                    v.max(0.0) as u64
                })
                .collect(),
            ValueDist::Exponential => (0..n)
                .map(|_| {
                    let u = rng.f64().max(f64::MIN_POSITIVE);
                    ((-u.ln()) * UNIT_SCALE) as u64
                })
                .collect(),
            ValueDist::Sorted => (0..n as u64).collect(),
            ValueDist::ReverseSorted => (0..n as u64).rev().collect(),
            ValueDist::Zigzag => (0..n as u64)
                .map(|i| {
                    if i % 2 == 0 {
                        i / 2
                    } else {
                        u64::MAX / 2 + i / 2
                    }
                })
                .collect(),
            ValueDist::Clustered { distinct } => {
                (0..n).map(|_| rng.below(distinct.max(1))).collect()
            }
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match *self {
            ValueDist::Uniform => "uniform".into(),
            ValueDist::Normal => "normal".into(),
            ValueDist::Exponential => "exponential".into(),
            ValueDist::Sorted => "sorted".into(),
            ValueDist::ReverseSorted => "reverse-sorted".into(),
            ValueDist::Zigzag => "zigzag".into(),
            ValueDist::Clustered { distinct } => format!("clustered(d={distinct})"),
        }
    }

    /// The distributions swept by the quantile experiments.
    pub fn canonical() -> [ValueDist; 5] {
        [
            ValueDist::Uniform,
            ValueDist::Normal,
            ValueDist::Sorted,
            ValueDist::Zigzag,
            ValueDist::Clustered { distinct: 64 },
        ]
    }
}

/// One standard normal variate by Box-Muller.
fn gaussian(rng: &mut Rng64) -> f64 {
    let u1 = rng.f64().max(f64::MIN_POSITIVE);
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::RankOracle;

    #[test]
    fn generates_requested_length_for_all_kinds() {
        for dist in [
            ValueDist::Uniform,
            ValueDist::Normal,
            ValueDist::Exponential,
            ValueDist::Sorted,
            ValueDist::ReverseSorted,
            ValueDist::Zigzag,
            ValueDist::Clustered { distinct: 5 },
        ] {
            assert_eq!(dist.generate(321, 1).len(), 321, "{}", dist.label());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            ValueDist::Normal.generate(100, 5),
            ValueDist::Normal.generate(100, 5)
        );
        assert_ne!(
            ValueDist::Uniform.generate(100, 5),
            ValueDist::Uniform.generate(100, 6)
        );
    }

    #[test]
    fn sorted_is_sorted_and_reverse_is_reversed() {
        let s = ValueDist::Sorted.generate(100, 0);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        let r = ValueDist::ReverseSorted.generate(100, 0);
        assert!(r.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn uniform_median_is_central() {
        let v = ValueDist::Uniform.generate(50_000, 2);
        let oracle = RankOracle::from_stream(v);
        let median = *oracle.quantile(0.5).unwrap() as f64 / UNIT_SCALE;
        assert!((0.48..0.52).contains(&median), "median {median}");
    }

    #[test]
    fn normal_is_symmetric_about_mean() {
        let v = ValueDist::Normal.generate(50_000, 3);
        let oracle = RankOracle::from_stream(v);
        let med = *oracle.quantile(0.5).unwrap() as f64;
        let mean = 4_294_967_296.0;
        let sd = 268_435_456.0;
        assert!((med - mean).abs() < 0.05 * sd, "median {med}");
    }

    #[test]
    fn zigzag_alternates_halves() {
        let v = ValueDist::Zigzag.generate(10, 0);
        for (i, &x) in v.iter().enumerate() {
            if i % 2 == 0 {
                assert!(x < u64::MAX / 4);
            } else {
                assert!(x >= u64::MAX / 2);
            }
        }
    }

    #[test]
    fn clustered_has_bounded_support() {
        let v = ValueDist::Clustered { distinct: 7 }.generate(10_000, 4);
        let mut support: Vec<u64> = v.clone();
        support.sort_unstable();
        support.dedup();
        assert!(support.len() <= 7);
        assert!(support.iter().all(|&x| x < 7));
    }

    #[test]
    fn exponential_is_right_skewed() {
        let v = ValueDist::Exponential.generate(50_000, 5);
        let oracle = RankOracle::from_stream(v.clone());
        let med = *oracle.quantile(0.5).unwrap() as f64;
        let mean = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        assert!(mean > med, "right skew: mean {mean} ≤ median {med}");
    }
}

//! Deterministic workload generators for the mergeable-summaries experiments.
//!
//! Everything here is seeded through [`ms_core::Rng64`], so a `(generator,
//! seed)` pair reproduces the same dataset bit-for-bit on every run — the
//! experiment harness records both.
//!
//! * [`zipf`] — Zipf(s) sampling over `{1..N}` by rejection-inversion
//!   (Hörmann & Derflinger), the standard skewed-frequency workload;
//! * [`streams`] — item streams for heavy-hitter summaries (uniform, Zipf,
//!   hot-set, sequential, adversarial);
//! * [`values`] — totally ordered value streams for quantile summaries
//!   (uniform, normal, clustered, sorted/reversed/zigzag adversarial);
//! * [`partition`] — splitting one stream across simulated sites
//!   (round-robin, contiguous, by-key, skewed shares);
//! * [`points`] — 2D point clouds for ε-approximations and ε-kernels.

pub mod partition;
pub mod points;
pub mod streams;
pub mod values;
pub mod zipf;

pub use partition::Partitioner;
pub use points::CloudKind;
pub use streams::StreamKind;
pub use values::ValueDist;
pub use zipf::Zipf;

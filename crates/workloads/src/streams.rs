//! Item streams for heavy-hitter experiments.
//!
//! Each [`StreamKind`] describes a distribution over `u64` items;
//! [`StreamKind::generate`] materializes `n` items deterministically from a
//! seed. The adversarial kinds target the worst cases of the analyses in
//! §3 of the paper (Misra-Gries error is driven by the weight that decrement
//! operations discard, which all-distinct tails maximize).

use crate::zipf::Zipf;
use ms_core::Rng64;

/// A distribution over `u64` items.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamKind {
    /// Uniform over `{0, …, universe−1}` — no heavy hitters at all (every
    /// counter algorithm must degrade gracefully to "nothing to report").
    Uniform {
        /// Universe size.
        universe: u64,
    },
    /// Zipf with exponent `s` over `{1, …, universe}` — the canonical skewed
    /// workload; item `k` has frequency ∝ `k^{−s}`.
    Zipf {
        /// Skew exponent.
        s: f64,
        /// Universe size.
        universe: u64,
    },
    /// A hot set of `hot` items receiving `hot_fraction` of the stream, the
    /// remainder uniform over a large cold universe.
    HotSet {
        /// Number of hot items (ids `0..hot`).
        hot: u64,
        /// Fraction of the stream going to the hot set.
        hot_fraction: f64,
        /// Cold universe size (ids `hot..hot+universe`).
        universe: u64,
    },
    /// Round-robin over `{0, …, universe−1}` — perfectly balanced, every
    /// item is exactly at the frequency threshold boundary.
    Sequential {
        /// Universe size.
        universe: u64,
    },
    /// Misra-Gries adversary: `k` items each repeated `n/(2k)` times up
    /// front, then all-distinct filler. The filler triggers the maximum
    /// number of decrements against the real heavy hitters.
    MgAdversarial {
        /// Number of planted heavy items.
        k: u64,
    },
    /// Every position a fresh item — forces constant counter eviction.
    AllDistinct,
    /// A single repeated item — degenerate best case.
    AllSame,
}

impl StreamKind {
    /// Materialize `n` items deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Rng64::new(seed);
        match *self {
            StreamKind::Uniform { universe } => {
                (0..n).map(|_| rng.below(universe.max(1))).collect()
            }
            StreamKind::Zipf { s, universe } => {
                let zipf = Zipf::new(universe.max(1), s);
                (0..n).map(|_| zipf.sample(&mut rng)).collect()
            }
            StreamKind::HotSet {
                hot,
                hot_fraction,
                universe,
            } => (0..n)
                .map(|_| {
                    if rng.bernoulli(hot_fraction) {
                        rng.below(hot.max(1))
                    } else {
                        hot + rng.below(universe.max(1))
                    }
                })
                .collect(),
            StreamKind::Sequential { universe } => {
                (0..n).map(|i| i as u64 % universe.max(1)).collect()
            }
            StreamKind::MgAdversarial { k } => {
                let k = k.max(1);
                let heavy_total = n / 2;
                let per_item = (heavy_total as u64 / k).max(1);
                let mut out = Vec::with_capacity(n);
                'outer: for item in 0..k {
                    for _ in 0..per_item {
                        if out.len() == n {
                            break 'outer;
                        }
                        out.push(item);
                    }
                }
                // Distinct filler drawn far above the heavy ids.
                let mut next_fresh = 1u64 << 32;
                while out.len() < n {
                    out.push(next_fresh);
                    next_fresh += 1;
                }
                // Interleave heavies and filler so decrements interact with
                // live counters rather than arriving after the fact.
                rng.shuffle(&mut out);
                out
            }
            StreamKind::AllDistinct => (0..n as u64).collect(),
            StreamKind::AllSame => vec![7; n],
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match *self {
            StreamKind::Uniform { universe } => format!("uniform(u={universe})"),
            StreamKind::Zipf { s, universe } => format!("zipf(s={s},u={universe})"),
            StreamKind::HotSet {
                hot, hot_fraction, ..
            } => format!("hotset(h={hot},f={hot_fraction})"),
            StreamKind::Sequential { universe } => format!("seq(u={universe})"),
            StreamKind::MgAdversarial { k } => format!("mg-adv(k={k})"),
            StreamKind::AllDistinct => "all-distinct".into(),
            StreamKind::AllSame => "all-same".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::FrequencyOracle;

    #[test]
    fn generates_requested_length() {
        for kind in [
            StreamKind::Uniform { universe: 100 },
            StreamKind::Zipf {
                s: 1.1,
                universe: 100,
            },
            StreamKind::HotSet {
                hot: 5,
                hot_fraction: 0.8,
                universe: 1000,
            },
            StreamKind::Sequential { universe: 10 },
            StreamKind::MgAdversarial { k: 4 },
            StreamKind::AllDistinct,
            StreamKind::AllSame,
        ] {
            assert_eq!(kind.generate(1234, 7).len(), 1234, "{}", kind.label());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let kind = StreamKind::Zipf {
            s: 1.3,
            universe: 50,
        };
        assert_eq!(kind.generate(500, 11), kind.generate(500, 11));
        assert_ne!(kind.generate(500, 11), kind.generate(500, 12));
    }

    #[test]
    fn uniform_covers_universe() {
        let items = StreamKind::Uniform { universe: 10 }.generate(10_000, 3);
        let oracle = FrequencyOracle::from_stream(items);
        assert_eq!(oracle.distinct(), 10);
    }

    #[test]
    fn sequential_is_balanced() {
        let items = StreamKind::Sequential { universe: 10 }.generate(1000, 0);
        let oracle = FrequencyOracle::from_stream(items);
        for i in 0..10u64 {
            assert_eq!(oracle.count(&i), 100);
        }
    }

    #[test]
    fn hotset_concentrates_mass() {
        let items = StreamKind::HotSet {
            hot: 3,
            hot_fraction: 0.9,
            universe: 100_000,
        }
        .generate(50_000, 5);
        let oracle = FrequencyOracle::from_stream(items);
        let hot_mass: u64 = (0..3u64).map(|i| oracle.count(&i)).sum();
        let frac = hot_mass as f64 / oracle.total() as f64;
        assert!((0.87..0.93).contains(&frac), "hot mass fraction {frac}");
    }

    #[test]
    fn mg_adversarial_plants_heavies_and_distinct_tail() {
        let items = StreamKind::MgAdversarial { k: 4 }.generate(8000, 9);
        let oracle = FrequencyOracle::from_stream(items);
        for item in 0..4u64 {
            assert_eq!(oracle.count(&item), 1000, "planted item {item}");
        }
        // Tail is all distinct singletons.
        let tail_distinct = oracle.distinct() - 4;
        assert_eq!(tail_distinct as u64, 4000);
    }

    #[test]
    fn all_same_and_all_distinct() {
        let same = FrequencyOracle::from_stream(StreamKind::AllSame.generate(100, 0));
        assert_eq!(same.distinct(), 1);
        let distinct = FrequencyOracle::from_stream(StreamKind::AllDistinct.generate(100, 0));
        assert_eq!(distinct.distinct(), 100);
    }

    #[test]
    fn labels_are_informative() {
        assert!(StreamKind::Zipf {
            s: 1.5,
            universe: 10
        }
        .label()
        .contains("1.5"));
        assert_eq!(StreamKind::AllSame.label(), "all-same");
    }
}

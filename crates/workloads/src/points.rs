//! 2D point clouds for the ε-approximation and ε-kernel experiments.

use ms_core::{Point2, Rng64};

/// A family of 2D point clouds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CloudKind {
    /// Uniform in the unit square.
    UniformSquare,
    /// Uniform in the unit disk (rejection sampling).
    Disk,
    /// On the unit circle (worst case for kernels: every point is extreme
    /// in some direction).
    Ring,
    /// Isotropic Gaussian, sd 1.
    Gaussian,
    /// Anisotropic ellipse boundary with the given aspect ratio — stresses
    /// the fatness assumption behind restricted kernel mergeability.
    Ellipse {
        /// Ratio of major to minor axis.
        aspect: f64,
    },
    /// Two well-separated Gaussian clusters — stresses merge-reduce when
    /// sites see disjoint regions.
    TwoClusters,
}

impl CloudKind {
    /// Materialize `n` points deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = Rng64::new(seed);
        let mut out = Vec::with_capacity(n);
        match *self {
            CloudKind::UniformSquare => {
                for _ in 0..n {
                    out.push(Point2::new(rng.f64(), rng.f64()));
                }
            }
            CloudKind::Disk => {
                while out.len() < n {
                    let x = 2.0 * rng.f64() - 1.0;
                    let y = 2.0 * rng.f64() - 1.0;
                    if x * x + y * y <= 1.0 {
                        out.push(Point2::new(x, y));
                    }
                }
            }
            CloudKind::Ring => {
                for _ in 0..n {
                    let theta = rng.f64() * std::f64::consts::TAU;
                    out.push(Point2::new(theta.cos(), theta.sin()));
                }
            }
            CloudKind::Gaussian => {
                for _ in 0..n {
                    let (x, y) = gaussian_pair(&mut rng);
                    out.push(Point2::new(x, y));
                }
            }
            CloudKind::Ellipse { aspect } => {
                for _ in 0..n {
                    let theta = rng.f64() * std::f64::consts::TAU;
                    out.push(Point2::new(aspect * theta.cos(), theta.sin()));
                }
            }
            CloudKind::TwoClusters => {
                for _ in 0..n {
                    let (x, y) = gaussian_pair(&mut rng);
                    let center = if rng.coin() { 10.0 } else { -10.0 };
                    out.push(Point2::new(center + 0.5 * x, 0.5 * y));
                }
            }
        }
        out
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match *self {
            CloudKind::UniformSquare => "square".into(),
            CloudKind::Disk => "disk".into(),
            CloudKind::Ring => "ring".into(),
            CloudKind::Gaussian => "gaussian".into(),
            CloudKind::Ellipse { aspect } => format!("ellipse(a={aspect})"),
            CloudKind::TwoClusters => "two-clusters".into(),
        }
    }

    /// The clouds swept by the geometric experiments.
    pub fn canonical() -> [CloudKind; 5] {
        [
            CloudKind::UniformSquare,
            CloudKind::Disk,
            CloudKind::Ring,
            CloudKind::Gaussian,
            CloudKind::Ellipse { aspect: 10.0 },
        ]
    }
}

/// Two independent standard normals (Box-Muller).
fn gaussian_pair(rng: &mut Rng64) -> (f64, f64) {
    let u1 = rng.f64().max(f64::MIN_POSITIVE);
    let u2 = rng.f64();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        for kind in CloudKind::canonical() {
            assert_eq!(kind.generate(257, 1).len(), 257, "{}", kind.label());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CloudKind::Disk.generate(100, 9);
        let b = CloudKind::Disk.generate(100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn square_points_in_unit_square() {
        for p in CloudKind::UniformSquare.generate(1000, 2) {
            assert!((0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y));
        }
    }

    #[test]
    fn disk_points_inside_unit_disk() {
        for p in CloudKind::Disk.generate(1000, 3) {
            assert!(p.x * p.x + p.y * p.y <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn ring_points_on_unit_circle() {
        for p in CloudKind::Ring.generate(1000, 4) {
            assert!(((p.x * p.x + p.y * p.y) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ellipse_is_anisotropic() {
        let pts = CloudKind::Ellipse { aspect: 10.0 }.generate(2000, 5);
        let w_x = ms_core::directional_width(&pts, (1.0, 0.0));
        let w_y = ms_core::directional_width(&pts, (0.0, 1.0));
        assert!(w_x > 5.0 * w_y, "x width {w_x}, y width {w_y}");
    }

    #[test]
    fn two_clusters_are_separated() {
        let pts = CloudKind::TwoClusters.generate(2000, 6);
        let left = pts.iter().filter(|p| p.x < 0.0).count();
        let right = pts.len() - left;
        assert!(left > 500 && right > 500);
        assert!(pts.iter().all(|p| p.x.abs() > 5.0));
    }

    #[test]
    fn gaussian_is_centered() {
        let pts = CloudKind::Gaussian.generate(20_000, 7);
        let mx = pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64;
        let my = pts.iter().map(|p| p.y).sum::<f64>() / pts.len() as f64;
        assert!(mx.abs() < 0.05 && my.abs() < 0.05, "mean ({mx},{my})");
    }
}

//! Splitting one logical dataset across simulated sites.
//!
//! Mergeability must hold for *any* partition of the data, so the
//! experiments sweep several: round-robin (each site sees the same
//! distribution), contiguous (sites see temporal segments — adversarial for
//! sorted inputs), by-key (each site sees a disjoint item universe — the
//! no-shared-counters worst case for the heavy-hitter merge), and skewed
//! shares (site sizes differ by orders of magnitude, stressing unequal-size
//! merges).

use ms_core::Rng64;

/// Strategy for distributing a stream across `sites` simulated nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Element `i` goes to site `i mod sites`.
    RoundRobin,
    /// The stream is cut into `sites` contiguous segments.
    Contiguous,
    /// Element `x` goes to site `hash(x) mod sites`: each site sees a
    /// disjoint slice of the universe.
    ByKey,
    /// Site `j` receives a share proportional to `(j+1)^{-1}` of a random
    /// assignment — heavily unequal site sizes.
    Skewed {
        /// Seed for the random assignment.
        seed: u64,
    },
}

impl Partitioner {
    /// Split `items` into `sites` sub-streams (some may be empty for
    /// [`Partitioner::Skewed`]).
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0`.
    pub fn split<T: Clone + std::hash::Hash>(&self, items: &[T], sites: usize) -> Vec<Vec<T>> {
        assert!(sites > 0, "cannot partition across zero sites");
        let mut parts: Vec<Vec<T>> = (0..sites)
            .map(|_| Vec::with_capacity(items.len() / sites + 1))
            .collect();
        match *self {
            Partitioner::RoundRobin => {
                for (i, item) in items.iter().enumerate() {
                    parts[i % sites].push(item.clone());
                }
            }
            Partitioner::Contiguous => {
                let chunk = items.len().div_ceil(sites).max(1);
                for (i, item) in items.iter().enumerate() {
                    parts[(i / chunk).min(sites - 1)].push(item.clone());
                }
            }
            Partitioner::ByKey => {
                use std::hash::BuildHasher;
                let build = ms_core::FxBuildHasher::default();
                for item in items {
                    parts[(build.hash_one(item) % sites as u64) as usize].push(item.clone());
                }
            }
            Partitioner::Skewed { seed } => {
                let mut rng = Rng64::new(seed);
                // Harmonic weights: site j has weight 1/(j+1).
                let weights: Vec<f64> = (0..sites).map(|j| 1.0 / (j + 1) as f64).collect();
                let total: f64 = weights.iter().sum();
                let cumulative: Vec<f64> = weights
                    .iter()
                    .scan(0.0, |acc, w| {
                        *acc += w / total;
                        Some(*acc)
                    })
                    .collect();
                for item in items {
                    let u = rng.f64();
                    let site = cumulative.partition_point(|&c| c < u).min(sites - 1);
                    parts[site].push(item.clone());
                }
            }
        }
        parts
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Partitioner::RoundRobin => "round-robin",
            Partitioner::Contiguous => "contiguous",
            Partitioner::ByKey => "by-key",
            Partitioner::Skewed { .. } => "skewed",
        }
    }

    /// The partitioners swept by the experiments.
    pub fn canonical() -> [Partitioner; 4] {
        [
            Partitioner::RoundRobin,
            Partitioner::Contiguous,
            Partitioner::ByKey,
            Partitioner::Skewed { seed: 0xBEEF },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flatten_sorted(parts: &[Vec<u64>]) -> Vec<u64> {
        let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn every_partitioner_preserves_the_multiset() {
        let items: Vec<u64> = (0..1000).map(|i| i % 37).collect();
        let mut expected = items.clone();
        expected.sort_unstable();
        for p in Partitioner::canonical() {
            let parts = p.split(&items, 7);
            assert_eq!(parts.len(), 7, "{}", p.label());
            assert_eq!(flatten_sorted(&parts), expected, "{}", p.label());
        }
    }

    #[test]
    fn round_robin_is_balanced() {
        let items: Vec<u64> = (0..100).collect();
        let parts = Partitioner::RoundRobin.split(&items, 4);
        for part in &parts {
            assert_eq!(part.len(), 25);
        }
        assert_eq!(
            parts[0],
            vec![
                0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64, 68, 72, 76, 80,
                84, 88, 92, 96
            ]
        );
    }

    #[test]
    fn contiguous_preserves_order_within_segments() {
        let items: Vec<u64> = (0..10).collect();
        let parts = Partitioner::Contiguous.split(&items, 3);
        assert_eq!(parts[0], vec![0, 1, 2, 3]);
        assert_eq!(parts[1], vec![4, 5, 6, 7]);
        assert_eq!(parts[2], vec![8, 9]);
    }

    #[test]
    fn by_key_sends_equal_items_to_one_site() {
        let items: Vec<u64> = (0..1000).map(|i| i % 10).collect();
        let parts = Partitioner::ByKey.split(&items, 4);
        // Each of the 10 distinct keys must appear in exactly one part.
        for key in 0..10u64 {
            let sites_with_key = parts.iter().filter(|part| part.contains(&key)).count();
            assert_eq!(sites_with_key, 1, "key {key}");
        }
    }

    #[test]
    fn skewed_gives_site_zero_the_largest_share() {
        let items: Vec<u64> = (0..10_000).collect();
        let parts = Partitioner::Skewed { seed: 1 }.split(&items, 8);
        assert!(parts[0].len() > parts[7].len() * 3);
    }

    #[test]
    fn single_site_gets_everything() {
        let items: Vec<u64> = (0..50).collect();
        for p in Partitioner::canonical() {
            let parts = p.split(&items, 1);
            assert_eq!(parts.len(), 1);
            assert_eq!(flatten_sorted(&parts), items);
        }
    }

    #[test]
    fn more_sites_than_items() {
        let items: Vec<u64> = (0..3).collect();
        let parts = Partitioner::Contiguous.split(&items, 10);
        assert_eq!(parts.len(), 10);
        assert_eq!(flatten_sorted(&parts), items);
    }

    #[test]
    #[should_panic(expected = "zero sites")]
    fn zero_sites_panics() {
        let _ = Partitioner::RoundRobin.split(&[1u64], 0);
    }
}

//! Zipf(s) sampling over `{1, …, n}` by rejection-inversion.
//!
//! Implements the Hörmann & Derflinger (1996) rejection-inversion sampler
//! (the algorithm behind Apache Commons' `RejectionInversionZipfSampler` and
//! `rand_distr::Zipf`): O(1) expected time per sample, no CDF table, works
//! for any exponent `s > 0` including `s = 1`, for arbitrarily large `n`.

use ms_core::Rng64;

/// Zipf distribution with exponent `s` over the universe `{1, …, n}`:
/// `P(k) ∝ k^{−s}`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    inv_s_threshold: f64,
}

impl Zipf {
    /// Construct the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0` or `s` is not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf universe must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, s);
        let inv_s_threshold = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Zipf {
            n,
            s,
            h_x1,
            h_n,
            inv_s_threshold,
        }
    }

    /// Universe size `n`.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// Exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draw one sample in `{1, …, n}`.
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        loop {
            let u = self.h_n + rng.f64() * (self.h_x1 - self.h_n);
            // u is uniform in (h_n, h_x1].
            let x = h_integral_inverse(u, self.s);
            let k = x.clamp(1.0, self.n as f64).round();
            if k - x <= self.inv_s_threshold || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as u64;
            }
        }
    }

    /// Exact probability mass of `k` (for tests), computed by normalizing
    /// over the whole universe — O(n), test-only use.
    pub fn exact_pmf(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n);
        let z: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        (k as f64).powf(-self.s) / z
    }
}

/// `H(x) = ∫₁ˣ t^{−s} dt = (x^{1−s} − 1)/(1−s)` computed stably near `s = 1`
/// (where it degenerates to `ln x`).
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^{−s}`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // Numerical round-off: clamp to the domain boundary.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `log1p(x)/x`, stable for `x → 0`.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `expm1(x)/x`, stable for `x → 0`.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_pmf(zipf: &Zipf, seed: u64, samples: usize) -> Vec<f64> {
        let mut rng = Rng64::new(seed);
        let mut counts = vec![0u64; zipf.universe() as usize + 1];
        for _ in 0..samples {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / samples as f64).collect()
    }

    #[test]
    fn samples_stay_in_universe() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = Rng64::new(1);
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn universe_of_one_always_returns_one() {
        let zipf = Zipf::new(1, 1.5);
        let mut rng = Rng64::new(2);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn matches_exact_pmf_small_universe() {
        for s in [0.5, 1.0, 1.5, 2.0] {
            let zipf = Zipf::new(10, s);
            let emp = empirical_pmf(&zipf, 42, 200_000);
            for k in 1..=10u64 {
                let exact = zipf.exact_pmf(k);
                let got = emp[k as usize];
                assert!(
                    (got - exact).abs() < 0.01,
                    "s={s} k={k}: exact {exact}, empirical {got}"
                );
            }
        }
    }

    #[test]
    fn exponent_one_is_handled() {
        // s = 1 hits the log-degenerate branch of h_integral.
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = Rng64::new(3);
        let mut ones = 0;
        let trials = 50_000;
        for _ in 0..trials {
            if zipf.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        let expected = zipf.exact_pmf(1);
        let got = ones as f64 / trials as f64;
        assert!((got - expected).abs() < 0.01, "exact {expected}, got {got}");
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let mild = Zipf::new(1000, 0.8);
        let steep = Zipf::new(1000, 2.0);
        let p1_mild = empirical_pmf(&mild, 4, 100_000)[1];
        let p1_steep = empirical_pmf(&steep, 4, 100_000)[1];
        assert!(p1_steep > p1_mild + 0.2, "{p1_steep} vs {p1_mild}");
    }

    #[test]
    fn deterministic_given_seed() {
        let zipf = Zipf::new(500, 1.1);
        let mut a = Rng64::new(9);
        let mut b = Rng64::new(9);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn zero_universe_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn non_positive_exponent_panics() {
        let _ = Zipf::new(10, 0.0);
    }

    #[test]
    fn large_universe_does_not_overflow() {
        let zipf = Zipf::new(u64::MAX / 2, 1.5);
        let mut rng = Rng64::new(10);
        for _ in 0..1000 {
            let k = zipf.sample(&mut rng);
            assert!(k >= 1);
        }
    }
}

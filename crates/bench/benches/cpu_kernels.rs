//! Batched CPU hot-path kernels: Count-Min batch update and multiway
//! merge, scalar reference vs runtime-dispatched (AVX2/NEON) variants.
//! Persists `results/BENCH_kernels.json`.
//!
//! Deterministic and meaningful on a 1-CPU host: every row is a
//! single-threaded kernel measured over seeded inputs, so the
//! scalar-vs-dispatched ratio does not depend on core count.
//!
//! `MS_KERNEL_GATE=<ratio>` turns this into a CI gate: the process exits
//! non-zero unless the dispatched Count-Min update and merge kernels are
//! at least `ratio`× their scalar baselines. On hosts where no vector
//! path exists (or under `MS_FORCE_SCALAR=1`) both numbers are still
//! recorded and the gate self-skips with a logged reason.
//!
//! `MS_BENCH_MS` / `MS_BENCH_ITEMS` budget knobs as in the other benches.

use ms_bench::{Measurement, Suite};
use ms_core::simd::{self, Isa};
use ms_core::{ItemSummary, Json, Rng64, Summary, ToJson};
use ms_sketches::batch;
use ms_sketches::hashing::PairwiseHash;
use ms_sketches::CountMinSketch;
use ms_workloads::StreamKind;

/// ε = 0.01 Count-Min geometry (width 272 × depth 5) for the update rows.
const UPDATE_EPS: f64 = 0.01;
/// ε = 0.001 geometry (width 2719 × depth 5) for the merge rows: big
/// enough that the table walk, not loop setup, dominates.
const MERGE_TABLE_CELLS: usize = 2719 * 5;
/// Sources fused per multiway merge — the compactor's backlog fan-in.
const MERGE_SOURCES: usize = 8;

fn rate(measurements: &[Measurement], label: &str) -> f64 {
    measurements
        .iter()
        .find(|m| m.label == label)
        .and_then(Measurement::throughput)
        .unwrap_or(0.0)
}

fn main() {
    let n: usize = std::env::var("MS_BENCH_ITEMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(65_536);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let isa = simd::active_isa();
    println!(
        "cpu kernels: dispatch={} host_cpus={host_cpus} forced_scalar={}",
        isa.label(),
        simd::force_scalar()
    );

    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(n, 0xF417_5EED);

    // -- Count-Min batch update: per-item (pre-batching), scalar batch
    // kernel (semantic source of truth), dispatched batch kernel.
    let mut update = Suite::new("cm_update (eps=0.01, 272x5)");
    update.bench_elems("per_item", n as u64, || {
        let mut s = CountMinSketch::for_epsilon_delta(UPDATE_EPS, 0.01, 7);
        for &item in &items {
            s.update(std::hint::black_box(item));
        }
        std::hint::black_box(s.total_weight())
    });
    update.bench_elems("batch_scalar", n as u64, || {
        let mut s = CountMinSketch::for_epsilon_delta(UPDATE_EPS, 0.01, 7);
        s.update_batch_with(Isa::Scalar, std::hint::black_box(&items));
        std::hint::black_box(s.total_weight())
    });
    update.bench_elems("batch_dispatched", n as u64, || {
        let mut s = CountMinSketch::for_epsilon_delta(UPDATE_EPS, 0.01, 7);
        s.update_batch_with(isa, std::hint::black_box(&items));
        std::hint::black_box(s.total_weight())
    });
    let update_rows = update.finish();

    // -- Row-bucket hash kernel in isolation: hash + Mersenne reduce +
    // `% width`, the arithmetic the AVX2 path rewrites (magic-multiply
    // division instead of one hardware `div` per item).
    let mut hash = Suite::new("row_buckets (width=272)");
    let hash_fn = PairwiseHash::new(0xB0B5_CAFE);
    let mut rng = Rng64::new(0x2026_0806);
    let fps: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let mut out = vec![0u32; n];
    for tier in simd::supported_isas() {
        hash.bench_elems(tier.label(), n as u64, || {
            batch::row_buckets_with(tier, &hash_fn, 272, &fps, &mut out);
            std::hint::black_box(out[n - 1])
        });
    }
    let hash_rows = hash.finish();

    // -- Count-Min merge: the compactor's backlog fold. The scalar
    // baseline is what the engine shipped before this change — eight
    // sequential pairwise table adds — and the dispatched kernel is the
    // fused multiway add that walks the destination once.
    let mut merge = Suite::new(&format!(
        "cm_merge (eps=0.001, 2719x5, {MERGE_SOURCES} sources)"
    ));
    let mut rng = Rng64::new(0xF417_5EED);
    let sources: Vec<Vec<u64>> = (0..MERGE_SOURCES)
        .map(|_| {
            (0..MERGE_TABLE_CELLS)
                .map(|_| rng.next_u64() >> 8)
                .collect()
        })
        .collect();
    let source_refs: Vec<&[u64]> = sources.iter().map(Vec::as_slice).collect();
    let mut dst = vec![0u64; MERGE_TABLE_CELLS];
    let cells = (MERGE_TABLE_CELLS * MERGE_SOURCES) as u64;
    merge.bench_elems("sequential_scalar", cells, || {
        for src in &source_refs {
            simd::add_slices_with(Isa::Scalar, &mut dst, std::hint::black_box(src));
        }
        std::hint::black_box(dst[0])
    });
    merge.bench_elems("fused_scalar", cells, || {
        simd::add_slices_multi_with(Isa::Scalar, &mut dst, std::hint::black_box(&source_refs));
        std::hint::black_box(dst[0])
    });
    merge.bench_elems("fused_dispatched", cells, || {
        simd::add_slices_multi_with(isa, &mut dst, std::hint::black_box(&source_refs));
        std::hint::black_box(dst[0])
    });
    let merge_rows = merge.finish();

    let update_scalar = rate(&update_rows, "batch_scalar");
    let update_dispatched = rate(&update_rows, "batch_dispatched");
    let update_ratio = update_dispatched / update_scalar.max(1.0);
    let merge_scalar = rate(&merge_rows, "sequential_scalar");
    let merge_dispatched = rate(&merge_rows, "fused_dispatched");
    let merge_ratio = merge_dispatched / merge_scalar.max(1.0);
    println!(
        "\ncm_update dispatched/scalar: {update_ratio:.2}x   \
         cm_merge fused-dispatched/sequential-scalar: {merge_ratio:.2}x"
    );

    if let Ok(gate) = std::env::var("MS_KERNEL_GATE") {
        let gate: f64 = gate.parse().expect("MS_KERNEL_GATE must be a number");
        if !isa.is_vector() {
            let reason = if simd::force_scalar() {
                "MS_FORCE_SCALAR set"
            } else {
                "host ISA has no vector path"
            };
            println!(
                "kernel gate SKIPPED ({reason}): both numbers recorded — \
                 update {update_ratio:.2}x, merge {merge_ratio:.2}x, gate {gate:.2}x"
            );
        } else if update_ratio < gate || merge_ratio < gate {
            eprintln!(
                "kernel gate FAILED: update {update_ratio:.2}x, merge {merge_ratio:.2}x, \
                 required {gate:.2}x on {}",
                isa.label()
            );
            std::process::exit(1);
        } else {
            println!(
                "kernel gate passed on {}: update {update_ratio:.2}x, \
                 merge {merge_ratio:.2}x (gate {gate:.2}x)",
                isa.label()
            );
        }
    }

    let suite_json = |rows: &[Measurement]| {
        Json::Arr(
            rows.iter()
                .map(|m| {
                    Json::obj([
                        ("label", m.label.to_json()),
                        ("ns_per_iter", m.ns_per_iter.to_json()),
                        ("updates_per_sec", m.throughput().unwrap_or(0.0).to_json()),
                    ])
                })
                .collect(),
        )
    };
    let record = Json::obj([
        ("id", "bench_kernels".to_json()),
        ("items", n.to_json()),
        ("host_cpus", host_cpus.to_json()),
        ("dispatched_isa", isa.label().to_json()),
        ("forced_scalar", simd::force_scalar().to_json()),
        ("cm_update", suite_json(&update_rows)),
        ("row_buckets", suite_json(&hash_rows)),
        ("cm_merge", suite_json(&merge_rows)),
        (
            "ratios",
            Json::obj([
                ("cm_update_dispatched_vs_scalar", update_ratio.to_json()),
                (
                    "cm_merge_fused_dispatched_vs_sequential_scalar",
                    merge_ratio.to_json(),
                ),
            ]),
        ),
    ]);
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_kernels.json");
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&path, record.to_string_pretty()))
    {
        eprintln!("warning: could not persist BENCH_kernels.json: {e}");
    } else {
        println!("wrote {}", path.display());
    }
}

//! Throughput of the quantile summaries (E9): inserts, merges, queries.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ms_core::Mergeable;
use ms_quantiles::{BottomKSample, GkSummary, HybridQuantile, KnownNQuantile, RankSummary};
use ms_workloads::ValueDist;

fn bench_inserts(c: &mut Criterion) {
    let n = 100_000;
    let values = ValueDist::Uniform.generate(n, 1);
    let mut group = c.benchmark_group("quantile_insert");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(n as u64));

    for eps in [0.05, 0.01] {
        group.bench_with_input(
            BenchmarkId::new("known_n", format!("eps={eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let mut q = KnownNQuantile::new(eps, n as u64, 7);
                    for &v in &values {
                        q.insert(black_box(v));
                    }
                    black_box(q.count())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hybrid", format!("eps={eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let mut q = HybridQuantile::new(eps, 7);
                    for &v in &values {
                        q.insert(black_box(v));
                    }
                    black_box(q.count())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gk", format!("eps={eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let mut q = GkSummary::new(eps);
                    for &v in &values {
                        q.insert(black_box(v));
                    }
                    black_box(q.count())
                });
            },
        );
    }
    group.bench_function("bottom_k_4096", |b| {
        b.iter(|| {
            let mut q = BottomKSample::new(4096, 7);
            for &v in &values {
                q.insert(black_box(v));
            }
            black_box(q.count())
        });
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let values = ValueDist::Normal.generate(500_000, 2);
    let mut hybrid = HybridQuantile::new(0.01, 3);
    for &v in &values {
        hybrid.insert(v);
    }
    let mut group = c.benchmark_group("quantile_query");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("hybrid_rank", |b| {
        b.iter(|| black_box(hybrid.rank(black_box(&4_294_967_296))));
    });
    group.bench_function("hybrid_quantile", |b| {
        b.iter(|| black_box(hybrid.quantile(black_box(0.5))));
    });
    group.finish();
}

fn bench_merges(c: &mut Criterion) {
    let values = ValueDist::Uniform.generate(100_000, 4);
    let mk_known = |seed: u64, slice: &[u64]| {
        let mut q = KnownNQuantile::new(0.01, 100_000, seed);
        for &v in slice {
            q.insert(v);
        }
        q
    };
    let a = mk_known(1, &values[..50_000]);
    let b2 = mk_known(2, &values[50_000..]);
    let mut group = c.benchmark_group("quantile_merge");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("known_n_two_way", |b| {
        b.iter_batched(
            || (a.clone(), b2.clone()),
            |(x, y)| black_box(x.merge(y).unwrap()),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_queries, bench_merges);
criterion_main!(benches);

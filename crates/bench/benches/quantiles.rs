//! Throughput of the quantile summaries (E9): inserts, merges, queries.

use std::hint::black_box;

use ms_bench::Suite;
use ms_core::Mergeable;
use ms_quantiles::{BottomKSample, GkSummary, HybridQuantile, KnownNQuantile, RankSummary};
use ms_workloads::ValueDist;

fn main() {
    let n = 100_000;
    let values = ValueDist::Uniform.generate(n, 1);

    let mut inserts = Suite::new("quantile_insert");
    for eps in [0.05, 0.01] {
        inserts.bench_elems(&format!("known_n/eps={eps}"), n as u64, || {
            let mut q = KnownNQuantile::new(eps, n as u64, 7);
            for &v in &values {
                q.insert(black_box(v));
            }
            black_box(q.count())
        });
        inserts.bench_elems(&format!("hybrid/eps={eps}"), n as u64, || {
            let mut q = HybridQuantile::new(eps, 7);
            for &v in &values {
                q.insert(black_box(v));
            }
            black_box(q.count())
        });
        inserts.bench_elems(&format!("gk/eps={eps}"), n as u64, || {
            let mut q = GkSummary::new(eps);
            for &v in &values {
                q.insert(black_box(v));
            }
            black_box(q.count())
        });
    }
    inserts.bench_elems("bottom_k_4096", n as u64, || {
        let mut q = BottomKSample::new(4096, 7);
        for &v in &values {
            q.insert(black_box(v));
        }
        black_box(q.count())
    });
    inserts.finish();

    let big = ValueDist::Normal.generate(500_000, 2);
    let mut hybrid = HybridQuantile::new(0.01, 3);
    for &v in &big {
        hybrid.insert(v);
    }
    let mut queries = Suite::new("quantile_query");
    queries.bench("hybrid_rank", || {
        black_box(hybrid.rank(black_box(&4_294_967_296)))
    });
    queries.bench("hybrid_quantile", || {
        black_box(hybrid.quantile(black_box(0.5)))
    });
    queries.finish();

    let mk_known = |seed: u64, slice: &[u64]| {
        let mut q = KnownNQuantile::new(0.01, 100_000, seed);
        for &v in slice {
            q.insert(v);
        }
        q
    };
    let a = mk_known(1, &values[..50_000]);
    let b = mk_known(2, &values[50_000..]);
    let mut merges = Suite::new("quantile_merge");
    merges.bench("known_n_two_way", || {
        black_box(a.clone().merge(b.clone()).unwrap())
    });
    merges.finish();
}

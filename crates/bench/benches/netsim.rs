//! Cost of in-network aggregation (E10's mechanics): serialization per
//! message plus merge work, per topology.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use ms_core::ItemSummary;
use ms_frequency::MgSummary;
use ms_netsim::{aggregate, message_bytes, Topology};
use ms_workloads::StreamKind;

fn leaves(sites: usize) -> Vec<MgSummary<u64>> {
    let items = StreamKind::Zipf {
        s: 1.2,
        universe: 1 << 20,
    }
    .generate(sites * 4_000, 11);
    items
        .chunks(4_000)
        .map(|c| {
            let mut s = MgSummary::new(128);
            s.extend_from(c.iter().copied());
            s
        })
        .collect()
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_aggregate");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    for sites in [16usize, 64] {
        let pool = leaves(sites);
        for topology in [Topology::Star, Topology::Chain, Topology::BalancedTree] {
            group.bench_with_input(
                BenchmarkId::new(topology.label(), sites),
                &sites,
                |b, _| {
                    b.iter_batched(
                        || pool.clone(),
                        |l| black_box(aggregate(l, topology).unwrap().1),
                        BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

fn bench_message_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_encoding");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));
    let summary = leaves(1).pop().expect("one leaf");
    group.bench_function("mg_k128_json_bytes", |b| {
        b.iter(|| black_box(message_bytes(&summary)));
    });
    group.finish();
}

criterion_group!(benches, bench_aggregate, bench_message_encoding);
criterion_main!(benches);

//! Cost of in-network aggregation (E10's mechanics): serialization per
//! message plus merge work, per topology.

use std::hint::black_box;

use ms_bench::Suite;
use ms_core::ItemSummary;
use ms_frequency::MgSummary;
use ms_netsim::{aggregate, json_message_bytes, message_bytes, Topology};
use ms_workloads::StreamKind;

fn leaves(sites: usize) -> Vec<MgSummary<u64>> {
    let items = StreamKind::Zipf {
        s: 1.2,
        universe: 1 << 20,
    }
    .generate(sites * 4_000, 11);
    items
        .chunks(4_000)
        .map(|c| {
            let mut s = MgSummary::new(128);
            s.extend_from(c.iter().copied());
            s
        })
        .collect()
}

fn main() {
    let mut agg = Suite::new("netsim_aggregate");
    for sites in [16usize, 64] {
        let pool = leaves(sites);
        for topology in [Topology::Star, Topology::Chain, Topology::BalancedTree] {
            agg.bench(&format!("{}/sites={sites}", topology.label()), || {
                black_box(aggregate(pool.clone(), topology).unwrap().1)
            });
        }
    }
    agg.finish();

    let mut enc = Suite::new("netsim_encoding");
    let summary = leaves(1).pop().expect("one leaf");
    enc.bench("mg_k128_wire_bytes", || black_box(message_bytes(&summary)));
    enc.bench("mg_k128_json_bytes", || {
        black_box(json_message_bytes(&summary))
    });
    enc.finish();
}

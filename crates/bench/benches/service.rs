//! Service ingest throughput vs shard count, plus codec-vs-JSON snapshot
//! sizes. Persists `results/BENCH_service.json` so later revisions can
//! track the perf trajectory.
//!
//! `MS_BENCH_ITEMS` overrides the stream length (default 1,000,000;
//! `cargo test` runs this with a small value just to exercise the path).
//!
//! `MS_BENCH_GATE=<ratio>` turns the scaling sweep into a CI gate: the
//! process exits non-zero unless 8-shard throughput is at least `ratio`
//! times 1-shard throughput. The gate self-skips — loudly, not by
//! passing — on hosts with fewer than four CPUs, where an 8-shard
//! speedup is physically impossible; the skip message records the ratio
//! that went unenforced.

use std::time::Instant;

use ms_core::{Json, Summary, ToJson, Wire};
use ms_service::{
    Client, DurabilityConfig, Engine, FsyncPolicy, OverloadConfig, Server, ServiceConfig,
    ShardSummary, SummaryKind,
};
use ms_workloads::StreamKind;

/// The scaling sweep as recorded before the zero-allocation ingest path
/// and group-commit WAL landed (same workload, same host class), kept so
/// the JSON always carries its own before/after comparison.
const SCALING_BEFORE: [(usize, f64); 4] = [
    (1, 40_028_936.0),
    (2, 42_357_166.0),
    (4, 41_195_066.0),
    (8, 41_228_164.0),
];

/// Pre-optimization durable ingest rate under `fsync every:64`.
const DURABILITY_EVERY64_BEFORE: f64 = 18_390_772.0;

fn main() {
    let n: usize = std::env::var("MS_BENCH_ITEMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(n, 42);

    println!("\n== service_ingest ({n} zipf items, mg eps=0.01, {host_cpus} cpus) ==");
    println!(
        "{:<8}{:<10}{:>16}{:>12}{:>10}{:>12}",
        "shards", "pinning", "updates/sec", "merges", "epochs", "pool reuse"
    );
    // One sweep row: per-shard pools feed the ingest loop, and when `pin`
    // is set each shard worker asks for its own core (a recorded no-op on
    // undersized hosts — the affinity status says which).
    let run_scaling = |shards: usize, pin: bool| {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.01)
            .shards(shards)
            .delta_updates(16_384)
            .seed(7)
            .pin_cores(pin);
        let engine = Engine::start(cfg).unwrap();
        let affinity = engine.affinity_status();
        let start = Instant::now();
        for chunk in items.chunks(4_096) {
            // Steady-state hot path: the batch buffer comes from the
            // routed shard's pool and flows back after the worker absorbs
            // it, so the loop allocates nothing once the pools are primed.
            let mut batch = engine.ingest_buffer();
            batch.extend_from_slice(chunk);
            engine.ingest(batch).unwrap();
        }
        let snapshot = engine.shutdown();
        let secs = start.elapsed().as_secs_f64();
        let m = engine.metrics();
        let (reuses, misses, _) = engine.pool_stats();
        assert_eq!(snapshot.summary.total_weight(), n as u64);
        let rate = n as f64 / secs;
        let reuse_pct = 100.0 * reuses as f64 / (reuses + misses).max(1) as f64;
        let per_shard: Vec<Json> = engine
            .shard_pool_stats()
            .iter()
            .enumerate()
            .map(|(shard, &(r, mi, _))| {
                Json::obj([
                    ("shard", shard.to_json()),
                    ("reuses", r.to_json()),
                    (
                        "reuse_pct",
                        (100.0 * r as f64 / (r + mi).max(1) as f64).to_json(),
                    ),
                ])
            })
            .collect();
        let pin_label = if pin {
            if affinity.enabled {
                "on"
            } else {
                "skipped"
            }
        } else {
            "off"
        };
        println!(
            "{shards:<8}{pin_label:<10}{rate:>16.0}{:>12}{:>10}{reuse_pct:>11.1}%",
            m.merges, m.epoch
        );
        let row = Json::obj([
            ("shards", shards.to_json()),
            ("pin_cores", pin.to_json()),
            ("affinity", affinity.describe().to_json()),
            ("updates_per_sec", rate.to_json()),
            ("merges", m.merges.to_json()),
            ("epochs", m.epoch.to_json()),
            ("pool_reuse_pct", reuse_pct.to_json()),
            ("shard_pools", Json::Arr(per_shard)),
        ]);
        (rate, row, affinity)
    };
    let mut scaling = Vec::new();
    let mut rates = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let (rate, row, _) = run_scaling(shards, false);
        rates.push(rate);
        scaling.push(row);
    }
    // The same sweep with core pinning requested, so the JSON captures the
    // affinity-on trajectory (or the logged skip) for this host.
    let mut scaling_pinned = Vec::new();
    let mut affinity_note = String::new();
    for shards in [1usize, 2, 4, 8] {
        let (_, row, affinity) = run_scaling(shards, true);
        affinity_note = affinity.describe();
        scaling_pinned.push(row);
    }
    println!("affinity (8 shards, pin requested): {affinity_note}");

    // CI scaling gate (see module docs). Checked right after the sweep so
    // a failing ratio aborts before the slower durability sections.
    if let Ok(gate) = std::env::var("MS_BENCH_GATE") {
        let gate: f64 = gate.parse().expect("MS_BENCH_GATE must be a number");
        let ratio = rates[3] / rates[0];
        if host_cpus < 4 {
            println!(
                "scaling gate SKIPPED, not passed: host has {host_cpus} cpu(s) < 4, so the \
                 {gate:.2}x 8-shard/1-shard requirement went unenforced \
                 (measured {ratio:.2}x; affinity: {affinity_note})"
            );
        } else if ratio < gate {
            eprintln!("scaling gate FAILED: 8-shard is {ratio:.2}x 1-shard, required {gate:.2}x");
            std::process::exit(1);
        } else {
            println!("scaling gate passed: 8-shard is {ratio:.2}x 1-shard (gate {gate:.2}x)");
        }
    }

    println!("\n== service_snapshot_bytes (per summary family, 100k items) ==");
    println!(
        "{:<18}{:>12}{:>12}{:>10}",
        "kind", "wire bytes", "json bytes", "ratio"
    );
    let sample = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(100_000.min(n), 43);
    let mut codec = Vec::new();
    for kind in SummaryKind::all() {
        let cfg = ServiceConfig::new(kind, 0.01).seed(7);
        let mut s = ShardSummary::new(&cfg, 0);
        for &v in &sample {
            s.update(v);
        }
        let wire = s.wire_len();
        let json = s.json_len();
        println!(
            "{:<18}{wire:>12}{json:>12}{:>10.2}",
            kind.label(),
            json as f64 / wire as f64
        );
        codec.push(Json::obj([
            ("kind", kind.label().to_json()),
            ("wire_bytes", wire.to_json()),
            ("json_bytes", json.to_json()),
        ]));
    }

    // Telemetry overhead on the ingest hot path: the same workload with
    // the observability plane on and off, interleaved best-of-3 so CPU
    // frequency drift hits both sides equally. The acceptance budget is
    // ≤ 5% — the histograms are a handful of relaxed atomic adds per
    // *batch*, not per update, so the per-update cost is in the noise.
    println!("\n== service_telemetry_overhead (4 shards, ingest hot path) ==");
    let run_ingest = |telemetry: bool| {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.01)
            .shards(4)
            .delta_updates(16_384)
            .seed(7)
            .telemetry(telemetry);
        let engine = Engine::start(cfg).unwrap();
        let start = Instant::now();
        for chunk in items.chunks(4_096) {
            let mut batch = engine.ingest_buffer();
            batch.extend_from_slice(chunk);
            engine.ingest(batch).unwrap();
        }
        let snapshot = engine.shutdown();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(snapshot.summary.total_weight(), n as u64);
        (n as f64 / secs, engine.telemetry_snapshot())
    };
    let (mut rate_off, mut rate_on) = (0f64, 0f64);
    let mut telemetry_snap = None;
    for _ in 0..3 {
        rate_off = rate_off.max(run_ingest(false).0);
        let (rate, snap) = run_ingest(true);
        rate_on = rate_on.max(rate);
        telemetry_snap = Some(snap);
    }
    let overhead_pct = (rate_off - rate_on) / rate_off * 100.0;
    println!(
        "{:<14}{:>16}\n{:<14}{rate_off:>16.0}\n{:<14}{rate_on:>16.0}\n{:<14}{overhead_pct:>15.2}%",
        "mode", "updates/sec", "telemetry off", "telemetry on", "overhead"
    );
    // Fold the per-shard ingest-batch histograms into one — the same
    // bucket-wise merge the paper's Definition 1 demands of summaries.
    let snap = telemetry_snap.expect("three telemetry-on runs happened");
    let ingest_hist = (0..4)
        .filter_map(|s| snap.histogram(&format!("ingest_batch_micros{{shard=\"{s}\"}}")))
        .fold(None, |acc, h| {
            Some(match acc {
                Some(prev) => h.merge(&prev),
                None => h.clone(),
            })
        });
    let telemetry_json = if let Some(h) = ingest_hist {
        println!(
            "ingest_batch_micros (all shards): count={} p50={} p99={} max={}",
            h.count,
            h.quantile(0.50),
            h.quantile(0.99),
            h.max
        );
        Json::obj([
            ("updates_per_sec_off", rate_off.to_json()),
            ("updates_per_sec_on", rate_on.to_json()),
            ("overhead_pct", overhead_pct.to_json()),
            ("ingest_batch_count", h.count.to_json()),
            ("ingest_batch_p50_micros", h.quantile(0.50).to_json()),
            ("ingest_batch_p99_micros", h.quantile(0.99).to_json()),
            ("ingest_batch_max_micros", h.max.to_json()),
        ])
    } else {
        Json::obj([
            ("updates_per_sec_off", rate_off.to_json()),
            ("updates_per_sec_on", rate_on.to_json()),
            ("overhead_pct", overhead_pct.to_json()),
        ])
    };

    // Durability cost: the same ingest workload with the WAL off and under
    // each fsync policy. One WAL record per ingest batch, so `always` pays
    // one fsync per 4096-item batch — the price of zero acked loss — while
    // `every:64`/`never` trade bounded loss windows for throughput.
    let dn = 200_000.min(n);
    let ditems = &items[..dn];
    println!("\n== service_durability ({dn} zipf items, 2 shards, 4096/batch) ==");
    println!("{:<12}{:>16}{:>12}", "fsync", "updates/sec", "vs no-wal");
    let modes: [(&str, Option<FsyncPolicy>); 4] = [
        ("no-wal", None),
        ("never", Some(FsyncPolicy::Never)),
        ("every:64", Some(FsyncPolicy::EveryN(64))),
        ("always", Some(FsyncPolicy::Always)),
    ];
    let mut durability = Vec::new();
    let mut baseline = 0f64;
    for (label, fsync) in modes {
        let dir = std::env::temp_dir().join(format!(
            "ms-bench-durability-{label}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ServiceConfig::new(SummaryKind::Mg, 0.01)
            .shards(2)
            .delta_updates(16_384)
            .seed(7);
        if let Some(policy) = fsync {
            cfg = cfg.durability(DurabilityConfig::new(&dir).fsync(policy));
        }
        let engine = Engine::start(cfg).unwrap();
        let start = Instant::now();
        for chunk in ditems.chunks(4_096) {
            let mut batch = engine.ingest_buffer();
            batch.extend_from_slice(chunk);
            engine.ingest(batch).unwrap();
        }
        let snapshot = engine.shutdown();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(snapshot.summary.total_weight(), dn as u64);
        let rate = dn as f64 / secs;
        if fsync.is_none() {
            baseline = rate;
        }
        let relative = rate / baseline;
        println!("{label:<12}{rate:>16.0}{relative:>11.2}x");
        durability.push(Json::obj([
            ("fsync", label.to_json()),
            ("updates_per_sec", rate.to_json()),
            ("relative_to_no_wal", relative.to_json()),
        ]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Overload before/after: the same seeded storm — four TCP clients
    // flooding a deliberately small server (one slow shard, two-deep
    // queues) — with the admission plane off and on. Off, every batch
    // queues behind the slow shard and the clients block until the whole
    // backlog drains (no signal, no choice). On, pressure past the
    // watermark is refused immediately with a typed `Overloaded` answer,
    // so the storm resolves in a fraction of the time and every client
    // knows which batches were refused.
    println!("\n== service_overload (4 clients, 1 slow shard, 2-deep queues) ==");
    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>12}",
        "admission", "wall secs", "acked", "shed reqs", "resolved/s"
    );
    let storm_items = &items[..40_000.min(n)];
    let run_storm = |admission: bool| {
        let mut cfg = ServiceConfig::new(SummaryKind::Mg, 0.01)
            .shards(1)
            .queue_depth(2)
            .delta_updates(256)
            .seed(7)
            .fault_plan(ms_service::plan_fn(|_, idx| {
                if idx % 4 == 0 {
                    ms_service::FaultAction::StallMs(1)
                } else {
                    ms_service::FaultAction::Continue
                }
            }));
        if admission {
            cfg = cfg.overload(
                OverloadConfig::default()
                    .max_inflight(8)
                    .shed_watermark(0.5)
                    .ingest_watermark(0.5)
                    .retry_after_micros(5_000),
            );
        }
        let engine = Engine::start(cfg).unwrap();
        let server = Server::bind(std::sync::Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let start = Instant::now();
        let workers: Vec<_> = storm_items
            .chunks(storm_items.len().div_ceil(4).max(1))
            .map(|slice| {
                let slice = slice.to_vec();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut acked = 0u64;
                    let mut sheds = 0u64;
                    for batch in slice.chunks(100) {
                        match client.ingest(batch.to_vec()) {
                            Ok(()) => acked += batch.len() as u64,
                            Err(ms_core::ServiceError::Overloaded { .. }) => sheds += 1,
                            Err(e) => panic!("storm client failed: {e}"),
                        }
                    }
                    (acked, sheds)
                })
            })
            .collect();
        let (mut acked, mut sheds) = (0u64, 0u64);
        for w in workers {
            let (a, s) = w.join().unwrap();
            acked += a;
            sheds += s;
        }
        let secs = start.elapsed().as_secs_f64();
        server.stop();
        let resolved = storm_items.len().div_ceil(100) as f64 / secs;
        let label = if admission { "on" } else { "off" };
        println!("{label:<12}{secs:>12.3}{acked:>12}{sheds:>12}{resolved:>12.0}");
        (secs, acked, sheds)
    };
    let (before_secs, before_acked, before_sheds) = run_storm(false);
    let (after_secs, after_acked, after_sheds) = run_storm(true);
    let overload_json = Json::obj([
        ("offered_items", storm_items.len().to_json()),
        ("clients", 4usize.to_json()),
        (
            "before",
            Json::obj([
                ("wall_secs", before_secs.to_json()),
                ("acked_items", before_acked.to_json()),
                ("shed_requests", before_sheds.to_json()),
            ]),
        ),
        (
            "after",
            Json::obj([
                ("wall_secs", after_secs.to_json()),
                ("acked_items", after_acked.to_json()),
                ("shed_requests", after_sheds.to_json()),
            ]),
        ),
        ("storm_drain_speedup", (before_secs / after_secs).to_json()),
    ]);

    let scaling_before = SCALING_BEFORE
        .iter()
        .map(|&(shards, rate)| {
            Json::obj([
                ("shards", shards.to_json()),
                ("updates_per_sec", rate.to_json()),
            ])
        })
        .collect();
    let record = Json::obj([
        ("id", "bench_service".to_json()),
        ("items", n.to_json()),
        ("host_cpus", host_cpus.to_json()),
        ("scaling", Json::Arr(scaling)),
        ("scaling_pinned", Json::Arr(scaling_pinned)),
        ("affinity", affinity_note.to_json()),
        ("scaling_before", Json::Arr(scaling_before)),
        (
            "durability_every64_before",
            DURABILITY_EVERY64_BEFORE.to_json(),
        ),
        ("snapshot_bytes", Json::Arr(codec)),
        ("telemetry_overhead", telemetry_json),
        ("durability", Json::Arr(durability)),
        ("overload", overload_json),
    ]);
    // Write to the workspace-level results dir regardless of whether cargo
    // invoked us from the workspace root or the package dir.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_service.json");
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&path, record.to_string_pretty()))
    {
        eprintln!("warning: could not persist BENCH_service.json: {e}");
    } else {
        println!("\nwrote {}", path.display());
    }
}

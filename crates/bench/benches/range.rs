//! Throughput of the ε-approximation (E9): inserts per halving strategy,
//! merges and rectangle queries.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ms_core::{Mergeable, Rect, Summary};
use ms_range::{EpsApprox2d, Halving};
use ms_workloads::CloudKind;

fn bench_inserts(c: &mut Criterion) {
    let n = 50_000;
    let points = CloudKind::UniformSquare.generate(n, 1);
    let mut group = c.benchmark_group("range_insert");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(n as u64));
    for halving in [Halving::Random, Halving::SortedX, Halving::Hilbert] {
        group.bench_with_input(
            BenchmarkId::new("insert", halving.label()),
            &halving,
            |b, &h| {
                b.iter(|| {
                    let mut a = EpsApprox2d::new(256, h, 7);
                    a.extend_from(points.iter().copied());
                    black_box(a.size())
                });
            },
        );
    }
    group.finish();
}

fn bench_merge_and_query(c: &mut Criterion) {
    let points = CloudKind::UniformSquare.generate(100_000, 2);
    let mk = |seed: u64, slice: &[ms_core::Point2]| {
        let mut a = EpsApprox2d::new(256, Halving::Hilbert, seed);
        a.extend_from(slice.iter().copied());
        a
    };
    let a = mk(1, &points[..50_000]);
    let b2 = mk(2, &points[50_000..]);
    let mut group = c.benchmark_group("range_merge_query");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("merge_two_way", |b| {
        b.iter_batched(
            || (a.clone(), b2.clone()),
            |(x, y)| black_box(x.merge(y).unwrap()),
            BatchSize::SmallInput,
        );
    });
    let query = Rect::new(0.2, 0.8, 0.1, 0.6);
    group.bench_function("estimate_count", |b| {
        b.iter(|| black_box(a.estimate_count(black_box(&query))));
    });
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_merge_and_query);
criterion_main!(benches);

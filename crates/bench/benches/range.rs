//! Throughput of the ε-approximation (E9): inserts per halving strategy,
//! merges and rectangle queries.

use std::hint::black_box;

use ms_bench::Suite;
use ms_core::{Mergeable, Rect, Summary};
use ms_range::{EpsApprox2d, Halving};
use ms_workloads::CloudKind;

fn main() {
    let n = 50_000;
    let points = CloudKind::UniformSquare.generate(n, 1);

    let mut inserts = Suite::new("range_insert");
    for halving in [Halving::Random, Halving::SortedX, Halving::Hilbert] {
        inserts.bench_elems(&format!("insert/{}", halving.label()), n as u64, || {
            let mut a = EpsApprox2d::new(256, halving, 7);
            a.extend_from(points.iter().copied());
            black_box(a.size())
        });
    }
    inserts.finish();

    let big = CloudKind::UniformSquare.generate(100_000, 2);
    let mk = |seed: u64, slice: &[ms_core::Point2]| {
        let mut a = EpsApprox2d::new(256, Halving::Hilbert, seed);
        a.extend_from(slice.iter().copied());
        a
    };
    let a = mk(1, &big[..50_000]);
    let b = mk(2, &big[50_000..]);
    let mut mq = Suite::new("range_merge_query");
    mq.bench("merge_two_way", || {
        black_box(a.clone().merge(b.clone()).unwrap())
    });
    let query = Rect::new(0.2, 0.8, 0.1, 0.6);
    mq.bench("estimate_count", || {
        black_box(a.estimate_count(black_box(&query)))
    });
    mq.finish();
}

//! Allocation-count harness for the ingest hot path.
//!
//! Installs a counting global allocator and measures how many heap
//! allocations the *caller thread* performs per ingest batch once the
//! engine's buffer pool is primed. The acceptance bar is exactly zero:
//! a pooled buffer is fetched, filled, handed to a shard ring, absorbed
//! by the worker, and recycled — no `Vec` is born or dies on the way.
//!
//! Counting is scoped to the measuring thread via a const-initialised
//! thread-local (worker and compactor threads allocate freely — deltas
//! grow, snapshots serialize — and none of that is on the caller's
//! critical path). Attribution-by-thread is what makes a zero assert
//! meaningful on a machine where background threads are always busy.
//!
//! Scheduling noise can leave a pool temporarily empty right after
//! start-up, so the zero-allocation claim is checked over a few rounds:
//! steady state must show up within [`ROUNDS`] attempts or the harness
//! fails the build.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ms_core::Summary;
use ms_service::{Engine, ServiceConfig, SummaryKind};
use ms_workloads::StreamKind;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Delegates to the system allocator, bumping a thread-local counter on
/// every allocating call made while that thread has counting enabled.
struct CountingAlloc;

impl CountingAlloc {
    fn record() {
        // `try_with` instead of `with`: the allocator runs during thread
        // teardown when TLS may already be gone.
        let _ = ENABLED.try_with(|e| {
            if e.get() {
                let _ = COUNT.try_with(|c| c.set(c.get() + 1));
            }
        });
    }
}

// SAFETY: pure pass-through to `System`; the counter is a thread-local
// `Cell` touched only by the current thread.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f` with allocation counting enabled on this thread and return
/// how many allocations it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    COUNT.with(|c| c.set(0));
    ENABLED.with(|e| e.set(true));
    f();
    ENABLED.with(|e| e.set(false));
    COUNT.with(|c| c.get())
}

const BATCH: usize = 4_096;
const CHUNKS: usize = 64;
const WARMUP_PASSES: usize = 8;
const MEASURE_PASSES: usize = 4;
const ROUNDS: usize = 5;

fn main() {
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(BATCH * CHUNKS, 42);

    let cfg = ServiceConfig::new(SummaryKind::Mg, 0.01)
        .shards(2)
        .delta_updates(16_384)
        .seed(7);
    let engine = Engine::start(cfg).unwrap();

    // Prime the pool: the first pass mints buffers (misses), later passes
    // recirculate them until the in-flight population stabilises.
    for _ in 0..WARMUP_PASSES {
        for chunk in items.chunks(BATCH) {
            let mut batch = engine.ingest_buffer();
            batch.extend_from_slice(chunk);
            engine.ingest(batch).unwrap();
        }
    }

    // Contrast figure: the naive path pays at least one allocation per
    // batch for the `to_vec` clone alone.
    let naive_batches = CHUNKS as u64;
    let naive_allocs = count_allocs(|| {
        for chunk in items.chunks(BATCH) {
            engine.ingest(chunk.to_vec()).unwrap();
        }
    });

    let measured_batches = (MEASURE_PASSES * CHUNKS) as u64;
    let mut steady = None;
    for round in 1..=ROUNDS {
        let allocs = count_allocs(|| {
            for _ in 0..MEASURE_PASSES {
                for chunk in items.chunks(BATCH) {
                    let mut batch = engine.ingest_buffer();
                    batch.extend_from_slice(chunk);
                    engine.ingest(batch).unwrap();
                }
            }
        });
        println!("round {round}: {allocs} allocations across {measured_batches} pooled batches");
        if allocs == 0 {
            steady = Some(round);
            break;
        }
    }

    let (reuses, misses, discards) = engine.pool_stats();
    let snapshot = engine.shutdown();
    assert!(snapshot.summary.total_weight() > 0);

    println!(
        "naive to_vec path: {:.2} allocations/batch ({naive_allocs} over {naive_batches})",
        naive_allocs as f64 / naive_batches as f64
    );
    println!("pool stats: reuses={reuses} misses={misses} discards={discards}");
    match steady {
        Some(round) => println!(
            "steady-state ingest: 0 allocations/batch on the caller thread (round {round})"
        ),
        None => panic!(
            "ingest hot path still allocates after {ROUNDS} rounds of \
             {measured_batches} batches — the zero-allocation invariant regressed"
        ),
    }
}

//! Throughput of the heavy-hitter summaries (E9): updates, queries.

use std::hint::black_box;

use ms_bench::Suite;
use ms_core::{ItemSummary, Summary};
use ms_frequency::{ExactCounts, MgSummary, SpaceSavingSummary};
use ms_workloads::StreamKind;

fn main() {
    let n = 100_000;
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(n, 1);

    let mut updates = Suite::new("frequency_update");
    for k in [64usize, 512] {
        updates.bench_elems(&format!("mg/k={k}"), n as u64, || {
            let mut s = MgSummary::new(k);
            for &item in &items {
                s.update(black_box(item));
            }
            black_box(s.size())
        });
        updates.bench_elems(&format!("space_saving/k={k}"), n as u64, || {
            let mut s = SpaceSavingSummary::new(k);
            for &item in &items {
                s.update(black_box(item));
            }
            black_box(s.size())
        });
    }
    updates.bench_elems("exact", n as u64, || {
        let mut s = ExactCounts::new();
        for &item in &items {
            s.update(black_box(item));
        }
        black_box(s.size())
    });
    updates.finish();

    let query_items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(200_000, 2);
    let mut mg = MgSummary::new(256);
    mg.extend_from(query_items.iter().copied());
    let mut queries = Suite::new("frequency_query");
    queries.bench_elems("mg_estimate_x1000", 1000, || {
        let mut acc = 0u64;
        for probe in 0..1000u64 {
            acc += mg.estimate(black_box(&probe));
        }
        black_box(acc)
    });
    queries.bench("mg_heavy_hitters", || {
        black_box(mg.heavy_hitters(0.01).len())
    });
    queries.finish();
}

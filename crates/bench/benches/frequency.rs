//! Throughput of the heavy-hitter summaries (E9): updates, queries.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ms_core::{ItemSummary, Summary};
use ms_frequency::{ExactCounts, MgSummary, SpaceSavingSummary};
use ms_workloads::StreamKind;

fn bench_updates(c: &mut Criterion) {
    let n = 100_000;
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(n, 1);
    let mut group = c.benchmark_group("frequency_update");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.throughput(Throughput::Elements(n as u64));

    for k in [64usize, 512] {
        group.bench_with_input(BenchmarkId::new("mg", k), &k, |b, &k| {
            b.iter(|| {
                let mut s = MgSummary::new(k);
                for &item in &items {
                    s.update(black_box(item));
                }
                black_box(s.size())
            });
        });
        group.bench_with_input(BenchmarkId::new("space_saving", k), &k, |b, &k| {
            b.iter(|| {
                let mut s = SpaceSavingSummary::new(k);
                for &item in &items {
                    s.update(black_box(item));
                }
                black_box(s.size())
            });
        });
    }
    group.bench_function("exact", |b| {
        b.iter(|| {
            let mut s = ExactCounts::new();
            for &item in &items {
                s.update(black_box(item));
            }
            black_box(s.size())
        });
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(200_000, 2);
    let mut mg = MgSummary::new(256);
    mg.extend_from(items.iter().copied());
    let mut group = c.benchmark_group("frequency_query");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(1000));
    group.bench_function("mg_estimate_x1000", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for probe in 0..1000u64 {
                acc += mg.estimate(black_box(&probe));
            }
            black_box(acc)
        });
    });
    group.bench_function("mg_heavy_hitters", |b| {
        b.iter(|| black_box(mg.heavy_hitters(0.01).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_updates, bench_queries);
criterion_main!(benches);

//! Merge throughput (E9): cost of one 2-way merge and of whole merge trees.

use std::hint::black_box;

use ms_bench::Suite;
use ms_core::{merge_all, ItemSummary, MergeTree, Mergeable};
use ms_frequency::MgSummary;
use ms_quantiles::{HybridQuantile, RankSummary};
use ms_workloads::StreamKind;

fn leaves_mg(sites: usize, k: usize) -> Vec<MgSummary<u64>> {
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(sites * 10_000, 3);
    items
        .chunks(10_000)
        .map(|c| {
            let mut s = MgSummary::new(k);
            s.extend_from(c.iter().copied());
            s
        })
        .collect()
}

fn main() {
    let mut two_way = Suite::new("merge_two_way");
    for k in [64usize, 256, 1024] {
        let leaves = leaves_mg(2, k);
        two_way.bench(&format!("mg/k={k}"), || {
            black_box(leaves[0].clone().merge(leaves[1].clone()).unwrap())
        });
    }
    for eps in [0.05, 0.01] {
        let values = StreamKind::Uniform { universe: u64::MAX }.generate(40_000, 4);
        let mk = |seed: u64, slice: &[u64]| {
            let mut q = HybridQuantile::new(eps, seed);
            for &v in slice {
                q.insert(v);
            }
            q
        };
        let a = mk(1, &values[..20_000]);
        let b = mk(2, &values[20_000..]);
        two_way.bench(&format!("hybrid_quantile/eps={eps}"), || {
            black_box(a.clone().merge(b.clone()).unwrap())
        });
    }
    two_way.finish();

    let mut trees = Suite::new("merge_trees");
    for sites in [16usize, 64, 256] {
        let leaves = leaves_mg(sites, 256);
        for shape in [MergeTree::Chain, MergeTree::Balanced] {
            trees.bench(&format!("mg_{}/sites={sites}", shape.label()), || {
                black_box(merge_all(leaves.clone(), shape).unwrap())
            });
        }
    }
    trees.finish();
}

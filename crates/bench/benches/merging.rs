//! Merge throughput (E9): cost of one 2-way merge and of whole merge trees.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use ms_core::{merge_all, ItemSummary, MergeTree, Mergeable};
use ms_frequency::MgSummary;
use ms_quantiles::{HybridQuantile, RankSummary};
use ms_workloads::StreamKind;

fn leaves_mg(sites: usize, k: usize) -> Vec<MgSummary<u64>> {
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(sites * 10_000, 3);
    items
        .chunks(10_000)
        .map(|c| {
            let mut s = MgSummary::new(k);
            s.extend_from(c.iter().copied());
            s
        })
        .collect()
}

fn bench_two_way(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_two_way");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));
    for k in [64usize, 256, 1024] {
        let leaves = leaves_mg(2, k);
        group.bench_with_input(BenchmarkId::new("mg", k), &k, |b, _| {
            b.iter_batched(
                || (leaves[0].clone(), leaves[1].clone()),
                |(a, b2)| black_box(a.merge(b2).unwrap()),
                BatchSize::SmallInput,
            );
        });
    }
    for eps in [0.05, 0.01] {
        let values = StreamKind::Uniform { universe: u64::MAX }.generate(40_000, 4);
        let mk = |seed: u64, slice: &[u64]| {
            let mut q = HybridQuantile::new(eps, seed);
            for &v in slice {
                q.insert(v);
            }
            q
        };
        let a = mk(1, &values[..20_000]);
        let b2 = mk(2, &values[20_000..]);
        group.bench_with_input(
            BenchmarkId::new("hybrid_quantile", format!("eps={eps}")),
            &eps,
            |bch, _| {
                bch.iter_batched(
                    || (a.clone(), b2.clone()),
                    |(x, y)| black_box(x.merge(y).unwrap()),
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_trees");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    for sites in [16usize, 64, 256] {
        let leaves = leaves_mg(sites, 256);
        for shape in [MergeTree::Chain, MergeTree::Balanced] {
            group.bench_with_input(
                BenchmarkId::new(format!("mg_{}", shape.label()), sites),
                &sites,
                |b, _| {
                    b.iter_batched(
                        || leaves.clone(),
                        |l| black_box(merge_all(l, shape).unwrap()),
                        BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_two_way, bench_trees);
criterion_main!(benches);

//! Throughput of the linear sketches (E9): updates, merges, queries.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ms_core::{ItemSummary, Mergeable, Summary};
use ms_sketches::{AmsF2Sketch, CountMinSketch, CountSketch};
use ms_workloads::StreamKind;

fn bench_updates(c: &mut Criterion) {
    let n = 100_000;
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(n, 1);
    let mut group = c.benchmark_group("sketch_update");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(n as u64));

    for depth in [3usize, 5] {
        group.bench_with_input(BenchmarkId::new("count_min", depth), &depth, |b, &d| {
            b.iter(|| {
                let mut s = CountMinSketch::new(272, d, 7);
                for &item in &items {
                    s.update(black_box(item));
                }
                black_box(s.total_weight())
            });
        });
        group.bench_with_input(BenchmarkId::new("count_sketch", depth), &depth, |b, &d| {
            b.iter(|| {
                let mut s = CountSketch::new(272, d, 7);
                for &item in &items {
                    s.update(black_box(item));
                }
                black_box(s.total_weight())
            });
        });
    }
    group.bench_function("ams_f2_64x5", |b| {
        b.iter(|| {
            let mut s = AmsF2Sketch::new(64, 5, 7);
            for &item in &items {
                s.update(black_box(item));
            }
            black_box(s.total_weight())
        });
    });
    group.finish();
}

fn bench_merge_and_query(c: &mut Criterion) {
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(100_000, 2);
    let mut a = CountMinSketch::new(1024, 5, 9);
    a.extend_from(items[..50_000].iter().copied());
    let mut b2 = CountMinSketch::new(1024, 5, 9);
    b2.extend_from(items[50_000..].iter().copied());

    let mut group = c.benchmark_group("sketch_merge_query");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("count_min_merge_1024x5", |b| {
        b.iter_batched(
            || (a.clone(), b2.clone()),
            |(x, y)| black_box(x.merge(y).unwrap()),
            BatchSize::SmallInput,
        );
    });
    group.throughput(Throughput::Elements(1000));
    group.bench_function("count_min_estimate_x1000", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for probe in 0..1000u64 {
                acc += a.estimate(black_box(&probe));
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_updates, bench_merge_and_query);
criterion_main!(benches);

//! Throughput of the linear sketches (E9): updates, merges, queries.

use std::hint::black_box;

use ms_bench::Suite;
use ms_core::{ItemSummary, Mergeable, Summary};
use ms_sketches::{AmsF2Sketch, CountMinSketch, CountSketch};
use ms_workloads::StreamKind;

fn main() {
    let n = 100_000;
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(n, 1);

    let mut updates = Suite::new("sketch_update");
    for depth in [3usize, 5] {
        updates.bench_elems(&format!("count_min/d={depth}"), n as u64, || {
            let mut s = CountMinSketch::new(272, depth, 7);
            for &item in &items {
                s.update(black_box(item));
            }
            black_box(s.total_weight())
        });
        updates.bench_elems(&format!("count_sketch/d={depth}"), n as u64, || {
            let mut s = CountSketch::new(272, depth, 7);
            for &item in &items {
                s.update(black_box(item));
            }
            black_box(s.total_weight())
        });
    }
    updates.bench_elems("ams_f2_64x5", n as u64, || {
        let mut s = AmsF2Sketch::new(64, 5, 7);
        for &item in &items {
            s.update(black_box(item));
        }
        black_box(s.total_weight())
    });
    updates.finish();

    let items2 = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 20,
    }
    .generate(100_000, 2);
    let mut a = CountMinSketch::new(1024, 5, 9);
    a.extend_from(items2[..50_000].iter().copied());
    let mut b = CountMinSketch::new(1024, 5, 9);
    b.extend_from(items2[50_000..].iter().copied());

    let mut mq = Suite::new("sketch_merge_query");
    mq.bench("count_min_merge_1024x5", || {
        black_box(a.clone().merge(b.clone()).unwrap())
    });
    mq.bench_elems("count_min_estimate_x1000", 1000, || {
        let mut acc = 0u64;
        for probe in 0..1000u64 {
            acc += a.estimate(black_box(&probe));
        }
        black_box(acc)
    });
    mq.finish();
}

//! Throughput of the ε-kernel (E9): inserts vs grid size, merges, width
//! queries.

use std::hint::black_box;

use ms_bench::Suite;
use ms_core::{unit_dir, Mergeable, Summary};
use ms_kernels::{EpsKernel, Frame};
use ms_workloads::CloudKind;

fn main() {
    let n = 50_000;
    let points = CloudKind::Disk.generate(n, 1);
    let frame = Frame::from_points(&points);

    let mut inserts = Suite::new("kernel_insert");
    for eps in [0.1, 0.01, 0.001] {
        inserts.bench_elems(&format!("insert/eps={eps}"), n as u64, || {
            let mut k = EpsKernel::new(eps, frame);
            k.extend_from(points.iter().copied());
            black_box(k.size())
        });
    }
    inserts.finish();

    let big = CloudKind::Gaussian.generate(100_000, 2);
    let frame2 = Frame::from_points(&big);
    let mk = |slice: &[ms_core::Point2]| {
        let mut k = EpsKernel::new(0.01, frame2);
        k.extend_from(slice.iter().copied());
        k
    };
    let a = mk(&big[..50_000]);
    let b = mk(&big[50_000..]);
    let mut mw = Suite::new("kernel_merge_width");
    mw.bench("merge_two_way", || {
        black_box(a.clone().merge(b.clone()).unwrap())
    });
    mw.bench("width_query", || {
        black_box(a.width(black_box(unit_dir(0.7))))
    });
    mw.bench("diameter", || black_box(a.diameter()));
    mw.finish();
}

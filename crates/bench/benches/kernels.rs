//! Throughput of the ε-kernel (E9): inserts vs grid size, merges, width
//! queries.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ms_core::{unit_dir, Mergeable, Summary};
use ms_kernels::{EpsKernel, Frame};
use ms_workloads::CloudKind;

fn bench_inserts(c: &mut Criterion) {
    let n = 50_000;
    let points = CloudKind::Disk.generate(n, 1);
    let frame = Frame::from_points(&points);
    let mut group = c.benchmark_group("kernel_insert");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(n as u64));
    for eps in [0.1, 0.01, 0.001] {
        group.bench_with_input(
            BenchmarkId::new("insert", format!("eps={eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let mut k = EpsKernel::new(eps, frame);
                    k.extend_from(points.iter().copied());
                    black_box(k.size())
                });
            },
        );
    }
    group.finish();
}

fn bench_merge_and_width(c: &mut Criterion) {
    let points = CloudKind::Gaussian.generate(100_000, 2);
    let frame = Frame::from_points(&points);
    let mk = |slice: &[ms_core::Point2]| {
        let mut k = EpsKernel::new(0.01, frame);
        k.extend_from(slice.iter().copied());
        k
    };
    let a = mk(&points[..50_000]);
    let b2 = mk(&points[50_000..]);
    let mut group = c.benchmark_group("kernel_merge_width");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("merge_two_way", |b| {
        b.iter_batched(
            || (a.clone(), b2.clone()),
            |(x, y)| black_box(x.merge(y).unwrap()),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("width_query", |b| {
        b.iter(|| black_box(a.width(black_box(unit_dir(0.7)))));
    });
    group.bench_function("diameter", |b| {
        b.iter(|| black_box(a.diameter()));
    });
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_merge_and_width);
criterion_main!(benches);

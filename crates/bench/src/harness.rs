//! Self-contained micro-benchmark harness.
//!
//! The `benches/` targets are ordinary `harness = false` binaries built on
//! this module: each registers closures with a [`Suite`], which warms up,
//! calibrates an iteration count against a wall-clock budget, measures,
//! and prints an aligned table of ns/iter plus throughput.
//!
//! Environment knobs:
//!
//! * `MS_BENCH_MS` — measurement budget per benchmark in milliseconds
//!   (default 200). `MS_BENCH_MS=1` makes a full bench run finish in
//!   seconds, which is how `cargo test` exercises these targets.

use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label within its suite.
    pub label: String,
    /// Iterations actually timed.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Logical elements processed per iteration (0 = unset).
    pub elements: u64,
}

impl Measurement {
    /// Elements per second, if the benchmark declared a element count.
    pub fn throughput(&self) -> Option<f64> {
        if self.elements == 0 || self.ns_per_iter == 0.0 {
            None
        } else {
            Some(self.elements as f64 * 1e9 / self.ns_per_iter)
        }
    }
}

/// A named group of benchmarks, printed as one table by [`Suite::finish`].
pub struct Suite {
    name: String,
    budget: Duration,
    results: Vec<Measurement>,
}

impl Suite {
    /// Start a suite. Reads `MS_BENCH_MS` once, at construction.
    pub fn new(name: &str) -> Self {
        let ms = std::env::var("MS_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Suite {
            name: name.to_string(),
            budget: Duration::from_millis(ms.max(1)),
            results: Vec::new(),
        }
    }

    /// Benchmark `f`, reporting plain ns/iter.
    pub fn bench<T>(&mut self, label: &str, f: impl FnMut() -> T) {
        self.run(label, 0, f);
    }

    /// Benchmark `f`, additionally reporting `elements`-per-second
    /// throughput (e.g. stream items processed per call).
    pub fn bench_elems<T>(&mut self, label: &str, elements: u64, f: impl FnMut() -> T) {
        self.run(label, elements, f);
    }

    fn run<T>(&mut self, label: &str, elements: u64, mut f: impl FnMut() -> T) {
        // Warm-up: one untimed call, also used to calibrate.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let total = start.elapsed();
        self.results.push(Measurement {
            label: label.to_string(),
            iters,
            ns_per_iter: total.as_nanos() as f64 / iters as f64,
            elements,
        });
    }

    /// Print the table and return the measurements.
    pub fn finish(self) -> Vec<Measurement> {
        println!("\n== {} ==", self.name);
        let width = self
            .results
            .iter()
            .map(|m| m.label.len())
            .max()
            .unwrap_or(0)
            .max(9);
        println!(
            "{:<width$}  {:>12}  {:>10}  {:>14}",
            "benchmark", "ns/iter", "iters", "throughput"
        );
        for m in &self.results {
            let tput = match m.throughput() {
                Some(t) => format!("{} elem/s", si(t)),
                None => "-".to_string(),
            };
            println!(
                "{:<width$}  {:>12}  {:>10}  {:>14}",
                m.label,
                si(m.ns_per_iter),
                m.iters,
                tput
            );
        }
        self.results
    }
}

/// Render a positive quantity with an SI suffix (`12.3k`, `4.56M`).
pub fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_record_iterations_and_time() {
        let mut s = Suite::new("unit");
        s.budget = Duration::from_millis(5);
        s.bench_elems("count", 100, || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        let results = s.finish();
        assert_eq!(results.len(), 1);
        assert!(results[0].iters >= 1);
        assert!(results[0].ns_per_iter > 0.0);
        assert!(results[0].throughput().unwrap() > 0.0);
    }

    #[test]
    fn si_suffixes() {
        assert_eq!(si(950.0), "950");
        assert_eq!(si(12_300.0), "12.3k");
        assert_eq!(si(4_560_000.0), "4.56M");
        assert_eq!(si(2.5e9), "2.50G");
    }
}

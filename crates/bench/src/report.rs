//! Experiment reporting: aligned markdown tables on stdout and JSON records
//! on disk (`results/<experiment>.json`), so `EXPERIMENTS.md` can quote
//! exact numbers and reruns can be diffed.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use ms_core::{Json, ToJson};

/// A rendered experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (`t1`, `e1`, … `x2`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells already formatted).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Render as aligned markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&format!(
            "\n### {} — {}\n\n",
            self.id.to_uppercase(),
            self.title
        ));
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout and persist under `results/`.
    pub fn emit(&self) {
        let mut stdout = std::io::stdout().lock();
        stdout
            .write_all(self.to_markdown().as_bytes())
            .expect("stdout");
        if let Err(e) = self.persist("results") {
            eprintln!("warning: could not persist {}: {e}", self.id);
        }
    }

    /// Write the JSON record.
    pub fn persist(&self, dir: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(format!("{}.json", self.id));
        fs::write(path, self.to_json().to_string_pretty())
    }
}

impl ToJson for Table {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("title", self.title.to_json()),
            ("headers", self.headers.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

/// A single scalar finding, persisted alongside tables.
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Experiment id.
    pub id: String,
    /// What was measured.
    pub metric: String,
    /// The measured value.
    pub value: f64,
    /// The bound / expectation it is compared against, if any.
    pub bound: Option<f64>,
    /// Whether the shape check passed.
    pub pass: bool,
}

impl ToJson for ExperimentRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("metric", self.metric.to_json()),
            ("value", self.value.to_json()),
            ("bound", self.bound.to_json()),
            ("pass", self.pass.to_json()),
        ])
    }
}

/// Format a float with sensible width for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new("t0", "demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| name      | value |"), "{md}");
        assert!(md.contains("| long-name | 2     |"), "{md}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("t0", "demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.01234), "0.01234");
        assert_eq!(fmt(7.46159), "7.46");
        assert_eq!(fmt(12345.6), "12346");
    }

    #[test]
    fn persist_writes_json() {
        let dir = std::env::temp_dir().join("ms-bench-test");
        let mut t = Table::new("t9", "demo", &["x"]);
        t.row(vec!["1".into()]);
        t.persist(dir.to_str().unwrap()).unwrap();
        let content = std::fs::read_to_string(dir.join("t9.json")).unwrap();
        assert!(content.contains("\"id\": \"t9\""));
    }
}

//! Regenerates every table/figure of the reproduction (see `DESIGN.md` §4
//! for the experiment index and `EXPERIMENTS.md` for recorded results).
//!
//! Usage:
//!
//! ```text
//! cargo run -p ms-bench --release --bin experiments            # all
//! cargo run -p ms-bench --release --bin experiments -- e1 e4   # a subset
//! ```

use std::collections::BTreeSet;

use ms_bench::report::fmt;
use ms_bench::Table;
use ms_core::{
    directional_width, merge_all, unit_dir, FrequencyOracle, ItemSummary, MergeTree, RankOracle,
    Rng64, Summary,
};
use ms_frequency::isomorphism::check_isomorphism;
use ms_frequency::{MgSummary, SpaceSavingSummary};
use ms_kernels::{EpsKernel, Frame};
use ms_lowerror::{
    merge_frequent_baseline, merge_frequent_low_error, merge_space_saving_baseline,
    merge_space_saving_low_error, SortedSummary,
};
use ms_quantiles::{BottomKSample, GkSummary, HybridQuantile, KnownNQuantile, RankSummary};
use ms_range::ranges::{count_in, grid_queries};
use ms_range::{EpsApprox2d, Halving};
use ms_sketches::CountMinSketch;
use ms_workloads::{CloudKind, Partitioner, StreamKind, ValueDist};

fn main() {
    let args: BTreeSet<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.contains("all");
    let want = |id: &str| all || args.contains(id);

    println!("# mergeable-summaries experiment run");
    if want("t1") {
        t1_size_table();
    }
    if want("e1") {
        e1_mg_merge_error();
    }
    if want("e2") {
        e2_isomorphism();
    }
    if want("e3") {
        e3_mg_vs_count_min();
    }
    if want("e4") {
        e4_known_n_quantiles();
    }
    if want("e5") {
        e5_hybrid_size();
    }
    if want("e6") {
        e6_quantile_baselines();
    }
    if want("e7") {
        e7_range_approx();
    }
    if want("e8") {
        e8_kernels();
    }
    if want("e10") {
        e10_network_cost();
        e10_cluster_bytes();
    }
    if want("e11") {
        e11_buffer_ablation();
    }
    if want("e12") {
        e12_service_scaling();
    }
    if want("e13") {
        e13_segment_merge_error();
    }
    if want("x1") {
        x1_low_error_golden();
    }
    if want("x2") {
        x2_low_error_distribution();
    }
    if want("x3") {
        x3_low_error_end_to_end();
    }
    println!("\ndone.");
}

// ---------------------------------------------------------------------------
// helpers

const SITES: usize = 64;

fn build_mg(items: &[u64], eps: f64) -> Vec<MgSummary<u64>> {
    Partitioner::ByKey
        .split(items, SITES)
        .into_iter()
        .map(|part| {
            let mut s = MgSummary::for_epsilon(eps);
            s.extend_from(part);
            s
        })
        .collect()
}

fn mg_max_error(mg: &MgSummary<u64>, oracle: &FrequencyOracle<u64>) -> u64 {
    oracle
        .iter()
        .map(|(item, truth)| truth - mg.estimate(item))
        .max()
        .unwrap_or(0)
}

fn quantile_max_error<Q: RankSummary<u64>>(q: &Q, oracle: &RankOracle<u64>) -> f64 {
    let n = oracle.len() as f64;
    (0..=100)
        .filter_map(|i| oracle.quantile(i as f64 / 100.0).copied())
        .map(|x| oracle.rank_error(&x, q.rank(&x)) as f64 / n)
        .fold(0.0, f64::max)
}

// ---------------------------------------------------------------------------
// T1 — the paper's results table, measured

fn t1_size_table() {
    let n = 1 << 20;
    let pts_n = 1 << 18;
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 22,
    }
    .generate(n, 1);
    let values = ValueDist::Uniform.generate(n, 2);
    let points = CloudKind::Disk.generate(pts_n, 3);
    let exact_distinct = FrequencyOracle::from_stream(items.iter().copied()).distinct();

    let mut table = Table::new(
        "t1",
        &format!(
            "summary sizes (stored entries) after n = {n} items / {pts_n} points, \
             {SITES}-way balanced merge; exact counting needs {exact_distinct} entries"
        ),
        &[
            "eps",
            "MG",
            "SS",
            "known-n quant",
            "hybrid quant",
            "count-min cells",
            "eps-approx 2d",
            "eps-kernel",
        ],
    );

    for eps in [0.1, 0.05, 0.02, 0.01, 0.005, 0.002] {
        let mg = merge_all(build_mg(&items, eps), MergeTree::Balanced).unwrap();
        let ss = merge_all(
            Partitioner::ByKey
                .split(&items, SITES)
                .into_iter()
                .map(|p| {
                    let mut s = SpaceSavingSummary::for_epsilon(eps);
                    s.extend_from(p);
                    s
                })
                .collect(),
            MergeTree::Balanced,
        )
        .unwrap();
        let known = merge_all(
            values
                .chunks(n / SITES)
                .enumerate()
                .map(|(i, c)| {
                    let mut q = KnownNQuantile::new(eps, n as u64, i as u64);
                    for &v in c {
                        q.insert(v);
                    }
                    q
                })
                .collect(),
            MergeTree::Balanced,
        )
        .unwrap();
        let hybrid = merge_all(
            values
                .chunks(n / SITES)
                .enumerate()
                .map(|(i, c)| {
                    let mut q = HybridQuantile::new(eps, i as u64);
                    for &v in c {
                        q.insert(v);
                    }
                    q
                })
                .collect(),
            MergeTree::Balanced,
        )
        .unwrap();
        let cm = CountMinSketch::<u64>::for_epsilon_delta(eps, 0.01, 9);
        let approx = merge_all(
            points
                .chunks(pts_n / SITES)
                .enumerate()
                .map(|(i, c)| {
                    let mut a = EpsApprox2d::for_epsilon(eps, i as u64);
                    a.extend_from(c.iter().copied());
                    a
                })
                .collect(),
            MergeTree::Balanced,
        )
        .unwrap();
        let frame = Frame::from_points(&points);
        let kernel = merge_all(
            points
                .chunks(pts_n / SITES)
                .map(|c| {
                    let mut k = EpsKernel::new(eps, frame);
                    k.extend_from(c.iter().copied());
                    k
                })
                .collect(),
            MergeTree::Balanced,
        )
        .unwrap();

        table.row(vec![
            format!("{eps}"),
            mg.size().to_string(),
            ss.size().to_string(),
            known.size().to_string(),
            hybrid.size().to_string(),
            cm.size().to_string(),
            approx.size().to_string(),
            kernel.size().to_string(),
        ]);
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// E1 — MG mergeability (§3 Theorem 1)

fn e1_mg_merge_error() {
    let n = 1 << 20;
    let eps = 0.01;
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 22,
    }
    .generate(n, 11);
    let oracle = FrequencyOracle::from_stream(items.iter().copied());

    let mut table = Table::new(
        "e1",
        &format!(
            "Misra-Gries merged error, eps = {eps}, n = {n}, Zipf(1.1); \
             bound is the summary's own (n − n̂)/(k+1)"
        ),
        &[
            "sites",
            "tree",
            "partition",
            "max err / n",
            "self bound / n",
            "εn bound ok",
        ],
    );

    for sites in [2usize, 16, 64, 256] {
        for shape in MergeTree::canonical() {
            let partitioner = Partitioner::ByKey;
            let leaves: Vec<MgSummary<u64>> = partitioner
                .split(&items, sites)
                .into_iter()
                .map(|p| {
                    let mut s = MgSummary::for_epsilon(eps);
                    s.extend_from(p);
                    s
                })
                .collect();
            let merged = merge_all(leaves, shape).unwrap();
            let max_err = mg_max_error(&merged, &oracle) as f64 / n as f64;
            let self_bound = merged.error_bound() / n as f64;
            table.row(vec![
                sites.to_string(),
                shape.label().to_string(),
                partitioner.label().to_string(),
                fmt(max_err),
                fmt(self_bound),
                (max_err <= eps).to_string(),
            ]);
        }
    }
    // Partitioner sweep at 64 sites, balanced tree.
    for partitioner in Partitioner::canonical() {
        let leaves: Vec<MgSummary<u64>> = partitioner
            .split(&items, 64)
            .into_iter()
            .map(|p| {
                let mut s = MgSummary::for_epsilon(eps);
                s.extend_from(p);
                s
            })
            .collect();
        let merged = merge_all(leaves, MergeTree::Balanced).unwrap();
        let max_err = mg_max_error(&merged, &oracle) as f64 / n as f64;
        table.row(vec![
            "64".into(),
            "balanced".into(),
            partitioner.label().to_string(),
            fmt(max_err),
            fmt(merged.error_bound() / n as f64),
            (max_err <= eps).to_string(),
        ]);
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// E2 — MG ⇄ SpaceSaving isomorphism (§3 Lemma 1)

fn e2_isomorphism() {
    let n = 200_000;
    let items = StreamKind::Zipf {
        s: 1.2,
        universe: 50_000,
    }
    .generate(n, 21);

    let mut table = Table::new(
        "e2",
        &format!("MG(k) vs SpaceSaving(k+1) on the same stream, n = {n}, Zipf(1.2)"),
        &["k", "delta = (n − n̂)/(k+1)", "profiles match"],
    );
    for k in [8usize, 16, 64, 128, 256, 512] {
        let mut mg = MgSummary::new(k);
        let mut ss = SpaceSavingSummary::new(k + 1);
        for &item in &items {
            mg.update(item);
            ss.update(item);
        }
        let outcome = check_isomorphism(&mg, &ss);
        table.row(vec![
            k.to_string(),
            outcome
                .as_ref()
                .map(|d| d.to_string())
                .unwrap_or_else(|e| format!("FAIL: {e}")),
            outcome.is_ok().to_string(),
        ]);
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// E3 — merged MG vs Count-Min at equal space (§3 comparison class)

fn e3_mg_vs_count_min() {
    let n = 1 << 20;
    // MG with k counters ≈ k × (8B item + 8B count); CM cell = 8B.
    let k = 99;
    let cm_cells = 2 * k; // equal byte budget
    let width = cm_cells / 3;

    let mut table = Table::new(
        "e3",
        &format!(
            "heavy-hitter error at equal space (~{} bytes), n = {n}: \
             deterministic MG (k = {k}) vs Count-Min ({width}×3 cells)",
            16 * k
        ),
        &[
            "zipf s",
            "MG max err",
            "MG mean err (top 100)",
            "CM max err",
            "CM mean err (top 100)",
        ],
    );

    for s in [1.0, 1.2, 1.5] {
        let items = StreamKind::Zipf {
            s,
            universe: 1 << 22,
        }
        .generate(n, 31);
        let oracle = FrequencyOracle::from_stream(items.iter().copied());

        let mg = merge_all(
            Partitioner::ByKey
                .split(&items, SITES)
                .into_iter()
                .map(|p| {
                    let mut m = MgSummary::new(k);
                    m.extend_from(p);
                    m
                })
                .collect(),
            MergeTree::Balanced,
        )
        .unwrap();
        let cm = merge_all(
            Partitioner::ByKey
                .split(&items, SITES)
                .into_iter()
                .map(|p| {
                    let mut c = CountMinSketch::new(width, 3, 0xFEED);
                    c.extend_from(p);
                    c
                })
                .collect(),
            MergeTree::Balanced,
        )
        .unwrap();

        let top: Vec<(u64, u64)> = oracle.top_k(100);
        let mg_top_mean = top
            .iter()
            .map(|(i, t)| (t - mg.estimate(i)) as f64)
            .sum::<f64>()
            / top.len() as f64;
        let cm_top_mean = top
            .iter()
            .map(|(i, t)| (cm.estimate(i) - t) as f64)
            .sum::<f64>()
            / top.len() as f64;
        let mg_max = mg_max_error(&mg, &oracle);
        let cm_max = oracle
            .iter()
            .map(|(i, t)| cm.estimate(i) - t)
            .max()
            .unwrap_or(0);

        table.row(vec![
            format!("{s}"),
            mg_max.to_string(),
            fmt(mg_top_mean),
            cm_max.to_string(),
            fmt(cm_top_mean),
        ]);
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// E4 — known-n quantiles under merge trees (§4.2)

fn e4_known_n_quantiles() {
    let n = 1 << 18;
    let eps = 0.02;
    let trials = 10;

    let mut table = Table::new(
        "e4",
        &format!(
            "known-n quantile summary, eps = {eps}, n = {n}, {SITES} sites, \
             {trials} trials: max rank error / n across the trial set"
        ),
        &["distribution", "tree", "p50", "p99", "max", "≤ eps"],
    );

    for dist in ValueDist::canonical() {
        let values = dist.generate(n, 41);
        let oracle = RankOracle::from_stream(values.clone());
        for shape in MergeTree::canonical() {
            let mut errors: Vec<f64> = Vec::with_capacity(trials);
            for trial in 0..trials {
                let leaves: Vec<KnownNQuantile<u64>> = values
                    .chunks(n / SITES)
                    .enumerate()
                    .map(|(i, c)| {
                        let mut q = KnownNQuantile::new(eps, n as u64, (trial * 1000 + i) as u64);
                        for &v in c {
                            q.insert(v);
                        }
                        q
                    })
                    .collect();
                let merged = merge_all(leaves, shape).unwrap();
                errors.push(quantile_max_error(&merged, &oracle));
            }
            errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let max = *errors.last().unwrap();
            table.row(vec![
                dist.label(),
                shape.label().to_string(),
                fmt(errors[errors.len() / 2]),
                fmt(errors[(errors.len() * 99 / 100).min(errors.len() - 1)]),
                fmt(max),
                (max <= eps).to_string(),
            ]);
        }
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// E5 — hybrid summary: size independent of n (§4.3)

fn e5_hybrid_size() {
    let eps = 0.05;
    let mut table = Table::new(
        "e5",
        &format!(
            "hybrid quantile summary, eps = {eps}: size must plateau as n grows \
             (fully mergeable, no advance knowledge of n)"
        ),
        &[
            "n",
            "stored points",
            "base weight w",
            "levels cap",
            "max rank err / n",
            "≤ eps",
        ],
    );
    for exp in [14u32, 16, 18, 20, 22] {
        let n = 1usize << exp;
        let values = ValueDist::Uniform.generate(n, 51);
        let oracle = RankOracle::from_stream(values.clone());
        let mut q = HybridQuantile::new(eps, 7);
        for &v in &values {
            q.insert(v);
        }
        let err = quantile_max_error(&q, &oracle);
        table.row(vec![
            format!("2^{exp}"),
            q.size().to_string(),
            q.base_weight().to_string(),
            q.max_levels().to_string(),
            fmt(err),
            (err <= eps).to_string(),
        ]);
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// E6 — quantile baselines: GK merges and sampling (§4 context)

fn e6_quantile_baselines() {
    let n = 1 << 18;
    let eps = 0.02;
    let values = ValueDist::Uniform.generate(n, 61);
    let oracle = RankOracle::from_stream(values.clone());
    let chunks: Vec<&[u64]> = values.chunks(n / SITES).collect();

    // Hybrid (the paper's summary).
    let hybrid = merge_all(
        chunks
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut q = HybridQuantile::new(eps, i as u64);
                for &v in *c {
                    q.insert(v);
                }
                q
            })
            .collect(),
        MergeTree::Chain,
    )
    .unwrap();

    // GK with the folk combine, chained.
    let gk = merge_all(
        chunks
            .iter()
            .map(|c| {
                let mut q = GkSummary::new(eps);
                for &v in *c {
                    q.insert(v);
                }
                q
            })
            .collect(),
        MergeTree::Chain,
    )
    .unwrap();
    let gk_single = {
        let mut q = GkSummary::new(eps);
        for &v in &values {
            q.insert(v);
        }
        q
    };

    // Bottom-k sampling at two budgets.
    let sample_at = |k: usize| -> BottomKSample<u64> {
        merge_all(
            chunks
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let mut s = BottomKSample::new(k, i as u64);
                    for &v in *c {
                        s.insert(v);
                    }
                    s
                })
                .collect(),
            MergeTree::Chain,
        )
        .unwrap()
    };
    let sample_small = sample_at(hybrid.size());
    let sample_big = sample_at((1.0 / (eps * eps)) as usize);

    let mut table = Table::new(
        "e6",
        &format!("quantile baselines, eps = {eps}, n = {n}, {SITES}-way chained merge"),
        &["summary", "size", "max rank err / n", "note"],
    );
    table.row(vec![
        "hybrid (paper)".into(),
        hybrid.size().to_string(),
        fmt(quantile_max_error(&hybrid, &oracle)),
        "mergeable, size indep. of n".into(),
    ]);
    table.row(vec![
        "GK single-stream".into(),
        gk_single.size().to_string(),
        fmt(quantile_max_error(&gk_single, &oracle)),
        "streaming only".into(),
    ]);
    table.row(vec![
        "GK chained merges".into(),
        gk.size().to_string(),
        fmt(quantile_max_error(&gk, &oracle)),
        "size blows up across merges".into(),
    ]);
    table.row(vec![
        format!("bottom-k (k = {})", sample_small.size()),
        sample_small.size().to_string(),
        fmt(quantile_max_error(&sample_small, &oracle)),
        "same space as hybrid".into(),
    ]);
    table.row(vec![
        format!("bottom-k (k = {})", sample_big.size()),
        sample_big.size().to_string(),
        fmt(quantile_max_error(&sample_big, &oracle)),
        "Θ(1/eps²) space for eps error".into(),
    ]);
    table.emit();
}

// ---------------------------------------------------------------------------
// E7 — ε-approximations via merge-reduce (§5)

fn e7_range_approx() {
    use ms_range::ranges::{count_where, random_halfplanes};

    let n = 1 << 16;
    let points = CloudKind::UniformSquare.generate(n, 71);
    let queries = grid_queries(&points, 6);
    let halfplanes = random_halfplanes(&points, 500, 73);

    let mut table = Table::new(
        "e7",
        &format!(
            "2D eps-approximation, n = {n} uniform points, {SITES} sites, \
             balanced merge, {} rectangle + {} halfplane queries",
            queries.len(),
            halfplanes.len()
        ),
        &[
            "halving",
            "m",
            "stored",
            "rect max |err| / n",
            "halfplane max |err| / n",
        ],
    );

    for halving in [Halving::Random, Halving::SortedX, Halving::Hilbert] {
        for m in [64usize, 128, 256, 512] {
            let merged = merge_all(
                points
                    .chunks(n / SITES)
                    .enumerate()
                    .map(|(i, c)| {
                        let mut a = EpsApprox2d::new(m, halving, i as u64);
                        a.extend_from(c.iter().copied());
                        a
                    })
                    .collect(),
                MergeTree::Balanced,
            )
            .unwrap();
            let max_err = queries
                .iter()
                .map(|r| (merged.estimate_count(r) as f64 - count_in(&points, r) as f64).abs())
                .fold(0.0, f64::max)
                / n as f64;
            let hp_err = halfplanes
                .iter()
                .map(|h| {
                    let exact = count_where(&points, |p| h.contains(p)) as f64;
                    let est = merged.estimate_count_where(|p| h.contains(p)) as f64;
                    (est - exact).abs()
                })
                .fold(0.0, f64::max)
                / n as f64;
            table.row(vec![
                halving.label().to_string(),
                m.to_string(),
                merged.size().to_string(),
                fmt(max_err),
                fmt(hp_err),
            ]);
        }
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// E8 — ε-kernels in the restricted model (§6)

fn e8_kernels() {
    let n = 1 << 16;

    let mut table = Table::new(
        "e8",
        &format!(
            "eps-kernels, n = {n} points, {SITES} sites, random merge tree, \
             720 width probes"
        ),
        &[
            "cloud",
            "eps",
            "grid t",
            "kernel size",
            "max width err",
            "≤ eps",
        ],
    );

    let width_err = |kernel: &EpsKernel, pts: &[ms_core::Point2]| -> f64 {
        (0..720)
            .map(|i| {
                let dir = unit_dir(std::f64::consts::TAU * i as f64 / 720.0);
                let truth = directional_width(pts, dir);
                if truth == 0.0 {
                    0.0
                } else {
                    (truth - kernel.width(dir)) / truth
                }
            })
            .fold(0.0, f64::max)
    };

    for cloud in [
        CloudKind::Ring,
        CloudKind::Gaussian,
        CloudKind::Ellipse { aspect: 10.0 },
    ] {
        let pts = cloud.generate(n, 81);
        let frame = Frame::from_points(&pts);
        for eps in [0.2, 0.1, 0.05, 0.02, 0.01] {
            let merged = merge_all(
                pts.chunks(n / SITES)
                    .map(|c| {
                        let mut k = EpsKernel::new(eps, frame);
                        k.extend_from(c.iter().copied());
                        k
                    })
                    .collect(),
                MergeTree::Random { seed: 5 },
            )
            .unwrap();
            let err = width_err(&merged, &pts);
            table.row(vec![
                cloud.label(),
                format!("{eps}"),
                merged.grid_size().to_string(),
                merged.size().to_string(),
                fmt(err),
                (err <= eps).to_string(),
            ]);
        }
    }

    // Ablation: drop the shared frame on the anisotropic cloud.
    let pts = CloudKind::Ellipse { aspect: 10.0 }.generate(n, 81);
    let mut bare = EpsKernel::new(0.05, Frame::identity());
    bare.extend_from(pts.iter().copied());
    table.row(vec![
        "ellipse, identity frame".into(),
        "0.05".into(),
        bare.grid_size().to_string(),
        bare.size().to_string(),
        fmt(width_err(&bare, &pts)),
        "(ablation)".into(),
    ]);
    table.emit();
}

// ---------------------------------------------------------------------------
// E11 — ablation: quantile buffer size m vs error (the accuracy/space curve
// behind the m = Θ((1/ε)√log(1/δ)) sizing rule)

fn e11_buffer_ablation() {
    use ms_quantiles::buffer::SortedBuffer;
    use ms_quantiles::hierarchy::BufferHierarchy;

    let n = 1 << 18;
    let trials = 20;
    let values = ValueDist::Uniform.generate(n, 111);
    let oracle = RankOracle::from_stream(values.clone());

    let mut table = Table::new(
        "e11",
        &format!(
            "ablation: same-weight-merge hierarchy with raw buffer size m, \
             n = {n}, {trials} trials — max rank error / n scales as ~1/m \
             (each halving of error costs 2x space)"
        ),
        &[
            "m",
            "stored points",
            "mean of max err / n",
            "worst of max err / n",
        ],
    );

    for m in [32usize, 64, 128, 256, 512, 1024] {
        let mut maxes = Vec::with_capacity(trials);
        let mut size = 0usize;
        for trial in 0..trials as u64 {
            let mut rng = ms_core::Rng64::new(1000 + trial);
            let mut hierarchy: BufferHierarchy<u64> = BufferHierarchy::new();
            for chunk in values.chunks(m) {
                hierarchy.push_buffer(0, SortedBuffer::from_unsorted(chunk.to_vec()), &mut rng);
            }
            size = hierarchy.stored_points();
            let worst = (0..=100)
                .filter_map(|i| oracle.quantile(i as f64 / 100.0).copied())
                .map(|x| {
                    oracle.rank_error(&x, hierarchy.weighted_count_below(&x, 1)) as f64 / n as f64
                })
                .fold(0.0, f64::max);
            maxes.push(worst);
        }
        let mean = maxes.iter().sum::<f64>() / maxes.len() as f64;
        let worst = maxes.iter().copied().fold(0.0, f64::max);
        table.row(vec![m.to_string(), size.to_string(), fmt(mean), fmt(worst)]);
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// E10 — communication cost of in-network aggregation (the paper's motivation)

fn e10_network_cost() {
    use ms_netsim::{aggregate, raw_shipping_bytes, Topology};

    let sites = 64;
    let per_site = 16_384;
    let n = sites * per_site;
    let eps = 0.01;
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 22,
    }
    .generate(n, 91);
    let parts = Partitioner::RoundRobin.split(&items, sites);
    let raw = raw_shipping_bytes(&vec![per_site; sites], 8);

    let mut table = Table::new(
        "e10",
        &format!(
            "in-network aggregation traffic, {sites} sites × {per_site} items, \
             eps = {eps}; raw shipping (8 B/item, one hop) = {raw} B; \
             bytes reported under the binary wire codec and a JSON encoding"
        ),
        &[
            "summary",
            "topology",
            "messages",
            "wire bytes",
            "max message",
            "vs raw",
            "json bytes",
            "json/wire",
        ],
    );

    let mut push = |name: &str, topology: Topology, stats: &ms_netsim::NetStats| {
        table.row(vec![
            name.into(),
            topology.label().to_string(),
            stats.messages.to_string(),
            stats.total_bytes.to_string(),
            stats.max_message_bytes.to_string(),
            fmt(stats.total_bytes as f64 / raw as f64),
            stats.json_total_bytes.to_string(),
            fmt(stats.json_total_bytes as f64 / stats.total_bytes.max(1) as f64),
        ]);
    };

    for topology in Topology::canonical() {
        // Misra-Gries.
        let mg_leaves: Vec<MgSummary<u64>> = parts
            .iter()
            .map(|p| {
                let mut s = MgSummary::for_epsilon(eps);
                s.extend_from(p.iter().copied());
                s
            })
            .collect();
        let (_, stats) = aggregate(mg_leaves, topology).unwrap();
        push("misra-gries", topology, &stats);

        // Hybrid quantiles.
        let hq_leaves: Vec<HybridQuantile<u64>> = parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut q = HybridQuantile::new(eps, i as u64);
                for &v in p {
                    q.insert(v);
                }
                q
            })
            .collect();
        let (_, stats) = aggregate(hq_leaves, topology).unwrap();
        push("hybrid quantile", topology, &stats);

        // Count-Min (linear sketch).
        let cm_leaves: Vec<CountMinSketch<u64>> = parts
            .iter()
            .map(|p| {
                let mut s = CountMinSketch::for_epsilon_delta(eps, 0.01, 0xAB);
                s.extend_from(p.iter().copied());
                s
            })
            .collect();
        let (_, stats) = aggregate(cm_leaves, topology).unwrap();
        push("count-min", topology, &stats);
    }
    table.emit();
}

// E10b — the same accounting measured on a *live* federation: a
// coordinator scatter/gathering over three real TCP backend nodes, with
// the coordinator's own byte counters (scatter = request frames shipped
// to backends, gather = summary response frames shipped back) read per
// phase. This is the fanout topology of the first table, priced by the
// actual wire protocol instead of the abstract merge schedule.
fn e10_cluster_bytes() {
    use ms_cluster::{ClusterConfig, Coordinator};
    use ms_service::{Engine, Request, Response, Server, Service, ServiceConfig, SummaryKind};
    use std::sync::Arc;

    let nodes = 3usize;
    let per_node = 16_384usize;
    let n = nodes * per_node;
    let eps = 0.01;
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 22,
    }
    .generate(n, 91);

    let mut table = Table::new(
        "e10-cluster",
        &format!(
            "live coordinator scatter/gather wire traffic, {nodes}-node cluster, \
             {n} items ingested in 512-item batches, eps = {eps}; scatter bytes = \
             request frames shipped to backends, gather bytes = summary frames \
             merged back (non-summary responses are not counted); per phase, \
             from the coordinator's own byte counters"
        ),
        &["kind", "phase", "scatter bytes", "gather bytes"],
    );

    for kind in [SummaryKind::Mg, SummaryKind::HybridQuantile] {
        let backends: Vec<(Arc<Engine>, Server)> = (0..nodes)
            .map(|i| {
                let cfg = ServiceConfig::new(kind, eps).seed(0x10C0_FFEE + i as u64);
                let engine = Engine::start(cfg).expect("backend engine");
                let server =
                    Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("backend server");
                (engine, server)
            })
            .collect();
        let addrs: Vec<String> = backends
            .iter()
            .map(|(_, server)| server.local_addr().to_string())
            .collect();
        let coordinator =
            Coordinator::start(ClusterConfig::new(addrs).ping_interval(None)).expect("coordinator");

        let counter = |name: &str| -> u64 {
            coordinator
                .telemetry()
                .snapshot()
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        let mut account = |phase: &str, run: &mut dyn FnMut()| {
            let scatter0 = counter("scatter_bytes_total");
            let gather0 = counter("gather_bytes_total");
            run();
            table.row(vec![
                kind.label().to_string(),
                phase.to_string(),
                (counter("scatter_bytes_total") - scatter0).to_string(),
                (counter("gather_bytes_total") - gather0).to_string(),
            ]);
        };

        account(&format!("ingest ({n} items)"), &mut || {
            for chunk in items.chunks(512) {
                coordinator.ingest(chunk).expect("cluster ingest");
            }
            coordinator.flush().expect("cluster flush");
        });
        let query = match kind {
            SummaryKind::Mg => ("heavy-hitters(0.01)", Request::HeavyHitters(0.01)),
            _ => ("quantile(0.5)", Request::Quantile(0.5)),
        };
        for (phase, request) in [
            query,
            ("summary (one-shot merge)", Request::Summary),
            ("metrics (merged)", Request::Metrics),
            ("telemetry (merged)", Request::Telemetry),
        ] {
            account(phase, &mut || {
                let response = coordinator.handle(request.clone());
                assert!(
                    !matches!(response, Response::Error(_)),
                    "{phase} failed: {response:?}"
                );
            });
        }

        coordinator.shutdown();
        for (_, server) in backends {
            server.stop();
        }
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// E12 — concurrent service: ingest scaling and snapshot accuracy

fn e12_service_scaling() {
    use ms_core::{ToJson, Wire};
    use ms_service::{Engine, ServiceConfig, SummaryKind};
    use std::time::Instant;

    let n = 1 << 20;
    let eps = 0.01;
    let items = StreamKind::Zipf {
        s: 1.2,
        universe: 1 << 20,
    }
    .generate(n, 121);
    let oracle = FrequencyOracle::from_stream(items.iter().copied());
    let bound = (eps * n as f64).ceil() as u64;

    let mut table = Table::new(
        "e12",
        &format!(
            "sharded concurrent engine (mg, eps = {eps}), {n} zipf items; \
             max point error must stay within eps*n = {bound} at every shard \
             count (arbitrary merge trees do not degrade the bound)"
        ),
        &[
            "shards",
            "updates/sec",
            "merges",
            "epochs",
            "max error",
            "within eps*n",
            "snapshot wire B",
            "snapshot json B",
        ],
    );

    for shards in [1usize, 2, 4, 8] {
        let cfg = ServiceConfig::new(SummaryKind::Mg, eps)
            .shards(shards)
            .delta_updates(16_384)
            .seed(7);
        let engine = Engine::start(cfg).unwrap();
        let start = Instant::now();
        for chunk in items.chunks(4_096) {
            engine.ingest(chunk.to_vec()).unwrap();
        }
        let snapshot = engine.shutdown();
        let secs = start.elapsed().as_secs_f64();
        let m = engine.metrics();
        let max_err = oracle
            .iter()
            .map(|(item, truth)| snapshot.summary.point(*item).unwrap().abs_diff(truth))
            .max()
            .unwrap_or(0);
        table.row(vec![
            shards.to_string(),
            fmt(n as f64 / secs),
            m.merges.to_string(),
            m.epoch.to_string(),
            max_err.to_string(),
            (max_err <= bound).to_string(),
            snapshot.summary.wire_len().to_string(),
            snapshot.summary.json_len().to_string(),
        ]);
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// E13 — error vs. number of merged segments (the segment cube's range path)

/// The paper's mergeability guarantee (Definition 1) applied to the
/// segment cube: slicing one stream into S time segments, summarizing
/// each independently, and one-shot merging all S to answer a range
/// query must cost the *same* `ε·n` bound at every S — error must not
/// grow with the number of merged segments.
fn e13_segment_merge_error() {
    use ms_service::{SegmentConfig, SegmentCube, SummaryKind};
    use std::sync::Arc;

    let n = 1 << 17;
    let eps = 0.01;
    let batches = 256usize;
    let batch = n / batches;
    let items = StreamKind::Zipf {
        s: 1.1,
        universe: 1 << 16,
    }
    .generate(n, 131);
    let freq = FrequencyOracle::from_stream(items.iter().copied());
    let rank = RankOracle::from_stream(items.iter().copied());
    let bound = (eps * n as f64).ceil() as u64;

    let mut table = Table::new(
        "e13-segments",
        &format!(
            "segment cube range merge (eps = {eps}), {n} zipf items in {batches} \
             batches sliced into S segments; the full-range one-shot merge of \
             all S must keep every family within eps*n = {bound} regardless of S \
             (Definition 1: merging does not degrade the bound)"
        ),
        &[
            "segments",
            "mg max err",
            "ss max err",
            "cm max err",
            "rank max err",
            "eps*n",
            "within eps*n",
        ],
    );

    for segs in [1usize, 2, 4, 8, 16, 32, 64] {
        // A frozen manual clock: only the batch-count boundary seals, so
        // the cube holds exactly `segs` sealed segments after ingest.
        let clock = Arc::new(ms_service::ManualClock::new(1));
        let cube = SegmentCube::new(
            eps,
            131,
            SegmentConfig::new()
                .seal_batches((batches / segs) as u64)
                .seal_micros(1 << 40)
                .clock(clock as Arc<dyn ms_service::CubeClock>),
        );
        for chunk in items.chunks(batch) {
            cube.record_with(chunk, || Ok::<(), ()>(())).unwrap();
        }

        let mut errs = [0u64; 4];
        let kinds = [
            SummaryKind::Mg,
            SummaryKind::SpaceSaving,
            SummaryKind::CountMin,
            SummaryKind::HybridQuantile,
        ];
        for (slot, kind) in kinds.into_iter().enumerate() {
            let (meta, merged) = cube.query(0, u64::MAX, kind);
            assert_eq!(meta.segments_merged as usize, segs, "covering set is all S");
            assert_eq!(
                meta.covered_weight, n as u64,
                "full range covers the stream"
            );
            let merged = merged.unwrap();
            errs[slot] = match kind {
                SummaryKind::HybridQuantile => (0..=100)
                    .filter_map(|i| rank.quantile(i as f64 / 100.0).copied())
                    .map(|x| rank.rank_error(&x, merged.rank(x).unwrap()))
                    .max()
                    .unwrap_or(0),
                _ => freq
                    .iter()
                    .map(|(item, truth)| merged.point(*item).unwrap().abs_diff(truth))
                    .max()
                    .unwrap_or(0),
            };
        }
        table.row(vec![
            segs.to_string(),
            errs[0].to_string(),
            errs[1].to_string(),
            errs[2].to_string(),
            errs[3].to_string(),
            bound.to_string(),
            errs.iter().all(|&e| e <= bound).to_string(),
        ]);
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// X1 — extension golden examples + error comparison

fn x1_low_error_golden() {
    let mut table = Table::new(
        "x1",
        "extension (low-total-error merges): golden examples from the extension \
         paper's §5, then random 2-way merges (200 trials per k)",
        &[
            "case",
            "k",
            "baseline total err",
            "low-error total err",
            "reduction",
        ],
    );

    // Golden: Frequent example (§5.1).
    let fa = SortedSummary::new(vec![(2u64, 4u64), (3, 11), (4, 22), (5, 33)]);
    let fb = SortedSummary::new(vec![(7u64, 10u64), (8, 20), (9, 30), (10, 40)]);
    let base = merge_frequent_baseline(&fa, &fb, 5);
    let low = merge_frequent_low_error(&fa, &fb, 5);
    table.row(vec![
        "golden frequent §5.1".into(),
        "5".into(),
        base.total_error.to_string(),
        low.total_error.to_string(),
        fmt(1.0 - low.total_error as f64 / base.total_error as f64),
    ]);

    // Golden: SpaceSaving example (§5.2).
    let sa = SortedSummary::new(vec![(1u64, 5u64), (2, 7), (3, 12), (4, 14), (5, 18)]);
    let sb = SortedSummary::new(vec![(6u64, 4u64), (7, 16), (8, 17), (9, 19), (10, 23)]);
    let base = merge_space_saving_baseline(&sa, &sb, 5);
    let low = merge_space_saving_low_error(&sa, &sb, 5);
    table.row(vec![
        "golden space-saving §5.2".into(),
        "5".into(),
        base.total_error.to_string(),
        low.total_error.to_string(),
        fmt(1.0 - low.total_error as f64 / base.total_error as f64),
    ]);

    // Random summaries across k.
    let mut rng = Rng64::new(0xE0);
    for k in [5usize, 16, 64, 256] {
        let mut base_f = 0u64;
        let mut low_f = 0u64;
        let mut base_s = 0u64;
        let mut low_s = 0u64;
        for _ in 0..200 {
            let mk = |rng: &mut Rng64, cap: usize, base_id: u64| {
                SortedSummary::new(
                    (0..cap)
                        .map(|i| (base_id + i as u64, 1 + rng.below(10_000)))
                        .collect(),
                )
            };
            let a = mk(&mut rng, k - 1, 0);
            let b = mk(&mut rng, k - 1, 1_000_000);
            base_f += merge_frequent_baseline(&a, &b, k).total_error;
            low_f += merge_frequent_low_error(&a, &b, k).total_error;
            let a = mk(&mut rng, k, 0);
            let b = mk(&mut rng, k, 1_000_000);
            base_s += merge_space_saving_baseline(&a, &b, k).total_error;
            low_s += merge_space_saving_low_error(&a, &b, k).total_error;
        }
        table.row(vec![
            "random frequent".into(),
            k.to_string(),
            base_f.to_string(),
            low_f.to_string(),
            fmt(1.0 - low_f as f64 / base_f as f64),
        ]);
        table.row(vec![
            "random space-saving".into(),
            k.to_string(),
            base_s.to_string(),
            low_s.to_string(),
            fmt(1.0 - low_s as f64 / base_s as f64),
        ]);
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// X3 — extension end-to-end: the low-error merge on real streams

fn x3_low_error_end_to_end() {
    use ms_lowerror::{merge_frequent_baseline, merge_frequent_low_error};

    let n = 1 << 20;
    let mut table = Table::new(
        "x3",
        &format!(
            "extension end-to-end: two sites summarize a Zipf stream (n = {n}) \
             with Frequent (k−1 counters), then merge; error = Σ |est − true| \
             over all items of the merged summary"
        ),
        &[
            "zipf s",
            "k",
            "baseline Σ|err|",
            "low-error Σ|err|",
            "baseline max",
            "low-error max",
        ],
    );

    for zipf_s in [1.1, 1.5] {
        let items = StreamKind::Zipf {
            s: zipf_s,
            universe: 1 << 22,
        }
        .generate(n, 201);
        let oracle = FrequencyOracle::from_stream(items.iter().copied());
        let parts = Partitioner::ByKey.split(&items, 2);
        for k in [64usize, 256] {
            let site = |part: &Vec<u64>| {
                let mut mg = MgSummary::new(k - 1);
                mg.extend_from(part.iter().copied());
                SortedSummary::from_mg(&mg)
            };
            let (a, b) = (site(&parts[0]), site(&parts[1]));
            let score = |summary: &SortedSummary<u64>| -> (u64, u64) {
                let mut total = 0u64;
                let mut max = 0u64;
                for (item, est) in summary.entries() {
                    let err = est.abs_diff(oracle.count(item));
                    total += err;
                    max = max.max(err);
                }
                (total, max)
            };
            let base = merge_frequent_baseline(&a, &b, k);
            let low = merge_frequent_low_error(&a, &b, k);
            let (bt, bm) = score(&base.summary);
            let (lt, lm) = score(&low.summary);
            table.row(vec![
                format!("{zipf_s}"),
                k.to_string(),
                bt.to_string(),
                lt.to_string(),
                bm.to_string(),
                lm.to_string(),
            ]);
        }
    }
    table.emit();
}

// ---------------------------------------------------------------------------
// X2 — extension: reduction distribution at scale

fn x2_low_error_distribution() {
    let trials = 1_000;
    let k = 64;
    let mut rng = Rng64::new(0xE1);
    let mut ratios_f: Vec<f64> = Vec::with_capacity(trials);
    let mut ratios_s: Vec<f64> = Vec::with_capacity(trials);
    for _ in 0..trials {
        // Zipf-profiled counters model realistic site summaries.
        let mk = |rng: &mut Rng64, cap: usize, base_id: u64| {
            SortedSummary::new(
                (0..cap)
                    .map(|i| {
                        let rank = 1 + rng.below(cap as u64);
                        (base_id + i as u64, 1 + 100_000 / rank)
                    })
                    .collect(),
            )
        };
        let a = mk(&mut rng, k - 1, 0);
        let b = mk(&mut rng, k - 1, 1_000_000);
        let base = merge_frequent_baseline(&a, &b, k).total_error;
        let low = merge_frequent_low_error(&a, &b, k).total_error;
        if base > 0 {
            ratios_f.push(low as f64 / base as f64);
        }
        let a = mk(&mut rng, k, 0);
        let b = mk(&mut rng, k, 1_000_000);
        let base = merge_space_saving_baseline(&a, &b, k).total_error;
        let low = merge_space_saving_low_error(&a, &b, k).total_error;
        if base > 0 {
            ratios_s.push(low as f64 / base as f64);
        }
    }
    let stats = |v: &mut Vec<f64>| -> (f64, f64, f64, f64) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (
            v[v.len() / 2],
            v[v.len() * 95 / 100],
            *v.last().unwrap(),
            v.iter().filter(|&&r| r < 1.0).count() as f64 / v.len() as f64,
        )
    };
    let (f_p50, f_p95, f_max, f_frac) = stats(&mut ratios_f);
    let (s_p50, s_p95, s_max, s_frac) = stats(&mut ratios_s);

    let mut table = Table::new(
        "x2",
        &format!(
            "extension: low-error/baseline total-error ratio over {trials} random \
             2-way merges, k = {k} (ratio < 1 means the low-error merge wins)"
        ),
        &[
            "algorithm",
            "p50 ratio",
            "p95 ratio",
            "max ratio",
            "fraction improved",
        ],
    );
    table.row(vec![
        "frequent".into(),
        fmt(f_p50),
        fmt(f_p95),
        fmt(f_max),
        fmt(f_frac),
    ]);
    table.row(vec![
        "space-saving".into(),
        fmt(s_p50),
        fmt(s_p95),
        fmt(s_max),
        fmt(s_frac),
    ]);
    table.emit();
}

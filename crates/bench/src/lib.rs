//! Shared harness for the experiment binary and the criterion benches:
//! markdown table rendering and machine-readable result records.

pub mod report;

pub use report::{ExperimentRecord, Table};

//! Shared harness for the experiment binary and the micro-benches:
//! markdown table rendering, machine-readable result records, and a
//! self-contained timing harness (see [`harness`]).

pub mod harness;
pub mod report;

pub use harness::{Measurement, Suite};
pub use report::{ExperimentRecord, Table};

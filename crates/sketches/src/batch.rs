//! Batched row-bucket kernels for the hash-then-update split.
//!
//! The Count-Min hot loop spends most of its time in
//! `PairwiseHash::bucket`: a Mersenne-modular affine evaluation (one
//! `u128` multiply) followed by a hardware divide (`% width` with a
//! runtime divisor). LLVM cannot autovectorize either, so the scalar loop
//! is stuck at roughly one divide per item per row. This module computes
//! **all row offsets for a lane of fingerprints in one pass**:
//!
//! - the scalar variant simply calls [`PairwiseHash::bucket`] per element
//!   and is the semantic source of truth;
//! - the AVX2 variant evaluates four lanes at a time: `x mod p` by the
//!   Mersenne fold `(x & p) + (x >> 61)`, the 64×64→128 product by 32-bit
//!   limb decomposition over `_mm256_mul_epu32`, the reduction by
//!   `(lo & p) + ((lo >> 61) | (hi << 3))`, and the exact `% width` by a
//!   Granlund–Montgomery style magic multiply (`m = ⌊2⁶⁴/width⌋`,
//!   `q̂ = mulhi(e, m)`, one conditional fix-up — exact for all
//!   `e < 2⁶¹` because the truncation deficit is below `2⁶¹/2⁶⁴ < 1`);
//! - the AVX-512 (F+DQ) variant runs the same recipe eight lanes wide,
//!   with native 64-bit low multiplies (`vpmullq`), mask-register
//!   conditional subtracts, a narrower `mulhi` exploiting the < 2⁶¹
//!   operand range, and `vpmovqd` packing — roughly half the µops per
//!   item of the AVX2 body.
//!
//! Every step mirrors the scalar `mul_mod`/`add_mod` arithmetic
//! operation-for-operation, so the outputs are bit-identical — pinned by
//! the differential tests below and by `tests/kernel_equivalence.rs`.

use crate::hashing::{PairwiseHash, MERSENNE_P};
use ms_core::simd::Isa;

/// Widest bucket a kernel will produce: offsets are staged as `u32`, so
/// callers with `width > u32::MAX` must keep the per-item path.
pub const MAX_KERNEL_WIDTH: usize = u32::MAX as usize;

/// Scalar reference: `out[i] = h.bucket(xs[i], width)`.
///
/// Panics if `out` is shorter than `xs` or `width` exceeds
/// [`MAX_KERNEL_WIDTH`].
pub fn row_buckets_scalar(h: &PairwiseHash, width: usize, xs: &[u64], out: &mut [u32]) {
    assert!(width <= MAX_KERNEL_WIDTH, "row kernel width overflows u32");
    for (o, &x) in out.iter_mut().zip(xs.iter()) {
        *o = h.bucket(x, width) as u32;
    }
}

/// Compute a lane of row buckets using the given ISA.
///
/// Falls back to scalar when no vector variant applies (non-x86 hosts,
/// `width < 2` where the magic multiplier does not exist).
pub fn row_buckets_with(isa: Isa, h: &PairwiseHash, width: usize, xs: &[u64], out: &mut [u32]) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 if (2..=MAX_KERNEL_WIDTH).contains(&width) => {
            let c = h.coefficients();
            unsafe { avx512::row_buckets_avx512(c[0], c[1], width as u64, xs, out) }
        }
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 if (2..=MAX_KERNEL_WIDTH).contains(&width) => {
            let c = h.coefficients();
            unsafe { avx2::row_buckets_avx2(c[0], c[1], width as u64, xs, out) }
        }
        _ => row_buckets_scalar(h, width, xs, out),
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::MERSENNE_P;
    use std::arch::x86_64::*;

    const MASK32: u64 = 0xFFFF_FFFF;

    /// Full 64×64→128 multiply per lane via 32-bit limbs.
    ///
    /// # Safety
    /// AVX2 must be available.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_wide(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
        let mask = _mm256_set1_epi64x(MASK32 as i64);
        let ah = _mm256_srli_epi64(a, 32);
        let bh = _mm256_srli_epi64(b, 32);
        let ll = _mm256_mul_epu32(a, b);
        let lh = _mm256_mul_epu32(a, bh);
        let hl = _mm256_mul_epu32(ah, b);
        let hh = _mm256_mul_epu32(ah, bh);
        // Carry assembly: each partial stays below 2⁶⁴ by construction.
        let mid1 = _mm256_add_epi64(lh, _mm256_srli_epi64(ll, 32));
        let mid2 = _mm256_add_epi64(hl, _mm256_and_si256(mid1, mask));
        let lo = _mm256_or_si256(_mm256_slli_epi64(mid2, 32), _mm256_and_si256(ll, mask));
        let hi = _mm256_add_epi64(
            hh,
            _mm256_add_epi64(_mm256_srli_epi64(mid1, 32), _mm256_srli_epi64(mid2, 32)),
        );
        (lo, hi)
    }

    /// `v >= bound ? v - bound : v` for values below `2⁶³` (signed compare
    /// is safe there). `bound_m1` is `bound - 1`.
    ///
    /// # Safety
    /// AVX2 must be available.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cond_sub(v: __m256i, bound: __m256i, bound_m1: __m256i) -> __m256i {
        let ge = _mm256_cmpgt_epi64(v, bound_m1);
        _mm256_sub_epi64(v, _mm256_and_si256(ge, bound))
    }

    /// Broadcast constants shared by every lane of one row.
    struct RowConsts {
        pv: __m256i,
        pm1: __m256i,
        a0v: __m256i,
        a1v: __m256i,
        wv: __m256i,
        wm1: __m256i,
        mv: __m256i,
        pack: __m256i,
    }

    /// One 4-lane bucket evaluation: affine Mersenne hash + exact
    /// magic-multiply `% width`, packed to the even dwords.
    ///
    /// # Safety
    /// AVX2 must be available.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn bucket4(k: &RowConsts, x: __m256i) -> __m128i {
        // x mod p by Mersenne fold (2⁶¹ ≡ 1 mod p).
        let folded = _mm256_add_epi64(_mm256_and_si256(x, k.pv), _mm256_srli_epi64(x, 61));
        let xm = cond_sub(folded, k.pv, k.pm1);
        // e = (a1 · xm mod p) + a0 mod p, mirroring mul_mod/add_mod.
        let (lo, hi) = mul_wide(k.a1v, xm);
        let red = _mm256_add_epi64(
            _mm256_and_si256(lo, k.pv),
            _mm256_or_si256(_mm256_srli_epi64(lo, 61), _mm256_slli_epi64(hi, 3)),
        );
        let mut e = cond_sub(red, k.pv, k.pm1);
        e = cond_sub(_mm256_add_epi64(e, k.a0v), k.pv, k.pm1);
        // e % width: q̂ = mulhi(e, magic) is floor(e/width) or one less;
        // a single conditional subtract makes the remainder exact.
        let (_, q) = mul_wide(e, k.mv);
        // low 64 bits of q · width, width < 2³² so two muls suffice.
        let qw = _mm256_add_epi64(
            _mm256_mul_epu32(q, k.wv),
            _mm256_slli_epi64(_mm256_mul_epu32(_mm256_srli_epi64(q, 32), k.wv), 32),
        );
        let r = cond_sub(_mm256_sub_epi64(e, qw), k.wv, k.wm1);
        // Each remainder fits u32: gather the even dwords.
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(r, k.pack))
    }

    /// Affine Mersenne hash + exact magic-multiply `% width` over a slice.
    ///
    /// The main loop handles 16 items per iteration as four *independent*
    /// [`bucket4`] chains: one chain alone is ~40 cycles of serial
    /// latency, so interleaving four keeps the multiply ports busy and
    /// roughly doubles throughput on latency-bound hosts.
    ///
    /// # Safety
    /// AVX2 must be available; `2 <= width <= u32::MAX`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn row_buckets_avx2(a0: u64, a1: u64, width: u64, xs: &[u64], out: &mut [u32]) {
        debug_assert!((2..=MASK32).contains(&width));
        let magic = ((1u128 << 64) / width as u128) as u64;
        let k = RowConsts {
            pv: _mm256_set1_epi64x(MERSENNE_P as i64),
            pm1: _mm256_set1_epi64x((MERSENNE_P - 1) as i64),
            a0v: _mm256_set1_epi64x(a0 as i64),
            a1v: _mm256_set1_epi64x(a1 as i64),
            wv: _mm256_set1_epi64x(width as i64),
            wm1: _mm256_set1_epi64x((width - 1) as i64),
            mv: _mm256_set1_epi64x(magic as i64),
            pack: _mm256_set_epi32(0, 0, 0, 0, 6, 4, 2, 0),
        };
        let n = xs.len().min(out.len());
        let mut i = 0;
        while i + 16 <= n {
            let x0 = _mm256_loadu_si256(xs.as_ptr().add(i) as *const __m256i);
            let x1 = _mm256_loadu_si256(xs.as_ptr().add(i + 4) as *const __m256i);
            let x2 = _mm256_loadu_si256(xs.as_ptr().add(i + 8) as *const __m256i);
            let x3 = _mm256_loadu_si256(xs.as_ptr().add(i + 12) as *const __m256i);
            let r0 = bucket4(&k, x0);
            let r1 = bucket4(&k, x1);
            let r2 = bucket4(&k, x2);
            let r3 = bucket4(&k, x3);
            _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, r0);
            _mm_storeu_si128(out.as_mut_ptr().add(i + 4) as *mut __m128i, r1);
            _mm_storeu_si128(out.as_mut_ptr().add(i + 8) as *mut __m128i, r2);
            _mm_storeu_si128(out.as_mut_ptr().add(i + 12) as *mut __m128i, r3);
            i += 16;
        }
        while i + 4 <= n {
            let x = _mm256_loadu_si256(xs.as_ptr().add(i) as *const __m256i);
            let r = bucket4(&k, x);
            _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, r);
            i += 4;
        }
        let h = crate::hashing::PairwiseHash::from_coefficients([a0, a1]);
        for j in i..n {
            out[j] = h.bucket(xs[j], width as usize) as u32;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::MERSENNE_P;
    use std::arch::x86_64::*;

    const MASK32: u64 = 0xFFFF_FFFF;

    /// `v >= bound ? v - bound : v` via a mask-register unsigned compare —
    /// no sign-bias tricks needed on AVX-512.
    ///
    /// # Safety
    /// AVX-512 F must be available.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn cond_sub(v: __m512i, bound: __m512i) -> __m512i {
        let ge = _mm512_cmpge_epu64_mask(v, bound);
        _mm512_mask_sub_epi64(v, ge, v, bound)
    }

    /// Exact `mulhi(a, b)` for `a < 2⁶²`, `b ≤ 2⁶³`, via 32-bit limbs.
    ///
    /// With `a·b = hh·2⁶⁴ + (lh + hl)·2³² + ll` and
    /// `S = lh + hl + (ll >> 32)`, the top word is exactly
    /// `hh + (S >> 32)`: the discarded `(S & m)·2³² + (ll & m)` never
    /// carries past 2⁶⁴, and `S` itself cannot wrap because the operand
    /// bounds keep `lh < 2⁶³` and `hl < 2⁶¹`. `b_lo`/`b_hi` are the
    /// broadcast low/high dwords of `b`; `a_hi = a >> 32` is hoisted by
    /// the caller so it can be shared.
    ///
    /// # Safety
    /// AVX-512 F must be available.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn mulhi_narrow(a: __m512i, a_hi: __m512i, b_lo: __m512i, b_hi: __m512i) -> __m512i {
        let ll = _mm512_mul_epu32(a, b_lo);
        let lh = _mm512_mul_epu32(a, b_hi);
        let hl = _mm512_mul_epu32(a_hi, b_lo);
        let hh = _mm512_mul_epu32(a_hi, b_hi);
        let s = _mm512_add_epi64(_mm512_add_epi64(lh, hl), _mm512_srli_epi64(ll, 32));
        _mm512_add_epi64(hh, _mm512_srli_epi64(s, 32))
    }

    /// Broadcast constants shared by every lane of one row.
    struct RowConsts {
        pv: __m512i,
        a0v: __m512i,
        a1v: __m512i,
        a1h: __m512i,
        wv: __m512i,
        mv: __m512i,
        mh: __m512i,
    }

    /// One 8-lane bucket evaluation, packed to eight `u32`s.
    ///
    /// # Safety
    /// AVX-512 F+DQ must be available.
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn bucket8(k: &RowConsts, x: __m512i) -> __m256i {
        // x mod p by Mersenne fold (2⁶¹ ≡ 1 mod p).
        let folded = _mm512_add_epi64(_mm512_and_si512(x, k.pv), _mm512_srli_epi64(x, 61));
        let xm = cond_sub(folded, k.pv);
        // a1 · xm: native 64-bit low half, limb mulhi for the top
        // (both operands < p < 2⁶¹, well inside mulhi_narrow's bounds).
        let lo = _mm512_mullo_epi64(k.a1v, xm);
        let hi = mulhi_narrow(xm, _mm512_srli_epi64(xm, 32), k.a1v, k.a1h);
        // Mersenne reduction, then + a0, mirroring mul_mod/add_mod.
        let red = _mm512_add_epi64(
            _mm512_and_si512(lo, k.pv),
            _mm512_or_si512(_mm512_srli_epi64(lo, 61), _mm512_slli_epi64(hi, 3)),
        );
        let e = cond_sub(_mm512_add_epi64(cond_sub(red, k.pv), k.a0v), k.pv);
        // e % width: q̂ = mulhi(e, magic) is floor(e/width) or one less
        // (e < 2⁶¹, magic ≤ 2⁶³); one conditional subtract makes it exact.
        let q = mulhi_narrow(e, _mm512_srli_epi64(e, 32), k.mv, k.mh);
        let r = cond_sub(_mm512_sub_epi64(e, _mm512_mullo_epi64(q, k.wv)), k.wv);
        // Remainders fit u32: truncating vpmovqd pack.
        _mm512_cvtepi64_epi32(r)
    }

    /// Eight-lane affine Mersenne hash + exact magic-multiply `% width`,
    /// two independent [`bucket8`] chains per iteration for ILP.
    ///
    /// # Safety
    /// AVX-512 F+DQ must be available; `2 <= width <= u32::MAX`.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub unsafe fn row_buckets_avx512(a0: u64, a1: u64, width: u64, xs: &[u64], out: &mut [u32]) {
        debug_assert!((2..=MASK32).contains(&width));
        let magic = ((1u128 << 64) / width as u128) as u64;
        let k = RowConsts {
            pv: _mm512_set1_epi64(MERSENNE_P as i64),
            a0v: _mm512_set1_epi64(a0 as i64),
            a1v: _mm512_set1_epi64(a1 as i64),
            a1h: _mm512_set1_epi64((a1 >> 32) as i64),
            wv: _mm512_set1_epi64(width as i64),
            mv: _mm512_set1_epi64(magic as i64),
            mh: _mm512_set1_epi64((magic >> 32) as i64),
        };
        let n = xs.len().min(out.len());
        let mut i = 0;
        while i + 16 <= n {
            let x0 = _mm512_loadu_si512(xs.as_ptr().add(i) as *const __m512i);
            let x1 = _mm512_loadu_si512(xs.as_ptr().add(i + 8) as *const __m512i);
            let r0 = bucket8(&k, x0);
            let r1 = bucket8(&k, x1);
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, r0);
            _mm256_storeu_si256(out.as_mut_ptr().add(i + 8) as *mut __m256i, r1);
            i += 16;
        }
        while i + 8 <= n {
            let x = _mm512_loadu_si512(xs.as_ptr().add(i) as *const __m512i);
            let r = bucket8(&k, x);
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, r);
            i += 8;
        }
        let h = crate::hashing::PairwiseHash::from_coefficients([a0, a1]);
        for j in i..n {
            out[j] = h.bucket(xs[j], width as usize) as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::rng::Rng64;
    use ms_core::simd::{active_isa, supported_isas};

    const SEEDS: [u64; 3] = [0xF417_5EED, 0xB0B5_CAFE, 0x2026_0806];

    #[test]
    fn every_vector_row_kernel_matches_scalar_bit_for_bit() {
        for &seed in &SEEDS {
            let h = PairwiseHash::new(seed);
            let mut rng = Rng64::new(seed ^ 0xD15);
            // Lengths straddle the lane and unroll boundaries; widths
            // include primes, powers of two, and the u32 extremes of the
            // magic divider.
            let xs: Vec<u64> = (0..131).map(|_| rng.next_u64()).collect();
            for width in [
                2usize,
                3,
                7,
                272,
                2719,
                4096,
                (1 << 31) - 1,
                u32::MAX as usize,
            ] {
                let mut want = vec![0u32; xs.len()];
                row_buckets_scalar(&h, width, &xs, &mut want);
                for isa in supported_isas() {
                    let mut got = vec![0u32; xs.len()];
                    row_buckets_with(isa, &h, width, &xs, &mut got);
                    assert_eq!(want, got, "seed {seed:#x} width {width} isa {isa:?}");
                }
            }
        }
    }

    #[test]
    fn extreme_fingerprints_hit_the_mersenne_fold_edges() {
        let h = PairwiseHash::new(0xF417_5EED);
        let xs = [
            0,
            1,
            MERSENNE_P - 1,
            MERSENNE_P,
            MERSENNE_P + 1,
            u64::MAX,
            u64::MAX - 1,
            (1 << 61) | 0x1FFF_FFFF_FFFF_FFFF,
        ];
        for width in [2usize, 5, 272] {
            let mut want = vec![0u32; xs.len()];
            row_buckets_scalar(&h, width, &xs, &mut want);
            for isa in supported_isas() {
                let mut got = vec![0u32; xs.len()];
                row_buckets_with(isa, &h, width, &xs, &mut got);
                assert_eq!(want, got, "width {width} isa {isa:?}");
            }
        }
    }

    #[test]
    fn width_one_falls_back_to_scalar() {
        let h = PairwiseHash::new(3);
        let xs = [1u64, 2, 3, 4, 5];
        for isa in supported_isas().into_iter().chain([active_isa()]) {
            let mut out = vec![9u32; 5];
            row_buckets_with(isa, &h, 1, &xs, &mut out);
            assert!(out.iter().all(|&b| b == 0), "isa {isa:?}");
        }
    }
}

//! The Count-Sketch (Charikar, Chen, Farach-Colton).
//!
//! Like Count-Min but each row also signs the update with a 4-wise
//! independent ±1 hash, and the query takes the **median** of the signed
//! row estimates. The estimator is unbiased and its error scales with
//! `√F₂ / w` — much smaller than Count-Min's `n / w` on skewed streams —
//! at the cost of two hash evaluations per row and signed counters.
//!
//! Linear, hence trivially mergeable under identical shape and seeds.

use std::hash::Hash;
use std::marker::PhantomData;

use ms_core::error::ensure_same_capacity;
use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{ItemSummary, MergeError, Mergeable, Result, Summary};

use crate::hashing::{fingerprint, FourwiseHash, PairwiseHash};

/// Count-Sketch over items of type `I`.
#[derive(Debug, Clone)]
pub struct CountSketch<I> {
    width: usize,
    depth: usize,
    seed: u64,
    buckets: Vec<PairwiseHash>,
    signs: Vec<FourwiseHash>,
    table: Vec<i64>,
    n: u64,
    _marker: PhantomData<fn(&I)>,
}

impl<I: Hash> Wire for CountSketch<I> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        // Bucket and sign hashes are derived from (depth, seed).
        self.width.encode_into(out);
        self.depth.encode_into(out);
        self.seed.encode_into(out);
        self.table.encode_into(out);
        self.n.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let width = usize::decode_from(r)?;
        let depth = usize::decode_from(r)?;
        if width == 0 || depth == 0 {
            return Err(WireError::Malformed("sketch dimensions must be positive"));
        }
        let seed = u64::decode_from(r)?;
        let table = Vec::<i64>::decode_from(r)?;
        if table.len() != width * depth {
            return Err(WireError::Malformed("sketch table has the wrong shape"));
        }
        let mut sketch = CountSketch::<I>::new(width, depth, seed);
        sketch.table = table;
        sketch.n = u64::decode_from(r)?;
        Ok(sketch)
    }
}

impl<I: Hash> CountSketch<I> {
    /// Create a `depth × width` sketch with hash functions derived from
    /// `seed`. Odd depths give an unambiguous median.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0 && depth > 0, "sketch dimensions must be positive");
        let buckets = (0..depth)
            .map(|r| PairwiseHash::new(seed ^ (0xB0CA + r as u64).wrapping_mul(0x1357_9BDF)))
            .collect();
        let signs = (0..depth)
            .map(|r| FourwiseHash::new(seed ^ (0x51F7 + r as u64).wrapping_mul(0x2468_ACE0)))
            .collect();
        CountSketch {
            width,
            depth,
            seed,
            buckets,
            signs,
            table: vec![0; width * depth],
            n: 0,
            _marker: PhantomData,
        }
    }

    /// Row width `w`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows `d`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Seed identifying the hash family.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Unbiased frequency estimate: median over rows of
    /// `sign(item) · cell(item)`. Can be negative on noise; callers
    /// typically clamp at zero.
    pub fn estimate(&self, item: &I) -> i64 {
        let x = fingerprint(item);
        let mut row_estimates: Vec<i64> = (0..self.depth)
            .map(|r| {
                let cell = self.table[r * self.width + self.buckets[r].bucket(x, self.width)];
                self.signs[r].sign(x) * cell
            })
            .collect();
        row_estimates.sort_unstable();
        let d = self.depth;
        if d % 2 == 1 {
            row_estimates[d / 2]
        } else {
            (row_estimates[d / 2 - 1] + row_estimates[d / 2]) / 2
        }
    }

    /// Estimate clamped to `[0, ∞)` as a `u64` (frequencies are
    /// non-negative).
    pub fn estimate_clamped(&self, item: &I) -> u64 {
        self.estimate(item).max(0) as u64
    }
}

impl<I: Hash> Summary for CountSketch<I> {
    fn total_weight(&self) -> u64 {
        self.n
    }

    fn size(&self) -> usize {
        self.table.len()
    }
}

impl<I: Hash> ItemSummary<I> for CountSketch<I> {
    fn update_weighted(&mut self, item: I, weight: u64) {
        if weight == 0 {
            return;
        }
        let x = fingerprint(&item);
        for r in 0..self.depth {
            let idx = r * self.width + self.buckets[r].bucket(x, self.width);
            self.table[idx] += self.signs[r].sign(x) * weight as i64;
        }
        self.n += weight;
    }
}

impl<I: Hash> Mergeable for CountSketch<I> {
    /// Cell-wise addition. Requires identical shape and hash family.
    fn merge(mut self, other: Self) -> Result<Self> {
        ensure_same_capacity("width", self.width, other.width)?;
        ensure_same_capacity("depth", self.depth, other.depth)?;
        if self.seed != other.seed {
            return Err(MergeError::SeedMismatch {
                left: self.seed,
                right: other.seed,
            });
        }
        for (a, b) in self.table.iter_mut().zip(other.table.iter()) {
            *a += b;
        }
        self.n += other.n;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::FrequencyOracle;
    use ms_workloads::StreamKind;

    #[test]
    fn exactish_on_heavy_items() {
        let items = StreamKind::Zipf {
            s: 1.5,
            universe: 10_000,
        }
        .generate(100_000, 1);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let mut cs = CountSketch::new(256, 5, 2);
        cs.extend_from(items);
        // The top items carry far more weight than √F₂/w noise.
        for (item, truth) in oracle.top_k(5) {
            let est = cs.estimate_clamped(&item);
            let rel = (est as f64 - truth as f64).abs() / truth as f64;
            assert!(rel < 0.1, "item {item}: truth {truth}, est {est}");
        }
    }

    #[test]
    fn unbiased_over_seeds() {
        // Average estimate over independent sketches approaches the truth.
        let items = StreamKind::Zipf {
            s: 1.0,
            universe: 200,
        }
        .generate(5_000, 3);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let probe = 50u64;
        let truth = oracle.count(&probe) as f64;
        let trials = 60;
        let mean: f64 = (0..trials)
            .map(|seed| {
                let mut cs = CountSketch::new(32, 1, seed);
                cs.extend_from(items.iter().copied());
                cs.estimate(&probe) as f64
            })
            .sum::<f64>()
            / trials as f64;
        assert!(
            (mean - truth).abs() < 0.25 * truth.max(20.0),
            "truth {truth}, mean estimate {mean}"
        );
    }

    #[test]
    fn merge_is_exactly_linear() {
        let items = StreamKind::Uniform { universe: 300 }.generate(8_000, 5);
        let (left, right) = items.split_at(3_000);
        let mut whole = CountSketch::new(64, 5, 9);
        whole.extend_from(items.iter().copied());
        let mut a = CountSketch::new(64, 5, 9);
        a.extend_from(left.iter().copied());
        let mut b = CountSketch::new(64, 5, 9);
        b.extend_from(right.iter().copied());
        let merged = a.merge(b).unwrap();
        assert_eq!(merged.table, whole.table);
    }

    #[test]
    fn merge_rejects_mismatched_family() {
        let a = CountSketch::<u64>::new(16, 3, 1);
        let b = CountSketch::<u64>::new(16, 3, 2);
        assert!(matches!(a.merge(b), Err(MergeError::SeedMismatch { .. })));
    }

    #[test]
    fn even_depth_median_averages() {
        let mut cs = CountSketch::new(64, 4, 7);
        cs.update_weighted(42u64, 1000);
        let est = cs.estimate(&42);
        assert!((900..=1100).contains(&est), "estimate {est}");
    }

    #[test]
    fn beats_count_min_on_skew_at_equal_space() {
        // The classic comparison: same cell budget, Zipf stream; the
        // signed median estimator has smaller aggregate tail error.
        use crate::count_min::CountMinSketch;
        let items = StreamKind::Zipf {
            s: 1.3,
            universe: 20_000,
        }
        .generate(200_000, 8);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let mut cm = CountMinSketch::new(128, 5, 4);
        let mut cs = CountSketch::new(128, 5, 4);
        cm.extend_from(items.iter().copied());
        cs.extend_from(items.iter().copied());
        let (mut cm_err, mut cs_err) = (0u64, 0u64);
        for (item, truth) in oracle.iter() {
            cm_err += cm.estimate(item).abs_diff(truth);
            cs_err += cs.estimate_clamped(item).abs_diff(truth);
        }
        assert!(
            cs_err < cm_err,
            "count-sketch total error {cs_err} not below count-min {cm_err}"
        );
    }

    #[test]
    fn zero_weight_is_noop() {
        let mut cs = CountSketch::new(8, 3, 1);
        cs.update_weighted(1u64, 0);
        assert!(cs.is_empty());
    }
}

//! The Count-Min sketch (Cormode & Muthukrishnan).
//!
//! A `d × w` table of non-negative counters with one pairwise-independent
//! row hash each. Point queries return the minimum cell over the rows:
//! always an **overestimate**, and within `εn` of the truth with
//! probability `1 − δ` when `w = ⌈e/ε⌉` and `d = ⌈ln(1/δ)⌉`.
//!
//! Count-Min is a linear sketch: two sketches with the same shape *and the
//! same hash seeds* merge by cell-wise addition, exactly — the mergeability
//! baseline the paper's counter-based summaries are compared against
//! (experiment E3).

use std::hash::Hash;
use std::marker::PhantomData;

use ms_core::error::ensure_same_capacity;
use ms_core::simd;
use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{ItemSummary, Json, MergeError, Mergeable, Result, Summary, ToJson};

use crate::hashing::{fingerprint, PairwiseHash};

/// Count-Min sketch over items of type `I`.
///
/// ```
/// use ms_core::{ItemSummary, Mergeable};
/// use ms_sketches::CountMinSketch;
///
/// // Sketches merge only within one hash family (same seed).
/// let mut a = CountMinSketch::for_epsilon_delta(0.01, 0.01, 42);
/// let mut b = CountMinSketch::for_epsilon_delta(0.01, 0.01, 42);
/// a.update_weighted("login", 10);
/// b.update_weighted("login", 5);
/// let merged = a.merge(b).unwrap();
/// assert!(merged.estimate(&"login") >= 15); // never underestimates
/// ```
#[derive(Debug, Clone)]
pub struct CountMinSketch<I> {
    width: usize,
    depth: usize,
    seed: u64,
    rows: Vec<PairwiseHash>,
    table: Vec<u64>,
    n: u64,
    _marker: PhantomData<fn(&I)>,
}

impl<I: Hash> Wire for CountMinSketch<I> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        // The row hashes are derived from (depth, seed) and are rebuilt on
        // decode, so only the scalars and the table travel.
        self.width.encode_into(out);
        self.depth.encode_into(out);
        self.seed.encode_into(out);
        self.table.encode_into(out);
        self.n.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let width = usize::decode_from(r)?;
        let depth = usize::decode_from(r)?;
        if width == 0 || depth == 0 {
            return Err(WireError::Malformed("sketch dimensions must be positive"));
        }
        let seed = u64::decode_from(r)?;
        let table = Vec::<u64>::decode_from(r)?;
        if table.len() != width * depth {
            return Err(WireError::Malformed("sketch table has the wrong shape"));
        }
        let mut sketch = CountMinSketch::<I>::new(width, depth, seed);
        sketch.table = table;
        sketch.n = u64::decode_from(r)?;
        Ok(sketch)
    }
}

impl<I> ToJson for CountMinSketch<I> {
    fn to_json(&self) -> Json {
        Json::obj([
            ("width", Json::U64(self.width as u64)),
            ("depth", Json::U64(self.depth as u64)),
            ("seed", Json::U64(self.seed)),
            ("table", Json::arr(self.table.iter().copied())),
            ("n", Json::U64(self.n)),
        ])
    }
}

impl<I: Hash> CountMinSketch<I> {
    /// Create a `depth × width` sketch with hash functions derived from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0 && depth > 0, "sketch dimensions must be positive");
        let rows = (0..depth)
            .map(|r| PairwiseHash::new(seed ^ (0x9E37 + r as u64).wrapping_mul(0xA5A5_A5A5)))
            .collect();
        CountMinSketch {
            width,
            depth,
            seed,
            rows,
            table: vec![0; width * depth],
            n: 0,
            _marker: PhantomData,
        }
    }

    /// Create a sketch guaranteeing `estimate − truth ≤ εn` with
    /// probability `1 − δ` per query: `w = ⌈e/ε⌉`, `d = ⌈ln(1/δ)⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` or `delta` is not in `(0, 1)`.
    pub fn for_epsilon_delta(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(width, depth, seed)
    }

    /// Row width `w`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows `d`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Seed identifying the hash family.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Upper-bound frequency estimate: minimum cell over the rows.
    pub fn estimate(&self, item: &I) -> u64 {
        let x = fingerprint(item);
        (0..self.depth)
            .map(|r| self.table[r * self.width + self.rows[r].bucket(x, self.width)])
            .min()
            .expect("depth >= 1")
    }

    /// In-place cell-wise merge — the same result as [`Mergeable::merge`]
    /// without moving the table. On error (shape or seed mismatch) `self`
    /// is left untouched.
    pub fn merge_from(&mut self, other: Self) -> Result<()> {
        self.check_compatible(&other)?;
        simd::add_slices(&mut self.table, &other.table);
        self.n += other.n;
        Ok(())
    }

    fn check_compatible(&self, other: &Self) -> Result<()> {
        ensure_same_capacity("width", self.width, other.width)?;
        ensure_same_capacity("depth", self.depth, other.depth)?;
        if self.seed != other.seed {
            return Err(MergeError::SeedMismatch {
                left: self.seed,
                right: other.seed,
            });
        }
        Ok(())
    }

    /// Fused multiway merge: one pass over the table, summing the matching
    /// cell of every source. Bit-identical to folding the sources in one
    /// at a time (cell adds commute and associate) but touches the
    /// destination once instead of `others.len()` times. All sources are
    /// validated before any cell is written, so on error `self` is
    /// untouched.
    pub fn merge_many(&mut self, others: &[&Self]) -> Result<()> {
        for other in others {
            self.check_compatible(other)?;
        }
        let tables: Vec<&[u64]> = others.iter().map(|o| o.table.as_slice()).collect();
        simd::add_slices_multi(&mut self.table, &tables);
        for other in others {
            self.n += other.n;
        }
        Ok(())
    }

    /// Batched update: the hash-then-update split. Fingerprints for a lane
    /// of items are computed first, then each row's bucket offsets are
    /// produced in one cache-friendly pass by the [`crate::batch`] kernel
    /// before the cells are bumped. Equivalent to calling
    /// [`ItemSummary::update_weighted`] with weight 1 per item — cell
    /// increments commute, so the table and count come out identical.
    pub fn update_batch(&mut self, items: &[I]) {
        self.update_batch_with(simd::active_isa(), items)
    }

    /// [`Self::update_batch`] with an explicit ISA, for differential tests
    /// and benchmarks.
    pub fn update_batch_with(&mut self, isa: simd::Isa, items: &[I]) {
        const LANE: usize = 256;
        if self.width > crate::batch::MAX_KERNEL_WIDTH {
            for item in items {
                self.update_weighted_ref(item, 1);
            }
            return;
        }
        let mut fps = [0u64; LANE];
        let mut buckets = [0u32; LANE];
        for chunk in items.chunks(LANE) {
            let k = chunk.len();
            for (f, item) in fps[..k].iter_mut().zip(chunk.iter()) {
                *f = fingerprint(item);
            }
            for r in 0..self.depth {
                crate::batch::row_buckets_with(
                    isa,
                    &self.rows[r],
                    self.width,
                    &fps[..k],
                    &mut buckets[..k],
                );
                let row = &mut self.table[r * self.width..(r + 1) * self.width];
                for &b in &buckets[..k] {
                    row[b as usize] += 1;
                }
            }
            self.n += k as u64;
        }
    }

    fn update_weighted_ref(&mut self, item: &I, weight: u64) {
        if weight == 0 {
            return;
        }
        let x = fingerprint(item);
        for r in 0..self.depth {
            let idx = r * self.width + self.rows[r].bucket(x, self.width);
            self.table[idx] += weight;
        }
        self.n += weight;
    }
}

impl<I: Hash> Summary for CountMinSketch<I> {
    fn total_weight(&self) -> u64 {
        self.n
    }

    /// Number of cells (the space proxy; each cell is one `u64`).
    fn size(&self) -> usize {
        self.table.len()
    }
}

impl<I: Hash> ItemSummary<I> for CountMinSketch<I> {
    fn update_weighted(&mut self, item: I, weight: u64) {
        self.update_weighted_ref(&item, weight);
    }
}

impl<I: Hash> Mergeable for CountMinSketch<I> {
    /// Cell-wise addition. Requires identical shape and hash family.
    fn merge(mut self, other: Self) -> Result<Self> {
        self.merge_from(other)?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::{merge_all, FrequencyOracle, MergeTree};
    use ms_workloads::StreamKind;

    #[test]
    fn never_underestimates() {
        let items = StreamKind::Zipf {
            s: 1.2,
            universe: 1000,
        }
        .generate(20_000, 1);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let mut cm = CountMinSketch::new(100, 4, 7);
        cm.extend_from(items);
        for (item, truth) in oracle.iter() {
            assert!(cm.estimate(item) >= truth);
        }
    }

    #[test]
    fn error_within_epsilon_n_for_most_items() {
        let eps = 0.01;
        let items = StreamKind::Zipf {
            s: 1.1,
            universe: 5000,
        }
        .generate(100_000, 2);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let mut cm = CountMinSketch::for_epsilon_delta(eps, 0.01, 3);
        cm.extend_from(items);
        let bound = (eps * cm.total_weight() as f64) as u64;
        let violations = oracle
            .iter()
            .filter(|(item, truth)| cm.estimate(item) - truth > bound)
            .count();
        // Per-query failure probability δ = 1%; allow generous slack.
        assert!(
            violations as f64 <= 0.05 * oracle.distinct() as f64,
            "{violations} of {} items out of bound",
            oracle.distinct()
        );
    }

    #[test]
    fn merge_is_exactly_linear() {
        let items = StreamKind::Uniform { universe: 500 }.generate(10_000, 4);
        let (left, right) = items.split_at(6_000);
        let mut whole = CountMinSketch::new(64, 4, 9);
        whole.extend_from(items.iter().copied());
        let mut a = CountMinSketch::new(64, 4, 9);
        a.extend_from(left.iter().copied());
        let mut b = CountMinSketch::new(64, 4, 9);
        b.extend_from(right.iter().copied());
        let merged = a.merge(b).unwrap();
        assert_eq!(merged.table, whole.table);
        assert_eq!(merged.total_weight(), whole.total_weight());
    }

    #[test]
    fn update_batch_matches_per_item_updates_bit_for_bit() {
        for seed in [0xF417_5EEDu64, 0xB0B5_CAFE, 0x2026_0806] {
            let items = StreamKind::Zipf {
                s: 1.2,
                universe: 5_000,
            }
            .generate(9_000, seed);
            let mut per_item = CountMinSketch::for_epsilon_delta(0.01, 0.01, seed);
            per_item.extend_from(items.iter().copied());
            for isa in [simd::Isa::Scalar, simd::active_isa()] {
                let mut batched = CountMinSketch::for_epsilon_delta(0.01, 0.01, seed);
                batched.update_batch_with(isa, &items);
                assert_eq!(per_item.table, batched.table, "seed {seed:#x} {isa:?}");
                assert_eq!(per_item.total_weight(), batched.total_weight());
            }
        }
    }

    #[test]
    fn merge_many_matches_sequential_folds_bit_for_bit() {
        let items = StreamKind::Uniform { universe: 800 }.generate(20_000, 13);
        let deltas: Vec<CountMinSketch<u64>> = items
            .chunks(4_000)
            .map(|chunk| {
                let mut cm = CountMinSketch::new(272, 5, 21);
                cm.extend_from(chunk.iter().copied());
                cm
            })
            .collect();
        let mut sequential = CountMinSketch::<u64>::new(272, 5, 21);
        for d in deltas.clone() {
            sequential.merge_from(d).unwrap();
        }
        let mut fused = CountMinSketch::<u64>::new(272, 5, 21);
        let refs: Vec<&CountMinSketch<u64>> = deltas.iter().collect();
        fused.merge_many(&refs).unwrap();
        assert_eq!(sequential.table, fused.table);
        assert_eq!(sequential.total_weight(), fused.total_weight());
    }

    #[test]
    fn merge_many_rejects_any_incompatible_source_without_writing() {
        let mut dst = CountMinSketch::<u64>::new(16, 2, 1);
        let mut good = CountMinSketch::<u64>::new(16, 2, 1);
        good.update(7);
        let bad = CountMinSketch::<u64>::new(16, 2, 2);
        let before = dst.table.clone();
        assert!(dst.merge_many(&[&good, &bad]).is_err());
        assert_eq!(dst.table, before);
        assert_eq!(dst.total_weight(), 0);
    }

    #[test]
    fn merge_rejects_different_seeds() {
        let a = CountMinSketch::<u64>::new(16, 2, 1);
        let b = CountMinSketch::<u64>::new(16, 2, 2);
        assert!(matches!(a.merge(b), Err(MergeError::SeedMismatch { .. })));
    }

    #[test]
    fn merge_rejects_different_shapes() {
        let a = CountMinSketch::<u64>::new(16, 2, 1);
        let b = CountMinSketch::<u64>::new(32, 2, 1);
        assert!(matches!(
            a.merge(b),
            Err(MergeError::CapacityMismatch { .. })
        ));
        let a = CountMinSketch::<u64>::new(16, 2, 1);
        let b = CountMinSketch::<u64>::new(16, 3, 1);
        assert!(matches!(
            a.merge(b),
            Err(MergeError::CapacityMismatch { .. })
        ));
    }

    #[test]
    fn estimates_survive_merge_trees() {
        let items = StreamKind::Zipf {
            s: 1.4,
            universe: 300,
        }
        .generate(30_000, 5);
        let oracle = FrequencyOracle::from_stream(items.clone());
        for shape in MergeTree::canonical() {
            let leaves: Vec<CountMinSketch<u64>> = items
                .chunks(3_000)
                .map(|chunk| {
                    let mut cm = CountMinSketch::new(128, 4, 11);
                    cm.extend_from(chunk.iter().copied());
                    cm
                })
                .collect();
            let merged = merge_all(leaves, shape).unwrap();
            // Linearity ⇒ identical estimates regardless of tree shape.
            for (item, truth) in oracle.iter() {
                let est = merged.estimate(item);
                assert!(est >= truth);
                assert!(est - truth <= merged.total_weight() / 32);
            }
        }
    }

    #[test]
    fn for_epsilon_delta_dimensions() {
        let cm = CountMinSketch::<u64>::for_epsilon_delta(0.01, 0.01, 0);
        assert_eq!(cm.width(), 272); // ⌈e/0.01⌉
        assert_eq!(cm.depth(), 5); // ⌈ln 100⌉
    }

    #[test]
    fn weighted_updates_accumulate() {
        let mut cm = CountMinSketch::new(32, 3, 1);
        cm.update_weighted("x", 10);
        cm.update_weighted("x", 5);
        assert!(cm.estimate(&"x") >= 15);
        assert_eq!(cm.total_weight(), 15);
    }

    #[test]
    fn zero_weight_is_noop() {
        let mut cm = CountMinSketch::new(32, 3, 1);
        cm.update_weighted("x", 0);
        assert!(cm.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn zero_width_rejected() {
        let _ = CountMinSketch::<u64>::new(0, 2, 1);
    }
}

//! The AMS "tug-of-war" sketch for the second frequency moment `F₂`
//! (Alon, Matias, Szegedy).
//!
//! Each cell holds `Σ_x s(x)·f(x)` for a 4-wise independent sign hash `s`;
//! `cell²` is an unbiased estimator of `F₂ = Σ_x f(x)²` with variance
//! `≤ 2F₂²`. Averaging `width` cells brings the relative standard error to
//! `√(2/width)`; taking the median over `depth` groups drives the failure
//! probability down exponentially (the classic median-of-means estimator).
//!
//! Linear, hence trivially mergeable under identical shape and seeds.

use std::hash::Hash;
use std::marker::PhantomData;

use ms_core::error::ensure_same_capacity;
use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{ItemSummary, MergeError, Mergeable, Result, Summary};

use crate::hashing::{fingerprint, FourwiseHash};

/// AMS F₂ sketch over items of type `I`.
#[derive(Debug, Clone)]
pub struct AmsF2Sketch<I> {
    width: usize,
    depth: usize,
    seed: u64,
    signs: Vec<FourwiseHash>,
    cells: Vec<i64>,
    n: u64,
    _marker: PhantomData<fn(&I)>,
}

impl<I: Hash> Wire for AmsF2Sketch<I> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        // Sign hashes are derived from (width·depth, seed).
        self.width.encode_into(out);
        self.depth.encode_into(out);
        self.seed.encode_into(out);
        self.cells.encode_into(out);
        self.n.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let width = usize::decode_from(r)?;
        let depth = usize::decode_from(r)?;
        if width == 0 || depth == 0 {
            return Err(WireError::Malformed("sketch dimensions must be positive"));
        }
        let seed = u64::decode_from(r)?;
        let cells = Vec::<i64>::decode_from(r)?;
        if cells.len() != width * depth {
            return Err(WireError::Malformed("sketch table has the wrong shape"));
        }
        let mut sketch = AmsF2Sketch::<I>::new(width, depth, seed);
        sketch.cells = cells;
        sketch.n = u64::decode_from(r)?;
        Ok(sketch)
    }
}

impl<I: Hash> AmsF2Sketch<I> {
    /// Create a sketch with `depth` groups of `width` estimators each.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0 && depth > 0, "sketch dimensions must be positive");
        let signs = (0..width * depth)
            .map(|c| FourwiseHash::new(seed ^ (0xA11CE + c as u64).wrapping_mul(0x0F0F_0F0F)))
            .collect();
        AmsF2Sketch {
            width,
            depth,
            seed,
            signs,
            cells: vec![0; width * depth],
            n: 0,
            _marker: PhantomData,
        }
    }

    /// Estimators per group (`width`).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of groups (`depth`).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Seed identifying the hash family.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Median-of-means estimate of `F₂`.
    pub fn estimate_f2(&self) -> f64 {
        let mut group_means: Vec<f64> = (0..self.depth)
            .map(|g| {
                let cells = &self.cells[g * self.width..(g + 1) * self.width];
                cells.iter().map(|&c| (c as f64) * (c as f64)).sum::<f64>() / self.width as f64
            })
            .collect();
        group_means.sort_by(|a, b| a.partial_cmp(b).expect("squares are not NaN"));
        let d = self.depth;
        if d % 2 == 1 {
            group_means[d / 2]
        } else {
            (group_means[d / 2 - 1] + group_means[d / 2]) / 2.0
        }
    }
}

impl<I: Hash> Summary for AmsF2Sketch<I> {
    fn total_weight(&self) -> u64 {
        self.n
    }

    fn size(&self) -> usize {
        self.cells.len()
    }
}

impl<I: Hash> ItemSummary<I> for AmsF2Sketch<I> {
    fn update_weighted(&mut self, item: I, weight: u64) {
        if weight == 0 {
            return;
        }
        let x = fingerprint(&item);
        for (cell, sign) in self.cells.iter_mut().zip(self.signs.iter()) {
            *cell += sign.sign(x) * weight as i64;
        }
        self.n += weight;
    }
}

impl<I: Hash> Mergeable for AmsF2Sketch<I> {
    /// Cell-wise addition. Requires identical shape and hash family.
    fn merge(mut self, other: Self) -> Result<Self> {
        ensure_same_capacity("width", self.width, other.width)?;
        ensure_same_capacity("depth", self.depth, other.depth)?;
        if self.seed != other.seed {
            return Err(MergeError::SeedMismatch {
                left: self.seed,
                right: other.seed,
            });
        }
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            *a += b;
        }
        self.n += other.n;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::FrequencyOracle;
    use ms_workloads::StreamKind;

    #[test]
    fn single_item_f2_is_exact() {
        let mut ams = AmsF2Sketch::new(16, 3, 1);
        ams.update_weighted(7u64, 100);
        // Only one item: every cell is ±100, cell² = 10000 exactly.
        assert_eq!(ams.estimate_f2(), 10_000.0);
    }

    #[test]
    fn estimates_f2_within_tolerance() {
        let items = StreamKind::Zipf {
            s: 1.2,
            universe: 2_000,
        }
        .generate(50_000, 2);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let truth = oracle.f2() as f64;
        let mut ams = AmsF2Sketch::new(128, 5, 3);
        ams.extend_from(items);
        let est = ams.estimate_f2();
        let rel = (est - truth).abs() / truth;
        // √(2/128) ≈ 0.125 standard error; allow 3σ.
        assert!(rel < 0.4, "truth {truth}, estimate {est}, rel err {rel}");
    }

    #[test]
    fn unbiased_over_seeds() {
        let items = StreamKind::Uniform { universe: 100 }.generate(3_000, 4);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let truth = oracle.f2() as f64;
        let trials = 40;
        let mean: f64 = (0..trials)
            .map(|seed| {
                let mut ams = AmsF2Sketch::new(16, 1, seed);
                ams.extend_from(items.iter().copied());
                ams.estimate_f2()
            })
            .sum::<f64>()
            / trials as f64;
        let rel = (mean - truth).abs() / truth;
        assert!(rel < 0.2, "truth {truth}, mean {mean}");
    }

    #[test]
    fn merge_is_exactly_linear() {
        let items = StreamKind::Uniform { universe: 50 }.generate(4_000, 5);
        let (left, right) = items.split_at(1_500);
        let mut whole = AmsF2Sketch::new(32, 3, 9);
        whole.extend_from(items.iter().copied());
        let mut a = AmsF2Sketch::new(32, 3, 9);
        a.extend_from(left.iter().copied());
        let mut b = AmsF2Sketch::new(32, 3, 9);
        b.extend_from(right.iter().copied());
        let merged = a.merge(b).unwrap();
        assert_eq!(merged.cells, whole.cells);
        assert_eq!(merged.estimate_f2(), whole.estimate_f2());
    }

    #[test]
    fn merge_rejects_mismatched_family() {
        let a = AmsF2Sketch::<u64>::new(8, 3, 1);
        let b = AmsF2Sketch::<u64>::new(8, 3, 2);
        assert!(matches!(a.merge(b), Err(MergeError::SeedMismatch { .. })));
    }

    #[test]
    fn wider_sketch_reduces_error() {
        let items = StreamKind::Zipf {
            s: 1.0,
            universe: 500,
        }
        .generate(20_000, 6);
        let oracle = FrequencyOracle::from_stream(items.clone());
        let truth = oracle.f2() as f64;
        let avg_rel_err = |width: usize| -> f64 {
            (0..20)
                .map(|seed| {
                    let mut ams = AmsF2Sketch::new(width, 1, seed);
                    ams.extend_from(items.iter().copied());
                    (ams.estimate_f2() - truth).abs() / truth
                })
                .sum::<f64>()
                / 20.0
        };
        let narrow = avg_rel_err(4);
        let wide = avg_rel_err(64);
        assert!(wide < narrow, "narrow {narrow} vs wide {wide}");
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let ams = AmsF2Sketch::<u64>::new(8, 3, 1);
        assert_eq!(ams.estimate_f2(), 0.0);
        assert!(ams.is_empty());
    }
}

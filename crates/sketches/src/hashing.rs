//! k-wise independent hash families over the Mersenne prime `p = 2⁶¹ − 1`.
//!
//! The sketch analyses require genuine limited independence: pairwise for
//! Count-Min rows, 4-wise for Count-Sketch/AMS signs. Degree-`(k−1)`
//! polynomials with random coefficients modulo a prime provide exactly
//! k-wise independence, and `2⁶¹ − 1` admits a fast reduction (two adds).
//!
//! Generic items are first folded to a `u64` with the workspace's
//! `FxHasher`; the algebraic family then provides independence over those
//! 64-bit fingerprints.

use std::hash::{Hash, Hasher};

use ms_core::rng::splitmix64;
use ms_core::FxHasher;

/// The Mersenne prime `2⁶¹ − 1`.
pub const MERSENNE_P: u64 = (1 << 61) - 1;

/// Multiply two values modulo `2⁶¹ − 1` using 128-bit intermediates.
#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    let prod = (a as u128) * (b as u128);
    // Fast Mersenne reduction: p = 2^61 − 1 ⇒ 2^61 ≡ 1 (mod p).
    let lo = (prod & MERSENNE_P as u128) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo.wrapping_add(hi);
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

#[inline]
fn add_mod(a: u64, b: u64) -> u64 {
    let mut s = a + b; // both < 2^61, no overflow in u64
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// A degree-`(K−1)` polynomial hash — `K`-wise independent over `[0, p)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyHash<const K: usize> {
    coeffs: [u64; K],
}

impl<const K: usize> PolyHash<K> {
    /// Draw a random member of the family from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut coeffs = [0u64; K];
        for c in coeffs.iter_mut() {
            *c = splitmix64(&mut sm) % MERSENNE_P;
        }
        // The leading coefficient must be nonzero for full independence.
        if coeffs[K - 1] == 0 {
            coeffs[K - 1] = 1;
        }
        PolyHash { coeffs }
    }

    /// Evaluate the polynomial at `x` (Horner), returning a value in
    /// `[0, p)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let x = x % MERSENNE_P;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = add_mod(mul_mod(acc, x), c);
        }
        acc
    }

    /// Hash into `[0, buckets)`.
    #[inline]
    pub fn bucket(&self, x: u64, buckets: usize) -> usize {
        (self.eval(x) % buckets as u64) as usize
    }

    /// Rebuild a member from explicit coefficients — the batched kernels'
    /// scalar tails re-enter the reference path this way.
    #[inline]
    pub(crate) fn from_coefficients(coeffs: [u64; K]) -> Self {
        PolyHash { coeffs }
    }

    /// The polynomial's coefficients, lowest degree first. Exposed so the
    /// batched kernels in [`crate::batch`] can evaluate the same affine
    /// form over whole lanes of inputs at once.
    #[inline]
    pub fn coefficients(&self) -> &[u64; K] {
        &self.coeffs
    }

    /// Hash to a sign `{−1, +1}` (parity of the low bit).
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        if self.eval(x) & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

/// Pairwise-independent family (degree-1 polynomials).
pub type PairwiseHash = PolyHash<2>;

/// 4-wise independent family (degree-3 polynomials), needed by the AMS and
/// Count-Sketch variance analyses.
pub type FourwiseHash = PolyHash<4>;

/// Fold an arbitrary hashable item to the `u64` fingerprint fed into the
/// algebraic families.
#[inline]
pub fn fingerprint<I: Hash>(item: &I) -> u64 {
    let mut h = FxHasher::default();
    item.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_mod_matches_u128_reference() {
        let cases = [
            (0u64, 0u64),
            (1, MERSENNE_P - 1),
            (MERSENNE_P - 1, MERSENNE_P - 1),
            (123_456_789, 987_654_321),
            (1 << 60, (1 << 60) + 5),
        ];
        for (a, b) in cases {
            let expected = ((a as u128 * b as u128) % MERSENNE_P as u128) as u64;
            assert_eq!(mul_mod(a, b), expected, "a={a} b={b}");
        }
    }

    #[test]
    fn eval_is_deterministic_and_seed_dependent() {
        let h1 = PairwiseHash::new(1);
        let h2 = PairwiseHash::new(1);
        let h3 = PairwiseHash::new(2);
        for x in [0u64, 1, 99, u64::MAX] {
            assert_eq!(h1.eval(x), h2.eval(x));
        }
        assert!((0..100u64).any(|x| h1.eval(x) != h3.eval(x)));
    }

    #[test]
    fn degree_one_polynomial_is_affine() {
        // For PolyHash<2> with coeffs [a0, a1], eval(x) = a0 + a1·x mod p.
        let h = PairwiseHash::new(42);
        let a0 = h.eval(0);
        let a1 = add_mod(h.eval(1), MERSENNE_P - a0);
        for x in [2u64, 3, 1000] {
            assert_eq!(h.eval(x), add_mod(mul_mod(a1, x), a0));
        }
    }

    #[test]
    fn buckets_are_roughly_uniform() {
        let h = PairwiseHash::new(7);
        let buckets = 16;
        let mut counts = vec![0u32; buckets];
        for x in 0..16_000u64 {
            counts[h.bucket(x, buckets)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket counts {counts:?}");
        }
    }

    #[test]
    fn signs_are_roughly_balanced() {
        let h = FourwiseHash::new(11);
        let sum: i64 = (0..10_000u64).map(|x| h.sign(x)).sum();
        assert!(sum.abs() < 400, "sign bias {sum}");
    }

    #[test]
    fn pairwise_collision_rate_is_near_uniform() {
        // For a pairwise family, P[h(x) = h(y)] ≈ 1/buckets for x ≠ y.
        let buckets = 64;
        let trials = 2000;
        let mut collisions = 0;
        for seed in 0..trials {
            let h = PairwiseHash::new(seed);
            if h.bucket(12345, buckets) == h.bucket(67890, buckets) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        assert!(
            (rate - 1.0 / buckets as f64).abs() < 0.01,
            "collision rate {rate}"
        );
    }

    #[test]
    fn fingerprint_distinguishes_types_and_values() {
        assert_eq!(fingerprint(&5u64), fingerprint(&5u64));
        assert_ne!(fingerprint(&5u64), fingerprint(&6u64));
        assert_ne!(fingerprint(&"a"), fingerprint(&"b"));
    }

    #[test]
    fn fourwise_pairs_of_signs_are_independent() {
        // E[s(x)·s(y)] ≈ 0 for x ≠ y over random family members.
        let trials = 4000;
        let mut sum = 0i64;
        for seed in 0..trials {
            let h = FourwiseHash::new(seed);
            sum += h.sign(1) * h.sign(2);
        }
        assert!(
            (sum as f64 / trials as f64).abs() < 0.05,
            "sign correlation {sum}/{trials}"
        );
    }
}

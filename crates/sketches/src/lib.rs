//! Linear sketches — the trivially mergeable comparison class (§2 of the
//! paper).
//!
//! A *linear* sketch is a linear map of the input frequency vector, so
//! merging two sketches of the same family (same shape, same hash seeds) is
//! literally adding their cell arrays: mergeability is free. The paper uses
//! this class as the foil for its results — linear sketches are mergeable
//! but pay for it with randomness (probabilistic guarantees only) and with
//! sizes depending on `log(1/δ)` (and, for frequencies over a universe,
//! often `log u`), whereas the paper's counter-based summaries are
//! deterministic and `O(1/ε)`.
//!
//! Implemented here, each with explicit seeds and typed merge errors on
//! family mismatch:
//!
//! * [`CountMinSketch`] — `d × w` table of non-negative counters; point
//!   queries overestimate by at most `εn` with probability `1 − δ` for
//!   `w = ⌈e/ε⌉`, `d = ⌈ln(1/δ)⌉`;
//! * [`CountSketch`] — signed counters and median estimation; unbiased,
//!   error scales with `√F₂/w` rather than `n/w`;
//! * [`AmsF2Sketch`] — the Alon-Matias-Szegedy tug-of-war estimator of the
//!   second frequency moment `F₂`, with 4-wise independent sign hashes.
//!
//! All hash functions are algebraic (polynomials over the Mersenne prime
//! `2⁶¹ − 1`) so the independence guarantees backing the analyses actually
//! hold — see [`hashing`].

pub mod ams;
pub mod batch;
pub mod count_min;
pub mod count_sketch;
pub mod hashing;

pub use ams::AmsF2Sketch;
pub use count_min::CountMinSketch;
pub use count_sketch::CountSketch;

//! Merging *Frequent* summaries: the Agarwal-style baseline (the extension
//! paper's Algorithm 1) and the closed-form low-error merge (its
//! Algorithm 2), plus a literal replay of the Frequent algorithm used to
//! verify the closed form (Theorem 4.2 of that paper).
//!
//! Conventions: `k` is the k-majority parameter; a Frequent summary holds
//! at most `k−1` counters; the combined summary is conceptually padded with
//! zero counters at the front to exactly `2k−2` positions, indexed 1-based
//! as in the pseudo-code.

use std::hash::Hash;

use crate::sorted::{MergeOutcome, SortedSummary};

/// 1-based access into the front-padded combined summary: positions
/// `1..=pad` are zero counters, positions `pad+1..=2k−2` are real entries.
struct Padded<'a, I> {
    entries: &'a [(I, u64)],
    pad: usize,
}

impl<'a, I> Padded<'a, I> {
    fn new(entries: &'a [(I, u64)], len: usize) -> Self {
        assert!(entries.len() <= len, "summary larger than padded length");
        Padded {
            entries,
            pad: len - entries.len(),
        }
    }

    /// Count at 1-based padded position (0 in the pad region).
    fn count(&self, pos: usize) -> u64 {
        if pos <= self.pad {
            0
        } else {
            self.entries[pos - self.pad - 1].1
        }
    }

    /// Item at 1-based padded position (None in the pad region).
    fn item(&self, pos: usize) -> Option<&'a I> {
        (pos > self.pad).then(|| &self.entries[pos - self.pad - 1].0)
    }
}

/// Algorithm 1 (baseline): combine, and if more than `k−1` counters remain,
/// subtract the count at padded position `k−1` from the top `k−1` counters
/// and return them. Total error: `(k−1)·C_{k−1}`.
///
/// # Panics
///
/// Panics if `k < 2` or either input exceeds `k−1` counters.
pub fn merge_frequent_baseline<I: Eq + Hash + Clone + Ord>(
    a: &SortedSummary<I>,
    b: &SortedSummary<I>,
    k: usize,
) -> MergeOutcome<I> {
    assert!(k >= 2, "k-majority parameter must be at least 2");
    assert!(a.nz() < k && b.nz() < k, "input exceeds k-1 counters");
    let combined = a.combine(b);
    if combined.nz() < k {
        return MergeOutcome {
            summary: combined,
            total_error: 0,
        };
    }
    let len = 2 * k - 2;
    let padded = Padded::new(combined.entries(), len);
    let threshold = padded.count(k - 1);
    let mut out = Vec::with_capacity(k - 1);
    for pos in k..=len {
        let item = padded.item(pos).expect("top half is never padding");
        let count = padded.count(pos);
        out.push((item.clone(), count.saturating_sub(threshold)));
    }
    MergeOutcome {
        summary: SortedSummary::new(out),
        total_error: (k as u64 - 1) * threshold,
    }
}

/// Algorithm 2 (low-error): the closed-form determining equations
/// reproducing a run of Frequent over the combined summary.
///
/// Output counter `i` (1-based, `i = 1..k−1`):
///
/// ```text
/// e_1 = C_k.e          f_1 = C_k.f − C_{k−1}.f
/// e_i = C_{k−1+i}.e    f_i = C_{k−1+i}.f − C_{k−1}.f + C_{i−1}.f
/// ```
///
/// Total error: `Σ_j (C_{k−1+j}.f − f_j)`, which is at most the baseline's
/// `(k−1)·C_{k−1}.f` (the paper's Lemma 4.3).
///
/// # Panics
///
/// Panics if `k < 2` or either input exceeds `k−1` counters.
pub fn merge_frequent_low_error<I: Eq + Hash + Clone + Ord>(
    a: &SortedSummary<I>,
    b: &SortedSummary<I>,
    k: usize,
) -> MergeOutcome<I> {
    assert!(k >= 2, "k-majority parameter must be at least 2");
    assert!(a.nz() < k && b.nz() < k, "input exceeds k-1 counters");
    let combined = a.combine(b);
    if combined.nz() < k {
        return MergeOutcome {
            summary: combined,
            total_error: 0,
        };
    }
    let len = 2 * k - 2;
    let padded = Padded::new(combined.entries(), len);
    let pivot = padded.count(k - 1);
    let mut out = Vec::with_capacity(k - 1);
    let mut total_error = 0u64;
    for i in 1..=(k - 1) {
        let pos = k - 1 + i;
        let item = padded
            .item(pos)
            .expect("positions k..2k-2 are real when nz >= k");
        let raw = padded.count(pos);
        // f_i = C_{k−1+i} − C_{k−1} + C_{i−1}; C_0 is the (empty) pad.
        let f = raw - pivot + padded.count(i - 1);
        total_error += raw - f;
        if f > 0 {
            out.push((item.clone(), f));
        }
    }
    MergeOutcome {
        summary: SortedSummary::new(out),
        total_error,
    }
}

/// Reference implementation: literally run the (weighted) Frequent
/// algorithm with `k−1` counters over the combined summary's entries in
/// ascending order, as in the constructive proof of Theorem 4.2.
///
/// Used by tests and experiments to confirm the closed form is exact; the
/// closed form is the one to use in production (no sorting or counter
/// bookkeeping during the merge).
pub fn replay_frequent<I: Eq + Hash + Clone + Ord>(
    a: &SortedSummary<I>,
    b: &SortedSummary<I>,
    k: usize,
) -> SortedSummary<I> {
    assert!(k >= 2, "k-majority parameter must be at least 2");
    let combined = a.combine(b);
    let capacity = k - 1;
    // Counters kept ascending; each incoming entry is an aggregated update
    // of `count` occurrences of a not-currently-monitored item.
    let mut counters: Vec<(I, u64)> = Vec::with_capacity(capacity + 1);
    for (item, count) in combined.entries().iter().cloned() {
        if counters.len() < capacity {
            counters.push((item, count));
            counters.sort_by(|x, y| x.1.cmp(&y.1).then_with(|| x.0.cmp(&y.0)));
            continue;
        }
        // Full: decrement every counter by the minimum, freeing (at least)
        // the first; the newcomer keeps the remainder of its weight.
        let d = counters[0].1;
        debug_assert!(count >= d, "ascending order guarantees count >= min");
        for c in &mut counters {
            c.1 -= d;
        }
        counters.retain(|&(_, c)| c > 0);
        if count - d > 0 {
            counters.push((item, count - d));
        }
        counters.sort_by(|x, y| x.1.cmp(&y.1).then_with(|| x.0.cmp(&y.0)));
    }
    SortedSummary::new(counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §5.1 example of the extension paper, k = 5.
    ///
    /// Note: the paper's input table lists item 10 with frequency 45, but
    /// its combined-summary table and all downstream arithmetic use 40; we
    /// use 40 so every printed number matches.
    fn paper_inputs() -> (SortedSummary<u64>, SortedSummary<u64>) {
        let a = SortedSummary::new(vec![(2, 4), (3, 11), (4, 22), (5, 33)]);
        let b = SortedSummary::new(vec![(7, 10), (8, 20), (9, 30), (10, 40)]);
        (a, b)
    }

    #[test]
    fn golden_baseline_section_5_1_1() {
        let (a, b) = paper_inputs();
        let out = merge_frequent_baseline(&a, &b, 5);
        assert_eq!(out.summary.entries(), &[(4, 2), (9, 10), (5, 13), (10, 20)]);
        assert_eq!(out.total_error, 80);
    }

    #[test]
    fn golden_low_error_section_5_1_2() {
        let (a, b) = paper_inputs();
        let out = merge_frequent_low_error(&a, &b, 5);
        assert_eq!(out.summary.entries(), &[(4, 2), (9, 14), (5, 23), (10, 31)]);
        assert_eq!(out.total_error, 55);
    }

    #[test]
    fn golden_replay_matches_low_error() {
        let (a, b) = paper_inputs();
        let replayed = replay_frequent(&a, &b, 5);
        let closed = merge_frequent_low_error(&a, &b, 5).summary;
        assert_eq!(replayed, closed);
    }

    #[test]
    fn no_prune_when_combined_fits() {
        let a = SortedSummary::new(vec![(1u64, 5u64), (2, 8)]);
        let b = SortedSummary::new(vec![(2u64, 3u64), (3, 1)]);
        for f in [merge_frequent_baseline, merge_frequent_low_error] {
            let out = f(&a, &b, 5);
            assert_eq!(out.total_error, 0);
            assert_eq!(out.summary.count(&2), 11);
            assert_eq!(out.summary.nz(), 3);
        }
    }

    #[test]
    fn low_error_never_exceeds_baseline_error() {
        // Lemma 4.3, exercised over random summaries.
        use ms_core::Rng64;
        let mut rng = Rng64::new(0xFEED);
        for trial in 0..200 {
            let k = 3 + (trial % 12);
            let mk = |rng: &mut Rng64, base: u64| {
                let cnt = 1 + rng.below_usize(k - 1);
                SortedSummary::new(
                    (0..cnt)
                        .map(|i| (base + i as u64, 1 + rng.below(1000)))
                        .collect(),
                )
            };
            let overlap = rng.coin();
            let a = mk(&mut rng, 0);
            let b = mk(&mut rng, if overlap { 0 } else { 1000 });
            let base = merge_frequent_baseline(&a, &b, k);
            let low = merge_frequent_low_error(&a, &b, k);
            assert!(
                low.total_error <= base.total_error,
                "trial {trial}: low {} > baseline {}",
                low.total_error,
                base.total_error
            );
        }
    }

    #[test]
    fn closed_form_equals_replay_on_random_inputs() {
        use ms_core::Rng64;
        let mut rng = Rng64::new(0xC0FFEE);
        for trial in 0..300 {
            let k = 2 + (trial % 14);
            let mk = |rng: &mut Rng64, base: u64| {
                let cnt = rng.below_usize(k); // 0..=k-1 counters
                SortedSummary::new(
                    (0..cnt)
                        .map(|i| (base + i as u64, 1 + rng.below(500)))
                        .collect(),
                )
            };
            let a = mk(&mut rng, 0);
            let b = mk(&mut rng, 100);
            let closed = merge_frequent_low_error(&a, &b, k).summary;
            let replayed = replay_frequent(&a, &b, k);
            assert_eq!(closed, replayed, "trial {trial}, k {k}");
        }
    }

    #[test]
    fn merged_counts_underestimate_combined() {
        // Every output count is ≤ the item's combined count (Frequent
        // underestimates), and the k-majority candidates survive.
        let (a, b) = paper_inputs();
        let combined = a.combine(&b);
        let out = merge_frequent_low_error(&a, &b, 5);
        for (item, count) in out.summary.entries() {
            assert!(*count <= combined.count(item));
        }
    }

    #[test]
    fn empty_inputs_merge_to_empty() {
        let a = SortedSummary::<u64>::new(vec![]);
        let b = SortedSummary::<u64>::new(vec![]);
        let out = merge_frequent_low_error(&a, &b, 4);
        assert_eq!(out.summary.nz(), 0);
        assert_eq!(out.total_error, 0);
    }

    #[test]
    fn smallest_valid_k_majority() {
        // k = 2: each Frequent summary holds one counter (majority vote).
        let a = SortedSummary::new(vec![(1u64, 10u64)]);
        let b = SortedSummary::new(vec![(2u64, 6u64)]);
        let low = merge_frequent_low_error(&a, &b, 2);
        let base = merge_frequent_baseline(&a, &b, 2);
        // Combined {6, 10}; both prune at the 2nd largest (6): {1: 4}.
        assert_eq!(low.summary.entries(), &[(1, 4)]);
        assert_eq!(base.summary.entries(), &[(1, 4)]);
        assert_eq!(low.summary, replay_frequent(&a, &b, 2));
    }

    #[test]
    #[should_panic(expected = "exceeds k-1")]
    fn oversized_input_rejected() {
        let a = SortedSummary::new(vec![(1u64, 1u64), (2, 2), (3, 3)]);
        let b = SortedSummary::new(vec![]);
        let _ = merge_frequent_low_error(&a, &b, 3);
    }
}

//! **Extension crate** — low-total-error merging of *Frequent* and
//! *SpaceSaving* summaries.
//!
//! This crate is *not* part of the PODS'12 paper this repository
//! reproduces. It implements the follow-up algorithms of Cafaro, Tempesta
//! and Pulimeno, *Mergeable Summaries With Low Total Error* (whose full
//! text was supplied alongside the task; see the mismatch note at the top
//! of `DESIGN.md`). Their observation: the Agarwal et al. 2-way merge
//! prunes by subtracting the same value from every surviving counter
//! (total error `(k−1)·C_{l−k+1}`), while simply *running* Frequent or
//! SpaceSaving over the combined counters commits strictly less total
//! error — and admits O(k) closed-form "determining equations", so no
//! actual replay is needed.
//!
//! Conventions follow that paper: `k` is the *k-majority parameter*
//! (threshold `⌊n/k⌋ + 1`), a Frequent summary holds at most `k−1`
//! counters, a SpaceSaving summary holds at most `k` counters, and all
//! summaries are handled as counter arrays sorted **ascending** by count.
//!
//! The crate provides, for both summary types:
//!
//! * the Agarwal-style baseline merge (its Algorithm 1),
//! * the closed-form low-error merge (its Algorithms 2 and 3),
//! * a literal replay of Frequent / SpaceSaving over the combined
//!   counters, used by tests to verify the closed forms are exact
//!   (Theorems 4.2 and 4.5 of that paper),
//! * total-error accounting for the X1/X2 experiments.

pub mod frequent;
pub mod sorted;
pub mod space_saving;

pub use frequent::{merge_frequent_baseline, merge_frequent_low_error, replay_frequent};
pub use sorted::{MergeOutcome, SortedSummary};
pub use space_saving::{
    merge_space_saving_baseline, merge_space_saving_low_error, replay_space_saving,
};

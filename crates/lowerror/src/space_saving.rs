//! Merging *SpaceSaving* summaries: the Agarwal-style baseline and the
//! closed-form low-error merge (the extension paper's Algorithm 3), plus a
//! literal replay of SpaceSaving used to verify the closed form
//! (Theorem 4.5 of that paper).
//!
//! Conventions: `k` is the k-majority parameter; a SpaceSaving summary
//! holds at most `k` counters. Both algorithms share the pre-processing
//! step of Definition 4.1: a *saturated* input (exactly `k` counters) has
//! its minimum count subtracted from every counter, which preserves
//! k-majority candidacy and leaves at most `k−1` counters per input.

use std::hash::Hash;

use crate::sorted::{MergeOutcome, SortedSummary};

/// Subtract each input's minimum when saturated (Definition 4.1), then
/// combine. Returns the combined summary and the two subtracted minima.
fn preprocess<I: Eq + Hash + Clone + Ord>(
    a: &SortedSummary<I>,
    b: &SortedSummary<I>,
    k: usize,
) -> (SortedSummary<I>, u64, u64) {
    assert!(
        k >= 3,
        "k-majority parameter must be at least 3 for SpaceSaving merges"
    );
    assert!(a.nz() <= k && b.nz() <= k, "input exceeds k counters");
    let mu_a = if a.nz() == k { a.min_count() } else { 0 };
    let mu_b = if b.nz() == k { b.min_count() } else { 0 };
    let a2 = a.subtract(mu_a);
    let b2 = b.subtract(mu_b);
    (a2.combine(&b2), mu_a, mu_b)
}

/// Baseline (Algorithm 1 applied after the minima subtraction): prune the
/// combined counters at padded position `k−1` and return the top `k−1`.
/// Total error (neglecting the shared minima subtraction):
/// `(k−1)·C_{k−1}`.
pub fn merge_space_saving_baseline<I: Eq + Hash + Clone + Ord>(
    a: &SortedSummary<I>,
    b: &SortedSummary<I>,
    k: usize,
) -> MergeOutcome<I> {
    let (combined, _, _) = preprocess(a, b, k);
    if combined.nz() < k {
        return MergeOutcome {
            summary: combined,
            total_error: 0,
        };
    }
    let len = 2 * k - 2;
    let entries = combined.entries();
    let pad = len - entries.len();
    let count = |pos: usize| -> u64 {
        if pos <= pad {
            0
        } else {
            entries[pos - pad - 1].1
        }
    };
    let threshold = count(k - 1);
    let mut out = Vec::with_capacity(k - 1);
    for pos in k..=len {
        let (item, c) = &entries[pos - pad - 1];
        out.push((item.clone(), c.saturating_sub(threshold)));
    }
    MergeOutcome {
        summary: SortedSummary::new(out),
        total_error: (k as u64 - 1) * threshold,
    }
}

/// Algorithm 3 (low-error): closed-form determining equations reproducing
/// a run of SpaceSaving with `k` counters over the combined summary.
///
/// With the combined summary padded to `2k−2` positions (1-based):
///
/// ```text
/// i = 1, 2:     e_i = C_{k−2+i}.e    f_i = C_{k−2+i}.f
/// i = 3..k:     e_i = C_{k−2+i}.e    f_i = C_{k−2+i}.f + C_{i−2}.f
/// ```
///
/// Total error (neglecting the shared minima subtraction):
/// `Σ_j (f_j − C_{k−2+j}.f) = Σ_{j=1..k−2} C_j.f`, strictly below the
/// baseline's `(k−1)·C_{k−1}.f` (the paper's Lemma 4.6).
pub fn merge_space_saving_low_error<I: Eq + Hash + Clone + Ord>(
    a: &SortedSummary<I>,
    b: &SortedSummary<I>,
    k: usize,
) -> MergeOutcome<I> {
    let (combined, _, _) = preprocess(a, b, k);
    if combined.nz() <= k {
        return MergeOutcome {
            summary: combined,
            total_error: 0,
        };
    }
    let len = 2 * k - 2;
    let entries = combined.entries();
    let pad = len - entries.len();
    let count = |pos: usize| -> u64 {
        if pos <= pad {
            0
        } else {
            entries[pos - pad - 1].1
        }
    };
    let item = |pos: usize| -> &I { &entries[pos - pad - 1].0 };

    let mut out = Vec::with_capacity(k);
    let mut total_error = 0u64;
    for i in 1..=k {
        let pos = k - 2 + i;
        let raw = count(pos);
        let f = if i <= 2 { raw } else { raw + count(i - 2) };
        total_error += f - raw;
        if f > 0 {
            out.push((item(pos).clone(), f));
        }
    }
    MergeOutcome {
        summary: SortedSummary::new(out),
        total_error,
    }
}

/// Reference implementation: literally run SpaceSaving with `k` counters
/// over the combined summary's entries in ascending order, as in the
/// constructive proof of Theorem 4.5. (The minima subtraction is applied
/// first, exactly as in the closed-form path.)
pub fn replay_space_saving<I: Eq + Hash + Clone + Ord>(
    a: &SortedSummary<I>,
    b: &SortedSummary<I>,
    k: usize,
) -> SortedSummary<I> {
    let (combined, _, _) = preprocess(a, b, k);
    // Counters kept ascending; each incoming entry is an aggregated update
    // of `count` occurrences of a not-currently-monitored item.
    let mut counters: Vec<(I, u64)> = Vec::with_capacity(k + 1);
    for (item, count) in combined.entries().iter().cloned() {
        if counters.len() < k {
            counters.push((item, count));
        } else {
            // Replace the minimum counter and add its value.
            let min = counters[0].1;
            counters[0] = (item, min + count);
        }
        counters.sort_by(|x, y| x.1.cmp(&y.1).then_with(|| x.0.cmp(&y.0)));
    }
    SortedSummary::new(counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §5.2 example of the extension paper, k = 5.
    fn paper_inputs() -> (SortedSummary<u64>, SortedSummary<u64>) {
        let a = SortedSummary::new(vec![(1, 5), (2, 7), (3, 12), (4, 14), (5, 18)]);
        let b = SortedSummary::new(vec![(6, 4), (7, 16), (8, 17), (9, 19), (10, 23)]);
        (a, b)
    }

    #[test]
    fn golden_preprocess_subtracts_minima() {
        let (a, b) = paper_inputs();
        let (combined, mu_a, mu_b) = preprocess(&a, &b, 5);
        assert_eq!((mu_a, mu_b), (5, 4));
        // Combined (ascending): (2:2)(3:7)(4:9)(7:12)(5:13)(8:13)(9:15)(10:19).
        assert_eq!(combined.count(&2), 2);
        assert_eq!(combined.count(&7), 12);
        assert_eq!(combined.count(&5), 13);
        assert_eq!(combined.count(&10), 19);
        assert_eq!(combined.count(&1), 0);
        assert_eq!(combined.count(&6), 0);
        assert_eq!(combined.nz(), 8);
    }

    #[test]
    fn golden_baseline_section_5_2_1() {
        let (a, b) = paper_inputs();
        let out = merge_space_saving_baseline(&a, &b, 5);
        assert_eq!(out.summary.entries(), &[(5, 1), (8, 1), (9, 3), (10, 7)]);
        assert_eq!(out.total_error, 48);
    }

    #[test]
    fn golden_low_error_section_5_2_2() {
        let (a, b) = paper_inputs();
        let out = merge_space_saving_low_error(&a, &b, 5);
        assert_eq!(
            out.summary.entries(),
            &[(7, 12), (5, 13), (8, 15), (9, 22), (10, 28)]
        );
        assert_eq!(out.total_error, 18);
    }

    #[test]
    fn golden_replay_matches_low_error() {
        let (a, b) = paper_inputs();
        let replayed = replay_space_saving(&a, &b, 5);
        let closed = merge_space_saving_low_error(&a, &b, 5).summary;
        assert_eq!(replayed, closed);
    }

    #[test]
    fn no_error_when_combined_fits() {
        let a = SortedSummary::new(vec![(1u64, 5u64), (2, 8)]);
        let b = SortedSummary::new(vec![(2u64, 3u64), (3, 1)]);
        let out = merge_space_saving_low_error(&a, &b, 5);
        assert_eq!(out.total_error, 0);
        assert_eq!(out.summary.count(&2), 11);
    }

    #[test]
    fn unsaturated_inputs_skip_minima_subtraction() {
        // 4 counters with k = 5 → no subtraction even though counts are low.
        let a = SortedSummary::new(vec![(1u64, 1u64), (2, 2), (3, 3), (4, 4)]);
        let b = SortedSummary::new(vec![(5u64, 1u64)]);
        let (combined, mu_a, mu_b) = preprocess(&a, &b, 5);
        assert_eq!((mu_a, mu_b), (0, 0));
        assert_eq!(combined.total(), 11);
    }

    #[test]
    fn low_error_below_baseline_on_random_inputs() {
        // Lemma 4.6, exercised over random summaries.
        use ms_core::Rng64;
        let mut rng = Rng64::new(0xABBA);
        for trial in 0..200 {
            let k = 3 + (trial % 12);
            let mk = |rng: &mut Rng64, base: u64| {
                let cnt = 1 + rng.below_usize(k);
                SortedSummary::new(
                    (0..cnt)
                        .map(|i| (base + i as u64, 1 + rng.below(1000)))
                        .collect(),
                )
            };
            let a = mk(&mut rng, 0);
            let base_b = if rng.coin() { 0 } else { 1000 };
            let b = mk(&mut rng, base_b);
            let base = merge_space_saving_baseline(&a, &b, k);
            let low = merge_space_saving_low_error(&a, &b, k);
            assert!(
                low.total_error <= base.total_error,
                "trial {trial}: low {} > baseline {}",
                low.total_error,
                base.total_error
            );
        }
    }

    #[test]
    fn closed_form_equals_replay_on_random_inputs() {
        use ms_core::Rng64;
        let mut rng = Rng64::new(0xD1CE);
        for trial in 0..300 {
            let k = 3 + (trial % 14);
            let mk = |rng: &mut Rng64, base: u64| {
                let cnt = rng.below_usize(k + 1); // 0..=k counters
                SortedSummary::new(
                    (0..cnt)
                        .map(|i| (base + i as u64, 1 + rng.below(500)))
                        .collect(),
                )
            };
            let a = mk(&mut rng, 0);
            let b = mk(&mut rng, 100);
            let closed = merge_space_saving_low_error(&a, &b, k).summary;
            let replayed = replay_space_saving(&a, &b, k);
            assert_eq!(closed, replayed, "trial {trial}, k {k}");
        }
    }

    #[test]
    fn merged_counts_overestimate_combined() {
        // SpaceSaving overestimates: every output count ≥ the item's count
        // in the combined (post-subtraction) summary.
        let (a, b) = paper_inputs();
        let (combined, _, _) = preprocess(&a, &b, 5);
        let out = merge_space_saving_low_error(&a, &b, 5);
        for (item, count) in out.summary.entries() {
            assert!(*count >= combined.count(item));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds k counters")]
    fn oversized_input_rejected() {
        let a = SortedSummary::new(vec![(1u64, 1u64), (2, 2), (3, 3), (4, 4)]);
        let b = SortedSummary::new(vec![]);
        let _ = merge_space_saving_low_error(&a, &b, 3);
    }
}

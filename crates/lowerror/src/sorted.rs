//! Counter arrays sorted ascending by frequency — the representation the
//! extension paper's algorithms are stated in.

use std::hash::Hash;

use ms_core::FxHashMap;
use ms_frequency::MgSummary;

/// A summary as an ascending-sorted array of `(item, count)` counters.
///
/// Items are distinct; counts are positive. Construction sorts; merging
/// algorithms index 1-based positions exactly as in the paper's
/// pseudo-code.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedSummary<I> {
    entries: Vec<(I, u64)>,
}

impl<I: Eq + Hash + Clone + Ord> SortedSummary<I> {
    /// Build from counters; drops zero counts, sorts ascending by count
    /// (ties by item, for determinism).
    ///
    /// # Panics
    ///
    /// Panics if two entries share an item.
    pub fn new(mut entries: Vec<(I, u64)>) -> Self {
        entries.retain(|&(_, c)| c > 0);
        entries.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        for w in entries.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate item in summary");
        }
        SortedSummary { entries }
    }

    /// View of the sorted entries.
    pub fn entries(&self) -> &[(I, u64)] {
        &self.entries
    }

    /// Number of (nonzero) counters — `S.nz` in the paper.
    pub fn nz(&self) -> usize {
        self.entries.len()
    }

    /// Sum of counts.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c).sum()
    }

    /// Count of a specific item (0 if absent).
    pub fn count(&self, item: &I) -> u64 {
        self.entries
            .iter()
            .find(|(i, _)| i == item)
            .map_or(0, |&(_, c)| c)
    }

    /// Minimum count (0 if empty).
    pub fn min_count(&self) -> u64 {
        self.entries.first().map_or(0, |&(_, c)| c)
    }

    /// Subtract `m` from every counter, dropping non-positive ones — the
    /// "subtract the minimum" pre-processing step of the SpaceSaving merge.
    pub fn subtract(&self, m: u64) -> SortedSummary<I> {
        SortedSummary {
            entries: self
                .entries
                .iter()
                .filter(|&&(_, c)| c > m)
                .map(|(i, c)| (i.clone(), c - m))
                .collect(),
        }
    }

    /// Counter-wise combination of two summaries (the error-free COMBINE
    /// step shared by every algorithm).
    pub fn combine(&self, other: &SortedSummary<I>) -> SortedSummary<I> {
        let mut map: FxHashMap<I, u64> = FxHashMap::default();
        for (i, c) in self.entries.iter().chain(other.entries.iter()) {
            *map.entry(i.clone()).or_insert(0) += c;
        }
        SortedSummary::new(map.into_iter().collect())
    }

    /// Import from the workspace's Misra-Gries summary (which plays the
    /// role of *Frequent* here; with the k-majority parameter `k` it holds
    /// at most `k−1` counters).
    pub fn from_mg(mg: &MgSummary<I>) -> SortedSummary<I> {
        SortedSummary::new(mg.iter().map(|(i, c)| (i.clone(), c)).collect())
    }
}

/// Result of a 2-way merge, with the total-error accounting used by the
/// extension paper's comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOutcome<I> {
    /// The merged summary.
    pub summary: SortedSummary<I>,
    /// Total error committed by the merge step itself, defined as in the
    /// paper: the sum over output counters of the frequency lost (Frequent)
    /// or gained (SpaceSaving) relative to the combined summary, neglecting
    /// the minima subtraction common to all algorithms.
    pub total_error: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_ascending_and_drops_zeros() {
        let s = SortedSummary::new(vec![(3u64, 5u64), (1, 2), (2, 0), (4, 9)]);
        assert_eq!(s.entries(), &[(1, 2), (3, 5), (4, 9)]);
        assert_eq!(s.nz(), 3);
        assert_eq!(s.total(), 16);
        assert_eq!(s.min_count(), 2);
    }

    #[test]
    fn ties_break_by_item_for_determinism() {
        let s = SortedSummary::new(vec![(9u64, 4u64), (2, 4), (5, 4)]);
        assert_eq!(s.entries(), &[(2, 4), (5, 4), (9, 4)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_items_rejected() {
        let _ = SortedSummary::new(vec![(1u64, 2u64), (1, 3)]);
    }

    #[test]
    fn combine_adds_matching_items() {
        let a = SortedSummary::new(vec![(1u64, 3u64), (2, 5)]);
        let b = SortedSummary::new(vec![(2u64, 2u64), (3, 1)]);
        let c = a.combine(&b);
        assert_eq!(c.count(&1), 3);
        assert_eq!(c.count(&2), 7);
        assert_eq!(c.count(&3), 1);
        assert_eq!(c.total(), 11);
    }

    #[test]
    fn subtract_drops_exhausted_counters() {
        let s = SortedSummary::new(vec![(1u64, 2u64), (2, 5), (3, 7)]);
        let t = s.subtract(2);
        assert_eq!(t.entries(), &[(2, 3), (3, 5)]);
        // Subtracting 0 is identity.
        assert_eq!(s.subtract(0), s);
    }

    #[test]
    fn from_mg_roundtrip() {
        use ms_core::ItemSummary;
        let mut mg = ms_frequency::MgSummary::new(4);
        mg.update_weighted(7u64, 3);
        mg.update_weighted(8, 9);
        let s = SortedSummary::from_mg(&mg);
        assert_eq!(s.entries(), &[(7, 3), (8, 9)]);
    }

    #[test]
    fn count_of_absent_item_is_zero() {
        let s = SortedSummary::new(vec![(1u64, 2u64)]);
        assert_eq!(s.count(&99), 0);
        assert_eq!(SortedSummary::<u64>::new(vec![]).min_count(), 0);
    }
}

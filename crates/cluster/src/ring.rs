//! Consistent-hash ring over cluster slots.
//!
//! Each **slot** (one backend node, or one replica pair) owns `vnodes`
//! points on a 64-bit ring; an item routes to the slot owning the first
//! point at or after its hash. Virtual nodes keep the load split within
//! a few percent of uniform, and — the property the failure story leans
//! on — removing a slot moves only that slot's keys, scattering them
//! across *all* survivors instead of dumping them on one neighbor.
//!
//! The ring itself is immutable after construction; liveness is a
//! per-lookup concern. [`HashRing::route`] takes a `dead` predicate and
//! walks past points whose slot is currently dead, which is exactly the
//! rebalance-on-death behavior: the moment a node dies its key range
//! drains to the survivors, and the moment it rejoins (predicate flips
//! back) the original routing resumes with no ring rebuild.

/// Fixed-key splitmix64 finalizer: cheap, statistically solid mixing for
/// routing (not security). Point placement and item routing share it so
/// the ring is deterministic across coordinator restarts.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An immutable consistent-hash ring mapping `u64` items to slot indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, slot)` sorted by position.
    points: Vec<(u64, usize)>,
    slots: usize,
    vnodes: usize,
}

impl HashRing {
    /// Build a ring of `slots` slots with `vnodes` points each.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `vnodes` is zero.
    pub fn new(slots: usize, vnodes: usize) -> HashRing {
        assert!(slots > 0, "ring needs at least one slot");
        assert!(vnodes > 0, "ring needs at least one vnode per slot");
        let mut points = Vec::with_capacity(slots * vnodes);
        for slot in 0..slots {
            for v in 0..vnodes {
                let pos = mix64(((slot as u64) << 32) | v as u64);
                points.push((pos, slot));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            slots,
            vnodes,
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Virtual nodes per slot.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The slot owning `item`, ignoring liveness.
    pub fn slot_of(&self, item: u64) -> usize {
        self.route(item, |_| false)
            .expect("ring with no dead slots always routes")
    }

    /// The first slot at or after `item`'s ring position for which
    /// `dead` is false, wrapping around; `None` when every slot is dead.
    pub fn route(&self, item: u64, dead: impl Fn(usize) -> bool) -> Option<usize> {
        let pos = mix64(item);
        let start = self.points.partition_point(|&(p, _)| p < pos);
        let n = self.points.len();
        for i in 0..n {
            let (_, slot) = self.points[(start + i) % n];
            if !dead(slot) {
                return Some(slot);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = HashRing::new(5, 64);
        for item in 0..10_000u64 {
            let slot = ring.slot_of(item);
            assert!(slot < 5);
            assert_eq!(slot, ring.slot_of(item));
        }
    }

    #[test]
    fn vnodes_spread_load_roughly_evenly() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0usize; 4];
        for item in 0..40_000u64 {
            counts[ring.slot_of(item)] += 1;
        }
        for &c in &counts {
            // 4 slots x 64 vnodes: every slot within 2x of fair share.
            assert!(c > 5_000 && c < 20_000, "skewed split: {counts:?}");
        }
    }

    #[test]
    fn dead_slot_keys_scatter_across_survivors() {
        let ring = HashRing::new(4, 64);
        let mut rerouted = [0usize; 4];
        let mut moved = 0usize;
        for item in 0..40_000u64 {
            let home = ring.slot_of(item);
            let alive = ring.route(item, |s| s == 2).unwrap();
            assert_ne!(alive, 2);
            if home == 2 {
                moved += 1;
                rerouted[alive] += 1;
            } else {
                // Keys not owned by the dead slot must not move.
                assert_eq!(alive, home);
            }
        }
        // The dead slot's share lands on every survivor, not one neighbor.
        assert!(moved > 5_000);
        for (slot, &c) in rerouted.iter().enumerate() {
            if slot != 2 {
                assert!(c > 0, "survivor {slot} got no rerouted keys");
            }
        }
    }

    #[test]
    fn all_dead_routes_none() {
        let ring = HashRing::new(3, 8);
        assert_eq!(ring.route(7, |_| true), None);
    }
}

//! Federation of `ms-service` nodes into one logical service.
//!
//! The paper's mergeability guarantee (PODS'12, Definition 1) is a
//! *distributed-systems* property: summaries built independently at N
//! sites merge — in any order, in one shot — into a summary whose `εn`
//! error bound is the same as if one site had seen the whole stream.
//! This crate cashes that in. A [`Coordinator`] consistent-hash-routes
//! ingest across backend nodes ([`HashRing`]), answers queries by
//! scatter/gather + one-shot merge, tracks per-node health
//! ([`NodeHealth`]: alive → suspect → dead → rejoin), reroutes a dead
//! node's key range to the survivors, and optionally writes each slot to
//! a **replica pair** read-one-of-two so a single death never blanks a
//! range.
//!
//! The coordinator implements the same [`ms_service::Service`] trait
//! (and wire protocol) as a single engine, so `mergeable serve
//! --coordinator` is byte-compatible with every existing client —
//! including another coordinator's.

pub mod breaker;
pub mod coordinator;
pub mod membership;
pub mod ring;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, RetryBudget};
pub use coordinator::{ClusterConfig, Coordinator, GatherReport};
pub use membership::NodeHealth;
pub use ring::HashRing;

//! The coordinator: N independent `ms-service` nodes behind one
//! [`Service`].
//!
//! Ingest batches are consistent-hash routed across backends
//! ([`HashRing`]); queries scatter to every live node, gather per-node
//! summaries, and merge them **one-shot** — by the paper's Definition 1
//! the merged answer carries the same `εn` bound as a single node that
//! saw the whole stream, so federation costs no accuracy. Membership
//! ([`NodeHealth`]) turns request outcomes and periodic pings into
//! alive/suspect/dead states; a dead node's key range drains to the
//! survivors through the ring's liveness-aware routing and returns the
//! moment the node rejoins.
//!
//! With `replicas` on, consecutive nodes form **pairs** that both
//! receive every write for their slot. On read the coordinator takes
//! exactly **one** member per slot (the heavier): summary merge is
//! additive, not idempotent, so merging both replicas would double-count
//! the range. The pair exists so a single death never blanks a slot, not
//! to add read quorum.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use ms_core::wire::FRAME_HEADER_LEN;
use ms_core::{ServiceError, Summary, Wire};
use ms_obs::{Counter, Gauge, Histogram, RegistrySnapshot, TraceHandle};
use ms_service::deadline;
use ms_service::telemetry::timed;
use ms_service::tracectx::{self, FIELD_PARENT, FIELD_SPAN, FIELD_TRACE};
use ms_service::{
    check_phi, AccuracyAudit, Client, ClientOptions, ClusterInfo, CubeClock, EngineTelemetry,
    MetricsReport, NodeInfo, OpClass, RangeAnswer, RangeMeta, Request, Response, SegmentReport,
    Service, ShardSummary, SystemClock, TraceContext,
};

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker, RetryBudget};
use crate::membership::NodeHealth;
use crate::ring::HashRing;

/// How a coordinator is built: the backend set and the knobs on routing,
/// health, and transport.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Backend addresses (`host:port`). With [`ClusterConfig::replicas`]
    /// the count must be even; consecutive addresses pair up.
    pub nodes: Vec<String>,
    /// Pair consecutive nodes as replicas: writes go to both members,
    /// reads take the heavier one.
    pub replicas: bool,
    /// Virtual nodes per ring slot.
    pub vnodes: usize,
    /// Consecutive failures before a node is suspect.
    pub suspect_after: u32,
    /// Consecutive failures before a node is dead (routed around).
    pub dead_after: u32,
    /// Transport options for every backend client.
    pub client: ClientOptions,
    /// Ping cadence for the background prober; `None` disables it (tests
    /// drive health through request outcomes alone).
    pub ping_interval: Option<Duration>,
    /// Record coordinator telemetry.
    pub telemetry: bool,
    /// Seed for deterministic trace/span ids (and anything else the
    /// coordinator derives randomness from). Two coordinators with
    /// different seeds can never mint colliding trace ids.
    pub seed: u64,
    /// Per-node circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Retry-budget capacity in whole tokens (bucket starts full).
    pub retry_budget_capacity: u64,
    /// Millitokens deposited per first attempt: 100 allows roughly one
    /// retry per ten requests in steady state.
    pub retry_budget_deposit_milli: u64,
    /// Time source for breaker open windows (tests inject a
    /// [`ms_service::ManualClock`]).
    pub clock: Arc<dyn CubeClock>,
}

impl ClusterConfig {
    /// Defaults: no replicas, 64 vnodes, suspect after 1 failure, dead
    /// after 3, default client transport, 1s pings, telemetry on.
    pub fn new<S: Into<String>>(nodes: impl IntoIterator<Item = S>) -> ClusterConfig {
        ClusterConfig {
            nodes: nodes.into_iter().map(Into::into).collect(),
            replicas: false,
            vnodes: 64,
            suspect_after: 1,
            dead_after: 3,
            client: ClientOptions::default(),
            ping_interval: Some(Duration::from_secs(1)),
            telemetry: true,
            seed: 0x0C00_D1E5,
            breaker: BreakerConfig::default(),
            retry_budget_capacity: 10,
            retry_budget_deposit_milli: 100,
            clock: Arc::new(SystemClock::new()),
        }
    }

    /// Override the trace-id seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable replica pairs.
    pub fn replicas(mut self, on: bool) -> Self {
        self.replicas = on;
        self
    }

    /// Override the transport options.
    pub fn client_options(mut self, opts: ClientOptions) -> Self {
        self.client = opts;
        self
    }

    /// Override (or disable) the background ping cadence.
    pub fn ping_interval(mut self, interval: Option<Duration>) -> Self {
        self.ping_interval = interval;
        self
    }

    /// Override the failure thresholds.
    pub fn thresholds(mut self, suspect_after: u32, dead_after: u32) -> Self {
        self.suspect_after = suspect_after;
        self.dead_after = dead_after;
        self
    }

    /// Override the circuit-breaker thresholds.
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Override the retry budget (capacity in whole tokens, deposit per
    /// request in millitokens).
    pub fn retry_budget(mut self, capacity: u64, deposit_milli: u64) -> Self {
        self.retry_budget_capacity = capacity;
        self.retry_budget_deposit_milli = deposit_milli;
        self
    }

    /// Install a time source for breaker windows (tests inject a
    /// [`ms_service::ManualClock`]).
    pub fn clock(mut self, clock: Arc<dyn CubeClock>) -> Self {
        self.clock = clock;
        self
    }
}

/// One backend node as the coordinator sees it.
struct Node {
    addr: Mutex<String>,
    /// Lazily-connected client; dropped on any transport failure so a
    /// poisoned connection is never reused.
    client: Mutex<Option<Client>>,
    health: NodeHealth,
    /// Circuit breaker on the path to this node: failures and shed
    /// responses trip it; while open, requests fail fast instead of
    /// burning a timeout per scatter leg.
    breaker: CircuitBreaker,
    requests: AtomicU64,
    failures: AtomicU64,
    /// Total weight of this node's summary at the last gather.
    last_weight: AtomicU64,
}

/// Coordinator-plane instruments, registered on the same registry the
/// server's request-latency and byte counters live in, so one
/// `Telemetry` scrape sees the whole plane.
struct Instruments {
    node_latency: Vec<Arc<Histogram>>,
    node_state: Vec<Arc<Gauge>>,
    node_failures: Vec<Arc<Counter>>,
    /// Backend requests issued per gather (the fan-out depth).
    gather_fanout: Arc<Histogram>,
    /// Request bytes shipped to backends.
    scatter_bytes: Arc<Counter>,
    /// Response bytes shipped back from backends.
    gather_bytes: Arc<Counter>,
    rebalances: Arc<Counter>,
    /// Per-node breaker state (0 closed, 1 open, 2 half-open).
    breaker_state: Vec<Arc<Gauge>>,
    breaker_trips: Vec<Arc<Counter>>,
    /// Coordinator-level retries granted / denied by the token budget.
    retries_granted: Arc<Counter>,
    retries_denied: Arc<Counter>,
    retry_tokens: Arc<Gauge>,
}

/// What one scatter/gather produced.
pub struct GatherReport {
    /// The one-shot merged summary; `None` when no slot answered.
    pub summary: Option<ShardSummary>,
    /// Backend nodes that contributed a summary.
    pub answered: usize,
    /// Slots with no live member — their range is missing from the
    /// merged summary (the loss-slack bound covers the gap).
    pub dark_slots: usize,
    /// Backend requests issued.
    pub fanout: usize,
    /// Response bytes gathered.
    pub bytes: u64,
    /// Fraction of slots that contributed to the merge, in [0, 1]. A
    /// partial gather (slow node tripped its breaker, a leg shed) is a
    /// valid summary of the answering slots' updates — Definition 1 —
    /// with its reduced reach made explicit here rather than failing
    /// the whole gather.
    pub coverage: f64,
}

/// A federation coordinator over N backend `ms-service` nodes.
pub struct Coordinator {
    nodes: Vec<Node>,
    /// Slot → member node indices (one, or two with replicas).
    slots: Vec<Vec<usize>>,
    ring: HashRing,
    client_opts: ClientOptions,
    replicas: bool,
    telemetry: Arc<EngineTelemetry>,
    /// Flight-recorder ring the scatter legs record into; one leg span
    /// per backend request issued under a live trace context.
    scatter_ring: TraceHandle,
    instruments: Instruments,
    /// Token bucket bounding coordinator-initiated retries.
    retry_budget: RetryBudget,
    rebalanced_batches: AtomicU64,
    stopped: AtomicBool,
    /// Pinger wake/stop signal: the bool is "stop requested".
    ping_stop: Arc<(Mutex<bool>, Condvar)>,
    pinger: Mutex<Option<JoinHandle<()>>>,
}

impl Coordinator {
    /// Build a coordinator over `cfg.nodes`. Connections are lazy: a
    /// backend that is down at start is discovered by the first request
    /// (or ping) that touches it, not at construction.
    pub fn start(cfg: ClusterConfig) -> Result<Arc<Coordinator>, ServiceError> {
        if cfg.nodes.is_empty() {
            return Err(ServiceError::Config("cluster needs at least one node"));
        }
        if cfg.replicas && !cfg.nodes.len().is_multiple_of(2) {
            return Err(ServiceError::Config(
                "replica pairs need an even node count",
            ));
        }
        let slots: Vec<Vec<usize>> = if cfg.replicas {
            (0..cfg.nodes.len() / 2)
                .map(|s| vec![2 * s, 2 * s + 1])
                .collect()
        } else {
            (0..cfg.nodes.len()).map(|n| vec![n]).collect()
        };
        let ring = HashRing::new(slots.len(), cfg.vnodes.max(1));
        let telemetry = Arc::new(EngineTelemetry::new(0, cfg.telemetry, cfg.seed));
        let scatter_ring = telemetry.recorder().register("scatter");
        let registry = telemetry.registry();
        let instruments = Instruments {
            node_latency: (0..cfg.nodes.len())
                .map(|n| registry.histogram(&format!("node_request_micros{{node=\"{n}\"}}")))
                .collect(),
            node_state: (0..cfg.nodes.len())
                .map(|n| registry.gauge(&format!("node_state{{node=\"{n}\"}}")))
                .collect(),
            node_failures: (0..cfg.nodes.len())
                .map(|n| registry.counter(&format!("node_failures_total{{node=\"{n}\"}}")))
                .collect(),
            gather_fanout: registry.histogram("gather_fanout"),
            scatter_bytes: registry.counter("scatter_bytes_total"),
            gather_bytes: registry.counter("gather_bytes_total"),
            rebalances: registry.counter("ring_rebalances_total"),
            breaker_state: (0..cfg.nodes.len())
                .map(|n| registry.gauge(&format!("breaker_state{{node=\"{n}\"}}")))
                .collect(),
            breaker_trips: (0..cfg.nodes.len())
                .map(|n| registry.counter(&format!("breaker_trips_total{{node=\"{n}\"}}")))
                .collect(),
            retries_granted: registry.counter("coordinator_retries_granted_total"),
            retries_denied: registry.counter("coordinator_retries_denied_total"),
            retry_tokens: registry.gauge("retry_budget_tokens"),
        };
        let retry_budget =
            RetryBudget::new(cfg.retry_budget_capacity, cfg.retry_budget_deposit_milli);
        instruments.retry_tokens.set(retry_budget.tokens() as i64);
        let nodes = cfg
            .nodes
            .iter()
            .map(|addr| Node {
                addr: Mutex::new(addr.clone()),
                client: Mutex::new(None),
                health: NodeHealth::new(cfg.suspect_after, cfg.dead_after),
                breaker: CircuitBreaker::new(cfg.breaker.clone(), Arc::clone(&cfg.clock)),
                requests: AtomicU64::new(0),
                failures: AtomicU64::new(0),
                last_weight: AtomicU64::new(0),
            })
            .collect();
        let coordinator = Arc::new(Coordinator {
            nodes,
            slots,
            ring,
            client_opts: cfg.client.clone(),
            replicas: cfg.replicas,
            telemetry,
            scatter_ring,
            instruments,
            retry_budget,
            rebalanced_batches: AtomicU64::new(0),
            stopped: AtomicBool::new(false),
            ping_stop: Arc::new((Mutex::new(false), Condvar::new())),
            pinger: Mutex::new(None),
        });
        if let Some(interval) = cfg.ping_interval {
            let weak = Arc::downgrade(&coordinator);
            let signal = Arc::clone(&coordinator.ping_stop);
            let handle = std::thread::Builder::new()
                .name("ms-pinger".to_string())
                .spawn(move || ping_loop(weak, signal, interval))?;
            *lock(&coordinator.pinger) = Some(handle);
        }
        Ok(coordinator)
    }

    /// The coordinator's telemetry plane.
    pub fn telemetry(&self) -> &Arc<EngineTelemetry> {
        &self.telemetry
    }

    /// Number of backend nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Stop the pinger. Backend nodes are *not* shut down: the
    /// coordinator federates processes it does not own.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, Ordering::AcqRel) {
            return;
        }
        let (stop, cvar) = &*self.ping_stop;
        *lock(stop) = true;
        cvar.notify_all();
        if let Some(handle) = lock(&self.pinger).take() {
            let _ = handle.join();
        }
    }

    /// Route `items` across the cluster. Each item goes to the live slot
    /// owning its hash; with replicas every live member of the slot
    /// receives the batch (delivery succeeds when at least one member
    /// takes it). A bucket whose every member fails mid-send is rerouted
    /// to the next live slot on the ring — counted as a rebalance — so a
    /// node death during ingest loses at most the in-flight frames the
    /// retry layer could not confirm.
    pub fn ingest(&self, items: &[u64]) -> Result<(), ServiceError> {
        if items.is_empty() {
            return Ok(());
        }
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); self.slots.len()];
        let mut saw_dead_slot = false;
        for &item in items {
            let slot = self
                .ring
                .route(item, |s| self.slot_dead(s))
                .ok_or_else(no_live_backend)?;
            if self.slot_dead(self.ring.slot_of(item)) {
                saw_dead_slot = true;
            }
            buckets[slot].push(item);
        }
        if saw_dead_slot {
            self.rebalanced_batches.fetch_add(1, Ordering::Relaxed);
            self.instruments.rebalances.add(1);
        }
        for (slot, bucket) in buckets.iter_mut().enumerate() {
            let mut bucket = std::mem::take(bucket);
            if bucket.is_empty() {
                continue;
            }
            // Walk slots until one accepts the bucket; every hop past a
            // freshly-dead slot is a rebalance.
            let mut target = slot;
            let mut attempts = 0usize;
            loop {
                if self.send_bucket(target, &bucket)? {
                    break;
                }
                attempts += 1;
                if attempts >= self.slots.len() {
                    return Err(no_live_backend());
                }
                target = self
                    .ring
                    .route(bucket[0], |s| self.slot_dead(s))
                    .ok_or_else(no_live_backend)?;
                self.rebalanced_batches.fetch_add(1, Ordering::Relaxed);
                self.instruments.rebalances.add(1);
            }
            bucket.clear();
        }
        Ok(())
    }

    /// Send one bucket to every live member of `slot`. Returns whether
    /// at least one member accepted it; transport failures mark the
    /// member's health and are otherwise swallowed here (the caller
    /// reroutes).
    fn send_bucket(&self, slot: usize, bucket: &[u64]) -> Result<bool, ServiceError> {
        // A spent inbound deadline sheds the whole bucket here: the
        // caller has given up, so no backend should see the frames.
        let remaining = deadline::remaining_micros();
        if remaining == Some(0) {
            return Err(ServiceError::Overloaded {
                retry_after_micros: 0,
            });
        }
        let frame_bytes = ingest_frame_bytes(bucket);
        let mut delivered = false;
        let mut last_err: Option<ServiceError> = None;
        for &member in &self.slots[slot] {
            if self.nodes[member].health.is_dead() {
                continue;
            }
            self.instruments.scatter_bytes.add(frame_bytes);
            // Ingest legs join the live trace the same way query legs
            // do, so one traced ingest stitches coordinator → node; a
            // remaining deadline rides the same envelope, decremented.
            let result = match tracectx::current() {
                Some(ctx) => {
                    let leg = self.telemetry.next_span(ctx);
                    let mut span = self.scatter_ring.span("scatter");
                    span.field(FIELD_TRACE, ctx.trace_id);
                    span.field(FIELD_SPAN, leg);
                    span.field(FIELD_PARENT, ctx.parent_span);
                    span.field("node", member as u64);
                    span.field("op", Request::Ingest(Vec::new()).opcode() as u64);
                    let child = TraceContext {
                        trace_id: ctx.trace_id,
                        parent_span: leg,
                    };
                    match remaining {
                        Some(rem) => {
                            self.with_node(member, |c| c.ingest_slice_deadline(child, rem, bucket))
                        }
                        None => self.with_node(member, |c| c.ingest_slice_traced(child, bucket)),
                    }
                }
                None => match remaining {
                    Some(rem) => {
                        self.with_node(member, |c| c.ingest_slice_deadline(NO_TRACE, rem, bucket))
                    }
                    None => self.with_node(member, |c| c.ingest_slice(bucket)),
                },
            };
            match result {
                Ok(()) => delivered = true,
                Err(e) => last_err = Some(e),
            }
        }
        match (delivered, last_err) {
            (true, _) => Ok(true),
            // A shed is not a death: rerouting the bucket would aim the
            // same storm at the next node, so surface it typed instead.
            (false, Some(e @ ServiceError::Overloaded { .. })) => Err(e),
            (false, Some(e)) if e.is_transient() => Ok(false), // reroute
            (false, Some(e)) => Err(e),                        // the backend answered and refused
            (false, None) => Ok(false),                        // every member already dead
        }
    }

    /// Flush every live node so gathers see all prior ingests.
    pub fn flush(&self) -> Result<(), ServiceError> {
        let mut flushed = 0usize;
        for idx in 0..self.nodes.len() {
            if self.nodes[idx].health.is_dead() {
                continue;
            }
            if self.scatter_call(idx, &Request::Flush).is_ok() {
                flushed += 1;
            }
        }
        if flushed == 0 {
            return Err(no_live_backend());
        }
        Ok(())
    }

    /// Scatter a summary request to every slot, gather the per-node
    /// summaries, and merge them one-shot. Per slot exactly one member's
    /// summary enters the merge (the heavier, when replicas diverge);
    /// a slot with no live answer is reported dark, not an error — the
    /// merged summary is then a valid summary of the surviving updates.
    pub fn gather(&self) -> Result<GatherReport, ServiceError> {
        let mut merged: Option<ShardSummary> = None;
        let mut answered = 0usize;
        let mut dark_slots = 0usize;
        let mut fanout = 0usize;
        let mut bytes = 0u64;
        for members in &self.slots {
            let mut best: Option<ShardSummary> = None;
            for &member in members {
                if self.nodes[member].health.is_dead() {
                    continue;
                }
                fanout += 1;
                let response = match self.scatter_call(member, &Request::Summary) {
                    Ok(r) => r,
                    Err(_) => continue,
                };
                let Response::Summary(raw) = response else {
                    continue;
                };
                bytes +=
                    (FRAME_HEADER_LEN + 1) as u64 + varint_len(raw.len() as u64) + raw.len() as u64;
                let summary = ShardSummary::decode(&raw)
                    .map_err(|e| ServiceError::Protocol(format!("bad node summary: {e}")))?;
                self.nodes[member]
                    .last_weight
                    .store(summary.total_weight(), Ordering::Relaxed);
                // Read-one replica semantics: merge is additive, so
                // folding both members would double-count the slot.
                // Keep the heavier member — it saw every write the
                // lighter one saw, plus the ones delivered while the
                // lighter one was down.
                best = match best {
                    Some(prev) if prev.total_weight() >= summary.total_weight() => Some(prev),
                    _ => Some(summary),
                };
            }
            match best {
                Some(summary) => {
                    answered += 1;
                    match &mut merged {
                        None => merged = Some(summary),
                        Some(acc) => acc
                            .merge_in_place(summary)
                            .map_err(|e| ServiceError::Protocol(format!("gather merge: {e}")))?,
                    }
                }
                None => dark_slots += 1,
            }
        }
        self.instruments.gather_fanout.record(fanout as u64);
        self.instruments.gather_bytes.add(bytes);
        Ok(GatherReport {
            summary: merged,
            answered,
            dark_slots,
            fanout,
            bytes,
            coverage: answered as f64 / self.slots.len() as f64,
        })
    }

    /// Merge every live node's [`MetricsReport`] into one cluster-wide
    /// report (work counters sum, per-node gauges take the max).
    pub fn metrics(&self) -> Result<MetricsReport, ServiceError> {
        let mut merged: Option<MetricsReport> = None;
        for idx in 0..self.nodes.len() {
            if self.nodes[idx].health.is_dead() {
                continue;
            }
            let Ok(Response::Metrics(report)) = self.scatter_call(idx, &Request::Metrics) else {
                continue;
            };
            match &mut merged {
                None => merged = Some(report),
                Some(acc) => acc.merge_from(&report),
            }
        }
        merged.ok_or_else(no_live_backend)
    }

    /// The coordinator's own registry merged with every live backend's —
    /// the telemetry plane is itself mergeable (counters add, histograms
    /// merge bucket-wise).
    pub fn telemetry_merged(&self) -> RegistrySnapshot {
        let mut merged = self.telemetry.snapshot();
        for idx in 0..self.nodes.len() {
            if self.nodes[idx].health.is_dead() {
                continue;
            }
            if let Ok(Response::Telemetry(snapshot)) = self.scatter_call(idx, &Request::Telemetry) {
                merged = merged.merge(&snapshot);
            }
        }
        merged
    }

    /// Membership and routing state, as served to `ClusterInfo` queries.
    pub fn cluster_info(&self) -> ClusterInfo {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(idx, node)| NodeInfo {
                index: idx as u32,
                addr: lock(&node.addr).clone(),
                state: node.health.state(),
                consecutive_failures: node.health.consecutive_failures(),
                requests: node.requests.load(Ordering::Relaxed),
                failures: node.failures.load(Ordering::Relaxed),
                last_weight: node.last_weight.load(Ordering::Relaxed),
            })
            .collect();
        ClusterInfo {
            nodes,
            replicas: self.replicas,
            slots: self.slots.len() as u32,
            vnodes: self.ring.vnodes() as u32,
            rebalanced_batches: self.rebalanced_batches.load(Ordering::Relaxed),
        }
    }

    /// One node's raw summary bytes (the `NodeSummary` opcode).
    pub fn node_summary(&self, idx: u32) -> Result<Vec<u8>, ServiceError> {
        let idx = idx as usize;
        if idx >= self.nodes.len() {
            return Err(ServiceError::Protocol(format!(
                "node index {idx} out of range ({} nodes)",
                self.nodes.len()
            )));
        }
        match self.scatter_call(idx, &Request::Summary)? {
            Response::Summary(raw) => Ok(raw),
            other => Err(ServiceError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Bring a node back: optionally update its address (a restarted
    /// process rarely keeps its port), drop any stale connection, and
    /// ping it. On success the node is alive and the ring routes to it
    /// again — its WAL/checkpoint recovery already happened inside the
    /// node before it started listening.
    pub fn rejoin(&self, idx: usize, addr: Option<&str>) -> Result<(), ServiceError> {
        let node = self
            .nodes
            .get(idx)
            .ok_or(ServiceError::Config("rejoin index out of range"))?;
        if let Some(addr) = addr {
            *lock(&node.addr) = addr.to_string();
        }
        *lock(&node.client) = None;
        // The rejoin ping bypasses the breaker's fail-fast (`attempt`
        // instead of `with_node`): rejoin *is* the recovery probe, and
        // it is the operator asserting the node is back — so a
        // successful ping also resets the breaker outright instead of
        // waiting out the open window.
        match self.attempt(idx, &|client| client.call(&Request::Ping))? {
            Response::Ok => {
                node.breaker.reset();
                self.sync_breaker_instruments(idx);
                Ok(())
            }
            other => Err(ServiceError::Protocol(format!(
                "unexpected ping response {other:?}"
            ))),
        }
    }

    /// Scatter a range request to every slot and merge the per-node
    /// range summaries one-shot. Per slot exactly one member's answer
    /// enters the merge — the one covering more weight, mirroring the
    /// read-one replica rule — because range summaries are additive, not
    /// idempotent. The merged summary carries the same `ε·(covered
    /// weight)` bound as a single node that held every covering segment
    /// (Definition 1), so the caller recomputes the final answer from it
    /// instead of averaging per-node scalars.
    pub fn range_gather(
        &self,
        request: &Request,
    ) -> Result<(RangeMeta, Option<ShardSummary>), ServiceError> {
        let (start_micros, end_micros) = match request {
            Request::RangeQuantile {
                start_micros,
                end_micros,
                ..
            }
            | Request::RangeHeavyHitters {
                start_micros,
                end_micros,
                ..
            } => (*start_micros, *end_micros),
            _ => return Err(ServiceError::Config("not a range request")),
        };
        let mut merged: Option<ShardSummary> = None;
        let mut meta = RangeMeta {
            start_micros,
            end_micros,
            segments_merged: 0,
            open_included: false,
            covered_weight: 0,
            start_seq: 0,
            end_seq: 0,
        };
        let mut answered = 0usize;
        for members in &self.slots {
            let mut best: Option<RangeAnswer> = None;
            for &member in members {
                if self.nodes[member].health.is_dead() {
                    continue;
                }
                let response = match self.scatter_call(member, request) {
                    Ok(r) => r,
                    Err(_) => continue,
                };
                let Response::Range(answer) = response else {
                    continue;
                };
                best = match best {
                    Some(prev) if prev.meta.covered_weight >= answer.meta.covered_weight => {
                        Some(prev)
                    }
                    _ => Some(answer),
                };
            }
            let Some(answer) = best else {
                continue;
            };
            answered += 1;
            if answer.summary.is_empty() {
                // The node is live but no segment overlaps the window.
                continue;
            }
            let summary = ShardSummary::decode(&answer.summary)
                .map_err(|e| ServiceError::Protocol(format!("bad range summary: {e}")))?;
            meta.segments_merged += answer.meta.segments_merged;
            meta.open_included |= answer.meta.open_included;
            meta.covered_weight += answer.meta.covered_weight;
            meta.start_seq = match meta.start_seq {
                0 => answer.meta.start_seq,
                s => s.min(answer.meta.start_seq),
            };
            meta.end_seq = meta.end_seq.max(answer.meta.end_seq);
            match &mut merged {
                None => merged = Some(summary),
                Some(acc) => acc
                    .merge_in_place(summary)
                    .map_err(|e| ServiceError::Protocol(format!("range merge: {e}")))?,
            }
        }
        if answered == 0 {
            return Err(no_live_backend());
        }
        Ok((meta, merged))
    }

    /// Concatenate every live node's segment report. Node-local segment
    /// ids collide across backends, so entries keep their per-node ids
    /// and `now_micros` takes the max over answering nodes.
    pub fn segment_report(&self) -> Result<SegmentReport, ServiceError> {
        let mut merged: Option<SegmentReport> = None;
        for idx in 0..self.nodes.len() {
            if self.nodes[idx].health.is_dead() {
                continue;
            }
            let Ok(Response::Segments(report)) = self.scatter_call(idx, &Request::SegmentInfo)
            else {
                continue;
            };
            match &mut merged {
                None => merged = Some(report),
                Some(acc) => {
                    acc.now_micros = acc.now_micros.max(report.now_micros);
                    acc.segments.extend(report.segments);
                }
            }
        }
        merged.ok_or_else(no_live_backend)
    }

    /// Gather every slot's accuracy audit and merge them like summaries:
    /// one member per slot (the heavier, mirroring the read-one replica
    /// rule — both replicas audited the same writes, so folding both
    /// would double-count), weights and envelopes adding, observed error
    /// taking the worst. The merged report's `within_bound` holds only
    /// if every contributing node held its own bound — exactly the
    /// paper's claim that merging costs no accuracy.
    pub fn accuracy_merged(&self) -> Result<AccuracyAudit, ServiceError> {
        let mut merged: Option<AccuracyAudit> = None;
        for members in &self.slots {
            let mut best: Option<AccuracyAudit> = None;
            for &member in members {
                if self.nodes[member].health.is_dead() {
                    continue;
                }
                let Ok(Response::Accuracy(audit)) =
                    self.scatter_call(member, &Request::AccuracyReport)
                else {
                    continue;
                };
                best = match best {
                    Some(prev) if prev.weight >= audit.weight => Some(prev),
                    _ => Some(audit),
                };
            }
            if let Some(audit) = best {
                match &mut merged {
                    None => merged = Some(audit),
                    Some(acc) => acc.merge_from(&audit),
                }
            }
        }
        merged.ok_or_else(no_live_backend)
    }

    /// Is every member of `slot` dead?
    fn slot_dead(&self, slot: usize) -> bool {
        self.slots[slot]
            .iter()
            .all(|&m| self.nodes[m].health.is_dead())
    }

    /// One request/response round-trip to node `idx`, with scatter-byte
    /// accounting on top of [`Coordinator::with_node`]'s health and
    /// latency bookkeeping.
    fn scatter_call(&self, idx: usize, request: &Request) -> Result<Response, ServiceError> {
        self.instruments
            .scatter_bytes
            .add((FRAME_HEADER_LEN + request.wire_len()) as u64);
        // A spent inbound deadline fails the leg locally: the caller has
        // already given up, so the backend should never see the work.
        let remaining = deadline::remaining_micros();
        if remaining == Some(0) {
            return Err(ServiceError::Overloaded {
                retry_after_micros: 0,
            });
        }
        // Under a live trace (the server put one up before calling
        // `handle`), every leg gets its own span and ships the context to
        // the backend, whose request span then parents under this leg.
        // Pings and other context-free calls stay plain `REQUEST_TAG` —
        // unless a deadline must ride along, which needs the envelope (a
        // zero trace id in it still means "no trace").
        let Some(ctx) = tracectx::current() else {
            return self.with_node(idx, |client| {
                shed_to_error(match remaining {
                    Some(rem) => client.call_with_deadline(NO_TRACE, rem, request)?,
                    None => client.call(request)?,
                })
            });
        };
        let leg = self.telemetry.next_span(ctx);
        let mut span = self.scatter_ring.span("scatter");
        span.field(FIELD_TRACE, ctx.trace_id);
        span.field(FIELD_SPAN, leg);
        span.field(FIELD_PARENT, ctx.parent_span);
        span.field("node", idx as u64);
        span.field("op", request.opcode() as u64);
        let child = TraceContext {
            trace_id: ctx.trace_id,
            parent_span: leg,
        };
        self.with_node(idx, |client| {
            shed_to_error(match remaining {
                // The *decremented* budget rides the envelope: the time
                // this coordinator already burned never reaches the node.
                Some(rem) => client.call_with_deadline(child, rem, request)?,
                None => client.call_traced(child, request)?,
            })
        })
    }

    /// Run `f` against node `idx` with the overload plane in front: an
    /// open breaker fails fast (typed [`ServiceError::Overloaded`], no
    /// connection touched, health untouched — backing off says nothing
    /// new about the node), every first attempt funds the retry budget,
    /// and one budget-gated coordinator retry replays transient
    /// *transport* failures. A shed is never retried here: the node
    /// answered and asked for air — an immediate replay would feed the
    /// storm it is shedding.
    fn with_node<T>(
        &self,
        idx: usize,
        f: impl Fn(&mut Client) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let node = &self.nodes[idx];
        if !node.breaker.allow() {
            self.sync_breaker_instruments(idx);
            return Err(ServiceError::Overloaded {
                retry_after_micros: node.breaker.retry_after_micros(),
            });
        }
        self.retry_budget.note_request();
        let mut result = self.attempt(idx, &f);
        if matches!(
            &result,
            Err(ServiceError::Io { .. } | ServiceError::Timeout { .. } | ServiceError::Wire(_))
        ) && node.breaker.allow()
        {
            if self.retry_budget.try_withdraw() {
                self.instruments.retries_granted.add(1);
                result = self.attempt(idx, &f);
            } else {
                self.instruments.retries_denied.add(1);
            }
        }
        self.instruments
            .retry_tokens
            .set(self.retry_budget.tokens() as i64);
        result
    }

    /// One connect-and-call attempt against node `idx`'s client
    /// (connecting lazily), recording latency and translating the outcome
    /// into health and breaker state. Transport failures drop the
    /// connection and count toward death; a refused connect kills the
    /// node immediately (the process is gone, no three-strikes grace
    /// needed). Protocol-level errors mean the node answered, which is a
    /// liveness *success* — but a shed ([`ServiceError::Overloaded`])
    /// still counts against the breaker: the path is alive yet not
    /// delivering work.
    fn attempt<T>(
        &self,
        idx: usize,
        f: &impl Fn(&mut Client) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let node = &self.nodes[idx];
        let mut guard = lock(&node.client);
        if guard.is_none() {
            let addr = lock(&node.addr).clone();
            match Client::connect_with(addr.as_str(), self.client_opts.clone()) {
                Ok(client) => *guard = Some(client),
                Err(e) => {
                    drop(guard);
                    node.failures.fetch_add(1, Ordering::Relaxed);
                    self.instruments.node_failures[idx].add(1);
                    if node.health.mark_dead() {
                        self.telemetry.event("node-dead", &[("node", idx as u64)]);
                    }
                    node.breaker.record(false);
                    self.sync_state_gauge(idx);
                    self.sync_breaker_instruments(idx);
                    return Err(e);
                }
            }
        }
        let client = guard.as_mut().expect("client connected above");
        let (result, micros) = timed(|| f(client));
        let transport_failure = matches!(
            &result,
            Err(ServiceError::Io { .. } | ServiceError::Timeout { .. } | ServiceError::Wire(_))
        );
        let shed = matches!(&result, Err(ServiceError::Overloaded { .. }));
        if transport_failure {
            *guard = None;
        }
        drop(guard);
        self.instruments.node_latency[idx].record(micros);
        if transport_failure {
            node.failures.fetch_add(1, Ordering::Relaxed);
            self.instruments.node_failures[idx].add(1);
            if node.health.failure() {
                self.telemetry.event("node-dead", &[("node", idx as u64)]);
            }
        } else {
            node.requests.fetch_add(1, Ordering::Relaxed);
            if node.health.success() {
                self.telemetry.event("node-rejoin", &[("node", idx as u64)]);
            }
        }
        node.breaker.record(!(transport_failure || shed));
        self.sync_state_gauge(idx);
        self.sync_breaker_instruments(idx);
        result
    }

    fn sync_state_gauge(&self, idx: usize) {
        self.instruments.node_state[idx].set(self.nodes[idx].health.state() as i64);
    }

    fn sync_breaker_instruments(&self, idx: usize) {
        let breaker = &self.nodes[idx].breaker;
        self.instruments.breaker_state[idx].set(breaker.state() as i64);
        let counter = &self.instruments.breaker_trips[idx];
        counter.add(breaker.trips().saturating_sub(counter.get()));
    }

    /// Node `idx`'s breaker state (tests and tooling).
    pub fn breaker_state(&self, idx: usize) -> BreakerState {
        self.nodes[idx].breaker.state()
    }

    /// How many times node `idx`'s breaker has tripped open.
    pub fn breaker_trips(&self, idx: usize) -> u64 {
        self.nodes[idx].breaker.trips()
    }

    /// The coordinator's retry token budget.
    pub fn retry_budget(&self) -> &RetryBudget {
        &self.retry_budget
    }

    /// `Some(shed)` when every node's breaker is open: the cluster-wide
    /// fail-fast, hinting the soonest instant any path lets a probe
    /// through.
    fn all_breakers_open(&self) -> Option<Response> {
        let mut min_retry = u64::MAX;
        for node in &self.nodes {
            if node.breaker.state() != BreakerState::Open {
                return None;
            }
            min_retry = min_retry.min(node.breaker.retry_after_micros());
        }
        Some(Response::Overloaded {
            retry_after_micros: min_retry,
        })
    }
}

impl Service for Coordinator {
    fn handle(&self, request: Request) -> Response {
        // When every path is failing fast there is no point scattering:
        // answer the typed shed with the soonest half-open instant.
        // Control opcodes still flow — observability must keep working
        // in the middle of the storm it exists to explain.
        if OpClass::of(request.opcode()) != OpClass::Control {
            if let Some(shed) = self.all_breakers_open() {
                return shed;
            }
        }
        match request {
            Request::Ping => Response::Ok,
            Request::Ingest(items) => match self.ingest(&items) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(e),
            },
            Request::Flush => match self.flush() {
                Ok(()) => Response::Ok,
                Err(e) => error_response(e),
            },
            Request::Point(item) => self.query(|s| s.point(item).map(Response::Count), "point"),
            Request::HeavyHitters(phi) => match check_phi(phi) {
                Err(e) => Response::Error(e),
                Ok(()) => self.query(
                    |s| s.heavy_hitters(phi).map(Response::Items),
                    "heavy-hitters",
                ),
            },
            Request::Rank(x) => self.query(|s| s.rank(x).map(Response::Count), "rank"),
            Request::Quantile(phi) => match check_phi(phi) {
                Err(e) => Response::Error(e),
                Ok(()) => self.query(|s| s.quantile(phi).map(Response::Value), "quantile"),
            },
            Request::Metrics => match self.metrics() {
                Ok(report) => Response::Metrics(report),
                Err(e) => error_response(e),
            },
            Request::Summary => match self.gather() {
                Ok(GatherReport {
                    summary: Some(s), ..
                }) => Response::Summary(s.encode()),
                Ok(_) => Response::Error("no live backend answered".to_string()),
                Err(e) => error_response(e),
            },
            Request::Telemetry => Response::Telemetry(self.telemetry_merged()),
            Request::ClusterInfo => Response::Cluster(self.cluster_info()),
            Request::NodeSummary(idx) => match self.node_summary(idx) {
                Ok(raw) => Response::Summary(raw),
                Err(e) => error_response(e),
            },
            ref request @ Request::RangeQuantile { phi, .. } => match check_phi(phi) {
                Err(e) => Response::Error(e),
                Ok(()) => match self.range_gather(request) {
                    Ok((meta, merged)) => Response::Range(RangeAnswer {
                        meta,
                        value: merged.as_ref().and_then(|s| s.quantile(phi)).flatten(),
                        items: Vec::new(),
                        summary: merged.map(|s| s.encode()).unwrap_or_default(),
                    }),
                    Err(e) => error_response(e),
                },
            },
            ref request @ Request::RangeHeavyHitters { phi, .. } => match check_phi(phi) {
                Err(e) => Response::Error(e),
                Ok(()) => match self.range_gather(request) {
                    Ok((meta, merged)) => Response::Range(RangeAnswer {
                        meta,
                        value: None,
                        items: merged
                            .as_ref()
                            .and_then(|s| s.heavy_hitters(phi))
                            .unwrap_or_default(),
                        summary: merged.map(|s| s.encode()).unwrap_or_default(),
                    }),
                    Err(e) => error_response(e),
                },
            },
            Request::SegmentInfo => match self.segment_report() {
                Ok(report) => Response::Segments(report),
                Err(e) => error_response(e),
            },
            // The coordinator answers with its *own* rings (request and
            // scatter spans); tooling pulls each backend's rings directly
            // and stitches the processes together by trace id.
            Request::TraceDump => Response::Trace(self.telemetry.trace_report()),
            Request::AccuracyReport => match self.accuracy_merged() {
                Ok(audit) => Response::Accuracy(audit),
                Err(e) => error_response(e),
            },
        }
    }

    fn telemetry(&self) -> &Arc<EngineTelemetry> {
        &self.telemetry
    }

    fn record_rejected_frame(&self) {
        self.telemetry.event("frame-rejected", &[]);
    }

    fn shutdown(&self) {
        Coordinator::shutdown(self);
    }

    fn abort(&self) {
        // The coordinator holds no durable state of its own: abort and
        // graceful shutdown both just stop the pinger.
        Coordinator::shutdown(self);
    }
}

impl Coordinator {
    /// Gather, then answer a query on the merged summary.
    fn query(&self, f: impl FnOnce(&ShardSummary) -> Option<Response>, what: &str) -> Response {
        match self.gather() {
            Ok(GatherReport {
                summary: Some(s), ..
            }) => match f(&s) {
                Some(response) => response,
                None => Response::Error(format!(
                    "{what} queries are not supported by this summary kind"
                )),
            },
            Ok(_) => Response::Error("no live backend answered".to_string()),
            Err(e) => error_response(e),
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn ping_loop(
    coordinator: Weak<Coordinator>,
    signal: Arc<(Mutex<bool>, Condvar)>,
    interval: Duration,
) {
    let (stop, cvar) = &*signal;
    loop {
        {
            let guard = lock(stop);
            let (guard, _) = cvar
                .wait_timeout(guard, interval)
                .unwrap_or_else(|p| p.into_inner());
            if *guard {
                return;
            }
        }
        let Some(coordinator) = coordinator.upgrade() else {
            return;
        };
        for idx in 0..coordinator.nodes.len() {
            // Ping everyone, dead nodes included: a successful ping is
            // exactly how a silently-restarted node rejoins.
            let _ = coordinator.scatter_call(idx, &Request::Ping);
        }
    }
}

/// A zero context for deadline envelopes sent outside any trace: the
/// decoder reads trace id 0 as "no trace", so these bytes are exactly
/// what a context-free envelope carries.
const NO_TRACE: TraceContext = TraceContext {
    trace_id: 0,
    parent_span: 0,
};

/// Lift a typed shed response into the matching typed error, so the
/// breaker and every caller see one shape for "this leg delivered
/// nothing".
fn shed_to_error(response: Response) -> Result<Response, ServiceError> {
    match response {
        Response::Overloaded { retry_after_micros } => {
            Err(ServiceError::Overloaded { retry_after_micros })
        }
        other => Ok(other),
    }
}

/// Map a coordinator-side error onto the wire: typed sheds stay typed,
/// everything else degrades to a string error as before.
fn error_response(e: ServiceError) -> Response {
    match e {
        ServiceError::Overloaded { retry_after_micros } => {
            Response::Overloaded { retry_after_micros }
        }
        other => Response::Error(other.to_string()),
    }
}

fn no_live_backend() -> ServiceError {
    ServiceError::Io {
        kind: std::io::ErrorKind::NotConnected,
        detail: "no live backend node".to_string(),
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Exact wire size of an `Ingest` request frame for `items`, matching
/// `Client::ingest_slice`'s encoding without re-serializing the batch.
fn ingest_frame_bytes(items: &[u64]) -> u64 {
    let mut n = (FRAME_HEADER_LEN + 1) as u64 + varint_len(items.len() as u64);
    for &item in items {
        n += varint_len(item);
    }
    n
}

/// Encoded length of one LEB128 varint.
fn varint_len(v: u64) -> u64 {
    u64::from(64 - (v | 1).leading_zeros()).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_len_matches_encoder() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            ms_core::wire::put_varint(&mut buf, v);
            assert_eq!(varint_len(v), buf.len() as u64, "v={v}");
        }
    }

    #[test]
    fn ingest_frame_bytes_matches_wire_encoding() {
        let items = [0u64, 1, 300, 1 << 20, u64::MAX];
        let frame = ms_core::WireFrame::from_value(
            ms_service::REQUEST_TAG,
            &Request::Ingest(items.to_vec()),
        )
        .to_bytes();
        assert_eq!(ingest_frame_bytes(&items), frame.len() as u64);
    }

    #[test]
    fn config_rejects_odd_replica_count() {
        let cfg = ClusterConfig::new(["a:1", "b:2", "c:3"]).replicas(true);
        assert!(Coordinator::start(cfg).is_err());
    }

    #[test]
    fn config_rejects_empty_node_list() {
        let cfg = ClusterConfig::new(Vec::<String>::new());
        assert!(Coordinator::start(cfg).is_err());
    }
}
